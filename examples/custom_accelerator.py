#!/usr/bin/env python
"""Bring your own accelerator: the flow is fully automatic.

This example authors a brand-new accelerator — a sparse matrix-vector
engine whose per-row work depends on the row's non-zero count — in the
behavioural RTL IR, then runs the framework end to end *without any
accelerator-specific knowledge*: FSMs and counters are detected
structurally, features extracted, the model trained, the hardware
slice generated, and a DVFS controller evaluated against the baseline.

    python examples/custom_accelerator.py
"""

import numpy as np

from repro import FlowConfig, Task, generate_predictor, run_episode
from repro.accelerators.base import AcceleratorDesign, JobInput
from repro.dvfs import (
    ASIC_VOLTAGES,
    AsicEnergyModel,
    AsicVfModel,
    ConstantFrequencyController,
    PredictiveController,
    build_level_table,
)
from repro.flow import build_job_records
from repro.rtl import (
    DatapathBlock,
    Fsm,
    MemRead,
    Module,
    Sig,
    down_counter,
    up_counter,
)
from repro.units import MHZ, MS


class SpmvAccelerator(AcceleratorDesign):
    """Sparse matrix-vector multiply; one job = one matrix."""

    name = "spmv"
    description = "Sparse matrix-vector engine"
    task_description = "Multiply one sparse matrix"
    nominal_frequency = 400 * MHZ

    def _build(self) -> Module:
        m = Module("spmv")
        n_rows = m.port("n_rows", 12)
        m.memory("row_nnz", depth=1024, width=12)

        idx = m.reg("idx", 12)
        nnz = m.wire("nnz", MemRead("row_nnz", Sig("idx")), 12)

        ctrl = Fsm("ctrl", initial="IDLE")
        ctrl.transition("IDLE", "FETCH", cond=n_rows > 0)
        ctrl.transition("FETCH", "MAC")
        ctrl.transition("MAC", "FETCH", cond=idx < (n_rows - 1),
                        actions=[("idx", idx + 1)])
        ctrl.transition("MAC", "DONE", actions=[("idx", idx + 1)])
        ctrl.wait_state("MAC", "c_mac")
        m.fsm(ctrl)

        m.counter(down_counter(
            "c_mac", load_cond=ctrl.arc_signal("FETCH", "MAC"),
            load_value=Sig("nnz") * 12 + 40, width=18,
        ))
        m.counter(up_counter(
            "rows_done", reset_cond=ctrl.arc_signal("MAC", "DONE"),
            enable=ctrl.entry_signal("MAC"), width=12,
        ))
        m.datapath(DatapathBlock(
            "mac_dp", cells={"MUL": 16, "ADD": 16}, width=32,
            inputs=("nnz",), active_states=(("ctrl", "MAC"),),
        ))
        m.set_done(Sig("ctrl__state") == ctrl.code_of("DONE"))
        return m.finalize()

    def encode_job(self, row_nnz) -> JobInput:
        return JobInput(
            inputs={"n_rows": len(row_nnz)},
            memories={"row_nnz": list(row_nnz)},
            coarse_param=len(row_nnz) // 128,
        )


def make_matrices(n_jobs, seed):
    """Sparse matrices whose density drifts (a graph changing over
    time) — realistic input-dependent variation."""
    rng = np.random.default_rng(seed)
    jobs = []
    density = 0.3
    for _ in range(n_jobs):
        density = float(np.clip(
            0.3 + 0.9 * (density - 0.3) + rng.normal(0, 0.08), 0.05, 1.0))
        n_rows = int(rng.integers(200, 900))
        jobs.append(rng.binomial(64, density, size=n_rows).tolist())
    return jobs


def main() -> None:
    design = SpmvAccelerator()
    train, test = make_matrices(40, seed=1), make_matrices(40, seed=2)

    print("== automatic flow on a never-seen accelerator ==")
    package = generate_predictor(design, train, FlowConfig())
    print(f"detected {package.n_candidate_features} candidate features; "
          f"model kept {package.n_selected_features}:")
    for name in package.predictor.selected_features:
        print(f"    {name}")
    print(f"slice area: {package.slice_cost.area_fraction * 100:.1f}% "
          f"of the accelerator")

    records = build_job_records(design, package, test)
    errors = [
        (r.predicted_cycles - r.actual_cycles) / r.actual_cycles * 100
        for r in records
    ]
    print(f"prediction error over {len(records)} unseen matrices: "
          f"mean |{np.mean(np.abs(errors)):.2f}|%, "
          f"worst {max(np.abs(errors)):.2f}%")

    vf = AsicVfModel.characterize(design.nominal_frequency)
    levels = build_level_table(vf, ASIC_VOLTAGES)
    energy = AsicEnergyModel.from_netlist(package.netlist)
    slice_energy = AsicEnergyModel.from_netlist(package.hw_slice.netlist)
    task = Task("spmv", deadline=16.7 * MS)

    base = run_episode(ConstantFrequencyController(levels), records,
                       task, energy)
    pred = run_episode(PredictiveController(levels, 100e-6), records,
                       task, energy, slice_energy_model=slice_energy)
    print(f"\npredictive DVFS: "
          f"{(1 - pred.normalized_energy(base)) * 100:.1f}% energy "
          f"saved, {pred.miss_rate * 100:.2f}% misses "
          f"(baseline misses {base.miss_rate * 100:.2f}%)")


if __name__ == "__main__":
    main()
