#!/usr/bin/env python
"""A camera/media SoC running three accelerators concurrently.

The paper's system setup (Sec. 2.1) has many loosely-coupled
accelerators with individually controlled DVFS levels.  This example
runs a media pipeline — H.264 decode, JPEG encode, and stencil
filtering — as concurrent 60 fps streams, comparing chip-level energy
and *peak power* between everything-at-nominal and per-job predictive
DVFS, with execution traces.

    python examples/soc_pipeline.py
"""

from repro.experiments import bundle_for, make_controller, tech_context
from repro.runtime import AcceleratorStream, render_trace, run_soc


def build_streams(scheme: str, benches=("h264", "cjpeg", "stencil")):
    streams = []
    for name in benches:
        ctx = tech_context(bundle_for(name, scale=0.15), tech="asic")
        streams.append(AcceleratorStream(
            name=name,
            controller=make_controller(ctx, scheme),
            jobs=ctx.bundle.test_records,
            task=ctx.task(),
            energy_model=ctx.energy_model,
            slice_energy_model=ctx.slice_energy_model,
        ))
    return streams


def main() -> None:
    print("building three accelerator bundles ...")
    base = run_soc(build_streams("baseline"))
    dvfs = run_soc(build_streams("prediction"))

    print(f"\n{'':14s} {'baseline':>12s} {'predictive':>12s}")
    print(f"{'total energy':14s} {base.total_energy * 1e3:10.2f}mJ "
          f"{dvfs.total_energy * 1e3:10.2f}mJ")
    print(f"{'average power':14s} {base.average_power * 1e3:10.1f}mW "
          f"{dvfs.average_power * 1e3:10.1f}mW")
    print(f"{'peak power':14s} {base.peak_power * 1e3:10.1f}mW "
          f"{dvfs.peak_power * 1e3:10.1f}mW")
    print(f"{'misses':14s} {base.total_misses:12d} "
          f"{dvfs.total_misses:12d}")
    saved = (1 - dvfs.normalized_energy(base)) * 100
    print(f"\nchip-level: {saved:.1f}% energy saved, peak power down "
          f"{(1 - dvfs.peak_power / base.peak_power) * 100:.1f}%")

    print("\nper-accelerator trace (predictive):")
    for name, episode in dvfs.episodes.items():
        print()
        print(render_trace(episode, head=4))


if __name__ == "__main__":
    main()
