#!/usr/bin/env python
"""Quickstart: generate a predictor for an accelerator and use it.

Runs the paper's complete offline flow (Fig 6) on the JPEG encoder —
synthesis, FSM/counter detection, instrumented training simulation,
asymmetric-Lasso fitting, hardware slicing — then predicts the
execution time of unseen jobs by running the generated slice.

    python examples/quickstart.py
"""

from repro import FlowConfig, generate_predictor, get_design, workload_for
from repro.units import MS


def main() -> None:
    design = get_design("cjpeg")
    workload = workload_for("cjpeg", scale=0.2)

    print(f"== offline flow for {design.name} "
          f"({design.description}) ==")
    package = generate_predictor(design, workload.train, FlowConfig())

    print(f"candidate features discovered: "
          f"{package.n_candidate_features}")
    print(f"features selected by Lasso:    "
          f"{package.n_selected_features}")
    for name, coeff in package.predictor.as_dict().items():
        print(f"    {name:30s} x {coeff:10.2f}")
    print(f"slice area: {package.slice_cost.area_fraction * 100:.1f}% "
          f"of the accelerator")

    print("\n== online prediction on unseen jobs ==")
    f0 = design.nominal_frequency
    print(f"{'job':>4s} {'predicted':>10s} {'actual':>10s} "
          f"{'error':>7s} {'slice':>9s}")
    from repro.rtl import Simulation
    sim = Simulation(package.module, track_state_cycles=False)
    for i, item in enumerate(workload.test[:10]):
        job = design.encode_job(item)
        predicted_cycles, slice_cycles = package.run_slice(job)
        sim.reset()
        sim.load(*job.as_pair())
        actual_cycles = sim.run().cycles
        err = (predicted_cycles - actual_cycles) / actual_cycles * 100
        print(f"{i:4d} {predicted_cycles / f0 / MS:8.2f}ms "
              f"{actual_cycles / f0 / MS:8.2f}ms {err:6.2f}% "
              f"{slice_cycles / f0 / MS:7.3f}ms")


if __name__ == "__main__":
    main()
