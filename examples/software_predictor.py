#!/usr/bin/env python
"""Software-based prediction (Sec. 4.5): run the predictor on the CPU.

Accelerators with a software implementation of the same function (like
ffmpeg for H.264) don't need a hardware slice at all: the sliced C
program runs on a core in microseconds and drives the same DVFS model.
This example compares the software predictor's output and overhead
against the hardware slice on the H.264 decoder.

    python examples/software_predictor.py
"""

import numpy as np

from repro.experiments import bundle_for
from repro.flow.software import CpuModel, SoftwarePredictor
from repro.units import MS, US


def main() -> None:
    print("building the h264 bundle...")
    bundle = bundle_for("h264", scale=0.15)
    design = bundle.design
    f0 = design.nominal_frequency

    software = SoftwarePredictor.build(
        "h264", bundle.package.predictor,
        cpu=CpuModel(frequency=1.5e9, cpi=1.2),
    )
    print(f"sliced C program: {len(software.program.statements)} "
          f"statements over {software.program.arrays} "
          f"(from the full feature program)")

    print(f"\n{'frame':>5s} {'hw slice pred':>14s} "
          f"{'sw pred':>10s} {'hw slice time':>14s} {'sw time':>9s}")
    hw_times, sw_times = [], []
    for item, record in zip(bundle.workload.test[:10],
                            bundle.test_records[:10]):
        job = design.encode_job(item)
        sw_pred, sw_overhead = software.predict(job)
        hw_time = record.slice_cycles / f0
        hw_times.append(hw_time)
        sw_times.append(sw_overhead)
        print(f"{record.index:5d} "
              f"{record.predicted_cycles / f0 / MS:12.2f}ms "
              f"{sw_pred / f0 / MS:8.2f}ms "
              f"{hw_time / US:12.1f}us {sw_overhead / US:7.1f}us")

    print(f"\nboth predictors compute identical features, so their "
          f"predictions agree exactly;")
    print(f"mean overhead: hardware slice "
          f"{np.mean(hw_times) / US:.1f}us vs software "
          f"{np.mean(sw_times) / US:.1f}us on a 1.5 GHz core.")


if __name__ == "__main__":
    main()
