#!/usr/bin/env python
"""A 60 fps video-playback session under per-frame DVFS.

Decodes a five-clip test sequence on the H.264 accelerator under three
controllers — constant-frequency baseline, tuned PID, and the paper's
slice-based predictive scheme — and reports energy, deadline misses,
and a per-frame voltage timeline excerpt.

    python examples/video_player.py
"""

from repro.experiments import bundle_for, run_scheme, tech_context
from repro.units import MS


def main() -> None:
    print("building the h264 bundle (train + slice + test records)...")
    bundle = bundle_for("h264", scale=0.2)
    ctx = tech_context(bundle, tech="asic")

    results = {}
    for scheme in ("baseline", "pid", "prediction"):
        results[scheme] = run_scheme(ctx, scheme)
    baseline = results["baseline"]

    print(f"\n{'scheme':12s} {'energy vs baseline':>19s} "
          f"{'deadline misses':>16s}")
    for scheme, episode in results.items():
        energy = episode.normalized_energy(baseline) * 100
        print(f"{scheme:12s} {energy:17.1f}% "
              f"{episode.miss_rate * 100:15.2f}%")

    print("\nper-frame timeline (predictive scheme, first 16 frames):")
    print(f"{'frame':>5s} {'exec':>8s} {'V':>6s} {'f/f0':>6s} "
          f"{'slice':>8s} {'miss':>5s}")
    nominal_f = ctx.levels.nominal.frequency
    for outcome in results["prediction"].outcomes[:16]:
        print(f"{outcome.job.index:5d} "
              f"{outcome.t_exec / MS:6.2f}ms "
              f"{outcome.voltage:6.3f} "
              f"{outcome.frequency / nominal_f:6.2f} "
              f"{outcome.t_slice / MS:6.3f}ms "
              f"{'MISS' if outcome.missed else '':>5s}")

    saved = (1 - results["prediction"].normalized_energy(baseline)) * 100
    print(f"\npredictive DVFS saved {saved:.1f}% energy over the "
          f"constant-frequency baseline on this session.")


if __name__ == "__main__":
    main()
