"""Setuptools shim: enables legacy editable installs on environments
without the ``wheel`` package (offline boxes), via
``pip install -e . --no-use-pep517 --no-build-isolation``."""

from setuptools import setup

setup()
