"""Golden-trace differential harness: canonical episodes, diffed.

A *golden trace* is a canonicalized, versioned JSON rendering of one
benchmark's episodes (one per scheme), committed under
``tests/golden/``.  Re-running the flow and diffing against the golden
answers the question every accounting refactor raises: *did the
numbers move?*  Because serial and parallel builds, warm and cold
caches, and past and present code versions all canonicalize to the
same representation, a single golden file backstops all of those
comparisons at once.

Canonicalization rounds floats to a fixed number of significant digits
(so a JSON round-trip is the identity) and sorts keys (so files diff
cleanly in review).  The differ compares numbers with per-field
relative tolerances — times and energies may drift at float-rounding
magnitude across platforms without that being a finding — while
counts, flags, names, and the schema version compare exactly.

Intentional regeneration (an accounting *fix* that legitimately moves
values) goes through ``repro check --update-golden``; the new file's
git diff then documents exactly which fields moved and by how much.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..runtime.episode import EpisodeResult
from ..runtime.stats import SchemeSummary

#: Bump when the canonical layout changes; a version mismatch is
#: reported as a single explained diff instead of field-level noise.
GOLDEN_SCHEMA_VERSION = 1

#: Significant digits kept by canonicalization.  Well above any real
#: accounting signal, well below cross-platform float noise.
CANONICAL_SIG_DIGITS = 12

#: Relative tolerance per numeric leaf-field name; anything absent
#: compares with ``DEFAULT_REL_TOL``.  Energies accumulate over long
#: float sums (and, for Lasso-derived predictions, BLAS reductions),
#: so they get more slack than raw per-job times.
FIELD_REL_TOL = {
    "energy": 1e-6,
    "total_energy": 1e-6,
    "miss_rate": 1e-9,
}
DEFAULT_REL_TOL = 1e-9


def round_sig(value: float, digits: int = CANONICAL_SIG_DIGITS) -> float:
    """Round ``value`` to ``digits`` significant digits (0 stays 0)."""
    if value == 0.0 or not math.isfinite(value):
        return value
    magnitude = math.floor(math.log10(abs(value)))
    return round(value, digits - 1 - magnitude)


def canonical_episode(result: EpisodeResult,
                      digits: int = CANONICAL_SIG_DIGITS) -> Dict:
    """Render one episode as a stable, JSON-ready dictionary."""
    return {
        "controller": result.controller,
        "task": result.task.name,
        "deadline": round_sig(result.task.deadline, digits),
        "n_jobs": result.n_jobs,
        "total_energy": round_sig(result.total_energy, digits),
        "miss_count": result.miss_count,
        "boost_count": result.boost_count,
        "switch_count": result.switch_count,
        "jobs": [
            {
                "index": i,
                "voltage": round_sig(o.voltage, digits),
                "frequency": round_sig(o.frequency, digits),
                "boosted": o.boosted,
                "release": round_sig(o.release, digits),
                "start": round_sig(o.start, digits),
                "t_slice": round_sig(o.t_slice, digits),
                "t_switch": round_sig(o.t_switch, digits),
                "t_exec": round_sig(o.t_exec, digits),
                "energy": round_sig(o.energy, digits),
                "missed": o.missed,
            }
            for i, o in enumerate(result.outcomes)
        ],
    }


def canonical_summaries(summaries: Sequence[SchemeSummary],
                        digits: int = CANONICAL_SIG_DIGITS) -> List[Dict]:
    """Render scheme-summary tables (flow output) canonically."""
    return [
        {
            "benchmark": s.benchmark,
            "scheme": s.scheme,
            "normalized_energy_pct": round_sig(s.normalized_energy_pct,
                                               digits),
            "miss_rate_pct": round_sig(s.miss_rate_pct, digits),
        }
        for s in summaries
    ]


def _leaf_tolerance(field: str) -> float:
    return FIELD_REL_TOL.get(field, DEFAULT_REL_TOL)


def _numbers_match(a: float, b: float, rel_tol: float) -> bool:
    if a == b:
        return True
    return abs(a - b) <= rel_tol * max(abs(a), abs(b))


def diff_canonical(current: object, golden: object,
                   path: str = "$") -> List[str]:
    """Structural diff of two canonical payloads.

    Numbers compare with the per-field relative tolerance keyed on the
    innermost field name; everything else compares exactly.  Returns
    human-readable drift lines (empty = match).
    """
    drifts: List[str] = []
    if isinstance(current, dict) and isinstance(golden, dict):
        for key in sorted(set(current) | set(golden)):
            if key not in golden:
                drifts.append(f"{path}.{key}: present now, absent in golden")
            elif key not in current:
                drifts.append(f"{path}.{key}: in golden, absent now")
            else:
                drifts.extend(diff_canonical(current[key], golden[key],
                                             f"{path}.{key}"))
        return drifts
    if isinstance(current, list) and isinstance(golden, list):
        if len(current) != len(golden):
            drifts.append(f"{path}: length {len(current)} != golden "
                          f"{len(golden)}")
            return drifts
        for i, (c, g) in enumerate(zip(current, golden)):
            drifts.extend(diff_canonical(c, g, f"{path}[{i}]"))
        return drifts
    # bool is an int subclass — compare flags exactly, before numbers.
    if (isinstance(current, (int, float)) and not isinstance(current, bool)
            and isinstance(golden, (int, float))
            and not isinstance(golden, bool)):
        field = path.rsplit(".", 1)[-1].split("[", 1)[0]
        if not _numbers_match(float(current), float(golden),
                              _leaf_tolerance(field)):
            drifts.append(f"{path}: {current!r} != golden {golden!r} "
                          f"(rel tol {_leaf_tolerance(field):g})")
        return drifts
    if current != golden:
        drifts.append(f"{path}: {current!r} != golden {golden!r}")
    return drifts


def golden_path(root: Union[str, Path], benchmark: str,
                tech: str) -> Path:
    """The canonical file location for one (benchmark, tech) golden."""
    return Path(root) / f"{benchmark}_{tech}.json"


def make_golden_payload(benchmark: str, tech: str, scale: float,
                        episodes: Dict[str, Dict]) -> Dict:
    """Assemble the versioned top-level golden document."""
    return {
        "schema": GOLDEN_SCHEMA_VERSION,
        "benchmark": benchmark,
        "tech": tech,
        "scale": scale,
        "episodes": episodes,
    }


def save_golden(path: Union[str, Path], payload: Dict) -> None:
    """Write a golden file (sorted keys, trailing newline)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")


def load_golden(path: Union[str, Path]) -> Dict:
    """Read a golden file back as a dictionary."""
    with open(path) as handle:
        return json.load(handle)


def diff_against_golden(payload: Dict, path: Union[str, Path]
                        ) -> Optional[List[str]]:
    """Diff a fresh payload against the golden at ``path``.

    Returns ``None`` when no golden exists yet (nothing to compare —
    the caller decides whether that is an error), a list of drift
    lines otherwise.  Schema or configuration mismatches (version,
    scale, tech) short-circuit into one explanatory line each instead
    of flooding the report with per-field noise.
    """
    try:
        golden = load_golden(path)
    except FileNotFoundError:
        return None
    header_mismatches = [
        f"{key}: current {payload.get(key)!r} vs golden "
        f"{golden.get(key)!r} — regenerate with --update-golden or "
        f"rerun with the golden's configuration"
        for key in ("schema", "tech", "scale")
        if payload.get(key) != golden.get(key)
    ]
    if header_mismatches:
        return header_mismatches
    return diff_canonical(payload, golden)
