"""Invariant checker: replay an episode and assert its accounting.

The episode runner maintains a set of closed-form identities — the
timeline chain, the deadline predicate, switch/slice charging rules,
and energy decomposition.  The paper's headline numbers (near-oracle
energy at near-zero misses) are only as trustworthy as these identities,
so this module re-derives every one of them from the recorded
:class:`~repro.runtime.jobs.JobOutcome` stream and reports each
discrepancy as an :class:`InvariantViolation`.

The checker is pure (no mutation, no I/O beyond ``check.*`` metrics)
and deliberately *independent* of the runner's control flow: it
recomputes expectations from first principles instead of calling back
into :func:`~repro.runtime.episode.run_episode`, so a bug in the
runner cannot hide itself.

Invariant catalog (codes as emitted):

* ``timeline.release`` — job *i* is released at ``i * deadline``;
* ``timeline.start`` — ``start == max(prev_finish, release)`` (budget
  carry-over: an overrunning job delays its successor, nothing else);
* ``time.exec`` — ``t_exec == actual_cycles / frequency``;
* ``time.slice`` — slice time equals ``slice_cycles / f_nominal``;
* ``time.negative`` — no time component is negative;
* ``deadline.miss_flag`` — ``missed`` agrees with the shared epsilon
  predicate :func:`repro.units.deadline_missed`;
* ``switch.charge`` — a switch is charged exactly when the level
  changed and the scheme charges overheads; its duration is exactly
  the configured ``t_switch``;
* ``caps.switch_free`` / ``caps.slice_free`` — overhead-free schemes
  (oracle, *_no_overhead) never pay switch or slice time;
* ``energy.recompute`` — the recorded energy equals execution energy
  plus switch-window leakage plus slice energy, re-derived from
  :class:`~repro.dvfs.energy.JobActivity` and the energy models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from ..dvfs.energy import EnergyModel, JobActivity
from ..dvfs.levels import LevelTable, OperatingPoint
from ..obs import get_observer
from ..runtime.episode import EpisodeResult, switch_window_energy
from ..units import DVFS_SWITCH_TIME, TIME_EPS_REL, deadline_missed

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from ..serve.fleet import FleetResult
    from ..serve.server import StreamResult


@dataclass(frozen=True)
class InvariantViolation:
    """One broken identity, pinned to a job (or the whole episode)."""

    code: str                 # catalog code, e.g. "timeline.start"
    job_index: Optional[int]  # positional index; None = episode-level
    message: str
    expected: object = None
    actual: object = None

    def __str__(self) -> str:
        """Render as ``code[job]: message (expected=…, actual=…)``."""
        where = f"[job {self.job_index}]" if self.job_index is not None \
            else "[episode]"
        detail = ""
        if self.expected is not None or self.actual is not None:
            detail = f" (expected={self.expected!r}, actual={self.actual!r})"
        return f"{self.code}{where}: {self.message}{detail}"


class InvariantError(AssertionError):
    """Raised by strict mode when an episode breaks its invariants."""

    def __init__(self, violations: List[InvariantViolation]):
        self.violations = list(violations)
        lines = "\n  ".join(str(v) for v in self.violations[:20])
        more = len(self.violations) - 20
        suffix = f"\n  … and {more} more" if more > 0 else ""
        super().__init__(
            f"{len(self.violations)} episode invariant violation(s):\n"
            f"  {lines}{suffix}"
        )


@dataclass(frozen=True)
class SchemeCaps:
    """What a scheme is entitled to charge: slice and/or overheads."""

    uses_slice: bool
    charge_overheads: bool


#: Capability rules per scheme name.  ``uses_slice`` mirrors the
#: controller attribute *after* construction (the overhead-free
#: predictive variants drop their slice), so the checker can infer
#: capabilities from an :class:`EpisodeResult` alone.
SCHEME_CAPS = {
    "baseline": SchemeCaps(False, True),
    "table": SchemeCaps(False, True),
    "pid": SchemeCaps(False, True),
    "history": SchemeCaps(False, True),
    "governor": SchemeCaps(False, True),
    "prediction": SchemeCaps(True, True),
    "prediction_boost": SchemeCaps(True, True),
    "prediction_no_overhead": SchemeCaps(False, False),
    "prediction_boost_no_overhead": SchemeCaps(False, False),
    "oracle": SchemeCaps(False, False),
}


def capabilities_for(controller_name: str) -> Optional[SchemeCaps]:
    """The capability rules for a scheme name, or ``None`` if unknown.

    Unknown names (ad-hoc test controllers) skip capability checks but
    still get the timeline, deadline, and energy identities.
    """
    return SCHEME_CAPS.get(controller_name)


def _times_equal(a: float, b: float, scale: float,
                 rel_eps: float) -> bool:
    # Wall-clock comparison at the deadline's magnitude: two times are
    # "the same instant" when they differ by rounding slop only.
    return abs(a - b) <= rel_eps * max(scale, abs(a), abs(b))


def _energies_equal(a: float, b: float, rel_eps: float) -> bool:
    return abs(a - b) <= rel_eps * max(abs(a), abs(b), 1e-30)


def check_episode(result: EpisodeResult,
                  energy_model: Optional[EnergyModel] = None,
                  slice_energy_model: Optional[EnergyModel] = None,
                  levels: Optional[LevelTable] = None,
                  t_switch: float = DVFS_SWITCH_TIME,
                  uses_slice: Optional[bool] = None,
                  charge_overheads: Optional[bool] = None,
                  rel_eps: float = TIME_EPS_REL,
                  energy_rel_eps: float = 1e-9
                  ) -> List[InvariantViolation]:
    """Re-derive every accounting identity of ``result`` and diff.

    ``energy_model``/``slice_energy_model`` enable the energy
    recomputation check; ``levels`` enables the first-job switch check
    and the slice-time formula (both need the nominal point).
    Capability flags default to the :data:`SCHEME_CAPS` entry for the
    episode's controller name.  Returns all violations found (empty
    list = episode is internally consistent).
    """
    caps = capabilities_for(result.controller)
    if uses_slice is None:
        uses_slice = caps.uses_slice if caps is not None else None
    if charge_overheads is None:
        charge_overheads = caps.charge_overheads if caps is not None else None

    deadline = result.task.deadline
    violations: List[InvariantViolation] = []

    def bad(code: str, job: Optional[int], message: str,
            expected: object = None, actual: object = None) -> None:
        violations.append(InvariantViolation(
            code=code, job_index=job, message=message,
            expected=expected, actual=actual))

    prev_finish = 0.0
    prev_point: Optional[OperatingPoint] = (
        levels.nominal if levels is not None else None)
    nominal = levels.nominal if levels is not None else None

    for i, o in enumerate(result.outcomes):
        point = OperatingPoint(voltage=o.voltage, frequency=o.frequency,
                               is_boost=o.boosted)

        # -- timeline ------------------------------------------------
        release = i * deadline
        if not _times_equal(o.release, release, deadline, rel_eps):
            bad("timeline.release", i,
                "job released off its period boundary",
                expected=release, actual=o.release)
        start = max(prev_finish, o.release)
        if not _times_equal(o.start, start, deadline, rel_eps):
            bad("timeline.start", i,
                "start is not max(previous finish, release) — the "
                "timeline has a gap or an overlap",
                expected=start, actual=o.start)

        # -- time components ------------------------------------------
        for field in ("t_slice", "t_switch", "t_exec"):
            if getattr(o, field) < 0.0:
                bad("time.negative", i, f"{field} is negative",
                    expected=0.0, actual=getattr(o, field))
        t_exec = o.job.actual_cycles / o.frequency
        if not _times_equal(o.t_exec, t_exec, deadline, rel_eps):
            bad("time.exec", i,
                "t_exec does not equal actual_cycles / frequency",
                expected=t_exec, actual=o.t_exec)

        # -- deadline flag --------------------------------------------
        missed = deadline_missed(o.finish, o.release, deadline, rel_eps)
        if o.missed != missed:
            bad("deadline.miss_flag", i,
                "miss flag disagrees with the shared epsilon predicate",
                expected=missed, actual=o.missed)

        # -- switch charging ------------------------------------------
        changed = (prev_point is not None and point != prev_point)
        if charge_overheads is False and o.t_switch != 0.0:
            bad("caps.switch_free", i,
                "overhead-free scheme charged switch time",
                expected=0.0, actual=o.t_switch)
        elif charge_overheads and t_switch > 0.0:
            if prev_point is not None:
                expected_switch = t_switch if changed else 0.0
                if o.t_switch != expected_switch:
                    bad("switch.charge", i,
                        "switch time charged iff the level changed, "
                        "at exactly the configured switching time",
                        expected=expected_switch, actual=o.t_switch)
            elif o.t_switch not in (0.0, t_switch):
                bad("switch.charge", i,
                    "switch time is neither zero nor the configured "
                    "switching time",
                    expected=(0.0, t_switch), actual=o.t_switch)

        # -- slice charging -------------------------------------------
        if uses_slice is False and o.t_slice != 0.0:
            bad("caps.slice_free", i,
                "scheme without a prediction slice charged slice time",
                expected=0.0, actual=o.t_slice)
        if uses_slice and nominal is not None:
            t_slice = o.job.slice_cycles / nominal.frequency
            if not _times_equal(o.t_slice, t_slice, deadline, rel_eps):
                bad("time.slice", i,
                    "slice time does not equal slice_cycles / f_nominal",
                    expected=t_slice, actual=o.t_slice)

        # -- energy decomposition -------------------------------------
        if energy_model is not None:
            energy = energy_model.job_energy(o.job.activity, point,
                                             o.t_exec)
            energy += switch_window_energy(energy_model, point, o.t_switch)
            recomputable = True
            if o.t_slice > 0.0:
                if slice_energy_model is not None and nominal is not None:
                    slice_activity = JobActivity(cycles=o.job.slice_cycles)
                    energy += slice_energy_model.job_energy(
                        slice_activity, nominal, o.t_slice)
                else:
                    recomputable = False  # cannot price the slice
            if recomputable and not _energies_equal(o.energy, energy,
                                                    energy_rel_eps):
                bad("energy.recompute", i,
                    "recorded energy does not decompose into exec + "
                    "switch leakage + slice energy",
                    expected=energy, actual=o.energy)

        prev_finish = o.start + o.t_slice + o.t_switch + o.t_exec
        prev_point = point

    observer = get_observer()
    if observer is not None:
        observer.metrics.inc("check.episodes")
        observer.metrics.inc("check.jobs", len(result.outcomes))
        if violations:
            observer.metrics.inc("check.violations", len(violations))

    return violations


def check_stream(result: "StreamResult",
                 energy_model: Optional[EnergyModel] = None,
                 slice_energy_model: Optional[EnergyModel] = None,
                 levels: Optional[LevelTable] = None,
                 t_switch: float = DVFS_SWITCH_TIME,
                 uses_slice: Optional[bool] = None,
                 charge_overheads: Optional[bool] = None,
                 rel_eps: float = TIME_EPS_REL,
                 energy_rel_eps: float = 1e-9
                 ) -> List[InvariantViolation]:
    """Re-derive every identity of a served stream and diff.

    The serving runtime's analogue of :func:`check_episode` — the same
    time/energy/capability identities, plus the stream-level laws the
    batch runner never needed:

    * ``stream.conservation`` — every offered job appears exactly once
      (dense unique indices, ``len(outcomes) == n_offered``) and ends
      in exactly one terminal state, so completed + fallback + shed
      adds back up to offered (``stream.terminal`` flags any unknown
      state);
    * ``stream.timeline`` — executed jobs chain on the virtual clock:
      ``release == arrival`` and ``start == max(prev_finish,
      release)`` in arrival order (shed jobs do not occupy the
      server);
    * ``stream.shed`` — a shed job never touched the accelerator:
      zero time, zero energy, no miss, no operating point;
    * ``stream.fallback`` — a fallback job abandoned the prediction
      path: no slice time, dispatched at least as fast as nominal.

    Fallback jobs participate in the switch-point chain (dispatching
    at nominal *is* a level change when the previous job ran slower)
    and in the energy decomposition; their slice identities are the
    degraded ones above rather than the scheme's.  Deadlines are
    relative to each job's own arrival (``release + deadline``).
    """
    caps = capabilities_for(result.scheme)
    if uses_slice is None:
        uses_slice = caps.uses_slice if caps is not None else None
    if charge_overheads is None:
        charge_overheads = caps.charge_overheads if caps is not None else None

    # Imported here (not at module top) to keep repro.check importable
    # without the serve package and free of import cycles.
    from ..serve.server import FALLBACK, SHED, TERMINAL_STATES

    deadline = result.deadline
    violations: List[InvariantViolation] = []

    def bad(code: str, job: Optional[int], message: str,
            expected: object = None, actual: object = None) -> None:
        violations.append(InvariantViolation(
            code=code, job_index=job, message=message,
            expected=expected, actual=actual))

    # -- conservation -------------------------------------------------
    if len(result.outcomes) != result.n_offered:
        bad("stream.conservation", None,
            "outcome count does not match offered count — a job was "
            "dropped or duplicated",
            expected=result.n_offered, actual=len(result.outcomes))
    indices = [o.index for o in result.outcomes]
    if len(set(indices)) != len(indices):
        bad("stream.conservation", None,
            "duplicate job indices — a job terminated twice",
            expected=len(indices), actual=len(set(indices)))
    all_terminal = True
    for o in result.outcomes:
        if o.status not in TERMINAL_STATES:
            all_terminal = False
            bad("stream.terminal", o.index,
                f"unknown terminal state {o.status!r}",
                expected=TERMINAL_STATES, actual=o.status)
    if (all_terminal
            and len(result.outcomes) == result.n_offered
            and (result.n_completed + result.n_fallback + result.n_shed
                 != result.n_offered)):
        bad("stream.conservation", None,
            "completed + fallback + shed does not add up to offered",
            expected=result.n_offered,
            actual=(result.n_completed + result.n_fallback
                    + result.n_shed))

    prev_finish = 0.0
    prev_point: Optional[OperatingPoint] = (
        levels.nominal if levels is not None else None)
    nominal = levels.nominal if levels is not None else None

    for o in result.outcomes:
        i = o.index

        # -- release pins to the arrival instant -----------------------
        if not _times_equal(o.release, o.arrival, deadline, rel_eps):
            bad("stream.timeline", i,
                "release is not the arrival instant",
                expected=o.arrival, actual=o.release)

        if o.status == SHED:
            # -- shed jobs never touched the accelerator ---------------
            for fname in ("t_slice", "t_switch", "t_exec", "energy",
                          "frequency", "voltage"):
                if getattr(o, fname) != 0.0:
                    bad("stream.shed", i,
                        f"shed job has nonzero {fname}",
                        expected=0.0, actual=getattr(o, fname))
            if o.missed:
                bad("stream.shed", i,
                    "shed job flagged as a deadline miss",
                    expected=False, actual=True)
            continue

        point = OperatingPoint(voltage=o.voltage, frequency=o.frequency,
                               is_boost=o.boosted)
        fallback = o.status == FALLBACK

        # -- timeline chain over executed jobs -------------------------
        start = max(prev_finish, o.release)
        if not _times_equal(o.start, start, deadline, rel_eps):
            bad("stream.timeline", i,
                "start is not max(previous finish, release) — the "
                "stream timeline has a gap or an overlap",
                expected=start, actual=o.start)

        # -- time components -------------------------------------------
        for fname in ("t_slice", "t_switch", "t_exec"):
            if getattr(o, fname) < 0.0:
                bad("time.negative", i, f"{fname} is negative",
                    expected=0.0, actual=getattr(o, fname))
        t_exec = o.job.actual_cycles / o.frequency
        if not _times_equal(o.t_exec, t_exec, deadline, rel_eps):
            bad("time.exec", i,
                "t_exec does not equal actual_cycles / frequency",
                expected=t_exec, actual=o.t_exec)

        # -- deadline flag (relative to the job's own arrival) ---------
        missed = deadline_missed(o.finish, o.release, deadline, rel_eps)
        if o.missed != missed:
            bad("deadline.miss_flag", i,
                "miss flag disagrees with the shared epsilon predicate",
                expected=missed, actual=o.missed)

        # -- fallback semantics ----------------------------------------
        if fallback:
            if o.t_slice != 0.0:
                bad("stream.fallback", i,
                    "fallback job charged slice time — degraded jobs "
                    "abandon the prediction path entirely",
                    expected=0.0, actual=o.t_slice)
            if nominal is not None and o.frequency < nominal.frequency:
                bad("stream.fallback", i,
                    "fallback job dispatched below nominal frequency",
                    expected=nominal.frequency, actual=o.frequency)

        # -- switch charging -------------------------------------------
        changed = (prev_point is not None and point != prev_point)
        if charge_overheads is False and o.t_switch != 0.0:
            bad("caps.switch_free", i,
                "overhead-free scheme charged switch time",
                expected=0.0, actual=o.t_switch)
        elif charge_overheads and t_switch > 0.0:
            if prev_point is not None:
                expected_switch = t_switch if changed else 0.0
                if o.t_switch != expected_switch:
                    bad("switch.charge", i,
                        "switch time charged iff the level changed, "
                        "at exactly the configured switching time",
                        expected=expected_switch, actual=o.t_switch)
            elif o.t_switch not in (0.0, t_switch):
                bad("switch.charge", i,
                    "switch time is neither zero nor the configured "
                    "switching time",
                    expected=(0.0, t_switch), actual=o.t_switch)

        # -- slice charging --------------------------------------------
        if uses_slice is False and o.t_slice != 0.0:
            bad("caps.slice_free", i,
                "scheme without a prediction slice charged slice time",
                expected=0.0, actual=o.t_slice)
        if uses_slice and not fallback and nominal is not None:
            t_slice = o.job.slice_cycles / nominal.frequency
            if not _times_equal(o.t_slice, t_slice, deadline, rel_eps):
                bad("time.slice", i,
                    "slice time does not equal slice_cycles / f_nominal",
                    expected=t_slice, actual=o.t_slice)

        # -- energy decomposition --------------------------------------
        if energy_model is not None:
            energy = energy_model.job_energy(o.job.activity, point,
                                             o.t_exec)
            energy += switch_window_energy(energy_model, point, o.t_switch)
            recomputable = True
            if o.t_slice > 0.0:
                if slice_energy_model is not None and nominal is not None:
                    slice_activity = JobActivity(cycles=o.job.slice_cycles)
                    energy += slice_energy_model.job_energy(
                        slice_activity, nominal, o.t_slice)
                else:
                    recomputable = False  # cannot price the slice
            if recomputable and not _energies_equal(o.energy, energy,
                                                    energy_rel_eps):
                bad("energy.recompute", i,
                    "recorded energy does not decompose into exec + "
                    "switch leakage + slice energy",
                    expected=energy, actual=o.energy)

        prev_finish = o.start + o.t_slice + o.t_switch + o.t_exec
        prev_point = point

    observer = get_observer()
    if observer is not None:
        observer.metrics.inc("check.streams")
        observer.metrics.inc("check.jobs", len(result.outcomes))
        if violations:
            observer.metrics.inc("check.violations", len(violations))

    return violations


def check_fleet(result: "FleetResult",
                rel_eps: float = TIME_EPS_REL,
                energy_rel_eps: float = 1e-9
                ) -> List[InvariantViolation]:
    """Re-derive the fleet-wide accounting of a dispatched run.

    The fleet analogue of :func:`check_stream`.  Every shard is first
    replayed through :func:`check_stream` with its own spec's energy
    models, level table, and capability flags (the per-stream
    identities must hold *inside* each shard), then the dispatcher
    tier's own laws are checked on top:

    * ``fleet.conservation`` — offered equals dispatcher sheds plus
      the sum of shard offers, and the fleet-wide index space
      ``0..n_offered-1`` partitions *exactly* between dispatcher sheds
      and shard outcomes (no job lost, duplicated, or invented);
    * ``fleet.routing`` — every shard outcome belongs to a job whose
      benchmark tag matches that shard's benchmark, and agrees with
      the dispatcher's recorded assignment;
    * ``fleet.shed`` — every dispatcher shed carries a known reason;
    * ``fleet.tenant`` — conservation holds *per tenant*: each
      tenant's offered count equals its completed + fallback + shed
      across dispatcher and shards.
    """
    violations: List[InvariantViolation] = []

    def bad(code: str, job: Optional[int], message: str,
            expected: object = None, actual: object = None) -> None:
        violations.append(InvariantViolation(
            code=code, job_index=job, message=message,
            expected=expected, actual=actual))

    # -- per-shard stream identities ----------------------------------
    for shard_index, (spec, shard) in enumerate(
            zip(result.specs, result.shards)):
        violations.extend(check_stream(
            shard,
            energy_model=spec.energy_model,
            slice_energy_model=spec.slice_energy_model,
            levels=spec.controller.levels,
            t_switch=spec.config.t_switch,
            uses_slice=spec.controller.uses_slice,
            charge_overheads=spec.controller.charge_overheads,
            rel_eps=rel_eps,
            energy_rel_eps=energy_rel_eps,
        ))

        # -- routing: only matching-benchmark jobs on this shard -------
        for o in shard.outcomes:
            tagged = result.benchmarks.get(o.index)
            if tagged != spec.benchmark:
                bad("fleet.routing", o.index,
                    f"job tagged {tagged!r} landed on shard "
                    f"{spec.name!r} serving {spec.benchmark!r}",
                    expected=spec.benchmark, actual=tagged)
            assigned = result.assignments.get(o.index)
            if assigned != shard_index:
                bad("fleet.routing", o.index,
                    "outcome shard disagrees with the dispatcher's "
                    "recorded assignment",
                    expected=assigned, actual=shard_index)

    # -- dispatcher sheds ---------------------------------------------
    from ..serve.fleet import SHED_REASONS

    for shed in result.sheds:
        if shed.reason not in SHED_REASONS:
            bad("fleet.shed", shed.index,
                f"unknown dispatcher shed reason {shed.reason!r}",
                expected=SHED_REASONS, actual=shed.reason)

    # -- fleet-wide conservation --------------------------------------
    n_shard_offered = sum(r.n_offered for r in result.shards)
    if len(result.sheds) + n_shard_offered != result.n_offered:
        bad("fleet.conservation", None,
            "dispatcher sheds + shard offers do not add up to the "
            "fleet's offered count",
            expected=result.n_offered,
            actual=len(result.sheds) + n_shard_offered)
    seen = [shed.index for shed in result.sheds]
    for shard in result.shards:
        seen.extend(o.index for o in shard.outcomes)
    if len(set(seen)) != len(seen):
        bad("fleet.conservation", None,
            "a fleet index terminated more than once across "
            "dispatcher sheds and shard outcomes",
            expected=len(seen), actual=len(set(seen)))
    expected_indices = set(range(result.n_offered))
    if set(seen) != expected_indices:
        missing = sorted(expected_indices - set(seen))[:5]
        extra = sorted(set(seen) - expected_indices)[:5]
        bad("fleet.conservation", None,
            "fleet indices do not partition 0..n_offered-1 "
            f"(missing {missing}, unexpected {extra})",
            expected=result.n_offered, actual=len(set(seen)))

    # -- per-tenant conservation --------------------------------------
    for tenant, row in sorted(result.tenant_summary().items()):
        settled = row["completed"] + row["fallback"] + row["shed"]
        if settled != row["offered"]:
            bad("fleet.tenant", None,
                f"tenant {tenant!r}: completed + fallback + shed does "
                "not add up to offered",
                expected=row["offered"], actual=settled)

    observer = get_observer()
    if observer is not None:
        observer.metrics.inc("check.fleets")
        if violations:
            observer.metrics.inc("check.violations", len(violations))

    return violations


def check_epochs(result: "StreamResult",
                 epoch_log: List[tuple],
                 rel_eps: float = TIME_EPS_REL
                 ) -> List[InvariantViolation]:
    """Audit the vectorized engine's decision-epoch conservation law.

    The epoch engine (:mod:`repro.serve.vector`) may only coalesce
    arrivals whose decisions are provably independent — which leaves a
    re-checkable footprint on the finished stream.  For every epoch
    ``(first_index, n_jobs)`` it committed:

    * ``stream.epoch.shape`` — the epoch is non-empty and its first
      job exists in the result;
    * ``stream.epoch.overlap`` — epochs are ordered and disjoint: no
      job is decided in two epochs;
    * ``stream.epoch.regime`` — every epoch job ran in the uncoupled
      regime: executed (never shed), micro-batch of exactly one, and
      ``start == arrival`` (the server was idle at every admission);
    * ``stream.epoch.chain`` — within an epoch each job's virtual
      finish lies at or before its successor's arrival, which is
      precisely the independence condition that justified deciding
      them together.

    Together with ``stream.conservation`` (from :func:`check_stream`)
    this closes the loop: epoch jobs + scalar jobs + sheds account for
    every offered job exactly once.
    """
    from ..serve.server import SHED

    violations: List[InvariantViolation] = []

    def bad(code: str, job: Optional[int], message: str,
            expected: object = None, actual: object = None) -> None:
        violations.append(InvariantViolation(
            code=code, job_index=job, message=message,
            expected=expected, actual=actual))

    deadline = result.deadline
    position = {o.index: k for k, o in enumerate(result.outcomes)}
    prev_end = 0
    prev_first = None
    for first_index, n_jobs in epoch_log:
        if n_jobs < 1:
            bad("stream.epoch.shape", first_index,
                "epoch committed no jobs", expected=">= 1",
                actual=n_jobs)
            continue
        p = position.get(first_index)
        if p is None:
            bad("stream.epoch.shape", first_index,
                "epoch's first job is missing from the result")
            continue
        if prev_first is not None and first_index <= prev_first:
            bad("stream.epoch.overlap", first_index,
                "epochs are out of order",
                expected=f"> {prev_first}", actual=first_index)
        if p < prev_end:
            bad("stream.epoch.overlap", first_index,
                "epoch overlaps its predecessor — a job was decided "
                "twice", expected=f">= position {prev_end}", actual=p)
        if p + n_jobs > len(result.outcomes):
            bad("stream.epoch.shape", first_index,
                "epoch extends past the end of the result",
                expected=len(result.outcomes), actual=p + n_jobs)
            prev_end = len(result.outcomes)
            prev_first = first_index
            continue
        epoch = result.outcomes[p:p + n_jobs]
        for k, o in enumerate(epoch):
            if o.status == SHED:
                bad("stream.epoch.regime", o.index,
                    "epoch contains a shed job — epochs only form "
                    "while admission cannot shed",
                    expected="executed", actual=o.status)
                continue
            if o.batch_size != 1:
                bad("stream.epoch.regime", o.index,
                    "epoch job ran in a micro-batch larger than one",
                    expected=1, actual=o.batch_size)
            if not _times_equal(o.start, o.arrival, deadline, rel_eps):
                bad("stream.epoch.regime", o.index,
                    "epoch job did not start at its arrival — the "
                    "server was not idle", expected=o.arrival,
                    actual=o.start)
            if k + 1 < n_jobs:
                succ = epoch[k + 1]
                if o.finish > succ.arrival + rel_eps * deadline:
                    bad("stream.epoch.chain", o.index,
                        "epoch job finishes after its successor's "
                        "arrival — the decisions were not independent",
                        expected=f"<= {succ.arrival}", actual=o.finish)
        prev_end = p + n_jobs
        prev_first = first_index

    observer = get_observer()
    if observer is not None and violations:
        observer.metrics.inc("check.violations", len(violations))
    return violations
