"""Correctness subsystem: invariants, golden traces, seeded bugs.

Three cooperating layers keep the reproduced figures trustworthy while
the runtime underneath them is refactored for speed:

* :mod:`~repro.check.invariants` — replays a finished
  :class:`~repro.runtime.episode.EpisodeResult` job-by-job and asserts
  the closed-form identities the runner must maintain (timeline chain,
  deadline epsilon, switch/slice capability rules, energy
  decomposition).  Wired into ``run_episode(strict=True)`` and the
  ``REPRO_CHECK`` environment variable;
* :mod:`~repro.check.golden` — canonicalizes episodes into versioned
  JSON golden files under ``tests/golden/`` and diffs fresh runs
  (serial or parallel, warm or cold cache) against them with
  per-field tolerances;
* :mod:`~repro.check.mutations` — seeds known accounting bugs into a
  clean episode and asserts the checker catches each one, so the
  checker itself cannot silently go blind;
* :mod:`~repro.check.artifact` — audits captured ``--run-dir``
  artifacts (manifest vs events, per-job and per-episode accounting).

The ``repro check`` CLI subcommand fronts all four; violations feed
``check.*`` counters in the observability subsystem.
"""

from .artifact import check_run_dir
from .golden import (
    CANONICAL_SIG_DIGITS,
    DEFAULT_REL_TOL,
    FIELD_REL_TOL,
    GOLDEN_SCHEMA_VERSION,
    canonical_episode,
    canonical_summaries,
    diff_against_golden,
    diff_canonical,
    golden_path,
    load_golden,
    make_golden_payload,
    round_sig,
    save_golden,
)
from .invariants import (
    SCHEME_CAPS,
    InvariantError,
    InvariantViolation,
    SchemeCaps,
    capabilities_for,
    check_episode,
    check_epochs,
    check_fleet,
    check_stream,
)
from .mutations import (
    MUTATIONS,
    STREAM_MUTATIONS,
    apply_mutation,
    run_mutation_smoke,
    seed_double_counted_fallback_energy,
    seed_dropped_job_on_overflow,
    seed_spurious_miss,
    seed_timeline_gap,
    seed_uncharged_switch_energy,
)

__all__ = [
    "CANONICAL_SIG_DIGITS", "DEFAULT_REL_TOL", "FIELD_REL_TOL",
    "GOLDEN_SCHEMA_VERSION", "InvariantError", "InvariantViolation",
    "MUTATIONS", "SCHEME_CAPS", "STREAM_MUTATIONS", "SchemeCaps",
    "apply_mutation", "canonical_episode", "canonical_summaries",
    "capabilities_for", "check_episode", "check_epochs", "check_fleet",
    "check_run_dir", "check_stream", "diff_against_golden",
    "diff_canonical",
    "golden_path", "load_golden", "make_golden_payload", "round_sig",
    "run_mutation_smoke", "save_golden",
    "seed_double_counted_fallback_energy",
    "seed_dropped_job_on_overflow", "seed_spurious_miss",
    "seed_timeline_gap", "seed_uncharged_switch_energy",
]
