"""Seeded accounting bugs: the checker's own regression harness.

A checker that never fires is indistinguishable from a checker that
cannot fire.  Each mutation here re-introduces, surgically, one real
class of accounting bug into a *correct* :class:`EpisodeResult` — the
spurious float-boundary miss, the energy-free DVFS switch, the
timeline gap — and the mutation smoke test asserts the invariant
checker flags every one of them.  Run it whenever the checker's
tolerances or the runner's accounting change: a mutation that stops
being caught means the checker just went blind to that bug class.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Optional

from typing import TYPE_CHECKING

from ..dvfs.energy import EnergyModel
from ..dvfs.levels import LevelTable, OperatingPoint
from ..runtime.episode import EpisodeResult, switch_window_energy
from ..units import DVFS_SWITCH_TIME
from .invariants import InvariantViolation, check_episode, check_stream

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from ..serve.server import StreamResult


def _rebuild(result: EpisodeResult, outcomes) -> EpisodeResult:
    return EpisodeResult(controller=result.controller, task=result.task,
                         outcomes=list(outcomes))


def seed_spurious_miss(result: EpisodeResult,
                       energy_model: Optional[EnergyModel] = None
                       ) -> EpisodeResult:
    """Flip the miss flag of the first on-time job.

    Models the float-boundary bug where an exact-fit job rounds a few
    ULPs past its deadline and gets flagged missed — the checker must
    report ``deadline.miss_flag``.
    """
    outcomes = list(result.outcomes)
    for i, o in enumerate(outcomes):
        if not o.missed:
            outcomes[i] = replace(o, missed=True)
            return _rebuild(result, outcomes)
    raise ValueError("no on-time job to mutate — every job missed")


def seed_uncharged_switch_energy(result: EpisodeResult,
                                 energy_model: Optional[EnergyModel] = None
                                 ) -> EpisodeResult:
    """Remove the switch-window leakage from the first switched job.

    Models the drift where switching costs wall time but no energy —
    the checker must report ``energy.recompute``.
    """
    if energy_model is None:
        raise ValueError("seeding the switch-energy bug needs the "
                         "episode's energy model")
    outcomes = list(result.outcomes)
    for i, o in enumerate(outcomes):
        if o.t_switch > 0.0:
            point = OperatingPoint(voltage=o.voltage,
                                   frequency=o.frequency,
                                   is_boost=o.boosted)
            stolen = switch_window_energy(energy_model, point, o.t_switch)
            outcomes[i] = replace(o, energy=o.energy - stolen)
            return _rebuild(result, outcomes)
    raise ValueError("no switched job to mutate — run a scheme that "
                     "changes levels")


def seed_timeline_gap(result: EpisodeResult,
                      energy_model: Optional[EnergyModel] = None
                      ) -> EpisodeResult:
    """Push one job's start 10% of a period past its legal start.

    Models a broken carry-over chain (idle gap the runner never
    inserts) — the checker must report ``timeline.start``.
    """
    if not result.outcomes:
        raise ValueError("cannot mutate an empty episode")
    outcomes = list(result.outcomes)
    i = len(outcomes) // 2
    o = outcomes[i]
    outcomes[i] = replace(o, start=o.start + 0.1 * result.task.deadline)
    return _rebuild(result, outcomes)


#: Registry of every seeded bug, keyed by a stable name.
MUTATIONS: Dict[str, Callable[..., EpisodeResult]] = {
    "spurious_miss": seed_spurious_miss,
    "uncharged_switch_energy": seed_uncharged_switch_energy,
    "timeline_gap": seed_timeline_gap,
}


def apply_mutation(name: str, result: EpisodeResult,
                   energy_model: Optional[EnergyModel] = None
                   ) -> EpisodeResult:
    """Apply one registered mutation by name."""
    try:
        mutate = MUTATIONS[name]
    except KeyError:
        raise KeyError(f"unknown mutation {name!r}; "
                       f"choose from {sorted(MUTATIONS)}")
    return mutate(result, energy_model)


def _rebuild_stream(result: "StreamResult", outcomes) -> "StreamResult":
    from ..serve.server import StreamResult
    return StreamResult(
        stream=result.stream, scheme=result.scheme,
        deadline=result.deadline, outcomes=list(outcomes),
        n_offered=result.n_offered, wall_s=result.wall_s,
    )


def seed_dropped_job_on_overflow(result: "StreamResult"
                                 ) -> "StreamResult":
    """Silently drop the first shed job from the outcome stream.

    Models the classic admission-control bug where an overflowing
    queue discards the job *and the bookkeeping*: the offered count
    says it happened, the outcomes say it never did.  The checker
    must report ``stream.conservation``.
    """
    from ..serve.server import SHED
    outcomes = list(result.outcomes)
    for i, o in enumerate(outcomes):
        if o.status == SHED:
            del outcomes[i]
            return _rebuild_stream(result, outcomes)
    raise ValueError("no shed job to drop — overload the stream first")


def seed_double_counted_fallback_energy(result: "StreamResult"
                                        ) -> "StreamResult":
    """Double the first fallback job's recorded energy.

    Models the degraded-path bug where the fallback dispatch charges
    the job *and* the abandoned prediction path bills it again.  The
    checker must report ``energy.recompute``.
    """
    from ..serve.server import FALLBACK
    outcomes = list(result.outcomes)
    for i, o in enumerate(outcomes):
        if o.status == FALLBACK:
            outcomes[i] = replace(o, energy=o.energy * 2.0)
            return _rebuild_stream(result, outcomes)
    raise ValueError("no fallback job to mutate — starve the "
                     "prediction budget first")


#: Serve-layer seeded bugs, applied to a clean StreamResult.
STREAM_MUTATIONS: Dict[str, Callable[..., "StreamResult"]] = {
    "dropped_job_on_overflow": seed_dropped_job_on_overflow,
    "double_counted_fallback_energy": seed_double_counted_fallback_energy,
}


def run_mutation_smoke(result: EpisodeResult,
                       energy_model: EnergyModel,
                       slice_energy_model: Optional[EnergyModel] = None,
                       levels: Optional[LevelTable] = None,
                       t_switch: float = DVFS_SWITCH_TIME,
                       stream: Optional["StreamResult"] = None
                       ) -> Dict[str, List[InvariantViolation]]:
    """Seed every registered bug into ``result`` and check each.

    Returns ``{mutation name: violations found}``.  A correct
    checker finds at least one violation per mutation; the smoke test
    (and ``repro check --smoke``) asserts exactly that.  ``result``
    itself must be clean and must contain at least one switched and
    one on-time job, so every mutation is applicable.

    ``stream`` additionally runs the serve-layer mutations
    (:data:`STREAM_MUTATIONS`) through :func:`check_stream`; the
    stream must be clean and contain at least one shed and one
    fallback job so both bugs are seedable.
    """
    report: Dict[str, List[InvariantViolation]] = {}
    for name in MUTATIONS:
        mutated = apply_mutation(name, result, energy_model)
        report[name] = check_episode(
            mutated,
            energy_model=energy_model,
            slice_energy_model=slice_energy_model,
            levels=levels,
            t_switch=t_switch,
        )
    if stream is not None:
        for name, mutate in STREAM_MUTATIONS.items():
            report[name] = check_stream(
                mutate(stream),
                energy_model=energy_model,
                slice_energy_model=slice_energy_model,
                levels=levels,
                t_switch=t_switch,
            )
    return report
