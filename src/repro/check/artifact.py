"""Run-artifact validation: accounting consistency of a captured run.

``repro check <run-dir>`` replays the structured event stream a
``--run-dir`` session captured (see :mod:`repro.obs`) and cross-checks
it against itself and the manifest:

* the manifest parses and its ``n_events`` matches the events file
  (detects torn/truncated artifacts);
* every per-job ``job`` event is self-consistent (non-negative time
  and energy, miss flag agreeing with the recorded slack);
* every ``episode`` summary event equals the aggregation of the job
  events it closes over (job count, energy sum, miss count, switch
  count);
* every ``stream`` summary event from the serving runtime equals the
  aggregation of its per-job ``sjob`` events (offered / completed /
  fallback / shed / miss counts, energy sum — the conservation law
  every offered job ends in exactly one terminal state);
* the manifest's ``episode.jobs`` counter matches the job-event total;
* a manifest-named ``timeseries.json`` exists, parses, and its
  windowed sample counts agree with the manifest's ``serve.*``
  counters (unless the ring evicted windows, which the artifact
  declares), and any ``slo`` summary rows are internally consistent.

This is the offline half of the correctness story: the invariant
checker (:mod:`repro.check.invariants`) guards live episodes, this
module guards what was written to disk — so a run directory can be
audited long after the process that produced it is gone.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple, Union

from ..obs import MANIFEST_NAME, TimeSeriesRegistry, read_events
from ..units import TIME_EPS_REL

#: Relative tolerance for energy sums re-accumulated from job events.
_ENERGY_REL_TOL = 1e-6


def _slack_contradicts_miss(event: Dict[str, object]) -> bool:
    # The emitted slack is (release + deadline) - finish, so a missed
    # job must have negative slack and an on-time job non-negative —
    # up to rounding at the scale of the job's own time footprint.
    slack = float(event.get("slack", 0.0))
    footprint = (float(event.get("t_exec", 0.0))
                 + float(event.get("t_slice", 0.0)))
    tol = TIME_EPS_REL * max(abs(slack), footprint, 1e-12)
    if event.get("missed"):
        return slack > tol
    return slack < -tol


def check_run_dir(run_dir: Union[str, Path]) -> List[str]:
    """Validate the artifacts under ``run_dir``; return violations.

    Raises :class:`FileNotFoundError` when the directory holds no
    ``manifest.json`` (not a run directory at all); every other
    problem comes back as a human-readable violation line.
    """
    run_dir = Path(run_dir)
    manifest_path = run_dir / MANIFEST_NAME
    if not manifest_path.is_file():
        raise FileNotFoundError(f"no {MANIFEST_NAME} under {run_dir}")
    violations: List[str] = []
    try:
        with open(manifest_path) as handle:
            manifest = json.load(handle)
    except json.JSONDecodeError as exc:
        return [f"manifest.json does not parse: {exc}"]

    events_name = manifest.get("events_file")
    if not events_name:
        violations.append("manifest records no events file — the run "
                          "captured nothing to audit")
        return violations
    events_path = run_dir / str(events_name)
    if not events_path.is_file():
        return violations + [f"manifest names {events_name} but the "
                             f"file is missing"]
    try:
        events = read_events(events_path)
    except json.JSONDecodeError as exc:
        return violations + [f"{events_name} has a torn/corrupt line: "
                             f"{exc}"]

    if manifest.get("n_events") != len(events):
        violations.append(
            f"manifest says {manifest.get('n_events')} events but "
            f"{events_name} holds {len(events)} — truncated or "
            f"appended-to artifact")

    # Accumulate job events until the episode summary that closes them
    # (and sjob events until their stream summary).
    open_groups: Dict[Tuple[str, str], List[Dict[str, object]]] = {}
    open_streams: Dict[str, List[Dict[str, object]]] = {}
    total_job_events = 0
    for position, event in enumerate(events):
        etype = event.get("type")
        key = (str(event.get("controller")), str(event.get("task")))
        if etype == "sjob":
            name = str(event.get("stream"))
            open_streams.setdefault(name, []).append(event)
            if event.get("status") != "shed":
                for field in ("t_slice", "t_switch", "t_exec", "energy"):
                    if float(event.get(field, 0.0)) < 0.0:
                        violations.append(
                            f"event {position}: sjob "
                            f"{event.get('index')} of stream {name} "
                            f"has negative {field} ({event.get(field)})")
        elif etype == "stream":
            name = str(event.get("stream"))
            violations.extend(_check_stream_summary(
                position, event, open_streams.pop(name, [])))
        elif etype == "job":
            total_job_events += 1
            open_groups.setdefault(key, []).append(event)
            for field in ("t_slice", "t_exec", "energy"):
                if float(event.get(field, 0.0)) < 0.0:
                    violations.append(
                        f"event {position}: job {event.get('index')} of "
                        f"{key} has negative {field} "
                        f"({event.get(field)})")
            if _slack_contradicts_miss(event):
                violations.append(
                    f"event {position}: job {event.get('index')} of "
                    f"{key} has missed={event.get('missed')} but "
                    f"slack={event.get('slack')}")
        elif etype == "episode":
            jobs = open_groups.pop(key, [])
            n_jobs = int(event.get("n_jobs", -1))
            if n_jobs != len(jobs):
                violations.append(
                    f"event {position}: episode {key} claims "
                    f"{n_jobs} jobs but {len(jobs)} job events precede it")
                continue
            energy = sum(float(j.get("energy", 0.0)) for j in jobs)
            claimed = float(event.get("energy", 0.0))
            if abs(claimed - energy) > _ENERGY_REL_TOL * max(
                    abs(claimed), abs(energy), 1e-30):
                violations.append(
                    f"event {position}: episode {key} energy {claimed!r} "
                    f"!= job-event sum {energy!r}")
            misses = sum(1 for j in jobs if j.get("missed"))
            if int(event.get("misses", -1)) != misses:
                violations.append(
                    f"event {position}: episode {key} claims "
                    f"{event.get('misses')} misses but job events "
                    f"show {misses}")
            switches = sum(1 for j in jobs if j.get("switched"))
            if int(event.get("switches", -1)) != switches:
                violations.append(
                    f"event {position}: episode {key} claims "
                    f"{event.get('switches')} switches but job events "
                    f"show {switches}")
    for key, jobs in open_groups.items():
        violations.append(
            f"{len(jobs)} job event(s) for {key} never closed by an "
            f"episode summary")
    for name, sjobs in open_streams.items():
        violations.append(
            f"{len(sjobs)} sjob event(s) for stream {name} never "
            f"closed by a stream summary")

    counters = (manifest.get("metrics") or {}).get("counters") or {}
    if "episode.jobs" in counters and total_job_events:
        if int(counters["episode.jobs"]) != total_job_events:
            violations.append(
                f"manifest counter episode.jobs="
                f"{counters['episode.jobs']} but {total_job_events} "
                f"job events were captured")
    violations.extend(_check_timeseries(run_dir, manifest))
    violations.extend(_check_slo_rows(manifest))
    return violations


def _check_stream_summary(position: int, event: Dict[str, object],
                          sjobs: List[Dict[str, object]]) -> List[str]:
    """Cross-check one ``stream`` summary against its ``sjob`` events.

    Conservation: every offered job ends in exactly one terminal
    state, so the summary's offered / completed / fallback / shed /
    miss counts and energy sum must equal the per-job aggregation.
    """
    name = str(event.get("stream"))
    violations: List[str] = []
    by_status = {"completed": 0, "fallback": 0, "shed": 0}
    for sjob in sjobs:
        status = str(sjob.get("status"))
        by_status[status] = by_status.get(status, 0) + 1
    checks = (
        ("n_offered", len(sjobs)),
        ("n_completed", by_status.get("completed", 0)),
        ("n_fallback", by_status.get("fallback", 0)),
        ("n_shed", by_status.get("shed", 0)),
        ("misses", sum(1 for s in sjobs if s.get("missed"))),
    )
    for field, derived in checks:
        claimed = int(event.get(field, -1))
        if claimed != derived:
            violations.append(
                f"event {position}: stream {name} claims "
                f"{field}={claimed} but sjob events show {derived}")
    energy = sum(float(s.get("energy", 0.0)) for s in sjobs)
    claimed_energy = float(event.get("energy", 0.0))
    if abs(claimed_energy - energy) > _ENERGY_REL_TOL * max(
            abs(claimed_energy), abs(energy), 1e-30):
        violations.append(
            f"event {position}: stream {name} energy "
            f"{claimed_energy!r} != sjob-event sum {energy!r}")
    return violations


def _check_timeseries(run_dir: Path,
                      manifest: Dict[str, object]) -> List[str]:
    """Audit the ``timeseries.json`` artifact against the manifest.

    The windowed series must exist when the manifest names them,
    parse back through :meth:`TimeSeriesRegistry.from_dict`, and —
    when the ring evicted nothing — conserve sample counts against
    the manifest's ``serve.*`` counters (one ``serve.shed`` indicator
    per offered job, one ``serve.miss`` indicator per executed job).
    """
    name = manifest.get("timeseries_file")
    if not name:
        return []
    path = run_dir / str(name)
    if not path.is_file():
        return [f"manifest names {name} but the file is missing"]
    try:
        with open(path) as handle:
            ts = TimeSeriesRegistry.from_dict(json.load(handle))
    except (json.JSONDecodeError, ValueError, TypeError) as exc:
        return [f"{name} does not parse: {exc}"]
    violations: List[str] = []
    for series in ts.series_names():
        for index, cell in ts.windows(series):
            if cell.count < 0 or (cell.count == 0 and cell.total):
                violations.append(
                    f"{name}: series {series} window {index} is "
                    f"inconsistent (count={cell.count}, "
                    f"total={cell.total})")
    if any(ts.dropped_windows.values()):
        return violations  # truncated record: counts can't conserve
    counters = (manifest.get("metrics") or {}).get("counters") or {}
    executed = (int(counters.get("serve.completed", 0))
                + int(counters.get("serve.fallback", 0)))
    conservation = (
        ("serve.shed", int(counters.get("serve.offered", 0))),
        ("serve.miss", executed),
    )
    for series, expected in conservation:
        if series not in ts.series_names() or not expected:
            continue
        held = ts.total_count(series)
        if held != expected:
            violations.append(
                f"{name}: series {series} holds {held} samples but "
                f"manifest counters imply {expected}")
    return violations


def _check_slo_rows(manifest: Dict[str, object]) -> List[str]:
    """Internal consistency of the manifest's ``slo`` summary rows."""
    violations: List[str] = []
    for row in manifest.get("slo") or []:
        spec = row.get("spec", "?")
        windows = int(row.get("windows", 0))
        bad = int(row.get("bad_windows", 0))
        if bad < 0 or windows < 0 or bad > windows:
            violations.append(
                f"slo {spec}: bad_windows={bad} outside "
                f"[0, windows={windows}]")
        burn = row.get("burn_rate")
        if burn is not None and bool(row.get("exhausted")) \
                != (float(burn) > 1.0):
            violations.append(
                f"slo {spec}: exhausted={row.get('exhausted')} "
                f"contradicts burn_rate={burn}")
    return violations
