"""Run-artifact validation: accounting consistency of a captured run.

``repro check <run-dir>`` replays the structured event stream a
``--run-dir`` session captured (see :mod:`repro.obs`) and cross-checks
it against itself and the manifest:

* the manifest parses and its ``n_events`` matches the events file
  (detects torn/truncated artifacts);
* every per-job ``job`` event is self-consistent (non-negative time
  and energy, miss flag agreeing with the recorded slack);
* every ``episode`` summary event equals the aggregation of the job
  events it closes over (job count, energy sum, miss count, switch
  count);
* the manifest's ``episode.jobs`` counter matches the job-event total.

This is the offline half of the correctness story: the invariant
checker (:mod:`repro.check.invariants`) guards live episodes, this
module guards what was written to disk — so a run directory can be
audited long after the process that produced it is gone.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple, Union

from ..obs import MANIFEST_NAME, read_events
from ..units import TIME_EPS_REL

#: Relative tolerance for energy sums re-accumulated from job events.
_ENERGY_REL_TOL = 1e-6


def _slack_contradicts_miss(event: Dict[str, object]) -> bool:
    # The emitted slack is (release + deadline) - finish, so a missed
    # job must have negative slack and an on-time job non-negative —
    # up to rounding at the scale of the job's own time footprint.
    slack = float(event.get("slack", 0.0))
    footprint = (float(event.get("t_exec", 0.0))
                 + float(event.get("t_slice", 0.0)))
    tol = TIME_EPS_REL * max(abs(slack), footprint, 1e-12)
    if event.get("missed"):
        return slack > tol
    return slack < -tol


def check_run_dir(run_dir: Union[str, Path]) -> List[str]:
    """Validate the artifacts under ``run_dir``; return violations.

    Raises :class:`FileNotFoundError` when the directory holds no
    ``manifest.json`` (not a run directory at all); every other
    problem comes back as a human-readable violation line.
    """
    run_dir = Path(run_dir)
    manifest_path = run_dir / MANIFEST_NAME
    if not manifest_path.is_file():
        raise FileNotFoundError(f"no {MANIFEST_NAME} under {run_dir}")
    violations: List[str] = []
    try:
        with open(manifest_path) as handle:
            manifest = json.load(handle)
    except json.JSONDecodeError as exc:
        return [f"manifest.json does not parse: {exc}"]

    events_name = manifest.get("events_file")
    if not events_name:
        violations.append("manifest records no events file — the run "
                          "captured nothing to audit")
        return violations
    events_path = run_dir / str(events_name)
    if not events_path.is_file():
        return violations + [f"manifest names {events_name} but the "
                             f"file is missing"]
    try:
        events = read_events(events_path)
    except json.JSONDecodeError as exc:
        return violations + [f"{events_name} has a torn/corrupt line: "
                             f"{exc}"]

    if manifest.get("n_events") != len(events):
        violations.append(
            f"manifest says {manifest.get('n_events')} events but "
            f"{events_name} holds {len(events)} — truncated or "
            f"appended-to artifact")

    # Accumulate job events until the episode summary that closes them.
    open_groups: Dict[Tuple[str, str], List[Dict[str, object]]] = {}
    total_job_events = 0
    for position, event in enumerate(events):
        etype = event.get("type")
        key = (str(event.get("controller")), str(event.get("task")))
        if etype == "job":
            total_job_events += 1
            open_groups.setdefault(key, []).append(event)
            for field in ("t_slice", "t_exec", "energy"):
                if float(event.get(field, 0.0)) < 0.0:
                    violations.append(
                        f"event {position}: job {event.get('index')} of "
                        f"{key} has negative {field} "
                        f"({event.get(field)})")
            if _slack_contradicts_miss(event):
                violations.append(
                    f"event {position}: job {event.get('index')} of "
                    f"{key} has missed={event.get('missed')} but "
                    f"slack={event.get('slack')}")
        elif etype == "episode":
            jobs = open_groups.pop(key, [])
            n_jobs = int(event.get("n_jobs", -1))
            if n_jobs != len(jobs):
                violations.append(
                    f"event {position}: episode {key} claims "
                    f"{n_jobs} jobs but {len(jobs)} job events precede it")
                continue
            energy = sum(float(j.get("energy", 0.0)) for j in jobs)
            claimed = float(event.get("energy", 0.0))
            if abs(claimed - energy) > _ENERGY_REL_TOL * max(
                    abs(claimed), abs(energy), 1e-30):
                violations.append(
                    f"event {position}: episode {key} energy {claimed!r} "
                    f"!= job-event sum {energy!r}")
            misses = sum(1 for j in jobs if j.get("missed"))
            if int(event.get("misses", -1)) != misses:
                violations.append(
                    f"event {position}: episode {key} claims "
                    f"{event.get('misses')} misses but job events "
                    f"show {misses}")
            switches = sum(1 for j in jobs if j.get("switched"))
            if int(event.get("switches", -1)) != switches:
                violations.append(
                    f"event {position}: episode {key} claims "
                    f"{event.get('switches')} switches but job events "
                    f"show {switches}")
    for key, jobs in open_groups.items():
        violations.append(
            f"{len(jobs)} job event(s) for {key} never closed by an "
            f"episode summary")

    counters = (manifest.get("metrics") or {}).get("counters") or {}
    if "episode.jobs" in counters and total_job_events:
        if int(counters["episode.jobs"]) != total_job_events:
            violations.append(
                f"manifest counter episode.jobs="
                f"{counters['episode.jobs']} but {total_job_events} "
                f"job events were captured")
    return violations
