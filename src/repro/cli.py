"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — benchmarks and experiment ids;
* ``describe <benchmark>`` — structural detection report + timing stats;
* ``experiment <id> [--scale S]`` — regenerate one table/figure;
* ``verilog <benchmark> [-o FILE]`` — export a design as Verilog;
* ``predict <benchmark> [--scale S] [--show N]`` — train a predictor
  and show per-job predictions (the quickstart, from the shell);
* ``report <run-dir>`` — render a captured observability run
  (including the windowed serve dashboard and SLO status for serving
  runs; ``--export-trace out.json`` additionally writes Chrome-trace
  JSON for chrome://tracing / Perfetto); without a run directory, run
  all experiments into a markdown report;
* ``check <run-dir>`` — audit a captured run's accounting; without a
  run directory, re-run every (benchmark, scheme) episode under the
  invariant checker and diff canonical traces against the goldens
  (``--golden-dir tests/golden``, regenerate with ``--update-golden``);
* ``conform --seeds N`` — sweep sampled accelerators from
  :mod:`repro.gen` through the differential conformance battery:
  four-backend bit-for-bit agreement, offline-flow training, episode
  invariants on ASIC and FPGA, and adversarial served streams;
* ``serve --benchmark <name> --rate R --duration S`` — run the online
  serving runtime: seeded arrival streams over one or more
  accelerators, per-job slice prediction and level selection, bounded
  admission, fallback counting, and a stream-invariant check at the
  end (``--virtual`` drives the simulated clock flat-out instead of
  pacing arrivals against the wall clock).  ``--slo SPEC`` declares
  windowed objectives (``miss_rate<5%``, ``p99_decision_ms<1@95%``)
  tracked live with error-budget burn rates; an exhausted budget
  exits 3.

``experiment``, ``predict`` and ``report`` accept ``--profile`` (print
a stage-timing table) and ``--run-dir DIR`` (write ``manifest.json``
plus ``events.jsonl`` with per-stage spans and per-job records), plus
the performance knobs: ``--jobs N`` (worker processes for the offline
flow; default ``REPRO_JOBS`` or serial) and ``--cache-dir [DIR]``
(persistent artifact cache; bare flag uses ``~/.cache/repro``, default
``REPRO_CACHE_DIR`` or disabled).
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
from typing import Iterator, List, Optional

from .accelerators import ALL_DESIGNS, get_design
from .workloads import workload_for

#: Experiment id -> (module name, runner kwargs).  Resolved lazily so
#: `repro list` stays fast.
EXPERIMENTS = {
    "table3": "table3",
    "table4": "table4",
    "fig2": "fig02_variation",
    "fig3": "fig03_pid",
    "fig10": "fig10_errors",
    "fig11": "fig11_schemes",
    "fig12": "fig12_overheads",
    "fig13": "fig13_oracle",
    "fig14": "fig14_boost",
    "fig15": "fig15_deadlines",
    "fig16": "fig16_fpga",
    "fig17": "fig12_overheads",   # tech="fpga"
    "fig18": "fig18_hls",
    "fig19": "fig18_hls",
    "case-study": "case_study",
    "all-schemes": "ext_all_schemes",
    "multires": "ext_resolutions",
    "taxonomy": "ext_taxonomy",
}

#: Benchmarks each experiment builds bundles for — the prewarm fan-out
#: set when ``--jobs N`` asks for parallel bundle builds.  Experiments
#: absent here (table3, multires) build no shared bundles.
_EXPERIMENT_BENCHMARKS = {
    **{exp_id: "all" for exp_id in (
        "table4", "fig10", "fig11", "fig12", "fig13", "fig14",
        "fig15", "fig16", "fig17", "all-schemes", "taxonomy")},
    "fig2": ("h264",),
    "fig3": ("h264",),
    "case-study": ("h264",),
    "fig18": ("md", "stencil"),
    "fig19": ("md", "stencil"),
}


@contextlib.contextmanager
def _maybe_observe(args: argparse.Namespace, command: str,
                   force: bool = False) -> Iterator:
    """Install an observability session when the flags ask for one.

    Yields the live Observer (``--profile`` and/or ``--run-dir``) or
    ``None`` (both absent — the zero-overhead path).  ``force=True``
    installs a session regardless: SLO enforcement needs the windowed
    time series even when no artifacts were requested.
    """
    run_dir = getattr(args, "run_dir", None)
    if not run_dir and not getattr(args, "profile", False) and not force:
        yield None
        return
    from .obs import session

    config = {
        key: value for key, value in vars(args).items()
        if key not in ("command",) and value is not None
    }
    if os.environ.get("REPRO_SCALE"):
        config["REPRO_SCALE"] = os.environ["REPRO_SCALE"]
    with session(run_dir=run_dir, command=command, config=config) as obs:
        yield obs


def _apply_perf_opts(args: argparse.Namespace) -> None:
    """Install the ``--jobs``/``--cache-dir``/``--backend`` settings
    globally.

    The worker count, cache and simulation backend become the
    process-wide defaults that ``record_jobs``, ``lasso_path``,
    ``bundle_for`` and ``make_simulation`` consult, so the whole flow
    honours the flags without threading them everywhere.
    """
    jobs = getattr(args, "jobs", None)
    if jobs is not None:
        from .parallel import set_default_jobs
        set_default_jobs(jobs)
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir:
        from .parallel import ArtifactCache, set_cache
        set_cache(ArtifactCache(cache_dir))
    backend = getattr(args, "backend", None)
    if backend is not None:
        from .rtl import set_default_backend
        set_default_backend(backend)


def _maybe_prewarm(benchmarks, scale: Optional[float]) -> None:
    """Fan bundle builds out across workers when ``--jobs`` asks."""
    from .parallel import resolve_jobs

    if benchmarks is None or resolve_jobs(None) <= 1:
        return
    from .experiments import prewarm_bundles
    from .workloads import ALL_BENCHMARKS

    if benchmarks == "all":
        benchmarks = ALL_BENCHMARKS
    prewarm_bundles(benchmarks, scale=scale)


def _print_cache_stats() -> None:
    """One-line cache footer for commands run with a cache enabled."""
    from .parallel import get_cache

    cache = get_cache()
    if cache is not None:
        print(f"cache: {cache.stats.describe()} — {cache.root}")


def _print_stage_timings(obs, run_dir: Optional[str]) -> None:
    """The post-run stage-timing footer for profiled commands."""
    from .obs.report import format_stage_table, summarize_perf

    print("\nstage timings:")
    print(format_stage_table(obs.tracer.aggregate()))
    perf = summarize_perf(obs.metrics.snapshot())
    if perf:
        print("parallelism/cache:")
        print(perf)
    if run_dir:
        print(f"run artifacts: {run_dir} "
              f"(render with: repro report {run_dir})")


def _cmd_list(args: argparse.Namespace) -> int:
    print("benchmarks:")
    for name in ALL_DESIGNS:
        design = get_design(name)
        print(f"  {name:8s} {design.description} "
              f"({design.nominal_frequency / 1e6:.0f} MHz)")
    print("experiments:")
    for exp_id in EXPERIMENTS:
        print(f"  {exp_id}")
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    from .analysis.report import detection_report
    from .rtl import make_simulation, synthesize
    from .units import MS

    design = get_design(args.benchmark)
    module = design.build()
    netlist = synthesize(module)
    print(detection_report(module, netlist))
    if args.jobs > 0:
        workload = workload_for(design.name, scale=0.1)
        sim = make_simulation(module, track_state_cycles=False)
        times = []
        for item in workload.test[:args.jobs]:
            job = design.encode_job(item)
            sim.reset()
            sim.load(*job.as_pair())
            times.append(sim.run().cycles / design.nominal_frequency / MS)
        print(f"  sampled {len(times)} jobs: "
              f"{min(times):.2f} / {sum(times) / len(times):.2f} / "
              f"{max(times):.2f} ms (min/avg/max)")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import importlib

    exp_id = args.id
    if exp_id not in EXPERIMENTS:
        print(f"unknown experiment {exp_id!r}; valid ids: "
              f"{', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    module = importlib.import_module(
        f"repro.experiments.{EXPERIMENTS[exp_id]}")
    kwargs = {"tech": "fpga"} if exp_id == "fig17" else {}
    _apply_perf_opts(args)
    with _maybe_observe(args, f"experiment {exp_id}") as obs:
        _maybe_prewarm(_EXPERIMENT_BENCHMARKS.get(exp_id), args.scale)
        result = module.run(scale=args.scale, **kwargs)
        if exp_id == "fig17":
            print(module.to_text(result, tech="fpga"))
        else:
            print(module.to_text(result))
        if obs is not None:
            _print_stage_timings(obs, args.run_dir)
    _print_cache_stats()
    return 0


def _cmd_verilog(args: argparse.Namespace) -> int:
    from .rtl import to_verilog

    design = get_design(args.benchmark)
    text = to_verilog(design.build())
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        print(text, end="")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Lint a benchmark design and print the findings."""
    from .rtl.lint import lint_module

    design = get_design(args.benchmark)
    findings = lint_module(design.build())
    if not findings:
        print(f"{args.benchmark}: clean")
        return 0
    for finding in findings:
        print(str(finding))
    has_errors = any(f.severity == "error" for f in findings)
    return 1 if has_errors else 0


def _cmd_wave(args: argparse.Namespace) -> int:
    """Dump a VCD waveform of one test job."""
    from .rtl import make_simulation
    from .rtl.wave import VcdWriter

    design = get_design(args.benchmark)
    module = design.build()
    workload = workload_for(design.name, scale=0.1)
    job = design.encode_job(workload.test[args.job])
    with open(args.output, "w") as handle:
        writer = VcdWriter(module, handle)
        sim = make_simulation(module, listener=writer)
        sim.load(*job.as_pair())
        result = sim.run()
        writer.finish(sim.cycle)
    print(f"wrote {args.output} ({result.cycles} cycles)")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Render a captured run directory, or (without one) run every
    registered experiment and write one markdown report."""
    import importlib
    import time

    if args.run:
        from .obs.report import render_run
        try:
            print(render_run(args.run))
        except (FileNotFoundError, NotADirectoryError):
            print(f"no run manifest under {args.run!r} — expected "
                  f"a directory written by --run-dir "
                  f"(containing manifest.json)", file=sys.stderr)
            return 2
        if args.export_trace:
            from .obs.export import write_chrome_trace
            path = write_chrome_trace(args.run, args.export_trace)
            print(f"wrote {path} (Chrome-trace JSON)")
        return 0
    if args.export_trace:
        print("--export-trace needs a captured run directory",
              file=sys.stderr)
        return 2

    ids = args.only or [i for i in EXPERIMENTS if i != "fig19"]
    sections: List[str] = [
        "# Reproduction report",
        f"workload scale: {args.scale if args.scale is not None else 'default'}",
        "",
    ]
    t0 = time.time()
    _apply_perf_opts(args)
    with _maybe_observe(args, "report") as obs:
        _maybe_prewarm("all", args.scale)
        for exp_id in ids:
            if exp_id not in EXPERIMENTS:
                print(f"skipping unknown experiment {exp_id!r}",
                      file=sys.stderr)
                continue
            module = importlib.import_module(
                f"repro.experiments.{EXPERIMENTS[exp_id]}")
            kwargs = {"tech": "fpga"} if exp_id == "fig17" else {}
            result = module.run(scale=args.scale, **kwargs)
            text = (module.to_text(result, tech="fpga")
                    if exp_id == "fig17" else module.to_text(result))
            if exp_id == "fig11":
                from .experiments.charts import fig11_chart
                text += "\n\n" + fig11_chart(result)
            elif exp_id == "fig15":
                from .experiments.charts import fig15_chart
                text += "\n\n" + fig15_chart(result)
            sections.append(f"## {exp_id}\n\n```\n{text}\n```\n")
            print(f"  {exp_id} done ({time.time() - t0:.0f}s elapsed)")
        if obs is not None:
            _print_stage_timings(obs, args.run_dir)
    _print_cache_stats()
    report = "\n".join(sections)
    with open(args.output, "w") as handle:
        handle.write(report)
    print(f"wrote {args.output}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    """Audit a captured run directory, or freshly re-run and verify
    every (benchmark, scheme) episode against the invariant checker
    and (optionally) the committed golden traces."""
    from .check import check_run_dir

    if args.run:
        try:
            violations = check_run_dir(args.run)
        except FileNotFoundError:
            print(f"no run manifest under {args.run!r} — expected a "
                  f"directory written by --run-dir (containing "
                  f"manifest.json)", file=sys.stderr)
            return 2
        for line in violations:
            print(f"VIOLATION: {line}")
        print(f"{args.run}: "
              + ("clean" if not violations
                 else f"{len(violations)} violation(s)"))
        return 1 if violations else 0
    return _check_fresh(args)


def _cmd_conform(args: argparse.Namespace) -> int:
    """Sweep sampled designs through the conformance battery and
    report one status line per design; exit 1 on any failing check."""
    from .gen import run_conformance

    seeds = (args.seed_list if args.seed_list is not None
             else args.seeds)
    _apply_perf_opts(args)
    failures = 0
    with _maybe_observe(args, "conform") as obs:
        reports = run_conformance(seeds, complexity=args.complexity,
                                  n_train=args.train_jobs,
                                  n_test=args.test_jobs)
        if obs is not None:
            _print_stage_timings(obs, args.run_dir)
    for report in reports:
        print(report.summary())
        for name, diag in report.failures.items():
            print(f"  FAIL {name}: {diag}")
            failures += 1
    n_pass = sum(1 for r in reports if r.passed)
    print(f"conform: {n_pass}/{len(reports)} designs pass "
          f"({args.complexity}, {len(reports)} seed(s))")
    return 1 if failures else 0


def _check_fresh(args: argparse.Namespace) -> int:
    """The fresh-run half of ``repro check``: episodes + goldens."""
    from .check import (
        canonical_episode,
        check_episode,
        diff_against_golden,
        golden_path,
        make_golden_payload,
        run_mutation_smoke,
        save_golden,
    )
    from .experiments import default_config
    from .experiments.runner import (
        ALL_SCHEMES,
        bundle_for,
        run_scheme,
        tech_context,
    )
    from .workloads import ALL_BENCHMARKS

    benchmarks = args.benchmarks or list(ALL_BENCHMARKS)
    for name in benchmarks:
        if name not in ALL_BENCHMARKS:
            print(f"unknown benchmark {name!r}; valid: "
                  f"{', '.join(ALL_BENCHMARKS)}", file=sys.stderr)
            return 2
    schemes = args.schemes or list(ALL_SCHEMES)
    for name in schemes:
        if name not in ALL_SCHEMES:
            print(f"unknown scheme {name!r}; valid: "
                  f"{', '.join(ALL_SCHEMES)}", file=sys.stderr)
            return 2
    scale = args.scale if args.scale is not None \
        else default_config().scale
    _apply_perf_opts(args)
    failures = 0
    with _maybe_observe(args, "check") as obs:
        _maybe_prewarm(tuple(benchmarks), scale)
        for bench in benchmarks:
            ctx = tech_context(bundle_for(bench, scale), tech=args.tech)
            episodes = {}
            n_violations = 0
            for scheme in schemes:
                result = run_scheme(ctx, scheme)
                violations = check_episode(
                    result,
                    energy_model=ctx.energy_model,
                    slice_energy_model=ctx.slice_energy_model,
                    levels=ctx.levels,
                    t_switch=ctx.config.t_switch,
                )
                for violation in violations:
                    print(f"VIOLATION: {bench}/{args.tech}/{scheme} "
                          f"{violation}")
                n_violations += len(violations)
                episodes[scheme] = canonical_episode(result)
            failures += n_violations
            golden_note = ""
            payload = make_golden_payload(bench, args.tech, scale,
                                          episodes)
            if args.golden_dir:
                path = golden_path(args.golden_dir, bench, args.tech)
                if args.update_golden:
                    save_golden(path, payload)
                    golden_note = f", golden updated ({path})"
                else:
                    drifts = diff_against_golden(payload, path)
                    if drifts is None:
                        print(f"DRIFT: {bench}/{args.tech}: no golden "
                              f"at {path} — generate one with "
                              f"--update-golden")
                        failures += 1
                        golden_note = ", golden missing"
                    elif drifts:
                        for line in drifts:
                            print(f"DRIFT: {bench}/{args.tech}: {line}")
                        failures += len(drifts)
                        golden_note = f", {len(drifts)} golden drift(s)"
                    else:
                        golden_note = ", golden match"
            print(f"{bench}/{args.tech}: {len(schemes)} schemes, "
                  f"{n_violations} violation(s){golden_note}")
            if args.smoke:
                # Seed known accounting bugs into a scheme that both
                # switches levels and meets deadlines, and demand the
                # checker catches every one of them.  The serve-layer
                # mutations ride along on an engineered stream that
                # has fallback and shed jobs present.
                caught = run_mutation_smoke(
                    run_scheme(ctx, "history"),
                    energy_model=ctx.energy_model,
                    slice_energy_model=ctx.slice_energy_model,
                    levels=ctx.levels,
                    t_switch=ctx.config.t_switch,
                    stream=_smoke_stream(ctx),
                )
                missed = sorted(name for name, violations
                                in caught.items() if not violations)
                if missed:
                    print(f"SMOKE: {bench}/{args.tech}: checker missed "
                          f"seeded bug(s): {', '.join(missed)}")
                    failures += len(missed)
                else:
                    print(f"{bench}/{args.tech}: smoke ok "
                          f"({len(caught)} seeded bugs caught)")
        if obs is not None:
            _print_stage_timings(obs, args.run_dir)
    _print_cache_stats()
    print("check: " + ("ok" if failures == 0
                       else f"{failures} failure(s)"))
    return 1 if failures else 0


def _smoke_stream(ctx):
    """An engineered served stream with completed, fallback and shed
    jobs all present — the preconditions of the serve-layer mutations
    in :func:`repro.check.run_mutation_smoke`."""
    from dataclasses import replace

    from .experiments.runner import make_controller
    from .serve import (
        AcceleratorStream,
        RecordPredictor,
        ServeConfig,
        serve_stream,
        stream_from_records,
    )

    # Strip every third prediction (forces fallbacks) and fire all
    # arrivals at t=0 against a depth-2 queue (forces shedding).
    records = [
        replace(r, predicted_cycles=None) if i % 3 == 0 else r
        for i, r in enumerate(ctx.bundle.test_records[:12])
    ]
    stream = AcceleratorStream(
        ctx.name, make_controller(ctx, "prediction"),
        ctx.energy_model, ctx.slice_energy_model,
        predictor=RecordPredictor(),
        config=ServeConfig(deadline=ctx.config.deadline,
                           t_switch=ctx.config.t_switch,
                           queue_depth=2))
    jobs = stream_from_records(records, [0.0] * len(records))
    return serve_stream(stream, jobs)


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the online serving runtime over live job streams."""
    from .check import check_stream
    from .experiments.runner import (
        ALL_SCHEMES,
        bundle_for,
        make_controller,
        tech_context,
    )
    from .serve import (
        AcceleratorStream,
        LoadReport,
        RecordPredictor,
        ServeConfig,
        SlicePredictor,
        build_stream_jobs,
        burst_arrivals,
        poisson_arrivals,
        serve_streams,
    )
    from .units import MS
    from .workloads import ALL_BENCHMARKS

    for name in args.benchmark:
        if name not in ALL_BENCHMARKS:
            print(f"unknown benchmark {name!r}; valid: "
                  f"{', '.join(ALL_BENCHMARKS)}", file=sys.stderr)
            return 2
    if args.scheme not in ALL_SCHEMES:
        print(f"unknown scheme {args.scheme!r}; valid: "
              f"{', '.join(ALL_SCHEMES)}", file=sys.stderr)
        return 2
    duration, n_jobs = args.duration, args.n_jobs
    if duration is None and n_jobs is None:
        duration = 2.0
    if args.fleet is not None:
        return _serve_fleet_cli(args, duration, n_jobs)
    if args.cache_dir:
        from .parallel import ArtifactCache, set_cache
        set_cache(ArtifactCache(args.cache_dir))
    if args.backend is not None:
        from .rtl import set_default_backend
        set_default_backend(args.backend)
    specs = []
    if args.slo:
        from .obs import parse_slo
        try:
            specs = [parse_slo(text) for text in args.slo]
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2

    failures = 0
    slo_exhausted = False
    with _maybe_observe(args, "serve " + " ".join(args.benchmark),
                        force=bool(specs)) as obs:
        if obs is not None:
            if args.slo_window_ms is not None:
                from .obs import TimeSeriesRegistry
                obs.timeseries = TimeSeriesRegistry(
                    window_s=args.slo_window_ms * 1e-3)
            if specs:
                from .obs import SloTracker
                obs.slo = SloTracker(specs)
        streams = []
        for i, bench in enumerate(args.benchmark):
            bundle = bundle_for(bench, args.scale)
            ctx = tech_context(bundle, tech=args.tech)
            controller = make_controller(ctx, args.scheme)
            predictor = (SlicePredictor(bundle.package)
                         if args.predictor == "slice"
                         else RecordPredictor())
            config = ServeConfig(
                deadline=(args.deadline_ms * MS
                          if args.deadline_ms is not None
                          else ctx.config.deadline),
                t_switch=ctx.config.t_switch,
                queue_depth=args.queue_depth,
                batch_max=args.batch,
                prediction_budget=(args.prediction_budget_ms * MS
                                   if args.prediction_budget_ms
                                   is not None else None),
                engine=args.engine,
            )
            if args.arrival == "burst":
                arrivals = burst_arrivals(
                    args.rate, duration if duration is not None
                    else n_jobs / args.rate, seed=args.seed + i)
            else:
                arrivals = poisson_arrivals(
                    args.rate, duration=duration, n_jobs=n_jobs,
                    seed=args.seed + i)
            jobs = build_stream_jobs(
                bundle, arrivals,
                with_inputs=(args.predictor == "slice"))
            streams.append((AcceleratorStream(
                bench, controller, ctx.energy_model,
                ctx.slice_energy_model, predictor=predictor,
                config=config), jobs))
        results = serve_streams(streams, realtime=not args.virtual)
        for (stream, _), result in zip(streams, results):
            violations = check_stream(
                result,
                energy_model=stream.energy_model,
                slice_energy_model=stream.slice_energy_model,
                levels=stream.levels,
                t_switch=stream.config.t_switch,
                uses_slice=stream.controller.uses_slice,
                charge_overheads=stream.controller.charge_overheads,
            )
            for violation in violations:
                print(f"VIOLATION: {result.stream}/{result.scheme} "
                      f"{violation}")
            failures += len(violations)
            report = LoadReport.from_result(result, mode="open",
                                            offered_rate=args.rate)
            print(report.describe())
        if obs is not None and obs.slo is not None:
            print("slo:")
            print(obs.slo.describe())
            slo_exhausted = obs.slo.exhausted
        if obs is not None and (args.profile or args.run_dir):
            _print_stage_timings(obs, args.run_dir)
    _print_cache_stats()
    print("serve: " + ("ok" if failures == 0
                       else f"{failures} violation(s)")
          + (", slo budget exhausted" if slo_exhausted else ""))
    if failures:
        return 1
    return 3 if slo_exhausted else 0


def _serve_fleet_cli(args: argparse.Namespace, duration, n_jobs) -> int:
    """The ``serve --fleet N`` path: one mixed stream over a pool.

    Pool instances are spread round-robin across the listed
    benchmarks (each instance serves exactly one benchmark — the pool
    is heterogeneous), the dispatcher routes the interleaved stream by
    ``--policy``, and shard execution fans out over ``--workers``
    processes.  Fleet serving runs on the virtual clock and replays
    precomputed predictions (a live slice simulation does not cross
    the process boundary).
    """
    from .check import check_fleet
    from .experiments.runner import (
        bundle_for,
        make_controller,
        tech_context,
    )
    from .serve import (
        FleetConfig,
        LoadReport,
        RecordPredictor,
        ServeConfig,
        ShardSpec,
        build_mixed_stream,
        burst_arrivals,
        parse_tenants,
        poisson_arrivals,
        serve_fleet,
    )
    from .units import MS

    benchmarks = list(args.benchmark)
    if args.fleet < len(benchmarks):
        print(f"--fleet {args.fleet} cannot cover {len(benchmarks)} "
              "benchmarks (each needs at least one instance)",
              file=sys.stderr)
        return 2
    try:
        tenants = parse_tenants(args.tenants)
        config = FleetConfig(policy=args.policy,
                             global_depth=args.global_depth,
                             elastic=args.elastic,
                             engine=args.engine,
                             strict=False)  # checked explicitly below
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.cache_dir:
        from .parallel import ArtifactCache, set_cache
        set_cache(ArtifactCache(args.cache_dir))
    slo_specs = []
    if args.slo:
        from .obs import parse_slo
        try:
            slo_specs = [parse_slo(text) for text in args.slo]
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2

    failures = 0
    slo_exhausted = False
    with _maybe_observe(args, "serve --fleet "
                        + " ".join(benchmarks),
                        force=bool(slo_specs)) as obs:
        if obs is not None:
            if args.slo_window_ms is not None:
                from .obs import TimeSeriesRegistry
                obs.timeseries = TimeSeriesRegistry(
                    window_s=args.slo_window_ms * 1e-3)
            if slo_specs:
                from .obs import SloTracker
                obs.slo = SloTracker(slo_specs)
        bundles = {}
        contexts = {}
        for bench in benchmarks:
            bundles[bench] = bundle_for(bench, args.scale)
            contexts[bench] = tech_context(bundles[bench],
                                           tech=args.tech)
        specs = []
        for i in range(args.fleet):
            bench = benchmarks[i % len(benchmarks)]
            ctx = contexts[bench]
            specs.append(ShardSpec(
                name=f"{bench}#{i}", benchmark=bench,
                controller=make_controller(ctx, args.scheme),
                energy_model=ctx.energy_model,
                slice_energy_model=ctx.slice_energy_model,
                predictor=RecordPredictor(),
                config=ServeConfig(
                    deadline=(args.deadline_ms * MS
                              if args.deadline_ms is not None
                              else ctx.config.deadline),
                    t_switch=ctx.config.t_switch,
                    queue_depth=args.queue_depth,
                    batch_max=args.batch,
                    engine=args.engine,
                )))
        if args.arrival == "burst":
            arrivals = burst_arrivals(
                args.rate, duration if duration is not None
                else n_jobs / args.rate, seed=args.seed)
        else:
            arrivals = poisson_arrivals(
                args.rate, duration=duration, n_jobs=n_jobs,
                seed=args.seed)
        jobs = build_mixed_stream(
            bundles, arrivals, seed=args.seed,
            tenants=[t.name for t in tenants])
        result = serve_fleet(specs, jobs, config=config,
                             tenants=tenants, workers=args.workers)
        for spec, shard in zip(result.specs, result.shards):
            print(LoadReport.from_result(shard, mode="open").describe())
        print(result.describe())
        for tenant, row in sorted(result.tenant_summary().items()):
            print(f"tenant {tenant}: offered={row['offered']} "
                  f"completed={row['completed']} "
                  f"fallback={row['fallback']} shed={row['shed']}")
        violations = check_fleet(result)
        for violation in violations:
            print(f"VIOLATION: fleet/{result.policy} {violation}")
        failures += len(violations)
        if obs is not None:
            # The per-shard serve counters reach this (parent) registry
            # through the pool's snapshot ship-back; printing them here
            # is what the CI smoke asserts survives --workers N.
            counters = obs.metrics.counters
            print("fleet counters: "
                  f"offered={counters.get('serve.offered', 0):.0f} "
                  f"completed={counters.get('serve.completed', 0):.0f} "
                  f"fallback={counters.get('serve.fallback', 0):.0f} "
                  f"shed={counters.get('serve.shed', 0):.0f} "
                  "dropped="
                  f"{counters.get('pool.dropped_observers', 0):.0f}")
        if obs is not None and obs.slo is not None:
            print("slo:")
            print(obs.slo.describe())
            slo_exhausted = obs.slo.exhausted
        if obs is not None and (args.profile or args.run_dir):
            _print_stage_timings(obs, args.run_dir)
    _print_cache_stats()
    print("serve: " + ("ok" if failures == 0
                       else f"{failures} violation(s)")
          + (", slo budget exhausted" if slo_exhausted else ""))
    if failures:
        return 1
    return 3 if slo_exhausted else 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from .flow import generate_predictor
    from .units import MS

    design = get_design(args.benchmark)
    workload = workload_for(design.name, scale=args.scale)
    print(f"training on {len(workload.train)} jobs ...")
    _apply_perf_opts(args)
    with _maybe_observe(args, f"predict {args.benchmark}") as obs:
        package = generate_predictor(design, workload.train)
        if obs is not None:
            _print_stage_timings(obs, args.run_dir)
    _print_cache_stats()
    print(f"{package.n_candidate_features} candidate features -> "
          f"{package.n_selected_features} selected; slice area "
          f"{package.slice_cost.area_fraction * 100:.1f}%")
    f0 = design.nominal_frequency
    from .rtl import make_simulation
    sim = make_simulation(package.simulation_module(),
                          track_state_cycles=False)
    print(f"{'job':>4s} {'predicted':>10s} {'actual':>10s} {'err%':>7s}")
    for i, item in enumerate(workload.test[:args.show]):
        job = design.encode_job(item)
        predicted, _ = package.run_slice(job)
        sim.reset()
        sim.load(*job.as_pair())
        actual = sim.run().cycles
        print(f"{i:4d} {predicted / f0 / MS:8.2f}ms "
              f"{actual / f0 / MS:8.2f}ms "
              f"{(predicted - actual) / actual * 100:7.2f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Predictive DVFS for hardware accelerators "
                    "(MICRO 2015 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    obs_opts = argparse.ArgumentParser(add_help=False)
    obs_opts.add_argument(
        "--profile", action="store_true",
        help="collect spans/metrics and print a stage-timing table")
    obs_opts.add_argument(
        "--run-dir", default=None, metavar="DIR",
        help="write manifest.json + events.jsonl run artifacts to DIR")

    from .parallel import DEFAULT_CACHE_DIR
    perf_opts = argparse.ArgumentParser(add_help=False)
    perf_opts.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the offline flow "
             "(default: REPRO_JOBS or serial)")
    perf_opts.add_argument(
        "--cache-dir", nargs="?", const=DEFAULT_CACHE_DIR, default=None,
        metavar="DIR",
        help="persist flow artifacts (bare flag: ~/.cache/repro; "
             "default: REPRO_CACHE_DIR or disabled)")
    from .rtl import BACKENDS
    from .rtl.backend import DEFAULT_BACKEND
    perf_opts.add_argument(
        "--backend", choices=BACKENDS, default=None,
        help="simulation kernel, one of: "
             f"{', '.join(BACKENDS)} (default: REPRO_BACKEND or "
             f"{DEFAULT_BACKEND}); see docs/performance.md")

    sub.add_parser("list", help="list benchmarks and experiments")

    p = sub.add_parser("describe", help="structural analysis of a design")
    p.add_argument("benchmark", choices=ALL_DESIGNS)
    p.add_argument("--jobs", type=int, default=5,
                   help="sample N jobs for timing stats (0 to skip)")

    p = sub.add_parser("experiment", help="regenerate a table/figure",
                       parents=[obs_opts, perf_opts])
    p.add_argument("id", help=f"one of: {', '.join(EXPERIMENTS)}")
    p.add_argument("--scale", type=float, default=None,
                   help="workload scale (default: REPRO_SCALE or 1.0)")

    p = sub.add_parser("verilog", help="export a design as Verilog")
    p.add_argument("benchmark", choices=ALL_DESIGNS)
    p.add_argument("-o", "--output", default=None)

    p = sub.add_parser("predict", help="train and demo a predictor",
                       parents=[obs_opts, perf_opts])
    p.add_argument("benchmark", choices=ALL_DESIGNS)
    p.add_argument("--scale", type=float, default=0.15)
    p.add_argument("--show", type=int, default=8, metavar="N",
                   help="number of test jobs to predict and print")

    p = sub.add_parser("lint", help="lint a benchmark design")
    p.add_argument("benchmark", choices=ALL_DESIGNS)

    p = sub.add_parser("wave", help="dump a VCD waveform of one job")
    p.add_argument("benchmark", choices=ALL_DESIGNS)
    p.add_argument("-o", "--output", default="job.vcd")
    p.add_argument("--job", type=int, default=0)

    p = sub.add_parser(
        "check", parents=[obs_opts, perf_opts],
        help="audit a run dir, or re-run episodes under the invariant "
             "checker and diff against golden traces")
    p.add_argument("run", nargs="?", default=None,
                   help="a --run-dir directory to audit (omit to run "
                        "fresh episodes under the checker)")
    p.add_argument("--scale", type=float, default=None,
                   help="workload scale (default: REPRO_SCALE or 1.0)")
    p.add_argument("--tech", choices=("asic", "fpga"), default="asic")
    p.add_argument("--benchmarks", nargs="*", default=None,
                   metavar="NAME", help="subset of benchmarks "
                                        "(default: all seven)")
    p.add_argument("--schemes", nargs="*", default=None, metavar="NAME",
                   help="subset of schemes (default: all)")
    p.add_argument("--golden-dir", default=None, metavar="DIR",
                   help="diff canonical traces against goldens in DIR "
                        "(e.g. tests/golden)")
    p.add_argument("--update-golden", action="store_true",
                   help="write fresh goldens instead of diffing "
                        "(intentional regeneration)")
    p.add_argument("--smoke", action="store_true",
                   help="also seed known accounting bugs and assert "
                        "the checker catches them")

    p = sub.add_parser(
        "conform", parents=[obs_opts, perf_opts],
        help="sweep generated designs through the differential "
             "conformance battery (backends, flow, episodes, streams)")
    p.add_argument("--seeds", type=int, default=10, metavar="N",
                   help="number of sampler seeds to sweep, 0..N-1 "
                        "(default 10)")
    p.add_argument("--seed-list", nargs="*", type=int, default=None,
                   metavar="S", help="explicit seeds (overrides "
                                     "--seeds)")
    p.add_argument("--complexity", choices=("small", "medium", "large"),
                   default="medium")
    p.add_argument("--train-jobs", type=int, default=24,
                   help="training workload size per design (default 24)")
    p.add_argument("--test-jobs", type=int, default=12,
                   help="test workload size per design (default 12)")

    p = sub.add_parser(
        "serve", parents=[obs_opts],
        help="run the online serving runtime over live job streams")
    p.add_argument("--benchmark", nargs="+", required=True,
                   metavar="NAME",
                   help="benchmark(s) to stream (one stream each)")
    p.add_argument("--rate", type=float, default=100.0,
                   help="offered arrival rate in jobs/s (default 100)")
    p.add_argument("--duration", type=float, default=None, metavar="S",
                   help="stream length in seconds (default 2 when "
                        "--jobs is not given)")
    p.add_argument("--jobs", dest="n_jobs", type=int, default=None,
                   metavar="N",
                   help="total jobs to offer (alternative to "
                        "--duration)")
    p.add_argument("--scheme", default="prediction",
                   help="DVFS scheme per stream (default: prediction)")
    p.add_argument("--scale", type=float, default=0.05,
                   help="workload scale for the bundles (default 0.05)")
    p.add_argument("--tech", choices=("asic", "fpga"), default="asic")
    p.add_argument("--deadline-ms", type=float, default=None,
                   help="per-job deadline in ms (default: the "
                        "experiment config's 16.7 ms)")
    p.add_argument("--queue-depth", type=int, default=64,
                   help="admission bound on the virtual backlog")
    p.add_argument("--batch", type=int, default=8,
                   help="micro-batch size cap (default 8)")
    p.add_argument("--arrival", choices=("poisson", "burst"),
                   default="poisson")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--predictor", choices=("slice", "record"),
                   default="slice",
                   help="slice = simulate the prediction slice per "
                        "job; record = replay precomputed predictions")
    p.add_argument("--prediction-budget-ms", type=float, default=None,
                   help="wall-clock budget per decision; overruns "
                        "fall back to max frequency")
    p.add_argument("--virtual", action="store_true",
                   help="drive the virtual clock flat-out instead of "
                        "pacing arrivals against the wall clock")
    p.add_argument("--engine", choices=("auto", "scalar", "vector"),
                   default=None,
                   help="decision-plane engine: auto (default; "
                        "vectorized epochs where provably equivalent), "
                        "scalar (per-job reference path), or vector "
                        "(insist on the epoch driver). Falls back to "
                        "REPRO_SERVE_ENGINE when omitted")
    p.add_argument("--fleet", type=int, default=None, metavar="N",
                   help="dispatch ONE mixed stream across a pool of N "
                        "accelerator instances (spread round-robin "
                        "over the listed benchmarks) instead of one "
                        "independent stream per benchmark")
    p.add_argument("--policy", default="least_loaded",
                   choices=("round_robin", "least_loaded",
                            "energy_aware", "deadline"),
                   help="fleet routing policy (default: least_loaded)")
    p.add_argument("--tenants", default="default", metavar="SPEC",
                   help="comma-separated tenant contracts, each "
                        "name[:rate=R][:burst=B] (default: one "
                        "unlimited 'default' tenant)")
    p.add_argument("--elastic", action="store_true",
                   help="scale pool instances up/down against "
                        "backlog watermarks")
    p.add_argument("--global-depth", type=int, default=512,
                   help="fleet-wide admission bound on projected "
                        "backlog (default 512)")
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="worker processes for fleet shard execution "
                        "(default: REPRO_JOBS or serial)")
    p.add_argument("--slo", action="append", default=None,
                   metavar="SPEC",
                   help="windowed SLO to enforce, e.g. 'miss_rate<5%%' "
                        "or 'p99_decision_ms<1@95%%' (repeatable; "
                        "exits 3 when any error budget is exhausted)")
    p.add_argument("--slo-window-ms", type=float, default=None,
                   metavar="MS",
                   help="time-series window width in virtual ms "
                        "(default 100)")
    p.add_argument("--cache-dir", nargs="?", const=DEFAULT_CACHE_DIR,
                   default=None, metavar="DIR",
                   help="persist flow artifacts (bare flag: "
                        "~/.cache/repro)")
    p.add_argument("--backend", choices=BACKENDS, default=None,
                   help="simulation kernel for slice prediction")

    p = sub.add_parser(
        "report", parents=[obs_opts, perf_opts],
        help="render a captured run dir, or run experiments into "
             "a markdown report")
    p.add_argument("run", nargs="?", default=None,
                   help="a --run-dir directory to render (omit to "
                        "regenerate the full markdown report)")
    p.add_argument("-o", "--output", default="reproduction_report.md")
    p.add_argument("--scale", type=float, default=None)
    p.add_argument("--only", nargs="*", default=None,
                   help="subset of experiment ids")
    p.add_argument("--export-trace", default=None, metavar="OUT.json",
                   help="with a run dir: also export it as "
                        "Chrome-trace JSON (load in chrome://tracing "
                        "or ui.perfetto.dev)")
    return parser


_HANDLERS = {
    "list": _cmd_list,
    "describe": _cmd_describe,
    "check": _cmd_check,
    "conform": _cmd_conform,
    "experiment": _cmd_experiment,
    "verilog": _cmd_verilog,
    "predict": _cmd_predict,
    "serve": _cmd_serve,
    "report": _cmd_report,
    "lint": _cmd_lint,
    "wave": _cmd_wave,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
