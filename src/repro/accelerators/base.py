"""Accelerator design framework.

Each benchmark accelerator (Table 3 of the paper) is a class that
builds a behavioural RTL module and knows how to encode its workload
items into job inputs (port values + scratchpad contents).  The
``nominal_frequency`` matches Table 4; per-design cycle coefficients
are calibrated so execution-time statistics land in the paper's
millisecond regime at that frequency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..rtl.module import Module
from ..units import FRAME_DEADLINE_60FPS


@dataclass(frozen=True)
class JobInput:
    """Everything needed to load one job into a simulation."""

    inputs: Dict[str, int]
    memories: Dict[str, Sequence[int]]
    coarse_param: int = 0  # table-based controller's lookup key
    meta: Dict[str, Any] = field(default_factory=dict)

    def as_pair(self):
        """The (inputs, memories) pair Simulation.load expects."""
        return (self.inputs, self.memories)


class AcceleratorDesign:
    """Base class for benchmark accelerators.

    Subclasses set ``name``, ``nominal_frequency`` and ``description``
    and implement ``_build`` plus ``encode_job``.
    """

    name: str = ""
    description: str = ""
    task_description: str = ""
    nominal_frequency: float = 0.0
    deadline: float = FRAME_DEADLINE_60FPS

    def __init__(self) -> None:
        if not self.name or self.nominal_frequency <= 0:
            raise ValueError(
                f"{type(self).__name__} must define name and frequency"
            )
        self._module: Optional[Module] = None

    def build(self) -> Module:
        """The design's behavioural module (built once, cached)."""
        if self._module is None:
            self._module = self._build()
            if not self._module.finalized:
                self._module.finalize()
        return self._module

    def _build(self) -> Module:
        raise NotImplementedError

    def encode_job(self, item: Any) -> JobInput:
        """Encode one workload item into a loadable job."""
        raise NotImplementedError

    def encode_jobs(self, items: Sequence[Any]) -> List[JobInput]:
        """Encode a sequence of workload items."""
        return [self.encode_job(item) for item in items]
