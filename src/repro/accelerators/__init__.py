"""The seven benchmark accelerators of the paper's evaluation."""

from .aes import AesAccelerator
from .base import AcceleratorDesign, JobInput
from .cjpeg import JpegEncoder
from .djpeg import JpegDecoder
from .h264 import H264Decoder
from .md import MolecularDynamics
from .registry import ALL_DESIGNS, all_designs, get_design
from .sha import ShaAccelerator
from .stencil import StencilFilter

__all__ = [
    "ALL_DESIGNS", "AcceleratorDesign", "AesAccelerator", "H264Decoder",
    "JobInput", "JpegDecoder", "JpegEncoder", "MolecularDynamics",
    "ShaAccelerator", "StencilFilter", "all_designs", "get_design",
]
