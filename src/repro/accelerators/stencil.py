"""Stencil image-filtering accelerator (from MachSuite).

Filters an image in 8-row strips; the per-strip cycle count scales
with the image width and the selected kernel (3x3 box, 5x5 gaussian,
3x3 sharpen).  Almost all area is in the MAC array (DSP blocks on
FPGA), which is why the paper's Fig 17 notes the *relative* slice
resource overhead of stencil looks large: the control logic is tiny.

Execution time is a near-deterministic function of (rows, cols,
kernel), so prediction is essentially exact — stencil's error box in
Fig 10 is a sliver.
"""

from __future__ import annotations

from ..rtl import (
    DatapathBlock,
    Fsm,
    Module,
    Sig,
    down_counter,
    minimum,
    up_counter,
)
from ..units import MHZ
from ..workloads.images import RawImage
from .base import AcceleratorDesign, JobInput

ROWS_PER_STRIP = 8
ROW_OVERHEAD = 120   # boundary handling per row
#: Cycles per pixel per kernel (index = kernel id).
KERNEL_CPP = (10, 16, 12)


class StencilFilter(AcceleratorDesign):
    """Stencil filter; one job filters one image."""

    name = "stencil"
    description = "Image filtering (stencil)"
    task_description = "Filter one image"
    nominal_frequency = 602 * MHZ

    def _build(self) -> Module:
        m = Module("stencil")
        rows = m.port("rows", 12)
        cols = m.port("cols", 12)
        kernel = m.port("kernel", 2)

        rows_left = m.reg("rows_left", 12)
        cpp = m.wire(
            "cpp",
            (kernel == 0) * KERNEL_CPP[0]
            + (kernel == 1) * KERNEL_CPP[1]
            + (kernel == 2) * KERNEL_CPP[2],
            8,
        )
        row_cost = m.wire("row_cost", cols * Sig("cpp") + ROW_OVERHEAD, 16)
        strip_rows = m.wire(
            "strip_rows", minimum(Sig("rows_left"), ROWS_PER_STRIP), 4)

        ctrl = Fsm("ctrl", initial="IDLE")
        ctrl.transition("IDLE", "SETUP", cond=rows > 0,
                        actions=[("rows_left", rows)])
        ctrl.transition("SETUP", "STRIP")
        ctrl.transition(
            "STRIP", "STRIP", cond=rows_left > ROWS_PER_STRIP,
            actions=[("rows_left", rows_left - ROWS_PER_STRIP)])
        ctrl.transition("STRIP", "FLUSH", actions=[("rows_left", 0)])
        ctrl.transition("FLUSH", "DONE")

        ctrl.wait_state("SETUP", "c_setup", feeds_control=True)
        ctrl.wait_state("STRIP", "c_strip")
        ctrl.wait_state("FLUSH", "c_flush")
        m.fsm(ctrl)

        m.counter(down_counter(
            "c_setup", load_cond=ctrl.arc_signal("IDLE", "SETUP"),
            load_value=(rows * cols >> 3) + 60, width=20,
        ))
        strip_entry = ctrl.entry_signal("STRIP")
        m.counter(down_counter(
            "c_strip", load_cond=strip_entry,
            load_value=Sig("strip_rows") * Sig("row_cost"),
            width=20,
        ))
        m.counter(down_counter(
            "c_flush", load_cond=ctrl.arc_signal("STRIP", "FLUSH"),
            load_value=cols * 2 + 90, width=16,
        ))
        m.counter(up_counter(
            "strips_done",
            reset_cond=ctrl.arc_signal("FLUSH", "DONE"),
            enable=strip_entry,
            width=10,
        ))

        m.datapath(DatapathBlock(
            "mac_array", cells={"MUL": 9, "ADD": 10, "MUX": 6},
            width=16, inputs=("cpp",),
            active_states=(("ctrl", "STRIP"),),
        ))
        m.memory("line_buffer", depth=128, width=32)

        m.set_done(Sig("ctrl__state") == ctrl.code_of("DONE"))
        return m.finalize()

    def encode_job(self, image: RawImage) -> JobInput:
        return JobInput(
            inputs={"rows": image.rows, "cols": image.cols,
                    "kernel": image.kernel},
            memories={},
            coarse_param=image.size_class,
            meta={"image": image.index, "kernel": image.kernel},
        )
