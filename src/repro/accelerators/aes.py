"""AES encryption accelerator.

One job encrypts one data piece (e.g. a DRM-protected video frame's
payload, Sec. 4.2).  The engine walks the DMA descriptor (a short
feeds-control scan), runs the key schedule, then processes the data in
1024-block chunks; per-block cycles depend on the cipher mode (CBC is
serial, CTR pipelines better) and key size (AES-256 adds rounds).

Job time is essentially linear in data size with mode/key terms, so
prediction is exact; the challenge for reactive schemes is that
consecutive pieces have unrelated sizes.
"""

from __future__ import annotations

from ..rtl import (
    DatapathBlock,
    Fsm,
    Module,
    Sig,
    down_counter,
    minimum,
    up_counter,
)
from ..units import MHZ
from ..workloads.datastream import DataPiece
from .base import AcceleratorDesign, JobInput

CHUNK_BLOCKS = 1024
DESC_SCAN_BASE = 1800       # DMA descriptor walk (feeds control)
KEYSCHED_BASE = 2200
KEYSCHED_256_EXTRA = 1800
CYCLES_PER_BLOCK_CBC = 16
CYCLES_PER_BLOCK_CTR = 13
CYCLES_PER_BLOCK_256 = 4    # extra rounds


class AesAccelerator(AcceleratorDesign):
    """AES engine; one job encrypts one piece of data."""

    name = "aes"
    description = "Advanced Encryption Standard"
    task_description = "Encrypt a piece of data"
    nominal_frequency = 500 * MHZ

    def _build(self) -> Module:
        m = Module("aes")
        n_blocks = m.port("n_blocks", 24)
        mode = m.port("mode", 1)      # 0 CBC, 1 CTR
        key256 = m.port("key256", 1)

        blocks_left = m.reg("blocks_left", 24)
        per_block = m.wire(
            "per_block",
            (mode == 0) * CYCLES_PER_BLOCK_CBC
            + (mode == 1) * CYCLES_PER_BLOCK_CTR
            + key256 * CYCLES_PER_BLOCK_256,
            8,
        )
        chunk_blocks = m.wire(
            "chunk_blocks", minimum(Sig("blocks_left"), CHUNK_BLOCKS), 12)

        ctrl = Fsm("ctrl", initial="IDLE")
        ctrl.transition("IDLE", "DESC", cond=n_blocks > 0,
                        actions=[("blocks_left", n_blocks)])
        ctrl.transition("DESC", "KEYSCHED")
        ctrl.transition("KEYSCHED", "CRYPT")
        ctrl.transition(
            "CRYPT", "CRYPT", cond=blocks_left > CHUNK_BLOCKS,
            actions=[("blocks_left", blocks_left - CHUNK_BLOCKS)])
        ctrl.transition("CRYPT", "FLUSH", actions=[("blocks_left", 0)])
        ctrl.transition("FLUSH", "DONE")

        ctrl.wait_state("DESC", "c_desc", feeds_control=True)
        ctrl.wait_state("KEYSCHED", "c_keysched")
        ctrl.wait_state("CRYPT", "c_crypt")
        ctrl.wait_state("FLUSH", "c_flush")
        m.fsm(ctrl)

        m.counter(down_counter(
            "c_desc", load_cond=ctrl.arc_signal("IDLE", "DESC"),
            load_value=DESC_SCAN_BASE + (n_blocks >> 2), width=18,
        ))
        m.counter(down_counter(
            "c_keysched", load_cond=ctrl.arc_signal("DESC", "KEYSCHED"),
            load_value=KEYSCHED_BASE + key256 * KEYSCHED_256_EXTRA,
            width=13,
        ))
        m.counter(down_counter(
            "c_crypt", load_cond=ctrl.entry_signal("CRYPT"),
            load_value=Sig("chunk_blocks") * Sig("per_block"),
            width=18,
        ))
        m.counter(down_counter(
            "c_flush", load_cond=ctrl.arc_signal("CRYPT", "FLUSH"),
            load_value=420, width=10,
        ))
        m.counter(up_counter(
            "chunks_done",
            reset_cond=ctrl.arc_signal("FLUSH", "DONE"),
            enable=ctrl.entry_signal("CRYPT"),
            width=10,
        ))

        m.datapath(DatapathBlock(
            "round_dp", cells={"XOR": 320, "SHL": 64, "MUX": 160,
                               "ADD": 40},
            width=8, inputs=("per_block",),
            active_states=(("ctrl", "CRYPT"),),
        ))
        m.datapath(DatapathBlock(
            "keysched_dp", cells={"XOR": 60, "SHL": 16, "MUX": 30},
            width=8, inputs=("key256",),
            active_states=(("ctrl", "KEYSCHED"),),
        ))
        m.memory("sbox", depth=2048, width=8)
        m.memory("data_buffer", depth=1024, width=32)

        m.set_done(Sig("ctrl__state") == ctrl.code_of("DONE"))
        return m.finalize()

    def encode_job(self, piece: DataPiece) -> JobInput:
        return JobInput(
            inputs={"n_blocks": piece.aes_blocks, "mode": piece.mode,
                    "key256": int(piece.key256)},
            memories={},
            coarse_param=piece.size_class,
            meta={"piece": piece.index, "bytes": piece.n_bytes},
        )
