"""JPEG decoder accelerator (djpeg).

Per strip: serial Huffman *decoding* — a dynamic wait, because the
number of cycles a variable-length decode takes is only discoverable
bit by bit; there is no counter holding it (this is the paper's djpeg
error source: "some of the FSMs in the decoder stay in a state for a
variable number of cycles which cannot be obtained using a
corresponding counter").  It is marked feeds-control: the slice must
genuinely perform the entropy decode to learn the coefficient counts
downstream features use.

After Huffman: dequantization (counter scales with coefficient count —
architecturally known once entropy decoding finished), inverse DCT and
color conversion (counters scale with block count).  Images with
restart markers pay extra resynchronization cycles inside the dynamic
wait — invisible to the features, so those jobs are systematically
harder to predict, reproducing djpeg's wider error box in Fig 10.
"""

from __future__ import annotations

from ..rtl import (
    DatapathBlock,
    Fsm,
    MemRead,
    Module,
    Sig,
    down_counter,
    up_counter,
)
from ..units import MHZ
from ..workloads.images import Image
from .base import AcceleratorDesign, JobInput

HUF_PER_BLOCK = 60
HUF_PER_NNZ = 7
HUF_PER_NOISE = 40            # invisible serial irregularity
HUF_RESTART_PER_BLOCK = 80    # invisible resync cost on restart images
DEQUANT_PER_BLOCK = 180
DEQUANT_PER_NNZ = 6
IDCT_PER_BLOCK = 760
COLOR_PER_BLOCK = 240


class JpegDecoder(AcceleratorDesign):
    """JPEG decoder; one job decodes one image."""

    name = "djpeg"
    description = "JPEG decoder"
    task_description = "Decode one image"
    nominal_frequency = 250 * MHZ

    def _build(self) -> Module:
        m = Module("djpeg")
        n_strips = m.port("n_strips", 8)
        restart = m.port("restart", 1)
        m.memory("strips", depth=64, width=24)

        idx = m.reg("idx", 8)
        word = m.wire("word", MemRead("strips", Sig("idx")), 24)
        nb = m.wire("nb", Sig("word") & 0x3F, 6)
        nnz = m.wire("nnz", (Sig("word") >> 6) & 0xFFF, 12)
        noise = m.wire("noise", (Sig("word") >> 18) & 0xF, 4)

        ctrl = Fsm("ctrl", initial="IDLE")
        ctrl.transition("IDLE", "FETCH", cond=n_strips > 0)
        ctrl.transition("FETCH", "HUF")
        ctrl.transition("HUF", "DEQUANT")
        ctrl.transition("DEQUANT", "IDCT")
        ctrl.transition("IDCT", "COLOR")
        ctrl.transition("COLOR", "FETCH", cond=idx < (n_strips - 1),
                        actions=[("idx", idx + 1)])
        ctrl.transition("COLOR", "DONE", actions=[("idx", idx + 1)])

        huf_cycles = (Sig("nb") * HUF_PER_BLOCK
                      + Sig("nnz") * HUF_PER_NNZ
                      + Sig("noise") * HUF_PER_NOISE
                      + restart * (Sig("nb") * HUF_RESTART_PER_BLOCK))
        ctrl.dynamic_wait("HUF", huf_cycles, feeds_control=True)
        ctrl.wait_state("DEQUANT", "c_dequant")
        ctrl.wait_state("IDCT", "c_idct")
        ctrl.wait_state("COLOR", "c_color")
        m.fsm(ctrl)

        m.counter(down_counter(
            "c_dequant", load_cond=ctrl.arc_signal("HUF", "DEQUANT"),
            load_value=(Sig("nb") * DEQUANT_PER_BLOCK
                        + Sig("nnz") * DEQUANT_PER_NNZ),
            width=16,
        ))
        m.counter(down_counter(
            "c_idct", load_cond=ctrl.arc_signal("DEQUANT", "IDCT"),
            load_value=Sig("nb") * IDCT_PER_BLOCK, width=16,
        ))
        m.counter(down_counter(
            "c_color", load_cond=ctrl.arc_signal("IDCT", "COLOR"),
            load_value=Sig("nb") * COLOR_PER_BLOCK, width=16,
        ))
        m.counter(up_counter(
            "strips_done",
            reset_cond=ctrl.arc_signal("COLOR", "DONE"),
            enable=ctrl.entry_signal("COLOR"),
            width=8,
        ))

        m.datapath(DatapathBlock(
            "idct_dp", cells={"MUL": 128, "ADD": 340, "MUX": 160},
            width=16, inputs=("nb",),
            active_states=(("ctrl", "IDCT"),),
        ))
        m.datapath(DatapathBlock(
            "dequant_dp", cells={"MUL": 32, "ADD": 60},
            width=16, inputs=("nnz",),
            active_states=(("ctrl", "DEQUANT"),),
        ))
        m.datapath(DatapathBlock(
            "color_dp", cells={"MUL": 48, "ADD": 120, "MIN": 30, "MAX": 30},
            width=16, inputs=("nb",),
            active_states=(("ctrl", "COLOR"),),
        ))
        m.memory("frame_buffer", depth=12288, width=32)

        m.set_done(Sig("ctrl__state") == ctrl.code_of("DONE"))
        return m.finalize()

    def encode_job(self, image: Image) -> JobInput:
        words = []
        for strip in image.strips:
            word = (strip.n_blocks & 0x3F
                    | (strip.nnz_total & 0xFFF) << 6
                    | (strip.noise & 0xF) << 18)
            words.append(word)
        return JobInput(
            inputs={"n_strips": len(words), "restart": int(image.restart)},
            memories={"strips": words},
            coarse_param=image.size_class,
            meta={"image": image.index, "restart": image.restart},
        )
