"""JPEG encoder accelerator (cjpeg).

Processes an image strip by strip (one strip = a row of 8x8 blocks).
Per strip: a light content *scan* pass (feeds control — this is what
the prediction slice executes to learn per-strip activity), forward
DCT, quantization, then entropy (Huffman) encoding whose cost grows
with the number of non-zero coefficients.

Execution time varies over an order of magnitude with image size
(Table 4: 0.88-13.90 ms), and consecutive images are uncorrelated,
which is what defeats reactive DVFS controllers on this benchmark.
"""

from __future__ import annotations

from ..rtl import (
    DatapathBlock,
    Fsm,
    MemRead,
    Module,
    Sig,
    down_counter,
    up_counter,
)
from ..units import MHZ
from ..workloads.images import Image
from .base import AcceleratorDesign, JobInput

SCAN_PER_BLOCK = 140      # feeds-control content scan (slice runs this)
DCT_PER_BLOCK = 760
QUANT_PER_BLOCK = 220
HUF_PER_BLOCK = 280
HUF_PER_NNZ = 9


class JpegEncoder(AcceleratorDesign):
    """JPEG encoder; one job encodes one image."""

    name = "cjpeg"
    description = "JPEG encoder"
    task_description = "Encode one image"
    nominal_frequency = 250 * MHZ

    def _build(self) -> Module:
        m = Module("cjpeg")
        n_strips = m.port("n_strips", 8)
        m.memory("strips", depth=64, width=24)

        idx = m.reg("idx", 8)
        word = m.wire("word", MemRead("strips", Sig("idx")), 24)
        nb = m.wire("nb", Sig("word") & 0x3F, 6)
        nnz = m.wire("nnz", (Sig("word") >> 6) & 0xFFF, 12)

        ctrl = Fsm("ctrl", initial="IDLE")
        ctrl.transition("IDLE", "FETCH", cond=n_strips > 0)
        ctrl.transition("FETCH", "SCAN")
        ctrl.transition("SCAN", "DCT")
        ctrl.transition("DCT", "QUANT")
        ctrl.transition("QUANT", "HUF")
        ctrl.transition("HUF", "FETCH", cond=idx < (n_strips - 1),
                        actions=[("idx", idx + 1)])
        ctrl.transition("HUF", "DONE", actions=[("idx", idx + 1)])

        ctrl.wait_state("SCAN", "c_scan", feeds_control=True)
        ctrl.wait_state("DCT", "c_dct")
        ctrl.wait_state("QUANT", "c_quant")
        ctrl.wait_state("HUF", "c_huf")
        m.fsm(ctrl)

        m.counter(down_counter(
            "c_scan", load_cond=ctrl.arc_signal("FETCH", "SCAN"),
            load_value=nb * SCAN_PER_BLOCK, width=16,
        ))
        m.counter(down_counter(
            "c_dct", load_cond=ctrl.arc_signal("SCAN", "DCT"),
            load_value=nb * DCT_PER_BLOCK, width=16,
        ))
        m.counter(down_counter(
            "c_quant", load_cond=ctrl.arc_signal("DCT", "QUANT"),
            load_value=nb * QUANT_PER_BLOCK, width=16,
        ))
        m.counter(down_counter(
            "c_huf", load_cond=ctrl.arc_signal("QUANT", "HUF"),
            load_value=nb * HUF_PER_BLOCK + Sig("nnz") * HUF_PER_NNZ,
            width=18,
        ))
        m.counter(up_counter(
            "strips_done",
            reset_cond=ctrl.arc_signal("HUF", "DONE"),
            enable=ctrl.entry_signal("HUF"),
            width=8,
        ))

        m.datapath(DatapathBlock(
            "dct_dp", cells={"MUL": 96, "ADD": 220, "MUX": 110},
            width=16, inputs=("nb",),
            active_states=(("ctrl", "DCT"),),
        ))
        m.datapath(DatapathBlock(
            "quant_dp", cells={"DIV": 16, "MUL": 16, "ADD": 40},
            width=16, inputs=("nb",),
            active_states=(("ctrl", "QUANT"),),
        ))
        m.datapath(DatapathBlock(
            "huf_dp", cells={"ADD": 90, "XOR": 70, "SHL": 60, "MUX": 110},
            width=16, inputs=("nnz",),
            active_states=(("ctrl", "HUF"),),
        ))
        m.memory("pixel_buffer", depth=4096, width=32)

        m.set_done(Sig("ctrl__state") == ctrl.code_of("DONE"))
        return m.finalize()

    def encode_job(self, image: Image) -> JobInput:
        words = []
        for strip in image.strips:
            word = (strip.n_blocks & 0x3F
                    | (strip.nnz_total & 0xFFF) << 6
                    | (strip.noise & 0xF) << 18)
            words.append(word)
        return JobInput(
            inputs={"n_strips": len(words)},
            memories={"strips": words},
            coarse_param=image.size_class,
            meta={"image": image.index, "blocks": image.n_blocks},
        )
