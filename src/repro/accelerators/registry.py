"""Benchmark accelerator registry (Table 3/4 of the paper)."""

from __future__ import annotations

from typing import Dict, List, Type

from .aes import AesAccelerator
from .base import AcceleratorDesign
from .cjpeg import JpegEncoder
from .djpeg import JpegDecoder
from .h264 import H264Decoder
from .md import MolecularDynamics
from .sha import ShaAccelerator
from .stencil import StencilFilter

_DESIGNS: Dict[str, Type[AcceleratorDesign]] = {
    cls.name: cls
    for cls in (H264Decoder, JpegEncoder, JpegDecoder, MolecularDynamics,
                StencilFilter, AesAccelerator, ShaAccelerator)
}

ALL_DESIGNS = tuple(_DESIGNS)


def get_design(name: str) -> AcceleratorDesign:
    """Instantiate a benchmark accelerator by name."""
    try:
        return _DESIGNS[name]()
    except KeyError:
        raise KeyError(
            f"unknown accelerator {name!r}; choose from {ALL_DESIGNS}"
        ) from None


def all_designs() -> List[AcceleratorDesign]:
    """Instantiate every benchmark accelerator."""
    return [get_design(name) for name in ALL_DESIGNS]
