"""SHA-256 hash accelerator.

One job hashes one data piece.  The message is consumed in batches of
256 64-byte blocks, each block taking the 64-round compression plus
message-schedule overhead; a final padding/digest stage closes the
job.  Job time is linear in message length — trivially predictable by
the framework, hostile to reactive control because sizes are
uncorrelated piece to piece.
"""

from __future__ import annotations

from ..rtl import (
    DatapathBlock,
    Fsm,
    Module,
    Sig,
    down_counter,
    minimum,
    up_counter,
)
from ..units import MHZ
from ..workloads.datastream import DataPiece
from .base import AcceleratorDesign, JobInput

BATCH_CHUNKS = 256
DESC_SCAN_BASE = 1400        # descriptor walk (feeds control)
CYCLES_PER_CHUNK = 81        # 64 rounds + schedule + state update
FINAL_CYCLES = 1200          # padding + digest output


class ShaAccelerator(AcceleratorDesign):
    """SHA-256 engine; one job hashes one piece of data."""

    name = "sha"
    description = "Secure Hash Function"
    task_description = "Hash a piece of data"
    nominal_frequency = 500 * MHZ

    def _build(self) -> Module:
        m = Module("sha")
        n_chunks = m.port("n_chunks", 20)

        chunks_left = m.reg("chunks_left", 20)
        batch = m.wire(
            "batch", minimum(Sig("chunks_left"), BATCH_CHUNKS), 10)

        ctrl = Fsm("ctrl", initial="IDLE")
        ctrl.transition("IDLE", "DESC", cond=n_chunks > 0,
                        actions=[("chunks_left", n_chunks)])
        ctrl.transition("DESC", "COMPRESS")
        ctrl.transition(
            "COMPRESS", "COMPRESS", cond=chunks_left > BATCH_CHUNKS,
            actions=[("chunks_left", chunks_left - BATCH_CHUNKS)])
        ctrl.transition("COMPRESS", "FINAL", actions=[("chunks_left", 0)])
        ctrl.transition("FINAL", "DONE")

        ctrl.wait_state("DESC", "c_desc", feeds_control=True)
        ctrl.wait_state("COMPRESS", "c_compress")
        ctrl.wait_state("FINAL", "c_final")
        m.fsm(ctrl)

        m.counter(down_counter(
            "c_desc", load_cond=ctrl.arc_signal("IDLE", "DESC"),
            load_value=DESC_SCAN_BASE + n_chunks * 2, width=18,
        ))
        m.counter(down_counter(
            "c_compress", load_cond=ctrl.entry_signal("COMPRESS"),
            load_value=Sig("batch") * CYCLES_PER_CHUNK, width=18,
        ))
        m.counter(down_counter(
            "c_final", load_cond=ctrl.arc_signal("COMPRESS", "FINAL"),
            load_value=FINAL_CYCLES, width=12,
        ))
        m.counter(up_counter(
            "batches_done",
            reset_cond=ctrl.arc_signal("FINAL", "DONE"),
            enable=ctrl.entry_signal("COMPRESS"),
            width=10,
        ))

        m.datapath(DatapathBlock(
            "round_dp", cells={"ADD": 44, "XOR": 60, "SHR": 22,
                               "MUX": 24},
            width=32, inputs=("batch",),
            active_states=(("ctrl", "COMPRESS"),),
        ))
        m.memory("msg_buffer", depth=256, width=32)

        m.set_done(Sig("ctrl__state") == ctrl.code_of("DONE"))
        return m.finalize()

    def encode_job(self, piece: DataPiece) -> JobInput:
        return JobInput(
            inputs={"n_chunks": piece.sha_chunks},
            memories={},
            coarse_param=piece.size_class,
            meta={"piece": piece.index, "bytes": piece.n_bytes},
        )
