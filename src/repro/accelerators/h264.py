"""H.264 baseline-profile decoder accelerator (the paper's case study).

Architecture mirrors Fig 9: a bitstream parser feeds entropy decoding
and residue decoding; macroblocks route through intra prediction or
inter prediction (motion compensation with optional sub-pel
interpolation), then the deblocking filter.  Control decisions per
macroblock — coding mode, coefficient count, motion-vector precision —
drive large input-dependent execution-time variation (Fig 2).

Timing structure per macroblock:

* header fetch (1 cycle) and serial parsing (a *feeds-control* wait —
  the parser's work produces the descriptor fields, so the slice keeps
  it, exactly like the paper's slice keeps the bitstream parser);
* an entropy-decode *dynamic wait*: serial bit-by-bit logic whose
  duration has no extractable counter — a small unmodelled term that
  keeps prediction error realistic (~1-3%, Sec. 3.7);
* residue decode proportional to coefficient count;
* intra prediction, or inter preload + motion compensation with a
  quarter-pel penalty (the subtle effect the paper's manually-built
  predictor missed);
* deblocking proportional to coefficient count.

Datapath blocks (transform, prediction, interpolation, deblock) carry
the area/energy of the real computation; the slice drops them.
"""

from __future__ import annotations

from ..rtl import (
    DatapathBlock,
    Fsm,
    MemRead,
    Module,
    Sig,
    down_counter,
    up_counter,
)
from ..units import MHZ
from ..workloads.video import Frame
from .base import AcceleratorDesign, JobInput

#: Macroblocks per frame (one fixed resolution, like the paper's clips).
MB_COUNT = 54

# Per-stage cycle coefficients (calibrated against Table 4's timing).
PARSE_BASE = 260
PARSE_PER_COEFF = 18
PARSE_PER_ENTROPY = 8
ENTROPY_PER_UNIT = 8           # dynamic wait, entropy-field part
CABAC_PER_UNIT = 45            # dynamic wait, hidden-state part: the
                               # arithmetic coder state is visible only
                               # bit-by-bit, never in a counter
RESIDUE_BASE = 160
RESIDUE_PER_COEFF = 100
INTRA_BASE = 19000
INTRA_PER_COEFF = 110
PRELOAD_BASE = 3200
PRELOAD_PER_MVFRAC = 2400
COMP_BASE = 16000
COMP_QPEL_EXTRA = 6500
SKIP_MC_CYCLES = 1100
DEBLOCK_BASE = 5600
DEBLOCK_PER_COEFF = 55


class H264Decoder(AcceleratorDesign):
    """H.264 video decoder; one job decodes one frame."""

    name = "h264"
    description = "H.264 video decoder"
    task_description = "Decode one frame"
    nominal_frequency = 250 * MHZ

    def _build(self) -> Module:
        m = Module("h264")
        n_mbs = m.port("n_mbs", 16)
        m.memory("bitstream", depth=1024, width=20)

        idx = m.reg("idx", 16)
        word = m.wire("word", MemRead("bitstream", Sig("idx")), 20)
        mb_type = m.wire("mb_type", Sig("word") & 0x3, 2)
        n_coeffs = m.wire("n_coeffs", (Sig("word") >> 2) & 0x7F, 7)
        mv_frac = m.wire("mv_frac", (Sig("word") >> 9) & 0x3, 2)
        entropy = m.wire("entropy", (Sig("word") >> 11) & 0x1F, 5)
        cabac = m.wire("cabac", (Sig("word") >> 16) & 0xF, 4)

        # DMA front-end: a second control unit (Fig 7 has per-block
        # control units) that prefetches the bitstream into the
        # scratchpad before decoding starts.  The decode FSM handshakes
        # on its READY state.
        dma = Fsm("dma", initial="IDLE")
        dma.transition("IDLE", "PREFETCH", cond=n_mbs > 0)
        dma.transition("PREFETCH", "READY")
        dma.wait_state("PREFETCH", "c_dma")
        m.fsm(dma)
        m.counter(down_counter(
            "c_dma", load_cond=dma.arc_signal("IDLE", "PREFETCH"),
            load_value=600 + (n_mbs << 2), width=16,
        ))
        dma_ready = m.wire(
            "dma_ready", Sig("dma__state") == dma.code_of("READY"), 1)

        ctrl = Fsm("ctrl", initial="IDLE")
        ctrl.transition("IDLE", "FETCH", cond=(n_mbs > 0) & dma_ready)
        ctrl.transition("FETCH", "PARSE")
        ctrl.transition("PARSE", "ENTROPY")
        ctrl.transition("ENTROPY", "SKIP_MC", cond=mb_type == 2)
        ctrl.transition("ENTROPY", "RESIDUE")
        ctrl.transition("RESIDUE", "INTRA", cond=mb_type == 0)
        ctrl.transition("RESIDUE", "PRELOAD")
        ctrl.transition("INTRA", "DEBLOCK")
        ctrl.transition("PRELOAD", "INTER_COMP")
        ctrl.transition("INTER_COMP", "DEBLOCK")
        ctrl.transition("SKIP_MC", "DEBLOCK")
        ctrl.transition("DEBLOCK", "FETCH", cond=idx < (n_mbs - 1),
                        actions=[("idx", idx + 1)])
        ctrl.transition("DEBLOCK", "DONE", actions=[("idx", idx + 1)])

        ctrl.wait_state("PARSE", "c_parse", feeds_control=True)
        ctrl.dynamic_wait("ENTROPY",
                          Sig("entropy") * ENTROPY_PER_UNIT
                          + Sig("cabac") * CABAC_PER_UNIT)
        ctrl.wait_state("RESIDUE", "c_residue")
        ctrl.wait_state("INTRA", "c_intra")
        ctrl.wait_state("PRELOAD", "c_preload")
        ctrl.wait_state("INTER_COMP", "c_comp")
        ctrl.wait_state("SKIP_MC", "c_skip")
        ctrl.wait_state("DEBLOCK", "c_deblock")
        m.fsm(ctrl)

        m.counter(down_counter(
            "c_parse", load_cond=ctrl.arc_signal("FETCH", "PARSE"),
            load_value=(PARSE_BASE + n_coeffs * PARSE_PER_COEFF
                        + entropy * PARSE_PER_ENTROPY),
            width=16,
        ))
        m.counter(down_counter(
            "c_residue", load_cond=ctrl.arc_signal("ENTROPY", "RESIDUE"),
            load_value=RESIDUE_BASE + n_coeffs * RESIDUE_PER_COEFF,
            width=16,
        ))
        m.counter(down_counter(
            "c_intra", load_cond=ctrl.arc_signal("RESIDUE", "INTRA"),
            load_value=INTRA_BASE + n_coeffs * INTRA_PER_COEFF,
            width=16,
        ))
        m.counter(down_counter(
            "c_preload", load_cond=ctrl.arc_signal("RESIDUE", "PRELOAD"),
            load_value=PRELOAD_BASE + mv_frac * PRELOAD_PER_MVFRAC,
            width=16,
        ))
        m.counter(down_counter(
            "c_comp", load_cond=ctrl.arc_signal("PRELOAD", "INTER_COMP"),
            load_value=(COMP_BASE
                        + (mv_frac == 2) * COMP_QPEL_EXTRA),
            width=16,
        ))
        m.counter(down_counter(
            "c_skip", load_cond=ctrl.arc_signal("ENTROPY", "SKIP_MC"),
            load_value=SKIP_MC_CYCLES, width=16,
        ))
        m.counter(down_counter(
            "c_deblock", load_cond=ctrl.entry_signal("DEBLOCK"),
            load_value=DEBLOCK_BASE + n_coeffs * DEBLOCK_PER_COEFF,
            width=16,
        ))
        m.counter(up_counter(
            "mbs_done",
            reset_cond=ctrl.arc_signal("DEBLOCK", "DONE"),
            enable=ctrl.entry_signal("DEBLOCK"),
            width=16,
        ))

        # Datapath: the compute fabric of Fig 9, sized so total area
        # lands in the Table 4 regime (~660k um^2) and the sliced-away
        # fraction matches the case study (~94%).
        m.datapath(DatapathBlock(
            "residue_dp", cells={"MUL": 64, "ADD": 220, "XOR": 150},
            width=16, inputs=("n_coeffs",),
            active_states=(("ctrl", "RESIDUE"),),
        ))
        m.datapath(DatapathBlock(
            "intra_dp", cells={"MUL": 40, "ADD": 240, "MUX": 260},
            width=16, inputs=("n_coeffs",),
            active_states=(("ctrl", "INTRA"),),
        ))
        m.datapath(DatapathBlock(
            "inter_dp", cells={"MUL": 190, "ADD": 420, "MUX": 330},
            width=16, inputs=("mv_frac",),
            active_states=(("ctrl", "PRELOAD"), ("ctrl", "INTER_COMP"),
                           ("ctrl", "SKIP_MC")),
        ))
        m.datapath(DatapathBlock(
            "deblock_dp", cells={"ADD": 260, "MIN": 120, "MAX": 120,
                                 "MUX": 140},
            width=16, inputs=("n_coeffs",),
            active_states=(("ctrl", "DEBLOCK"),),
        ))
        m.memory("frame_buffer", depth=17920, width=32)

        m.set_done(Sig("ctrl__state") == ctrl.code_of("DONE"))
        return m.finalize()

    def encode_job(self, frame: Frame) -> JobInput:
        words = []
        for mb in frame.mbs:
            word = (mb.mb_type & 0x3
                    | (mb.n_coeffs & 0x7F) << 2
                    | (mb.mv_frac & 0x3) << 9
                    | (mb.entropy & 0x1F) << 11
                    | (mb.cabac & 0xF) << 16)
            words.append(word)
        return JobInput(
            inputs={"n_mbs": len(words)},
            memories={"bitstream": words},
            coarse_param=0,  # all frames share one resolution
            meta={"clip": frame.clip, "frame": frame.index,
                  "scene_cut": frame.is_scene_cut},
        )
