"""Molecular dynamics accelerator (from MachSuite).

One job simulates one timestep: build the neighbour list (a
feeds-control phase — it produces the per-particle neighbour counts
the control loop and the prediction features depend on), then for each
particle run the force pipeline for a number of cycles proportional to
its neighbour count, then integrate positions.

Job time tracks total neighbour pairs, which drifts slowly between
timesteps with occasional cluster-merge jumps — the workload where
reactive DVFS is *almost* viable, but spikes still cause misses.
"""

from __future__ import annotations

from ..rtl import (
    DatapathBlock,
    Fsm,
    MemRead,
    Module,
    Sig,
    down_counter,
    up_counter,
)
from ..units import MHZ
from ..workloads.particles import N_PARTICLES, Timestep
from .base import AcceleratorDesign, JobInput

NLIST_PER_PARTICLE = 890   # O(N^2/2) distance checks (feeds control)
FORCE_BASE = 220
FORCE_PER_NEIGHBOR = 84
INTEGRATE_PER_PARTICLE = 40


class MolecularDynamics(AcceleratorDesign):
    """MD accelerator; one job simulates one timestep."""

    name = "md"
    description = "Molecules/physics simulation"
    task_description = "Simulate one timestep"
    nominal_frequency = 455 * MHZ

    def _build(self) -> Module:
        m = Module("md")
        n_particles = m.port("n_particles", 10)
        m.memory("nlist", depth=N_PARTICLES, width=10)

        idx = m.reg("idx", 10)
        neighbors = m.wire("neighbors", MemRead("nlist", Sig("idx")), 10)

        ctrl = Fsm("ctrl", initial="IDLE")
        ctrl.transition("IDLE", "NLIST", cond=n_particles > 0)
        ctrl.transition("NLIST", "FETCH")
        ctrl.transition("FETCH", "FORCE")
        ctrl.transition("FORCE", "FETCH", cond=idx < (n_particles - 1),
                        actions=[("idx", idx + 1)])
        ctrl.transition("FORCE", "INTEGRATE", actions=[("idx", idx + 1)])
        ctrl.transition("INTEGRATE", "DONE")

        ctrl.wait_state("NLIST", "c_nlist", feeds_control=True)
        ctrl.wait_state("FORCE", "c_force")
        ctrl.wait_state("INTEGRATE", "c_integrate")
        m.fsm(ctrl)

        m.counter(down_counter(
            "c_nlist", load_cond=ctrl.arc_signal("IDLE", "NLIST"),
            load_value=n_particles * NLIST_PER_PARTICLE, width=20,
        ))
        m.counter(down_counter(
            "c_force", load_cond=ctrl.arc_signal("FETCH", "FORCE"),
            load_value=FORCE_BASE + Sig("neighbors") * FORCE_PER_NEIGHBOR,
            width=18,
        ))
        m.counter(down_counter(
            "c_integrate",
            load_cond=ctrl.entry_signal("INTEGRATE"),
            load_value=n_particles * INTEGRATE_PER_PARTICLE, width=16,
        ))
        m.counter(up_counter(
            "particles_done",
            reset_cond=ctrl.arc_signal("INTEGRATE", "DONE"),
            enable=ctrl.entry_signal("FORCE"),
            width=10,
        ))

        m.datapath(DatapathBlock(
            "force_dp", cells={"MUL": 7, "ADD": 12, "DIV": 1},
            width=32, inputs=("neighbors",),
            active_states=(("ctrl", "FORCE"),),
        ))
        m.datapath(DatapathBlock(
            "integrate_dp", cells={"MUL": 4, "ADD": 8},
            width=32, inputs=("n_particles",),
            active_states=(("ctrl", "INTEGRATE"),),
        ))
        m.memory("positions", depth=512, width=32)

        m.set_done(Sig("ctrl__state") == ctrl.code_of("DONE"))
        return m.finalize()

    def encode_job(self, step: Timestep) -> JobInput:
        counts = list(step.neighbor_counts)
        return JobInput(
            inputs={"n_particles": len(counts)},
            memories={"nlist": counts},
            coarse_param=0,  # fixed particle count
            meta={"step": step.index, "pairs": step.total_pairs},
        )
