"""C-level models of the HLS-capable accelerators (md, stencil).

The paper's Sec. 4.5 uses md and stencil "which have C versions
available" to compare RTL-level slicing against program slicing of the
C source followed by HLS.  These are those C versions, written in the
mini-C IR of :mod:`repro.slicing.hls`: every candidate feature of the
RTL design is computed as a program variable, so the same trained
linear model runs on top of either slice.

Variable names deliberately equal the RTL feature names — the
correlation between C variables and RTL features is what an HLS flow's
name preservation provides.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..rtl.expr import Const, Mux, Sig, UnOp
from ..slicing.hls import ELEM, Program, Statement
from .md import (
    FORCE_BASE,
    FORCE_PER_NEIGHBOR,
    INTEGRATE_PER_PARTICLE,
    NLIST_PER_PARTICLE,
)
from .stencil import KERNEL_CPP, ROW_OVERHEAD, ROWS_PER_STRIP


#: The nlist scan costs NLIST_PER_PARTICLE cycles per particle in RTL.
NLIST_PER_NEIGHBOR_SCAN = NLIST_PER_PARTICLE


def md_program() -> Tuple[Program, Dict[str, str]]:
    """C version of the md accelerator's feature computation.

    Params/arrays match the RTL job encoding: ``n_particles`` and the
    neighbour-count array ``nlist``.
    """
    n = Sig("n_particles")
    statements = (
        Statement("stc:ctrl:IDLE->NLIST", Const(1)),
        Statement("stc:ctrl:NLIST->FETCH", Const(1)),
        Statement("stc:ctrl:FETCH->FORCE", n + 0),
        Statement("stc:ctrl:FORCE->FETCH", n - 1),
        Statement("stc:ctrl:FORCE->INTEGRATE", Const(1)),
        Statement("stc:ctrl:INTEGRATE->DONE", Const(1)),
        Statement("ic:c_nlist", Const(1)),
        Statement("aivs:c_nlist", n * NLIST_PER_NEIGHBOR_SCAN),
        Statement("ic:c_force", n + 0),
        Statement("aivs:c_force",
                  Const(FORCE_BASE) + Sig(ELEM) * FORCE_PER_NEIGHBOR,
                  array="nlist"),
        Statement("ic:c_integrate", Const(1)),
        Statement("aivs:c_integrate", n * INTEGRATE_PER_PARTICLE),
        Statement("ic:particles_done", Const(1)),
        Statement("apvs:particles_done", n + 0),
    )
    program = Program(
        name="md_c",
        params=("n_particles",),
        arrays=("nlist",),
        statements=statements,
    )
    mapping = {s.target: s.target for s in statements}
    return program, mapping


def stencil_program() -> Tuple[Program, Dict[str, str]]:
    """C version of the stencil accelerator's feature computation."""
    rows = Sig("rows")
    cols = Sig("cols")
    kernel = Sig("kernel")
    statements = (
        Statement("cpp",
                  Mux(kernel == 0, KERNEL_CPP[0],
                      Mux(kernel == 1, KERNEL_CPP[1], KERNEL_CPP[2]))),
        Statement("row_cost", cols * Sig("cpp") + ROW_OVERHEAD),
        Statement("n_strips",
                  (rows + (ROWS_PER_STRIP - 1)) // ROWS_PER_STRIP),
        Statement("stc:ctrl:IDLE->SETUP", Const(1)),
        Statement("stc:ctrl:SETUP->STRIP", Const(1)),
        Statement("stc:ctrl:STRIP->FLUSH", Const(1)),
        Statement("stc:ctrl:FLUSH->DONE", Const(1)),
        Statement("ic:c_setup", Const(1)),
        Statement("aivs:c_setup", ((rows * cols) >> 3) + 60),
        Statement("ic:c_strip", Sig("n_strips") + 0),
        # The hardware pads the last strip to a full ROWS_PER_STRIP, so
        # total strip cycles round rows up to the strip granularity.
        Statement("aivs:c_strip",
                  Sig("n_strips") * ROWS_PER_STRIP * Sig("row_cost")),
        Statement("ic:c_flush", Const(1)),
        Statement("aivs:c_flush", cols * 2 + 90),
        Statement("ic:strips_done", Const(1)),
        Statement("apvs:strips_done", Sig("n_strips") + 0),
    )
    program = Program(
        name="stencil_c",
        params=("rows", "cols", "kernel"),
        arrays=(),
        statements=statements,
    )
    mapping = {
        s.target: s.target for s in statements
        if ":" in s.target  # expose features, not intermediates
    }
    return program, mapping


def h264_program() -> Tuple[Program, Dict[str, str]]:
    """C version of the H.264 decoder's feature computation.

    Used by the *software predictor* extension (Sec. 4.5): decoders
    with a software implementation (ffmpeg) can compute the features on
    the CPU instead of in a hardware slice.  Each statement scans the
    bitstream words and accumulates one feature.
    """
    from .h264 import (
        DEBLOCK_BASE, DEBLOCK_PER_COEFF, PARSE_BASE, PARSE_PER_COEFF,
        PARSE_PER_ENTROPY, PRELOAD_BASE, PRELOAD_PER_MVFRAC, RESIDUE_BASE,
        RESIDUE_PER_COEFF, INTRA_BASE, INTRA_PER_COEFF, COMP_BASE,
        COMP_QPEL_EXTRA, SKIP_MC_CYCLES,
    )
    e = Sig(ELEM)
    mb_type = e & 0x3
    n_coeffs = (e >> 2) & 0x7F
    mv_frac = (e >> 9) & 0x3
    entropy = (e >> 11) & 0x1F
    is_skip = mb_type == 2
    is_intra = mb_type == 0
    is_inter = mb_type == 1
    statements = (
        Statement("stc:ctrl:IDLE->FETCH", Const(1)),
        Statement("stc:ctrl:FETCH->PARSE", Const(1), array="bitstream"),
        Statement("stc:ctrl:PARSE->ENTROPY", Const(1), array="bitstream"),
        Statement("stc:ctrl:ENTROPY->SKIP_MC", is_skip + 0,
                  array="bitstream"),
        Statement("stc:ctrl:ENTROPY->RESIDUE", UnOp("not", is_skip) + 0,
                  array="bitstream"),
        Statement("stc:ctrl:RESIDUE->INTRA", is_intra + 0,
                  array="bitstream"),
        Statement("stc:ctrl:RESIDUE->PRELOAD", is_inter + 0,
                  array="bitstream"),
        Statement("stc:ctrl:INTRA->DEBLOCK", is_intra + 0,
                  array="bitstream"),
        Statement("stc:ctrl:PRELOAD->INTER_COMP", is_inter + 0,
                  array="bitstream"),
        Statement("stc:ctrl:INTER_COMP->DEBLOCK", is_inter + 0,
                  array="bitstream"),
        Statement("stc:ctrl:SKIP_MC->DEBLOCK", is_skip + 0,
                  array="bitstream"),
        Statement("stc:ctrl:DEBLOCK->FETCH", Sig("n_mbs") - 1),
        Statement("stc:ctrl:DEBLOCK->DONE", Const(1)),
        Statement("ic:c_parse", Const(1), array="bitstream"),
        Statement("aivs:c_parse",
                  Const(PARSE_BASE) + n_coeffs * PARSE_PER_COEFF
                  + entropy * PARSE_PER_ENTROPY,
                  array="bitstream"),
        Statement("ic:c_residue", UnOp("not", is_skip) + 0,
                  array="bitstream"),
        Statement("aivs:c_residue",
                  Mux(is_skip, 0,
                      Const(RESIDUE_BASE) + n_coeffs * RESIDUE_PER_COEFF),
                  array="bitstream"),
        Statement("ic:c_intra", is_intra + 0, array="bitstream"),
        Statement("aivs:c_intra",
                  Mux(is_intra,
                      Const(INTRA_BASE) + n_coeffs * INTRA_PER_COEFF, 0),
                  array="bitstream"),
        Statement("ic:c_preload", is_inter + 0, array="bitstream"),
        Statement("aivs:c_preload",
                  Mux(is_inter,
                      Const(PRELOAD_BASE) + mv_frac * PRELOAD_PER_MVFRAC,
                      0),
                  array="bitstream"),
        Statement("ic:c_comp", is_inter + 0, array="bitstream"),
        Statement("aivs:c_comp",
                  Mux(is_inter,
                      Const(COMP_BASE) + (mv_frac == 2) * COMP_QPEL_EXTRA,
                      0),
                  array="bitstream"),
        Statement("ic:c_skip", is_skip + 0, array="bitstream"),
        Statement("aivs:c_skip", Mux(is_skip, SKIP_MC_CYCLES, 0),
                  array="bitstream"),
        Statement("ic:c_deblock", Const(1), array="bitstream"),
        Statement("aivs:c_deblock",
                  Const(DEBLOCK_BASE) + n_coeffs * DEBLOCK_PER_COEFF,
                  array="bitstream"),
        Statement("ic:mbs_done", Const(1)),
        Statement("apvs:mbs_done", Sig("n_mbs") + 0),
    )
    program = Program(
        name="h264_c",
        params=("n_mbs",),
        arrays=("bitstream",),
        statements=statements,
    )
    mapping = {s.target: s.target for s in statements}
    return program, mapping


HLS_PROGRAMS = {
    "md": md_program,
    "stencil": stencil_program,
}

SOFTWARE_PROGRAMS = {
    "h264": h264_program,
    "md": md_program,
    "stencil": stencil_program,
}
