"""Software-based predictors (Sec. 4.5 of the paper).

Accelerators with a software implementation of the same function (HLS
sources, or e.g. ffmpeg for H.264) can run the *predictor* on the CPU
instead of building a hardware slice: the sliced C program executes on
a core while the accelerator is idle, then the DVFS level is set from
its output.

The CPU cost model charges a per-statement instruction count times a
CPI at the core's clock; the result is a prediction plus the software
overhead time to subtract from the budget (taking the hardware slice's
place in the DVFS model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

from ..accelerators.base import JobInput
from ..accelerators.hls_models import SOFTWARE_PROGRAMS
from ..model import LinearPredictor
from ..slicing.hls import Program, program_slice
from ..units import GHZ


@dataclass(frozen=True)
class CpuModel:
    """A simple mobile-core cost model for the software predictor."""

    frequency: float = 1.5 * GHZ
    cpi: float = 1.2
    instructions_per_scalar_stmt: float = 4.0
    instructions_per_element: float = 7.0  # load, extract, MAC, loop
    call_overhead_instructions: float = 400.0

    def runtime(self, program: Program,
                arrays: Mapping[str, Sequence[int]]) -> float:
        """Wall-clock seconds to run ``program`` once on this core."""
        instructions = self.call_overhead_instructions
        for stmt in program.statements:
            if stmt.array is None:
                instructions += self.instructions_per_scalar_stmt
            else:
                trips = len(arrays.get(stmt.array, ()))
                instructions += trips * self.instructions_per_element
        return instructions * self.cpi / self.frequency


@dataclass
class SoftwarePredictor:
    """A CPU-executed execution-time predictor for one accelerator."""

    design_name: str
    program: Program
    feature_vars: Dict[str, str]
    model: LinearPredictor
    cpu: CpuModel

    @classmethod
    def build(cls, design_name: str, model: LinearPredictor,
              cpu: CpuModel = CpuModel()) -> "SoftwarePredictor":
        """Slice the software implementation down to the features the
        trained model selected."""
        if design_name not in SOFTWARE_PROGRAMS:
            raise KeyError(
                f"{design_name} has no software implementation; "
                f"available: {sorted(SOFTWARE_PROGRAMS)}"
            )
        program, mapping = SOFTWARE_PROGRAMS[design_name]()
        selected = set(model.selected_features)
        wanted = {f: v for f, v in mapping.items() if f in selected}
        if not wanted:
            wanted = dict(list(mapping.items())[:1])
        sliced = program_slice(program, list(wanted.values()))
        return cls(
            design_name=design_name,
            program=sliced,
            feature_vars=wanted,
            model=model,
            cpu=cpu,
        )

    def predict(self, job: JobInput) -> Tuple[float, float]:
        """Returns (predicted execution cycles, CPU overhead seconds)."""
        env = self.program.evaluate(job.inputs, job.memories)
        vector = np.array([
            env[self.feature_vars[name]] if name in self.feature_vars
            else 0.0
            for name in self.model.feature_names
        ])
        predicted = max(self.model.predict_one(vector), 0.0)
        overhead = self.cpu.runtime(self.program, job.memories)
        return predicted, overhead
