"""The design-time flow of Fig 6: from RTL to a generated predictor.

``generate_predictor`` runs the complete offline pipeline on a design:

1. synthesize the behavioural module ("behavioral RTL -> structural");
2. detect FSMs and counters structurally, derive candidate features;
3. simulate the training workload on the instrumented design to get
   per-job feature values and execution times;
4. fit the asymmetric-Lasso model and keep the selected features;
5. slice the hardware down to the selected features' logic and elide
   the waits of removed computation.

The result bundles everything the online half needs: the runnable
slice, the linear model in raw feature space, and the static costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..accelerators.base import AcceleratorDesign, JobInput
from ..analysis import (
    FeatureMatrix,
    FeatureRecorder,
    FeatureSet,
    discover_features,
    record_jobs,
)
from ..model import (
    LinearPredictor,
    TrainedModel,
    TrainingConfig,
    fit_predictor,
    select_gamma,
)
from ..obs import get_observer, span
from ..parallel import (
    code_version,
    combine_fingerprints,
    design_hash,
    get_cache,
    jobs_fingerprint,
    stable_hash,
)
from ..rtl.backend import compiled_clone, make_simulation, resolve_backend
from ..rtl.lint import errors_only, lint_module
from ..rtl.module import Module
from ..rtl.netlist import Netlist
from ..rtl.simulator import Simulation
from ..rtl.synth import synthesize
from ..slicing import HardwareSlice, SliceCost, build_slice, compute_slice_cost


@dataclass(frozen=True)
class FlowConfig:
    """Knobs of the offline flow."""

    alpha: float = 8.0
    gamma: Optional[float] = None     # None: pick via the Lasso path
    auto_gamma_slack: float = 0.5     # pct-points tolerance on the path
    refit: bool = True
    lint: bool = True                 # reject designs with lint errors

    def training_config(self, gamma: float) -> TrainingConfig:
        """The TrainingConfig for a concrete gamma."""
        return TrainingConfig(alpha=self.alpha, gamma=gamma,
                              refit=self.refit)


@dataclass
class GeneratedPredictor:
    """Everything the online system needs for one accelerator."""

    design_name: str
    module: Module                # the full accelerator
    netlist: Netlist              # full synthesized netlist
    feature_set: FeatureSet       # all candidate features
    model: TrainedModel
    hw_slice: HardwareSlice
    slice_cost: SliceCost
    train_matrix: FeatureMatrix
    gamma: float
    compiled_module: Optional[Module] = None  # fast simulation clone
    compiled_slice: Optional[Module] = None

    def simulation_module(self) -> Module:
        """The module evaluation should simulate.

        Backend-aware: the per-expression-compiled clone is only an
        advantage under the ``compiled`` backend; ``interp`` wants the
        raw trees and ``stepjit`` generates its own kernel from them.
        """
        if resolve_backend() == "compiled":
            return self.compiled_module or self.module
        return self.module

    @property
    def predictor(self) -> LinearPredictor:
        return self.model.predictor

    @property
    def n_candidate_features(self) -> int:
        return len(self.feature_set)

    @property
    def n_selected_features(self) -> int:
        return self.predictor.n_terms

    def run_slice(self, job: JobInput,
                  max_cycles: int = 50_000_000) -> Tuple[float, int]:
        """Execute the hardware slice on a job's input.

        Returns (predicted execution cycles, slice execution cycles) —
        the online half of Fig 6.
        """
        recorder = FeatureRecorder(self.feature_set)
        backend = resolve_backend()
        if backend == "compiled" and self.compiled_slice is not None:
            sim = Simulation(self.compiled_slice, listener=recorder,
                             track_state_cycles=False)
        else:
            sim = make_simulation(self.hw_slice.module, backend=backend,
                                  listener=recorder,
                                  track_state_cycles=False)
        sim.load(*job.as_pair(), ignore_unknown=True)
        result = sim.run(max_cycles=max_cycles)
        if not result.finished:
            raise RuntimeError(
                f"slice of {self.design_name} did not finish"
            )
        predicted = self.predictor.predict_one(recorder.vector())
        return max(predicted, 0.0), result.cycles


def _recorded_matrix(module: Module,
                     feature_set: FeatureSet, jobs,
                     design_name: str,
                     workers: Optional[int]) -> FeatureMatrix:
    """The record stage, memoized through the artifact cache.

    The cache key fingerprints everything the matrix depends on — the
    design's structural hash, the candidate feature columns, the
    encoded job contents, and the code version — so a hit is exactly
    the matrix a fresh simulation would produce, and a warm rerun
    skips the ``record`` span (and its RTL simulation) entirely.

    The simulation backend is deliberately NOT part of the key: all
    backends are cycle-exact, so a matrix recorded under one is a
    valid warm hit for any other (tests assert this invariance).
    """
    cache = get_cache()
    key = None
    if cache is not None:
        key = combine_fingerprints(
            design_hash(module),
            stable_hash(feature_set.names()),
            jobs_fingerprint(jobs),
            code_version(),
        )
        cached = cache.get("feature_matrix", key)
        if cached is not None:
            observer = get_observer()
            if observer is not None:
                observer.metrics.inc("flow.record.cached")
            return cached
    with span("record", design=design_name, jobs=len(jobs),
              backend=resolve_backend()):
        matrix = record_jobs(module, feature_set, jobs,
                             workers=workers)
    if cache is not None:
        cache.put("feature_matrix", key, matrix)
    return matrix


def generate_predictor(design: AcceleratorDesign,
                       train_items: Sequence,
                       config: FlowConfig = FlowConfig(),
                       workers: Optional[int] = None
                       ) -> GeneratedPredictor:
    """Run the full offline flow for one accelerator design.

    Each stage runs inside a named observability span (``synthesize``,
    ``detect``, ``record``, ``fit``, ``slice``) so a profiled run
    shows where flow time goes per design; feature counts and the
    selected gamma land in the metrics registry.  With observability
    disabled the spans are shared no-ops.

    ``workers`` (default: the ambient ``--jobs``/``REPRO_JOBS``
    setting) parallelizes the record stage and the Lasso path across
    processes; results are bit-identical to a serial run.  When a
    persistent artifact cache is configured (``--cache-dir`` or
    ``REPRO_CACHE_DIR``), the recorded feature matrix is reused across
    runs and the ``record`` stage is skipped entirely on a warm hit.
    """
    with span("flow", design=design.name):
        module = design.build()
        if config.lint:
            errors = errors_only(lint_module(module))
            if errors:
                raise ValueError(
                    f"design {design.name} has lint errors: "
                    + "; ".join(str(e) for e in errors)
                )
        with span("synthesize", design=design.name):
            netlist = synthesize(module)
        with span("detect", design=design.name):
            feature_set = discover_features(module, netlist)
            if len(feature_set) == 0:
                raise ValueError(
                    f"design {design.name} exposes no candidate slice "
                    f"features: the detectors found no FSM transition, "
                    f"counter-load or guard signals to observe (a "
                    f"design whose timing has no data-dependent waits "
                    f"or dynamic stages cannot train a slice "
                    f"predictor — add at least one counter-backed "
                    f"wait or dynamic stage, or skip the flow and use "
                    f"a non-predictive controller)"
                )
            # Built for every backend so bundle contents (and the
            # prewarmed bundle cache) stay backend-invariant.
            compiled = compiled_clone(module)
        jobs = [design.encode_job(item).as_pair()
                for item in train_items]
        matrix = _recorded_matrix(module, feature_set, jobs,
                                  design.name, workers)

        with span("fit", design=design.name):
            if config.gamma is None:
                gamma, _ = select_gamma(
                    matrix, alpha=config.alpha,
                    accuracy_slack=config.auto_gamma_slack,
                    workers=workers)
            else:
                gamma = config.gamma
            model = fit_predictor(matrix, config.training_config(gamma))

        with span("slice", design=design.name):
            selected_specs = [
                feature_set.specs[i]
                for i in model.predictor.selected_indices
            ]
            hw_slice = build_slice(module, selected_specs)
            cost = compute_slice_cost(netlist, hw_slice.netlist)
            compiled_slice = compiled_clone(hw_slice.module)

    observer = get_observer()
    if observer is not None:
        observer.metrics.inc("flow.designs")
        observer.metrics.inc("flow.features.candidate", len(feature_set))
        observer.metrics.inc("flow.features.selected",
                             model.predictor.n_terms)
        observer.metrics.set_gauge(f"flow.gamma.{design.name}", gamma)
        observer.emit(
            "flow",
            design=design.name,
            n_candidate_features=len(feature_set),
            n_selected_features=model.predictor.n_terms,
            gamma=gamma,
            slice_area_fraction=cost.area_fraction,
            n_train_jobs=len(train_items),
        )
    return GeneratedPredictor(
        design_name=design.name,
        module=module,
        netlist=netlist,
        feature_set=feature_set,
        model=model,
        hw_slice=hw_slice,
        slice_cost=cost,
        train_matrix=matrix,
        gamma=gamma,
        compiled_module=compiled,
        compiled_slice=compiled_slice,
    )
