"""Offline predictor-generation flow and evaluation record building."""

from .evaluate import build_job_records, training_records
from .pipeline import FlowConfig, GeneratedPredictor, generate_predictor

__all__ = [
    "FlowConfig", "GeneratedPredictor", "build_job_records",
    "generate_predictor", "training_records",
]
