"""Evaluation record building: ground truth + predictions per test job.

For each test job we run two simulations, mirroring the paper's
methodology: the full accelerator (RTL simulation gives the true
execution cycles and datapath activity for the energy model) and the
generated hardware slice (gives the prediction and the slice's own
execution time).  The resulting :class:`JobRecord` list is what the
episode runner replays under each DVFS controller — so every
controller is compared on identical jobs.
"""

from __future__ import annotations

from typing import List, Sequence

from ..accelerators.base import AcceleratorDesign
from ..analysis import FeatureRecorder
from ..dvfs.energy import activity_from_run
from ..rtl.backend import make_simulation
from ..runtime.jobs import JobRecord
from .pipeline import GeneratedPredictor


def build_job_records(design: AcceleratorDesign,
                      package: GeneratedPredictor,
                      items: Sequence,
                      max_cycles: int = 200_000_000) -> List[JobRecord]:
    """Ground-truth + prediction records for a workload's jobs."""
    module = package.module
    recorder = FeatureRecorder(package.feature_set)
    sim = make_simulation(package.simulation_module(), listener=recorder,
                          track_state_cycles=True)
    records: List[JobRecord] = []
    for index, item in enumerate(items):
        job = design.encode_job(item)
        sim.reset()
        sim.state_cycles.clear()
        recorder.start_job()
        sim.load(*job.as_pair())
        result = sim.run(max_cycles=max_cycles)
        if not result.finished:
            raise RuntimeError(
                f"{design.name} job {index} did not finish"
            )
        predicted, slice_cycles = package.run_slice(job)
        records.append(JobRecord(
            index=index,
            actual_cycles=result.cycles,
            activity=activity_from_run(module, result),
            features=recorder.vector(),
            predicted_cycles=predicted,
            slice_cycles=slice_cycles,
            coarse_param=job.coarse_param,
        ))
    return records


def training_records(design: AcceleratorDesign,
                     package: GeneratedPredictor,
                     items: Sequence) -> List[JobRecord]:
    """Records for the training set (used by table/PID tuning).

    Training-time tools only need true cycles and coarse parameters, so
    this reuses the recorded training matrix instead of re-simulating.
    """
    matrix = package.train_matrix
    if matrix.n_jobs != len(items):
        raise ValueError("training items do not match the recorded matrix")
    records: List[JobRecord] = []
    from ..dvfs.energy import JobActivity
    for index, item in enumerate(items):
        job = design.encode_job(item)
        cycles = int(matrix.cycles[index])
        records.append(JobRecord(
            index=index,
            actual_cycles=cycles,
            activity=JobActivity(cycles=cycles),
            features=matrix.x[index],
            predicted_cycles=None,
            slice_cycles=0,
            coarse_param=job.coarse_param,
        ))
    return records
