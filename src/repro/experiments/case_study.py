"""Sec 3.7 case study: the H.264 decoder's generated predictor.

Paper numbers: 257 candidate features reduced to 7 by Lasso;
worst-case prediction error ~3%; slice area 5.7% of the decoder;
slice takes 5-15% of the decoder's execution time and 2.8% of its
energy.  (Candidate-feature counts scale with design size — our
behavioural h264 model is smaller than the full RTL, so the candidate
pool is smaller; the *reduction* and overhead ratios are the
comparable quantities.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..dvfs.energy import JobActivity
from ..model import worst_case_error_pct
from .runner import bundle_for, tech_context


@dataclass(frozen=True)
class CaseStudyResult:
    n_candidate_features: int
    n_selected_features: int
    selected_features: List[str]
    worst_case_error_pct: float
    slice_area_fraction: float
    slice_energy_fraction: float
    slice_time_fraction_min: float  # of the job's own execution time
    slice_time_fraction_max: float


def run(scale: Optional[float] = None) -> CaseStudyResult:
    """Compute the Sec. 3.7 case-study numbers."""
    bundle = bundle_for("h264", scale)
    ctx = tech_context(bundle, tech="asic")
    package = bundle.package
    predicted = np.array([r.predicted_cycles for r in bundle.test_records])
    actual = np.array([float(r.actual_cycles) for r in bundle.test_records])

    f0 = ctx.levels.nominal.frequency
    nominal = ctx.levels.nominal
    time_fracs = []
    energy_fracs = []
    for record in bundle.test_records:
        time_fracs.append(record.slice_cycles / record.actual_cycles)
        t_slice = record.slice_cycles / f0
        e_slice = ctx.slice_energy_model.job_energy(
            JobActivity(cycles=record.slice_cycles), nominal, t_slice)
        e_job = ctx.energy_model.job_energy(
            record.activity, nominal, record.actual_cycles / f0)
        energy_fracs.append(e_slice / e_job)

    return CaseStudyResult(
        n_candidate_features=package.n_candidate_features,
        n_selected_features=package.n_selected_features,
        selected_features=package.predictor.selected_features,
        worst_case_error_pct=worst_case_error_pct(predicted, actual),
        slice_area_fraction=package.slice_cost.area_fraction,
        slice_energy_fraction=float(np.mean(energy_fracs)),
        slice_time_fraction_min=float(np.min(time_fracs)),
        slice_time_fraction_max=float(np.max(time_fracs)),
    )


def to_text(result: CaseStudyResult) -> str:
    """Render the result the way the paper's figure reads."""
    return "\n".join([
        "Sec 3.7 case study: h264 generated predictor",
        f"  features: {result.n_candidate_features} candidates -> "
        f"{result.n_selected_features} selected (paper: 257 -> 7)",
        f"  selected: {', '.join(result.selected_features)}",
        f"  worst-case prediction error: "
        f"{result.worst_case_error_pct:.2f}% (paper: ~3%)",
        f"  slice area: {result.slice_area_fraction * 100:.1f}% of the "
        f"decoder (paper: 5.7%)",
        f"  slice energy: {result.slice_energy_fraction * 100:.1f}% "
        f"(paper: 2.8%)",
        f"  slice time: {result.slice_time_fraction_min * 100:.1f}%-"
        f"{result.slice_time_fraction_max * 100:.1f}% of decoder time "
        f"(paper: 5-15%)",
    ])
