"""Fig 14: the 1.08 V boost level eliminates residual misses."""

from __future__ import annotations

from typing import List, Optional

from ..runtime import SchemeSummary, format_table
from .schemes import average_row, compare_schemes

SCHEMES = ("prediction", "prediction_boost")


def run(scale: Optional[float] = None) -> List[SchemeSummary]:
    """Prediction with and without the 1.08 V boost."""
    return compare_schemes(SCHEMES, tech="asic", scale=scale)


def headline(summaries: List[SchemeSummary]) -> dict:
    """The figure's headline quantities as a dict."""
    pred = average_row(summaries, "prediction")
    boost = average_row(summaries, "prediction_boost")
    return {
        "prediction_miss_pct": pred.miss_rate_pct,
        "boost_miss_pct": boost.miss_rate_pct,
        "boost_energy_increase_pct": (boost.normalized_energy_pct
                                      - pred.normalized_energy_pct),
        "boost_energy_savings_pct": boost.energy_savings_pct,
    }


def to_text(summaries: List[SchemeSummary]) -> str:
    """Render the result the way the paper's figure reads."""
    head = headline(summaries)
    return (
        "Fig 14: voltage boosting (1.08 V) for budget-starved jobs\n"
        + format_table(summaries)
        + "\n"
        + f"headline: boost drops misses {head['prediction_miss_pct']:.2f}% "
          f"-> {head['boost_miss_pct']:.2f}% for "
          f"+{head['boost_energy_increase_pct']:.2f}% energy "
          f"(paper: misses to 0% for +0.24%)"
    )
