"""Fig 15: sensitivity to the deadline, 0.6x to 1.6x of 16.7 ms.

Energy and misses averaged across all benchmarks per scheme.  The
predictor is *not* retrained across deadlines — only the DVFS model's
budget changes, exactly as the paper notes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .schemes import average_row, compare_schemes

SCHEMES = ("baseline", "pid", "prediction")
DEADLINE_FACTORS = (0.6, 0.8, 1.0, 1.2, 1.4, 1.6)


@dataclass(frozen=True)
class Fig15Point:
    deadline_factor: float
    scheme: str
    normalized_energy_pct: float
    miss_rate_pct: float


def run(scale: Optional[float] = None,
        factors: Sequence[float] = DEADLINE_FACTORS) -> List[Fig15Point]:
    """Scheme comparison across deadline factors."""
    points: List[Fig15Point] = []
    for factor in factors:
        summaries = compare_schemes(SCHEMES, tech="asic", scale=scale,
                                    deadline_factor=factor)
        for scheme in SCHEMES:
            avg = average_row(summaries, scheme)
            points.append(Fig15Point(
                deadline_factor=factor,
                scheme=scheme,
                normalized_energy_pct=avg.normalized_energy_pct,
                miss_rate_pct=avg.miss_rate_pct,
            ))
    return points


def series(points: List[Fig15Point],
           scheme: str) -> List[Tuple[float, float, float]]:
    """(factor, energy%, miss%) triples for one scheme."""
    return [
        (p.deadline_factor, p.normalized_energy_pct, p.miss_rate_pct)
        for p in points if p.scheme == scheme
    ]


def to_text(points: List[Fig15Point]) -> str:
    """Render the result the way the paper's figure reads."""
    lines = [
        "Fig 15: deadline sensitivity (averaged across benchmarks)",
        f"  {'factor':>6s}" + "".join(
            f" {s + ':E%':>10s} {s + ':M%':>9s}" for s in SCHEMES),
    ]
    factors = sorted({p.deadline_factor for p in points})
    table: Dict[Tuple[float, str], Fig15Point] = {
        (p.deadline_factor, p.scheme): p for p in points
    }
    for factor in factors:
        row = f"  {factor:6.1f}"
        for scheme in SCHEMES:
            p = table[(factor, scheme)]
            row += f" {p.normalized_energy_pct:10.1f} {p.miss_rate_pct:9.2f}"
        lines.append(row)
    return "\n".join(lines)
