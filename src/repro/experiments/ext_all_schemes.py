"""Extension: every controller the literature section mentions, at once.

The paper evaluates baseline/PID/prediction (plus oracle and boost
variants).  Sec. 2.4 and 5.1 additionally discuss table-based lookup
(Exynos MFC), history-based reactive control [10, 18], and Linux's
interval-based devfreq governors — all of which this library also
implements.  This experiment ranks all of them on the same jobs.
"""

from __future__ import annotations

from typing import List, Optional

from ..runtime import SchemeSummary, format_table
from .schemes import compare_schemes

SCHEMES = ("baseline", "governor", "table", "history", "pid",
           "prediction", "oracle")


def run(scale: Optional[float] = None) -> List[SchemeSummary]:
    """Rank every implemented scheme on the same jobs."""
    return compare_schemes(SCHEMES, tech="asic", scale=scale)


def ranking(summaries: List[SchemeSummary]) -> List[tuple]:
    """(scheme, energy%, miss%) sorted by energy, averages only."""
    rows = [
        (s.scheme, s.normalized_energy_pct, s.miss_rate_pct)
        for s in summaries if s.benchmark == "average"
    ]
    return sorted(rows, key=lambda r: r[1])


def to_text(summaries: List[SchemeSummary]) -> str:
    """Render the result the way the paper's figure reads."""
    lines = ["Extension: all DVFS schemes on the same jobs (ASIC)"]
    lines.append(format_table(
        [s for s in summaries if s.benchmark == "average"]))
    lines.append("ranking by average energy (misses in parentheses):")
    for scheme, energy, miss in ranking(summaries):
        lines.append(f"  {scheme:12s} {energy:6.1f}%  ({miss:.2f}% miss)")
    return "\n".join(lines)
