"""Fig 3: actual vs PID-predicted execution time for H.264.

Replays a tuned PID controller over a window of foreman frames; around
each spike the PID prediction lags one frame behind (one
under-prediction causing a miss, one over-prediction wasting energy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..dvfs.pid import PidPredictor, tune_pid
from ..units import MS
from .fig02_variation import run as run_fig2
from .runner import bundle_for
from .setup import default_config


@dataclass(frozen=True)
class Fig3Result:
    actual_ms: List[float]
    predicted_ms: List[float]

    @property
    def n_jobs(self) -> int:
        return len(self.actual_ms)

    def lag_correlation(self) -> float:
        """Correlation of prediction error with the previous frame's
        change — positive when the controller chases spikes."""
        import numpy as np
        actual = np.asarray(self.actual_ms)
        predicted = np.asarray(self.predicted_ms)
        err = predicted - actual
        delta_prev = np.diff(actual, prepend=actual[0])
        if err.std() < 1e-12 or delta_prev.std() < 1e-12:
            return 0.0
        return float(np.corrcoef(err, -delta_prev)[0, 1])


def run(scale: Optional[float] = None, window: int = 35) -> Fig3Result:
    """Replay a tuned PID over a foreman window."""
    if scale is None:
        scale = default_config().scale
    bundle = bundle_for("h264", scale)
    gains = tune_pid(bundle.train_cycles)
    f0 = bundle.design.nominal_frequency
    series = run_fig2(scale).series_ms["foreman"]
    pid = PidPredictor(gains)
    actual: List[float] = []
    predicted: List[float] = []
    for t_ms in series[:window]:
        cycles = t_ms * MS * f0
        guess = pid.predict()
        if guess is not None:
            actual.append(t_ms)
            predicted.append(guess / f0 / MS)
        pid.observe(cycles)
    return Fig3Result(actual_ms=actual, predicted_ms=predicted)


def to_text(result: Fig3Result) -> str:
    """Render the result the way the paper's figure reads."""
    lines = ["Fig 3: h264 actual vs PID-predicted execution time (ms)"]
    lines.append(f"  {'job':>4s} {'actual':>7s} {'pid':>7s} {'err%':>7s}")
    for i, (a, p) in enumerate(zip(result.actual_ms, result.predicted_ms)):
        lines.append(f"  {i:4d} {a:7.2f} {p:7.2f} {(p-a)/a*100:7.2f}")
    lines.append(f"  lag correlation: {result.lag_correlation():.2f}")
    return "\n".join(lines)
