"""Experiment regeneration: one module per table/figure of the paper.

Quick use::

    from repro.experiments import fig11_schemes
    print(fig11_schemes.to_text(fig11_schemes.run(scale=0.3)))

Heavy per-benchmark artefacts (trained predictors, simulated test
records) are cached per (benchmark, scale) in :mod:`runner`, so running
every experiment costs one simulation pass per benchmark.
"""

from . import (
    ablations,
    case_study,
    charts,
    ext_all_schemes,
    ext_resolutions,
    ext_taxonomy,
    fig02_variation,
    fig03_pid,
    fig10_errors,
    fig11_schemes,
    fig12_overheads,
    fig13_oracle,
    fig14_boost,
    fig15_deadlines,
    fig16_fpga,
    schemes,
    table3,
    table4,
)
from .runner import (
    ALL_SCHEMES,
    BenchmarkBundle,
    TechContext,
    bundle_for,
    clear_bundle_cache,
    make_controller,
    prewarm_bundles,
    run_scheme,
    tech_context,
)
from .setup import ExperimentConfig, default_config, default_scale

__all__ = [
    "ALL_SCHEMES", "BenchmarkBundle", "ExperimentConfig", "TechContext", "ablations",
    "bundle_for",
    "case_study", "charts", "clear_bundle_cache", "default_config",
    "default_scale",
    "ext_all_schemes", "ext_resolutions", "ext_taxonomy",
    "fig02_variation", "fig03_pid", "fig10_errors", "fig11_schemes",
    "fig12_overheads", "fig13_oracle", "fig14_boost", "fig15_deadlines",
    "fig16_fpga", "make_controller", "prewarm_bundles", "run_scheme",
    "schemes", "table3", "table4", "tech_context",
]
