"""Fig 2: per-frame execution time of the H.264 decoder for three
clips (coastguard, foreman, news) at one resolution."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..rtl import make_simulation
from ..units import MS
from ..workloads.video import fig2_clips, generate_clip
from .runner import bundle_for
from .setup import default_config


@dataclass(frozen=True)
class Fig2Result:
    """Per-clip execution-time series in milliseconds."""

    series_ms: Dict[str, List[float]]

    @property
    def clips(self) -> List[str]:
        return list(self.series_ms)

    def spread(self, clip: str) -> float:
        """Max minus min execution time of a clip (ms)."""
        values = self.series_ms[clip]
        return max(values) - min(values)


def run(scale: Optional[float] = None,
        n_frames: Optional[int] = None) -> Fig2Result:
    """Simulate the three Fig 2 clips per frame."""
    if scale is None:
        scale = default_config().scale
    if n_frames is None:
        n_frames = max(int(round(100 * scale)), 10)
    bundle = bundle_for("h264", scale)
    f0 = bundle.design.nominal_frequency
    sim = make_simulation(bundle.package.module,
                          track_state_cycles=False)
    series: Dict[str, List[float]] = {}
    for spec in fig2_clips(n_frames):
        times = []
        for frame in generate_clip(spec):
            job = bundle.design.encode_job(frame)
            sim.reset()
            sim.load(*job.as_pair())
            result = sim.run()
            times.append(result.cycles / f0 / MS)
        series[spec.name] = times
    return Fig2Result(series_ms=series)


def to_text(result: Fig2Result) -> str:
    """Render the result the way the paper's figure reads."""
    lines = ["Fig 2: h264 per-frame execution time (ms) at nominal V/f"]
    for clip, values in result.series_ms.items():
        lines.append(
            f"  {clip:12s} n={len(values):4d} "
            f"min {min(values):5.2f}  avg {sum(values)/len(values):5.2f}  "
            f"max {max(values):5.2f}"
        )
    return "\n".join(lines)
