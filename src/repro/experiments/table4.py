"""Table 4: ASIC implementation results (area, frequency, exec-time
statistics at nominal voltage)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..rtl import tech
from ..units import MHZ, MS
from ..workloads import ALL_BENCHMARKS
from .runner import bundle_for

#: The paper's Table 4, for side-by-side comparison in reports:
#: name -> (area um^2, freq MHz, max ms, avg ms, min ms).
PAPER_TABLE4 = {
    "h264": (659506, 250, 11.46, 7.56, 6.50),
    "cjpeg": (175225, 250, 13.90, 5.22, 0.88),
    "djpeg": (394635, 250, 14.79, 3.78, 1.82),
    "md": (31791, 455, 15.52, 7.11, 0.80),
    "stencil": (10140, 602, 15.97, 5.92, 1.41),
    "aes": (56121, 500, 16.19, 4.62, 1.94),
    "sha": (19740, 500, 12.94, 4.11, 1.11),
}


@dataclass(frozen=True)
class Table4Row:
    benchmark: str
    area_um2: float
    freq_mhz: float
    max_ms: float
    avg_ms: float
    min_ms: float


def run(scale: Optional[float] = None) -> List[Table4Row]:
    """ASIC area/frequency/execution-time rows."""
    rows = []
    for name in ALL_BENCHMARKS:
        bundle = bundle_for(name, scale)
        f0 = bundle.design.nominal_frequency
        times_ms = [
            r.actual_cycles / f0 / MS for r in bundle.test_records
        ]
        rows.append(Table4Row(
            benchmark=name,
            area_um2=tech.asic_area(bundle.package.netlist),
            freq_mhz=f0 / MHZ,
            max_ms=max(times_ms),
            avg_ms=sum(times_ms) / len(times_ms),
            min_ms=min(times_ms),
        ))
    return rows


def to_text(rows: List[Table4Row]) -> str:
    """Render the result the way the paper's figure reads."""
    lines = [
        f"{'Bench':8s} {'Area(um2)':>10s} {'Freq(MHz)':>9s} "
        f"{'Max(ms)':>8s} {'Avg(ms)':>8s} {'Min(ms)':>8s}   [paper]"
    ]
    for r in rows:
        paper = PAPER_TABLE4[r.benchmark]
        lines.append(
            f"{r.benchmark:8s} {r.area_um2:10.0f} {r.freq_mhz:9.0f} "
            f"{r.max_ms:8.2f} {r.avg_ms:8.2f} {r.min_ms:8.2f}   "
            f"[{paper[0]}, {paper[1]}MHz, {paper[2]}/{paper[3]}/{paper[4]}]"
        )
    return "\n".join(lines)
