"""Extension: mixed-resolution video (Sec. 2.3's closing remark).

The paper notes that "if we take into account videos of different
resolutions, the execution time variation will be even larger", and
that shipping table-based controllers (Samsung's MFC) key their lookup
on exactly that resolution.  This experiment decodes a stream that
switches between three resolutions and compares the table-based
controller (per-resolution worst case) with the per-job predictive
scheme on identical jobs.

Expected shape: the table cuts a lot of energy relative to baseline —
resolution explains the coarse variation — but prediction still beats
it clearly, because within one resolution the per-frame content
variation (Fig 2) is invisible to the table.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

import numpy as np

from ..accelerators import get_design
from ..dvfs import (
    ASIC_VOLTAGES,
    AsicEnergyModel,
    AsicVfModel,
    ConstantFrequencyController,
    PredictiveController,
    TableBasedController,
    build_level_table,
)
from ..flow import FlowConfig, build_job_records, generate_predictor
from ..runtime import Task, run_episode
from ..workloads.video import generate_clip, test_clips, train_clips
from .setup import default_config

#: Macroblock counts standing in for three frame resolutions.
RESOLUTIONS = (28, 54, 72)


@dataclass(frozen=True)
class ResolutionResult:
    """Energy/misses of each scheme on the mixed-resolution stream."""

    normalized_energy_pct: Dict[str, float]
    miss_rate_pct: Dict[str, float]
    n_jobs: int


def _mixed_clips(base_specs, frames_each: int) -> List:
    """Each base clip rendered at every resolution."""
    frames = []
    for spec in base_specs:
        for mb_count in RESOLUTIONS:
            variant = replace(spec, n_frames=frames_each,
                              mb_count=mb_count,
                              name=f"{spec.name}_{mb_count}mb",
                              seed=spec.seed + mb_count)
            frames.extend(generate_clip(variant))
    return frames


class _MultiResH264:
    """The h264 design with a resolution-keyed coarse parameter."""

    def __init__(self):
        self._design = get_design("h264")
        self.name = "h264_multires"
        self.nominal_frequency = self._design.nominal_frequency
        self.deadline = self._design.deadline

    def build(self):
        """The underlying h264 module."""
        return self._design.build()

    def encode_job(self, frame):
        """Encode with the frame's macroblock count as the table key."""
        job = self._design.encode_job(frame)
        return replace(job, coarse_param=len(frame.mbs))


def run(scale: Optional[float] = None) -> ResolutionResult:
    """Train and evaluate on the mixed-resolution stream."""
    config = default_config()
    if scale is None:
        scale = config.scale
    frames_each = max(int(round(40 * scale)), 6)
    design = _MultiResH264()
    train_items = _mixed_clips(train_clips(1), frames_each)
    test_items = _mixed_clips(test_clips(1)[:3], frames_each)

    package = generate_predictor(design, train_items, FlowConfig())
    records = build_job_records(design, package, test_items)

    vf = AsicVfModel.characterize(design.nominal_frequency)
    levels = build_level_table(vf, ASIC_VOLTAGES)
    energy = AsicEnergyModel.from_netlist(package.netlist)
    slice_energy = AsicEnergyModel.from_netlist(package.hw_slice.netlist)
    task = Task(design.name, config.deadline)

    train_records = [
        replace(records[0], index=i, actual_cycles=int(c), coarse_param=p)
        for i, (c, p) in enumerate(zip(
            package.train_matrix.cycles,
            (design.encode_job(item).coarse_param
             for item in train_items)))
    ]

    controllers = {
        "baseline": ConstantFrequencyController(levels),
        "table": TableBasedController.from_training(
            levels, config.t_switch, train_records),
        "prediction": PredictiveController(
            levels, config.t_switch, margin=config.prediction_margin),
    }
    episodes = {
        name: run_episode(ctrl, records, task, energy,
                          slice_energy_model=slice_energy,
                          t_switch=config.t_switch)
        for name, ctrl in controllers.items()
    }
    baseline = episodes["baseline"]
    return ResolutionResult(
        normalized_energy_pct={
            name: ep.normalized_energy(baseline) * 100
            for name, ep in episodes.items()
        },
        miss_rate_pct={
            name: ep.miss_rate * 100 for name, ep in episodes.items()
        },
        n_jobs=len(records),
    )


def to_text(result: ResolutionResult) -> str:
    """Render the result the way the paper's figure reads."""
    lines = [
        f"Extension: mixed-resolution h264 stream "
        f"({result.n_jobs} frames across {len(RESOLUTIONS)} resolutions)",
        f"  {'scheme':12s} {'energy%':>8s} {'miss%':>6s}",
    ]
    for name in ("baseline", "table", "prediction"):
        lines.append(
            f"  {name:12s} {result.normalized_energy_pct[name]:8.1f} "
            f"{result.miss_rate_pct[name]:6.2f}"
        )
    return "\n".join(lines)
