"""Shared evaluation harness: bundles, contexts, and scheme runs.

A :class:`BenchmarkBundle` holds everything expensive for one
benchmark — the design, the generated predictor, and ground-truth job
records for train and test workloads.  Bundles are cached per
(benchmark, scale) so the thirteen figures/tables reuse one simulation
pass instead of re-simulating per experiment (exactly how the paper's
evaluation reuses one set of RTL simulation traces).

A :class:`TechContext` specializes a bundle to ASIC or FPGA: level
table, energy models.  ``run_scheme`` executes one controller over the
test records and returns the figures' (energy, misses) cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..accelerators import get_design
from ..accelerators.base import AcceleratorDesign
from ..dvfs import (
    ASIC_VOLTAGES,
    AsicEnergyModel,
    AsicVfModel,
    ConstantFrequencyController,
    Controller,
    FPGA_VOLTAGES,
    FpgaEnergyModel,
    FpgaVfModel,
    HistoryController,
    IntervalGovernorController,
    LevelTable,
    OracleController,
    PidController,
    PredictiveController,
    TableBasedController,
    build_level_table,
)
from ..dvfs.energy import EnergyModel
from ..flow import (
    FlowConfig,
    GeneratedPredictor,
    build_job_records,
    generate_predictor,
)
from ..obs import span
from ..runtime import EpisodeResult, JobRecord, Task, run_episode
from ..workloads import BenchmarkWorkload, workload_for
from .setup import ExperimentConfig, default_config


@dataclass
class BenchmarkBundle:
    """One benchmark's expensive artefacts, shared across experiments."""

    design: AcceleratorDesign
    workload: BenchmarkWorkload
    package: GeneratedPredictor
    test_records: List[JobRecord]
    train_cycles: List[float]
    train_coarse: List[int]

    @property
    def name(self) -> str:
        return self.design.name


_BUNDLES: Dict[Tuple[str, float], BenchmarkBundle] = {}


def bundle_for(name: str, scale: Optional[float] = None,
               flow_config: FlowConfig = FlowConfig()) -> BenchmarkBundle:
    """Build (or fetch the cached) bundle for one benchmark."""
    if scale is None:
        scale = default_config().scale
    key = (name, scale)
    if key not in _BUNDLES:
        with span("bundle", benchmark=name, scale=scale):
            design = get_design(name)
            workload = workload_for(name, scale=scale)
            package = generate_predictor(design, workload.train,
                                         flow_config)
            with span("test_records", benchmark=name,
                      jobs=len(workload.test)):
                test_records = build_job_records(design, package,
                                                 workload.test)
            train_coarse = [
                design.encode_job(item).coarse_param
                for item in workload.train
            ]
        _BUNDLES[key] = BenchmarkBundle(
            design=design,
            workload=workload,
            package=package,
            test_records=test_records,
            train_cycles=[float(c) for c in package.train_matrix.cycles],
            train_coarse=train_coarse,
        )
    return _BUNDLES[key]


def clear_bundle_cache() -> None:
    """Drop all cached bundles (tests and memory pressure)."""
    _BUNDLES.clear()


@dataclass
class TechContext:
    """A bundle specialized to one implementation technology."""

    bundle: BenchmarkBundle
    tech: str  # "asic" | "fpga"
    levels: LevelTable
    energy_model: EnergyModel
    slice_energy_model: EnergyModel
    config: ExperimentConfig

    @property
    def name(self) -> str:
        return self.bundle.name

    def task(self, deadline: Optional[float] = None) -> Task:
        """A Task with the configured (or overridden) deadline."""
        return Task(self.bundle.name,
                    deadline if deadline is not None
                    else self.config.deadline)


def tech_context(bundle: BenchmarkBundle, tech: str = "asic",
                 config: Optional[ExperimentConfig] = None) -> TechContext:
    """Build the ASIC or FPGA evaluation context for a bundle."""
    config = config or default_config()
    f0 = bundle.design.nominal_frequency
    if tech == "asic":
        vf = AsicVfModel.characterize(f0)
        levels = build_level_table(vf, ASIC_VOLTAGES)
        energy = AsicEnergyModel.from_netlist(bundle.package.netlist)
        slice_energy = AsicEnergyModel.from_netlist(
            bundle.package.hw_slice.netlist)
    elif tech == "fpga":
        vf = FpgaVfModel(f_nominal=f0)
        levels = build_level_table(vf, FPGA_VOLTAGES)
        energy = FpgaEnergyModel.from_netlist(bundle.package.netlist)
        slice_energy = FpgaEnergyModel.from_netlist(
            bundle.package.hw_slice.netlist)
    else:
        raise ValueError(f"unknown tech {tech!r}")
    return TechContext(
        bundle=bundle, tech=tech, levels=levels,
        energy_model=energy, slice_energy_model=slice_energy,
        config=config,
    )


def make_controller(ctx: TechContext, scheme: str) -> Controller:
    """Instantiate one of the paper's schemes by name."""
    cfg = ctx.config
    if scheme == "baseline":
        return ConstantFrequencyController(ctx.levels)
    if scheme == "table":
        training = [
            JobRecord(index=i, actual_cycles=int(c),
                      activity=None or _dummy_activity(int(c)),
                      coarse_param=p)
            for i, (c, p) in enumerate(
                zip(ctx.bundle.train_cycles, ctx.bundle.train_coarse))
        ]
        return TableBasedController.from_training(
            ctx.levels, cfg.t_switch, training)
    if scheme == "pid":
        return PidController.tuned(
            ctx.levels, cfg.t_switch, ctx.bundle.train_cycles,
            margin=cfg.pid_margin)
    if scheme == "history":
        return HistoryController(ctx.levels, cfg.t_switch,
                                 margin=cfg.pid_margin)
    if scheme == "governor":
        return IntervalGovernorController(ctx.levels, cfg.t_switch)
    if scheme == "prediction":
        return PredictiveController(ctx.levels, cfg.t_switch,
                                    margin=cfg.prediction_margin)
    if scheme == "prediction_boost":
        return PredictiveController(ctx.levels, cfg.t_switch,
                                    margin=cfg.prediction_margin,
                                    boost=True)
    if scheme == "prediction_no_overhead":
        return PredictiveController(ctx.levels, cfg.t_switch,
                                    margin=cfg.prediction_margin,
                                    charge_overheads=False)
    if scheme == "oracle":
        return OracleController(ctx.levels)
    raise KeyError(f"unknown scheme {scheme!r}")


def _dummy_activity(cycles: int):
    from ..dvfs.energy import JobActivity
    return JobActivity(cycles=cycles)


def run_scheme(ctx: TechContext, scheme: str,
               deadline: Optional[float] = None) -> EpisodeResult:
    """Run one controller over the bundle's test jobs."""
    controller = make_controller(ctx, scheme)
    # fig18 passes a duck-typed records-only context without name/tech.
    with span("episode", benchmark=getattr(ctx, "name", "?"),
              scheme=scheme, tech=getattr(ctx, "tech", "?")):
        return run_episode(
            controller,
            ctx.bundle.test_records,
            ctx.task(deadline),
            ctx.energy_model,
            slice_energy_model=ctx.slice_energy_model,
            t_switch=ctx.config.t_switch,
        )
