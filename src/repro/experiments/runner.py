"""Shared evaluation harness: bundles, contexts, and scheme runs.

A :class:`BenchmarkBundle` holds everything expensive for one
benchmark — the design, the generated predictor, and ground-truth job
records for train and test workloads.  Bundles are cached per
(benchmark, scale) so the thirteen figures/tables reuse one simulation
pass instead of re-simulating per experiment (exactly how the paper's
evaluation reuses one set of RTL simulation traces).

A :class:`TechContext` specializes a bundle to ASIC or FPGA: level
table, energy models.  ``run_scheme`` executes one controller over the
test records and returns the figures' (energy, misses) cell.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..accelerators import get_design
from ..accelerators.base import AcceleratorDesign
from ..dvfs import (
    ASIC_VOLTAGES,
    AsicEnergyModel,
    AsicVfModel,
    ConstantFrequencyController,
    Controller,
    FPGA_VOLTAGES,
    FpgaEnergyModel,
    FpgaVfModel,
    HistoryController,
    IntervalGovernorController,
    LevelTable,
    OracleController,
    PidController,
    PredictiveController,
    TableBasedController,
    build_level_table,
)
from ..dvfs.energy import EnergyModel
from ..flow import (
    FlowConfig,
    GeneratedPredictor,
    build_job_records,
    generate_predictor,
)
from ..obs import get_observer, span
from ..parallel import (
    code_version,
    combine_fingerprints,
    design_hash,
    flow_config_fingerprint,
    get_cache,
    pmap,
    resolve_jobs,
    workload_fingerprint,
)
from ..runtime import EpisodeResult, JobRecord, Task, run_episode
from ..workloads import BenchmarkWorkload, workload_for
from .setup import ExperimentConfig, default_config


@dataclass
class BenchmarkBundle:
    """One benchmark's expensive artefacts, shared across experiments."""

    design: AcceleratorDesign
    workload: BenchmarkWorkload
    package: GeneratedPredictor
    test_records: List[JobRecord]
    train_cycles: List[float]
    train_coarse: List[int]

    @property
    def name(self) -> str:
        return self.design.name


#: In-memory bundle cache, keyed by (benchmark, scale, FlowConfig
#: fingerprint) — two calls that differ only in ``flow_config`` build
#: two bundles instead of silently sharing the first one.
_BUNDLES: Dict[Tuple[str, float, str], BenchmarkBundle] = {}


def _bundle_disk_key(name: str, scale: float, config_fp: str) -> str:
    # On-disk bundles additionally key on the design's structural hash
    # and the code version, so editing an accelerator or bumping the
    # cache schema orphans stale entries.
    return combine_fingerprints(
        design_hash(get_design(name).build()),
        workload_fingerprint(name, scale),
        config_fp,
        code_version(),
    )


def _build_bundle(name: str, scale: float, flow_config: FlowConfig,
                  workers: Optional[int]) -> BenchmarkBundle:
    with span("bundle", benchmark=name, scale=scale):
        design = get_design(name)
        workload = workload_for(name, scale=scale)
        package = generate_predictor(design, workload.train,
                                     flow_config, workers=workers)
        with span("test_records", benchmark=name,
                  jobs=len(workload.test)):
            test_records = build_job_records(design, package,
                                             workload.test)
        train_coarse = [
            design.encode_job(item).coarse_param
            for item in workload.train
        ]
    return BenchmarkBundle(
        design=design,
        workload=workload,
        package=package,
        test_records=test_records,
        train_cycles=[float(c) for c in package.train_matrix.cycles],
        train_coarse=train_coarse,
    )


def _bundle_from_disk(name: str, scale: float,
                      config_fp: str) -> Optional[BenchmarkBundle]:
    # Persistent-cache lookup (None when no cache is configured or the
    # entry is absent); a hit lands in the in-memory cache too.
    cache = get_cache()
    if cache is None:
        return None
    bundle = cache.get("bundle", _bundle_disk_key(name, scale, config_fp))
    if bundle is not None:
        observer = get_observer()
        if observer is not None:
            observer.metrics.inc("flow.bundle.cached")
        _BUNDLES[(name, scale, config_fp)] = bundle
    return bundle


def bundle_for(name: str, scale: Optional[float] = None,
               flow_config: FlowConfig = FlowConfig(),
               workers: Optional[int] = None) -> BenchmarkBundle:
    """Build (or fetch the cached) bundle for one benchmark.

    Lookup order: the in-memory cache, then — when a persistent cache
    is configured (``--cache-dir``/``REPRO_CACHE_DIR``) — the on-disk
    artifact store, and only then a fresh build (whose record stage
    and Lasso path honour ``workers``).  Freshly built bundles are
    written back to the persistent cache for the next process.
    """
    if scale is None:
        scale = default_config().scale
    config_fp = flow_config_fingerprint(flow_config)
    bundle = _BUNDLES.get((name, scale, config_fp))
    if bundle is not None:
        return bundle
    bundle = _bundle_from_disk(name, scale, config_fp)
    if bundle is not None:
        return bundle
    bundle = _build_bundle(name, scale, flow_config, workers)
    _BUNDLES[(name, scale, config_fp)] = bundle
    cache = get_cache()
    if cache is not None:
        cache.put("bundle", _bundle_disk_key(name, scale, config_fp),
                  bundle)
    return bundle


def _bundle_worker(scale: float, flow_config: FlowConfig,
                   name: str) -> BenchmarkBundle:
    # pmap worker for the bundle fan-out: inside the pool, bundle_for
    # runs serially (daemonic workers never nest pools) and still
    # consults/fills the shared on-disk cache.
    return bundle_for(name, scale, flow_config)


def prewarm_bundles(names: Iterable[str],
                    scale: Optional[float] = None,
                    flow_config: FlowConfig = FlowConfig(),
                    workers: Optional[int] = None
                    ) -> Dict[str, BenchmarkBundle]:
    """Build several benchmark bundles, fanning out across processes.

    Each bundle is an independent offline flow, so with ``workers > 1``
    they build concurrently; results land in the in-memory and (when
    configured) persistent caches, and subsequent ``bundle_for`` calls
    are hits.  Returns ``{name: bundle}`` in input order.
    """
    if scale is None:
        scale = default_config().scale
    names = list(dict.fromkeys(names))
    config_fp = flow_config_fingerprint(flow_config)
    # Drain the persistent cache in *this* process first, so warm-run
    # hits land in the session's own metrics, then fan out only the
    # bundles that genuinely need building.
    missing = [
        n for n in names
        if (n, scale, config_fp) not in _BUNDLES
        and _bundle_from_disk(n, scale, config_fp) is None
    ]
    n_workers = min(resolve_jobs(workers), max(len(missing), 1))
    if len(missing) > 1 and n_workers > 1:
        fn = functools.partial(_bundle_worker, scale, flow_config)
        built = pmap(fn, missing, jobs=n_workers, label="bundle.pmap")
        cache = get_cache()
        for name, bundle in zip(missing, built):
            _BUNDLES[(name, scale, config_fp)] = bundle
            if cache is not None:
                disk_key = _bundle_disk_key(name, scale, config_fp)
                if not cache.has("bundle", disk_key):
                    cache.put("bundle", disk_key, bundle)
    return {name: bundle_for(name, scale, flow_config)
            for name in names}


def clear_bundle_cache() -> None:
    """Drop all in-memory bundles (tests and memory pressure)."""
    _BUNDLES.clear()


@dataclass
class TechContext:
    """A bundle specialized to one implementation technology."""

    bundle: BenchmarkBundle
    tech: str  # "asic" | "fpga"
    levels: LevelTable
    energy_model: EnergyModel
    slice_energy_model: EnergyModel
    config: ExperimentConfig

    @property
    def name(self) -> str:
        return self.bundle.name

    def task(self, deadline: Optional[float] = None) -> Task:
        """A Task with the configured (or overridden) deadline."""
        return Task(self.bundle.name,
                    deadline if deadline is not None
                    else self.config.deadline)


def tech_context(bundle: BenchmarkBundle, tech: str = "asic",
                 config: Optional[ExperimentConfig] = None) -> TechContext:
    """Build the ASIC or FPGA evaluation context for a bundle."""
    config = config or default_config()
    f0 = bundle.design.nominal_frequency
    if tech == "asic":
        vf = AsicVfModel.characterize(f0)
        levels = build_level_table(vf, ASIC_VOLTAGES)
        energy = AsicEnergyModel.from_netlist(bundle.package.netlist)
        slice_energy = AsicEnergyModel.from_netlist(
            bundle.package.hw_slice.netlist)
    elif tech == "fpga":
        vf = FpgaVfModel(f_nominal=f0)
        levels = build_level_table(vf, FPGA_VOLTAGES)
        energy = FpgaEnergyModel.from_netlist(bundle.package.netlist)
        slice_energy = FpgaEnergyModel.from_netlist(
            bundle.package.hw_slice.netlist)
    else:
        raise ValueError(f"unknown tech {tech!r}")
    return TechContext(
        bundle=bundle, tech=tech, levels=levels,
        energy_model=energy, slice_energy_model=slice_energy,
        config=config,
    )


#: Every scheme name :func:`make_controller` accepts, in the figures'
#: presentation order.  ``repro check`` iterates this list when no
#: explicit subset is requested.
ALL_SCHEMES = (
    "baseline", "table", "pid", "history", "governor",
    "prediction", "prediction_boost", "prediction_no_overhead",
    "prediction_boost_no_overhead", "oracle",
)


def make_controller(ctx: TechContext, scheme: str) -> Controller:
    """Instantiate one of the paper's schemes by name."""
    cfg = ctx.config
    if scheme == "baseline":
        return ConstantFrequencyController(ctx.levels)
    if scheme == "table":
        training = [
            JobRecord(index=i, actual_cycles=int(c),
                      activity=None or _dummy_activity(int(c)),
                      coarse_param=p)
            for i, (c, p) in enumerate(
                zip(ctx.bundle.train_cycles, ctx.bundle.train_coarse))
        ]
        return TableBasedController.from_training(
            ctx.levels, cfg.t_switch, training)
    if scheme == "pid":
        return PidController.tuned(
            ctx.levels, cfg.t_switch, ctx.bundle.train_cycles,
            margin=cfg.pid_margin)
    if scheme == "history":
        return HistoryController(ctx.levels, cfg.t_switch,
                                 margin=cfg.pid_margin)
    if scheme == "governor":
        return IntervalGovernorController(ctx.levels, cfg.t_switch)
    if scheme == "prediction":
        return PredictiveController(ctx.levels, cfg.t_switch,
                                    margin=cfg.prediction_margin)
    if scheme == "prediction_boost":
        return PredictiveController(ctx.levels, cfg.t_switch,
                                    margin=cfg.prediction_margin,
                                    boost=True)
    if scheme == "prediction_no_overhead":
        return PredictiveController(ctx.levels, cfg.t_switch,
                                    margin=cfg.prediction_margin,
                                    charge_overheads=False)
    if scheme == "prediction_boost_no_overhead":
        return PredictiveController(ctx.levels, cfg.t_switch,
                                    margin=cfg.prediction_margin,
                                    boost=True, charge_overheads=False)
    if scheme == "oracle":
        return OracleController(ctx.levels)
    raise KeyError(f"unknown scheme {scheme!r}")


def _dummy_activity(cycles: int):
    from ..dvfs.energy import JobActivity
    return JobActivity(cycles=cycles)


def run_scheme(ctx: TechContext, scheme: str,
               deadline: Optional[float] = None,
               strict: Optional[bool] = None) -> EpisodeResult:
    """Run one controller over the bundle's test jobs.

    ``strict`` forwards to :func:`~repro.runtime.episode.run_episode`:
    ``True`` re-checks the episode's accounting invariants and raises
    on any violation, ``None`` defers to ``REPRO_CHECK``.
    """
    controller = make_controller(ctx, scheme)
    # fig18 passes a duck-typed records-only context without name/tech.
    with span("episode", benchmark=getattr(ctx, "name", "?"),
              scheme=scheme, tech=getattr(ctx, "tech", "?")):
        return run_episode(
            controller,
            ctx.bundle.test_records,
            ctx.task(deadline),
            ctx.energy_model,
            slice_energy_model=ctx.slice_energy_model,
            t_switch=ctx.config.t_switch,
            strict=strict,
        )
