"""Fig 11: normalized energy and deadline misses of baseline, PID and
prediction-based DVFS on the ASIC accelerators."""

from __future__ import annotations

from typing import List, Optional

from ..runtime import SchemeSummary, format_table
from .schemes import average_row, compare_schemes

SCHEMES = ("baseline", "pid", "prediction")


def run(scale: Optional[float] = None) -> List[SchemeSummary]:
    """Baseline/PID/prediction energy and misses (ASIC)."""
    return compare_schemes(SCHEMES, tech="asic", scale=scale)


def headline(summaries: List[SchemeSummary]) -> dict:
    """The paper's headline numbers: 36.7% savings, 0.4% misses for
    prediction; 10.5% misses and 4.3% worse energy for PID."""
    pred = average_row(summaries, "prediction")
    pid = average_row(summaries, "pid")
    return {
        "prediction_energy_savings_pct": pred.energy_savings_pct,
        "prediction_miss_pct": pred.miss_rate_pct,
        "pid_energy_savings_pct": pid.energy_savings_pct,
        "pid_miss_pct": pid.miss_rate_pct,
        "pid_energy_penalty_pct": (pid.normalized_energy_pct
                                   - pred.normalized_energy_pct),
    }


def to_text(summaries: List[SchemeSummary]) -> str:
    """Render the result the way the paper's figure reads."""
    head = headline(summaries)
    return (
        "Fig 11: ASIC normalized energy (% of baseline) and deadline "
        "misses (%)\n"
        + format_table(summaries)
        + "\n"
        + f"headline: prediction saves "
          f"{head['prediction_energy_savings_pct']:.1f}% energy with "
          f"{head['prediction_miss_pct']:.2f}% misses; PID misses "
          f"{head['pid_miss_pct']:.1f}% and burns "
          f"{head['pid_energy_penalty_pct']:.1f}% more energy "
          f"(paper: 36.7%, 0.4%, 10.5%, 4.3%)"
    )
