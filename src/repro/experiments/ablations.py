"""Ablation studies on the framework's design choices.

These go beyond the paper's figures and quantify the knobs DESIGN.md
calls out:

* ``alpha_sweep`` — the under-prediction penalty weight of the convex
  objective vs. miss rate and energy;
* ``gamma_sweep`` — the Lasso weight vs. feature count, accuracy and
  slice area;
* ``margin_sweep`` — the prediction margin vs. misses and energy;
* ``switching_time_sweep`` — DVFS switching overhead (the paper's
  Sec. 4.2 notes ns-scale switching exists in the literature);
* ``elision_benefit`` — slice execution time with vs. without the
  wait-state elision optimization of Sec. 3.5.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

import numpy as np

from ..analysis import FeatureSet
from ..dvfs import PredictiveController
from ..model import (
    PredictionReport,
    TrainingConfig,
    fit_predictor,
)
from ..rtl import make_simulation, tech
from ..rtl.transform import derive_module
from ..runtime import run_episode
from ..slicing import build_slice
from .runner import BenchmarkBundle, bundle_for, run_scheme, tech_context
from .setup import default_config


def _records_with_predictor(bundle: BenchmarkBundle, predictor
                            ) -> List:
    """Re-predict stored test records from their recorded features.

    Slice cycle counts are kept from the reference slice — the ablated
    model would select a slightly different slice, but its runtime is
    dominated by feeds-control work that never changes.
    """
    out = []
    for record in bundle.test_records:
        predicted = max(predictor.predict_one(record.features), 0.0)
        out.append(replace(record, predicted_cycles=predicted))
    return out


def _episode_with_records(ctx, records, scheme: str = "prediction"):
    from .fig18_hls import TechRecords
    return run_scheme(TechRecords(ctx, records), scheme)


@dataclass(frozen=True)
class AlphaPoint:
    alpha: float
    under_rate_pct: float      # fraction of jobs under-predicted
    miss_rate_pct: float
    normalized_energy_pct: float


def alpha_sweep(benchmark: str = "djpeg",
                alphas: Sequence[float] = (1.0, 2.0, 8.0, 30.0, 100.0),
                scale: Optional[float] = None) -> List[AlphaPoint]:
    """Retrain with different under-prediction weights; replay DVFS."""
    bundle = bundle_for(benchmark, scale)
    ctx = tech_context(bundle, tech="asic")
    baseline = run_scheme(ctx, "baseline")
    points = []
    for alpha in alphas:
        model = fit_predictor(bundle.package.train_matrix,
                              TrainingConfig(alpha=alpha, gamma=1e-4))
        records = _records_with_predictor(bundle, model.predictor)
        predicted = np.array([r.predicted_cycles for r in records])
        actual = np.array([float(r.actual_cycles) for r in records])
        report = PredictionReport.from_predictions(predicted, actual)
        episode = _episode_with_records(ctx, records)
        points.append(AlphaPoint(
            alpha=alpha,
            under_rate_pct=report.under_rate * 100,
            miss_rate_pct=episode.miss_rate * 100,
            normalized_energy_pct=episode.normalized_energy(baseline) * 100,
        ))
    return points


@dataclass(frozen=True)
class GammaPoint:
    gamma: float
    n_features: int
    mean_abs_error_pct: float
    slice_area_fraction: float


def gamma_sweep(benchmark: str = "h264",
                gammas: Sequence[float] = (1e-6, 1e-4, 1e-3, 1e-2, 1e-1),
                scale: Optional[float] = None) -> List[GammaPoint]:
    """Sparsity/accuracy/area trade-off along the Lasso path."""
    bundle = bundle_for(benchmark, scale)
    package = bundle.package
    full_area = tech.asic_area(package.netlist)
    points = []
    for gamma in gammas:
        model = fit_predictor(package.train_matrix,
                              TrainingConfig(alpha=8.0, gamma=gamma))
        records = _records_with_predictor(bundle, model.predictor)
        predicted = np.array([r.predicted_cycles for r in records])
        actual = np.array([float(r.actual_cycles) for r in records])
        report = PredictionReport.from_predictions(predicted, actual)
        selected = [package.feature_set.specs[i]
                    for i in model.predictor.selected_indices]
        hw_slice = build_slice(package.module, FeatureSet(selected))
        points.append(GammaPoint(
            gamma=gamma,
            n_features=model.predictor.n_terms,
            mean_abs_error_pct=report.mean_abs_pct,
            slice_area_fraction=tech.asic_area(hw_slice.netlist)
            / full_area,
        ))
    return points


@dataclass(frozen=True)
class MarginPoint:
    margin_pct: float
    miss_rate_pct: float
    normalized_energy_pct: float


def margin_sweep(benchmark: str = "md",
                 margins: Sequence[float] = (0.0, 0.02, 0.05, 0.10, 0.15),
                 scale: Optional[float] = None) -> List[MarginPoint]:
    """Prediction margin vs misses and energy (paper uses 5%)."""
    bundle = bundle_for(benchmark, scale)
    ctx = tech_context(bundle, tech="asic")
    baseline = run_scheme(ctx, "baseline")
    config = default_config()
    points = []
    for margin in margins:
        controller = PredictiveController(ctx.levels, config.t_switch,
                                          margin=margin)
        episode = run_episode(
            controller, bundle.test_records, ctx.task(),
            ctx.energy_model, slice_energy_model=ctx.slice_energy_model,
            t_switch=config.t_switch,
        )
        points.append(MarginPoint(
            margin_pct=margin * 100,
            miss_rate_pct=episode.miss_rate * 100,
            normalized_energy_pct=episode.normalized_energy(baseline) * 100,
        ))
    return points


@dataclass(frozen=True)
class SwitchPoint:
    t_switch_us: float
    miss_rate_pct: float
    normalized_energy_pct: float


def switching_time_sweep(benchmark: str = "md",
                         times_us: Sequence[float] = (0.05, 1.0, 10.0,
                                                      100.0, 500.0),
                         scale: Optional[float] = None
                         ) -> List[SwitchPoint]:
    """Faster regulators (Sec. 4.2's ns-scale switching) vs 100 us."""
    bundle = bundle_for(benchmark, scale)
    ctx = tech_context(bundle, tech="asic")
    config = default_config()
    points = []
    for t_us in times_us:
        t_switch = t_us * 1e-6
        controller = PredictiveController(ctx.levels, t_switch,
                                          margin=config.prediction_margin)
        baseline = run_scheme(ctx, "baseline")
        episode = run_episode(
            controller, bundle.test_records, ctx.task(),
            ctx.energy_model, slice_energy_model=ctx.slice_energy_model,
            t_switch=t_switch,
        )
        points.append(SwitchPoint(
            t_switch_us=t_us,
            miss_rate_pct=episode.miss_rate * 100,
            normalized_energy_pct=episode.normalized_energy(baseline) * 100,
        ))
    return points


@dataclass(frozen=True)
class ElisionResult:
    benchmark: str
    slice_cycles_with_elision: int
    slice_cycles_without_elision: int

    @property
    def speedup(self) -> float:
        return (self.slice_cycles_without_elision
                / max(self.slice_cycles_with_elision, 1))


def elision_benefit(benchmark: str = "h264",
                    scale: Optional[float] = None,
                    n_jobs: int = 3) -> ElisionResult:
    """Slice runtime with and without wait-state elision (Sec. 3.5).

    The un-elided variant keeps every wait state (the FSM "still waits
    ... as if the original computation is still taking place").
    """
    bundle = bundle_for(benchmark, scale)
    package = bundle.package
    hw_slice = package.hw_slice

    unelided = derive_module(
        package.module,
        name=f"{benchmark}__slice_unelided",
        drop_dynamic=hw_slice.elided_dynamic,  # opaque stalls still go
        drop_datapath=True,
    )
    with_e = without_e = 0
    for item in bundle.workload.test[:n_jobs]:
        job = bundle.design.encode_job(item)
        sim = make_simulation(hw_slice.module, track_state_cycles=False)
        sim.load(*job.as_pair())
        with_e += sim.run().cycles
        sim = make_simulation(unelided, track_state_cycles=False)
        sim.load(*job.as_pair())
        without_e += sim.run().cycles
    return ElisionResult(
        benchmark=benchmark,
        slice_cycles_with_elision=with_e,
        slice_cycles_without_elision=without_e,
    )
