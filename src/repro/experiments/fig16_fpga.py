"""Fig 16: FPGA (Kintex-7) normalized energy and deadline misses."""

from __future__ import annotations

from typing import List, Optional

from ..runtime import SchemeSummary, format_table
from .schemes import average_row, compare_schemes

SCHEMES = ("baseline", "pid", "prediction")


def run(scale: Optional[float] = None) -> List[SchemeSummary]:
    """Baseline/PID/prediction on the FPGA models."""
    return compare_schemes(SCHEMES, tech="fpga", scale=scale)


def headline(summaries: List[SchemeSummary]) -> dict:
    """The figure's headline quantities as a dict."""
    pred = average_row(summaries, "prediction")
    return {
        "prediction_energy_savings_pct": pred.energy_savings_pct,
        "prediction_miss_pct": pred.miss_rate_pct,
    }


def to_text(summaries: List[SchemeSummary]) -> str:
    """Render the result the way the paper's figure reads."""
    head = headline(summaries)
    return (
        "Fig 16: FPGA normalized energy (% of baseline) and misses (%)\n"
        + format_table(summaries)
        + "\n"
        + f"headline: prediction saves "
          f"{head['prediction_energy_savings_pct']:.1f}% with "
          f"{head['prediction_miss_pct']:.2f}% misses "
          f"(paper: 35.9% and 0.4%)"
    )
