"""Extension: workload taxonomy vs controller outcomes.

Sec. 2.4 of the paper sorts workloads by how reactive control copes:
"applications whose execution time varies slowly with time" are fine;
"rapid changes in job-to-job execution time" defeat it; uncorrelated
streams make it pointless.  This experiment *measures* each
benchmark's workload statistics (spread, lag-1 autocorrelation, spike
rate — :mod:`repro.workloads.characterize`) and places them next to
the PID-vs-prediction miss gap on the same jobs, making the taxonomy
quantitative: the spikier and less correlated the workload, the larger
the reactive scheme's miss penalty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..workloads import ALL_BENCHMARKS, workload_for
from ..workloads.characterize import WorkloadProfile, characterize
from .runner import bundle_for, run_scheme, tech_context
from .setup import default_config


@dataclass(frozen=True)
class TaxonomyRow:
    """One benchmark: workload statistics plus controller outcomes."""

    benchmark: str
    profile: WorkloadProfile
    pid_miss_pct: float
    prediction_miss_pct: float

    @property
    def reactive_penalty_pct(self) -> float:
        """Extra misses reactive control pays on this workload."""
        return self.pid_miss_pct - self.prediction_miss_pct


def run(scale: Optional[float] = None) -> List[TaxonomyRow]:
    """Profile each workload and measure the reactive miss penalty."""
    config = default_config()
    if scale is None:
        scale = config.scale
    rows: List[TaxonomyRow] = []
    for name in ALL_BENCHMARKS:
        profile = characterize(workload_for(name, scale=scale).test)
        ctx = tech_context(bundle_for(name, scale), tech="asic",
                           config=config)
        pid = run_scheme(ctx, "pid")
        prediction = run_scheme(ctx, "prediction")
        rows.append(TaxonomyRow(
            benchmark=name,
            profile=profile,
            pid_miss_pct=pid.miss_rate * 100,
            prediction_miss_pct=prediction.miss_rate * 100,
        ))
    return rows


def to_text(rows: List[TaxonomyRow]) -> str:
    """Render the result the way the paper's figure reads."""
    lines = [
        "Extension: workload taxonomy vs reactive-control penalty",
        f"  {'bench':8s} {'cv':>6s} {'lag1':>6s} {'spike%':>7s} "
        f"{'pid miss%':>10s} {'pred miss%':>11s} {'penalty':>8s}",
    ]
    for r in rows:
        p = r.profile
        lines.append(
            f"  {r.benchmark:8s} {p.cv:6.2f} {p.lag1_autocorr:6.2f} "
            f"{p.spike_rate * 100:7.2f} {r.pid_miss_pct:10.2f} "
            f"{r.prediction_miss_pct:11.2f} "
            f"{r.reactive_penalty_pct:8.2f}"
        )
    return "\n".join(lines)
