"""Shared scheme-comparison harness for Figs 11, 13, 14, 15, 16."""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..runtime import SchemeSummary, average_summaries, summarize
from ..workloads import ALL_BENCHMARKS
from .runner import bundle_for, run_scheme, tech_context
from .setup import default_config


def compare_schemes(schemes: Sequence[str],
                    tech: str = "asic",
                    scale: Optional[float] = None,
                    deadline_factor: float = 1.0,
                    benchmarks: Sequence[str] = ALL_BENCHMARKS
                    ) -> List[SchemeSummary]:
    """Run each scheme on each benchmark; energy normalized to the
    baseline run on the same jobs and deadline.  Appends the figures'
    'average' row per scheme."""
    config = default_config()
    deadline = config.deadline * deadline_factor
    summaries: List[SchemeSummary] = []
    for name in benchmarks:
        ctx = tech_context(bundle_for(name, scale), tech=tech,
                           config=config)
        baseline = run_scheme(ctx, "baseline", deadline=deadline)
        for scheme in schemes:
            if scheme == "baseline":
                result = baseline
            else:
                result = run_scheme(ctx, scheme, deadline=deadline)
            summaries.append(summarize(name, result, baseline))
    for scheme in schemes:
        summaries.append(average_summaries(summaries, scheme))
    return summaries


def average_row(summaries: Sequence[SchemeSummary],
                scheme: str) -> SchemeSummary:
    """The 'average' summary row for one scheme."""
    for s in summaries:
        if s.benchmark == "average" and s.scheme == scheme:
            return s
    raise KeyError(f"no average row for {scheme!r}")
