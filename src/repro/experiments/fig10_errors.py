"""Fig 10: box-and-whisker prediction-error statistics per benchmark."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..model import BoxStats, PredictionReport
from ..workloads import ALL_BENCHMARKS
from .runner import bundle_for


@dataclass(frozen=True)
class Fig10Result:
    reports: Dict[str, PredictionReport]

    def box(self, benchmark: str) -> BoxStats:
        """The Fig 10 box statistics for one benchmark."""
        return self.reports[benchmark].box


def run(scale: Optional[float] = None) -> Fig10Result:
    """Prediction-error statistics per benchmark."""
    reports: Dict[str, PredictionReport] = {}
    for name in ALL_BENCHMARKS:
        bundle = bundle_for(name, scale)
        predicted = np.array(
            [r.predicted_cycles for r in bundle.test_records])
        actual = np.array(
            [r.actual_cycles for r in bundle.test_records], dtype=float)
        reports[name] = PredictionReport.from_predictions(predicted, actual)
    return Fig10Result(reports=reports)


def to_text(result: Fig10Result) -> str:
    """Render the result the way the paper's figure reads."""
    lines = [
        "Fig 10: slice-based prediction error (%); positive = over-predict",
        f"  {'bench':8s} {'q1':>6s} {'med':>6s} {'q3':>6s} "
        f"{'lo':>6s} {'hi':>6s} {'worst-under':>11s} {'outliers':>8s}",
    ]
    for name, report in result.reports.items():
        box = report.box
        lines.append(
            f"  {name:8s} {box.q1:6.2f} {box.median:6.2f} {box.q3:6.2f} "
            f"{box.whisker_low:6.2f} {box.whisker_high:6.2f} "
            f"{report.max_under_pct:11.2f} {len(box.outliers):8d}"
        )
    return "\n".join(lines)
