"""Canonical experimental configuration (Sec. 4.2 of the paper).

* deadline: 16.7 ms (60 fps screen refresh);
* ASIC: six voltage levels 1.0 -> 0.625 V; FPGA: seven, 1.0 -> 0.7 V;
* boost level: 1.08 V;
* DVFS switching time: 100 us (conservative, off-chip regulator);
* margins: 10% for the PID controller, 5% for prediction;
* workload scale: 1.0 reproduces the (laptop-sized) Table 3 workloads;
  override with the ``REPRO_SCALE`` environment variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..units import DVFS_SWITCH_TIME, FRAME_DEADLINE_60FPS

PID_MARGIN = 0.10
PREDICTION_MARGIN = 0.05


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared evaluation parameters."""

    deadline: float = FRAME_DEADLINE_60FPS
    t_switch: float = DVFS_SWITCH_TIME
    pid_margin: float = PID_MARGIN
    prediction_margin: float = PREDICTION_MARGIN
    scale: float = 1.0


def default_scale() -> float:
    """Workload scale, overridable via ``REPRO_SCALE``."""
    raw = os.environ.get("REPRO_SCALE", "")
    if not raw:
        return 1.0
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"REPRO_SCALE must be a number, got {raw!r}")
    if value <= 0:
        raise ValueError("REPRO_SCALE must be positive")
    return value


def default_config() -> ExperimentConfig:
    """The canonical configuration at the ambient workload scale."""
    return ExperimentConfig(scale=default_scale())
