"""Fig 12 (ASIC) / Fig 17 (FPGA): slice area/resource, energy and time
overheads of the prediction slice."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..dvfs.energy import JobActivity
from ..workloads import ALL_BENCHMARKS
from .runner import bundle_for, tech_context
from .setup import default_config


@dataclass(frozen=True)
class OverheadRow:
    benchmark: str
    area_pct: float        # slice area (ASIC) or avg resources (FPGA), %
    energy_pct: float      # slice energy / job energy at nominal, %
    time_pct: float        # slice time / deadline budget, %


def run(scale: Optional[float] = None,
        tech: str = "asic") -> List[OverheadRow]:
    """Slice area/energy/time overheads per benchmark."""
    config = default_config()
    rows: List[OverheadRow] = []
    for name in ALL_BENCHMARKS:
        bundle = bundle_for(name, scale)
        ctx = tech_context(bundle, tech=tech, config=config)
        f0 = ctx.levels.nominal.frequency
        nominal = ctx.levels.nominal
        energy_ratios = []
        time_fracs = []
        for record in bundle.test_records:
            t_slice = record.slice_cycles / f0
            t_job = record.actual_cycles / f0
            e_slice = ctx.slice_energy_model.job_energy(
                JobActivity(cycles=record.slice_cycles), nominal, t_slice)
            e_job = ctx.energy_model.job_energy(
                record.activity, nominal, t_job)
            energy_ratios.append(e_slice / e_job)
            time_fracs.append(t_slice / config.deadline)
        cost = bundle.package.slice_cost
        if tech == "asic":
            area_pct = cost.area_fraction * 100.0
        else:
            area_pct = cost.resource_fraction * 100.0
        rows.append(OverheadRow(
            benchmark=name,
            area_pct=area_pct,
            energy_pct=100.0 * sum(energy_ratios) / len(energy_ratios),
            time_pct=100.0 * sum(time_fracs) / len(time_fracs),
        ))
    rows.append(OverheadRow(
        benchmark="average",
        area_pct=sum(r.area_pct for r in rows) / len(rows),
        energy_pct=sum(r.energy_pct for r in rows) / len(rows),
        time_pct=sum(r.time_pct for r in rows) / len(rows),
    ))
    return rows


def to_text(rows: List[OverheadRow], tech: str = "asic") -> str:
    """Render the result the way the paper's figure reads."""
    label = "area" if tech == "asic" else "resources"
    fig = "Fig 12" if tech == "asic" else "Fig 17"
    lines = [
        f"{fig}: prediction-slice overheads ({tech.upper()})",
        f"  {'bench':8s} {f'slice {label} %':>14s} {'slice energy %':>14s} "
        f"{'slice time %':>13s}",
    ]
    for r in rows:
        lines.append(
            f"  {r.benchmark:8s} {r.area_pct:14.2f} {r.energy_pct:14.2f} "
            f"{r.time_pct:13.2f}"
        )
    return "\n".join(lines)
