"""Table 3: summary of benchmarks and workloads."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..accelerators import get_design
from ..workloads import ALL_BENCHMARKS, workload_for
from .setup import default_config


@dataclass(frozen=True)
class Table3Row:
    benchmark: str
    description: str
    task: str
    train_workload: str
    test_workload: str


def run(scale: Optional[float] = None) -> List[Table3Row]:
    """Benchmark/workload summary rows."""
    scale = scale if scale is not None else default_config().scale
    rows = []
    for name in ALL_BENCHMARKS:
        design = get_design(name)
        workload = workload_for(name, scale=scale)
        rows.append(Table3Row(
            benchmark=name,
            description=design.description,
            task=design.task_description,
            train_workload=workload.train_description,
            test_workload=workload.test_description,
        ))
    return rows


def to_text(rows: List[Table3Row]) -> str:
    """Render the result the way the paper's figure reads."""
    header = ("Bmark.", "Description", "Task", "Workload (Train)",
              "Workload (Test)")
    table = [header] + [
        (r.benchmark, r.description, r.task, r.train_workload,
         r.test_workload)
        for r in rows
    ]
    widths = [max(len(row[i]) for row in table) for i in range(len(header))]
    return "\n".join(
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
        for row in table
    )
