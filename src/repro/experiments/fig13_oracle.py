"""Fig 13: prediction with overheads removed, against the oracle."""

from __future__ import annotations

from typing import List, Optional

from ..runtime import SchemeSummary, format_table
from .schemes import average_row, compare_schemes

SCHEMES = ("prediction", "prediction_no_overhead", "oracle")


def run(scale: Optional[float] = None) -> List[SchemeSummary]:
    """Overhead-free prediction vs the oracle."""
    return compare_schemes(SCHEMES, tech="asic", scale=scale)


def headline(summaries: List[SchemeSummary]) -> dict:
    """The figure's headline quantities as a dict."""
    pred = average_row(summaries, "prediction")
    no_ovh = average_row(summaries, "prediction_no_overhead")
    oracle = average_row(summaries, "oracle")
    return {
        "prediction_energy_pct": pred.normalized_energy_pct,
        "no_overhead_energy_pct": no_ovh.normalized_energy_pct,
        "oracle_energy_pct": oracle.normalized_energy_pct,
        "overhead_cost_pct": (pred.normalized_energy_pct
                              - no_ovh.normalized_energy_pct),
        "gap_to_oracle_pct": (no_ovh.normalized_energy_pct
                              - oracle.normalized_energy_pct),
        "no_overhead_miss_pct": no_ovh.miss_rate_pct,
        "oracle_miss_pct": oracle.miss_rate_pct,
    }


def to_text(summaries: List[SchemeSummary]) -> str:
    """Render the result the way the paper's figure reads."""
    head = headline(summaries)
    return (
        "Fig 13: removing slice/DVFS-switch overheads, vs the oracle\n"
        + format_table(summaries)
        + "\n"
        + f"headline: overheads cost {head['overhead_cost_pct']:.1f}% "
          f"energy; overhead-free prediction is "
          f"{head['gap_to_oracle_pct']:.1f}% from oracle "
          f"(paper: 3.1% and 0.7%)"
    )
