"""Terminal charts: render figure data as unicode bar/line charts.

The paper's figures are grouped bar charts and line plots.  This
module reproduces their *shape* in a terminal so `python -m repro
report` and the examples can show results without a plotting stack
(the environment is offline; matplotlib is unavailable by design).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

_BLOCKS = " ▏▎▍▌▋▊▉█"


def hbar(value: float, max_value: float, width: int = 40) -> str:
    """One horizontal bar scaled to ``max_value``."""
    if max_value <= 0:
        return ""
    fraction = max(min(value / max_value, 1.0), 0.0)
    whole, frac = divmod(fraction * width, 1)
    bar = "█" * int(whole)
    partial_index = int(frac * (len(_BLOCKS) - 1))
    if partial_index:
        bar += _BLOCKS[partial_index]
    return bar


def grouped_bars(groups: Mapping[str, Mapping[str, float]],
                 unit: str = "%", width: int = 40) -> str:
    """A grouped bar chart: ``groups[group][series] = value``.

    Mirrors the paper's per-benchmark bar groups (Figs 11-17).
    """
    if not groups:
        return "(no data)"
    max_value = max(
        value for series in groups.values() for value in series.values()
    )
    label_w = max(
        (len(s) for series in groups.values() for s in series), default=1
    )
    lines: List[str] = []
    for group, series in groups.items():
        lines.append(f"{group}:")
        for name, value in series.items():
            bar = hbar(value, max_value, width)
            lines.append(
                f"  {name:<{label_w}s} {bar} {value:.1f}{unit}"
            )
    return "\n".join(lines)


def line_chart(series: Mapping[str, Sequence[Tuple[float, float]]],
               height: int = 12, width: int = 60,
               markers: str = "ox+*#") -> str:
    """Multiple (x, y) series on one character grid (Fig 15 style)."""
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, pts), marker in zip(series.items(), markers):
        for x, y in pts:
            col = int((x - x_lo) / x_span * (width - 1))
            row = int((y - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = [f"{y_hi:10.1f} ┤" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_lo:10.1f} ┤" + "".join(grid[-1]))
    lines.append(" " * 12 + f"{x_lo:<8.2g}" + " " * (width - 16)
                 + f"{x_hi:>8.2g}")
    legend = "  ".join(
        f"{marker}={name}" for (name, _), marker
        in zip(series.items(), markers)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def fig11_chart(summaries) -> str:
    """Render Fig 11-style scheme summaries as grouped bars."""
    groups: Dict[str, Dict[str, float]] = {}
    for s in summaries:
        groups.setdefault(s.benchmark, {})[s.scheme] = \
            s.normalized_energy_pct
    return grouped_bars(groups, unit="%")


def fig15_chart(points) -> str:
    """Render Fig 15 deadline-sensitivity points as a line chart."""
    series: Dict[str, List[Tuple[float, float]]] = {}
    for p in points:
        series.setdefault(p.scheme, []).append(
            (p.deadline_factor, p.normalized_energy_pct))
    return line_chart(series)
