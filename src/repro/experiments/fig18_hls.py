"""Figs 18 and 19: slicing at RTL level vs HLS level (md, stencil).

For each of md and stencil we build two predictors over the *same*
trained model: the RTL hardware slice (what the main evaluation uses)
and an HLS slice obtained by program-slicing the accelerator's C
version and scheduling it with pipelining/unrolling.  The HLS slice
computes identical features (a property the tests check), so the
prediction accuracy matches — but it finishes far sooner, which
removes the deadline misses caused by insufficient time budget after
slice execution (Fig 18), and its operator inventory prices the
alternative area/energy overheads (Fig 19).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

import numpy as np

from ..accelerators.hls_models import HLS_PROGRAMS
from ..dvfs.energy import JobActivity
from ..model import BoxStats, percent_errors
from ..rtl import tech
from ..rtl.netlist import Cell, Provenance
from ..runtime import JobRecord
from ..slicing.hls import HlsSlicePredictor
from .runner import BenchmarkBundle, bundle_for, run_scheme, tech_context
from .setup import default_config

HLS_BENCHMARKS = ("md", "stencil")
#: Extra control cells every HLS slice carries (model MACs, registers).
_HLS_OVERHEAD_CELLS = {"MUL": 2, "ADD": 4, "DFF": 12, "MUX": 8}


@dataclass(frozen=True)
class VariantResult:
    """One bar group of Figs 18/19 (e.g. ``md-hls``)."""

    label: str                 # "md-rtl", "md-hls", ...
    error_box: BoxStats
    miss_rate_pct: float
    area_pct: float            # slice area vs full accelerator (ASIC)
    energy_pct: float          # slice energy vs job energy
    time_pct: float            # slice time vs deadline budget


def _hls_cells(predictor: HlsSlicePredictor) -> List[Cell]:
    inventory = dict(predictor.schedule.cells())
    for kind, count in _HLS_OVERHEAD_CELLS.items():
        inventory[kind] = inventory.get(kind, 0) + count
    cells = []
    for cid, (kind, count) in enumerate(sorted(inventory.items())):
        cells.append(Cell(
            cid=cid, kind=kind, out=f"hls__{kind}", fanin=(),
            width=24, count=count,
            provenance=Provenance("datapath", "hls_slice", kind),
        ))
    return cells


def _hls_records(bundle: BenchmarkBundle,
                 predictor: HlsSlicePredictor) -> List[JobRecord]:
    """Test records with the HLS slice's predictions and timings."""
    package = bundle.package
    names = package.feature_set.names()
    records = []
    for item, record in zip(bundle.workload.test, bundle.test_records):
        job = bundle.design.encode_job(item)
        values, cycles = predictor.run(job.inputs, job.memories)
        vector = np.array([values.get(name, 0.0) for name in names])
        predicted = max(package.predictor.predict_one(vector), 0.0)
        records.append(replace(record, predicted_cycles=predicted,
                               slice_cycles=cycles))
    return records


def build_hls_predictor(bundle: BenchmarkBundle,
                        unroll: int = 4) -> HlsSlicePredictor:
    """Program-slice the benchmark's C version to the selected features."""
    program, mapping = HLS_PROGRAMS[bundle.name]()
    selected = set(bundle.package.predictor.selected_features)
    wanted = {feat: var for feat, var in mapping.items()
              if feat in selected}
    if not wanted:  # intercept-only model: slice still needs *something*
        wanted = dict(list(mapping.items())[:1])
    return HlsSlicePredictor.build(program, wanted, unroll=unroll)


def run(scale: Optional[float] = None) -> List[VariantResult]:
    """RTL vs HLS slicing variants for md and stencil."""
    config = default_config()
    results: List[VariantResult] = []
    for name in HLS_BENCHMARKS:
        bundle = bundle_for(name, scale)
        ctx = tech_context(bundle, tech="asic", config=config)
        hls_predictor = build_hls_predictor(bundle)
        hls_cells = _hls_cells(hls_predictor)
        hls_area = sum(tech.asic_cell_area(c) for c in hls_cells)
        hls_energy_per_cycle = sum(
            tech.asic_switch_energy_per_cycle(c) for c in hls_cells)
        full_area = tech.asic_area(bundle.package.netlist)

        for variant in ("rtl", "hls"):
            if variant == "rtl":
                records = bundle.test_records
                area_pct = bundle.package.slice_cost.area_fraction * 100
            else:
                records = _hls_records(bundle, hls_predictor)
                area_pct = hls_area / full_area * 100
            f0 = ctx.levels.nominal.frequency
            nominal = ctx.levels.nominal
            errors = percent_errors(
                np.array([r.predicted_cycles for r in records]),
                np.array([float(r.actual_cycles) for r in records]))
            energy_ratios = []
            time_fracs = []
            for record in records:
                t_slice = record.slice_cycles / f0
                e_job = ctx.energy_model.job_energy(
                    record.activity, nominal, record.actual_cycles / f0)
                if variant == "rtl":
                    e_slice = ctx.slice_energy_model.job_energy(
                        JobActivity(cycles=record.slice_cycles),
                        nominal, t_slice)
                else:
                    vr = nominal.voltage
                    e_slice = (hls_energy_per_cycle * record.slice_cycles
                               * vr * vr
                               + tech.asic_leakage_power(hls_area) * t_slice)
                energy_ratios.append(e_slice / e_job)
                time_fracs.append(t_slice / config.deadline)

            ctx_records = TechRecords(ctx, records)
            episode = run_scheme(ctx_records, "prediction")
            results.append(VariantResult(
                label=f"{name}-{variant}",
                error_box=BoxStats.from_samples(errors),
                miss_rate_pct=episode.miss_rate * 100.0,
                area_pct=area_pct,
                energy_pct=100 * float(np.mean(energy_ratios)),
                time_pct=100 * float(np.mean(time_fracs)),
            ))
    return results


class TechRecords:
    """A TechContext proxy whose bundle serves substituted records."""

    def __init__(self, ctx, records):
        self._ctx = ctx
        self.bundle = _BundleProxy(ctx.bundle, records)
        self.tech = ctx.tech
        self.levels = ctx.levels
        self.energy_model = ctx.energy_model
        self.slice_energy_model = ctx.slice_energy_model
        self.config = ctx.config

    def task(self, deadline=None):
        """Delegate to the wrapped context's task factory."""
        return self._ctx.task(deadline)


class _BundleProxy:
    def __init__(self, bundle, records):
        self.design = bundle.design
        self.workload = bundle.workload
        self.package = bundle.package
        self.test_records = records
        self.train_cycles = bundle.train_cycles
        self.train_coarse = bundle.train_coarse
        self.name = bundle.name


def to_text(results: List[VariantResult]) -> str:
    """Render the result the way the paper's figure reads."""
    lines = [
        "Figs 18/19: RTL-level vs HLS-level slicing (md, stencil)",
        f"  {'variant':12s} {'err med%':>8s} {'err hi%':>8s} "
        f"{'miss%':>6s} {'area%':>6s} {'energy%':>8s} {'time%':>6s}",
    ]
    for r in results:
        lines.append(
            f"  {r.label:12s} {r.error_box.median:8.2f} "
            f"{r.error_box.whisker_high:8.2f} {r.miss_rate_pct:6.2f} "
            f"{r.area_pct:6.2f} {r.energy_pct:8.3f} {r.time_pct:6.2f}"
        )
    return "\n".join(lines)
