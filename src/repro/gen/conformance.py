"""Differential conformance: prove the whole stack on sampled designs.

The harness behind ``repro conform``.  For every design drawn by
:func:`repro.gen.sampler.sample_design` it runs an ordered battery of
checks spanning every layer of the repository:

1. ``lint`` — :func:`repro.rtl.lint_module` reports no errors;
2. ``verilog`` — :func:`repro.rtl.to_verilog` emits a non-trivial
   netlist without crashing;
3. ``backends`` — all four simulation backends (``interp``,
   ``compiled``, ``stepjit``, ``batch``) agree bit-for-bit on cycle
   count, final architectural state, per-state residency, final FSM
   states and listener events (ordered events for the scalar backends,
   aggregate event totals for the lockstep batch kernel), with
   fast-forward both on and off;
4. ``flow`` — the offline flow trains a predictor on a sampled
   workload and produces a prediction for every test job;
5. ``episode:asic`` / ``episode:fpga`` — predictive DVFS episodes on
   both technologies pass :func:`repro.check.check_episode` clean;
6. ``stream:*`` — served streams under adversarial scenario knobs
   (Poisson baseline, front-loaded bursts, variable-frame-rate
   arrivals with alternating sizes, mixed-deadline service classes)
   pass :func:`repro.check.check_stream` clean.

A failed check records its diagnostic and downstream checks that
depend on it are marked skipped, so one report still tells the whole
story for a bad seed.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..check import check_episode, check_stream
from ..experiments.runner import (
    BenchmarkBundle,
    TechContext,
    make_controller,
    run_scheme,
    tech_context,
)
from ..flow import FlowConfig, build_job_records, generate_predictor
from ..rtl import (
    BatchScalarSimulation,
    Listener,
    Simulation,
    StepSimulation,
    compile_module,
    errors_only,
    lint_module,
    to_verilog,
)
from ..serve import (
    AcceleratorStream,
    DeadlineClass,
    RecordPredictor,
    ServeConfig,
    adversarial_order,
    burst_arrivals,
    poisson_arrivals,
    serve_streams,
    split_by_deadline,
    stream_from_records,
    vfr_arrivals,
)
from ..workloads import BenchmarkWorkload
from .sampler import GeneratedDesign, sample_design, sample_workload

#: Every check :func:`conform_design` runs, in execution order.
CHECKS = (
    "lint",
    "verilog",
    "backends",
    "flow",
    "episode:asic",
    "episode:fpga",
    "stream:poisson",
    "stream:burst",
    "stream:vfr",
    "stream:mixed_deadline",
)

#: Controller schemes exercised by the episode checks.
EPISODE_SCHEMES = ("prediction", "prediction_boost")

_SKIPPED = "skipped"


@dataclass
class ConformanceReport:
    """One sampled design's results across the whole check battery.

    ``checks`` maps each check name (in :data:`CHECKS` order) to
    ``None`` on success or a one-line diagnostic on failure; checks
    that could not run because a prerequisite failed carry a
    ``"skipped: ..."`` marker and count as failures.
    """

    design: str
    seed: int
    complexity: str
    checks: Dict[str, Optional[str]] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        """True when every check ran and came back clean."""
        return bool(self.checks) and all(
            v is None for v in self.checks.values())

    @property
    def failures(self) -> Dict[str, str]:
        """The failing subset of ``checks`` (skips included)."""
        return {k: v for k, v in self.checks.items() if v is not None}

    def summary(self) -> str:
        """A compact one-design status line for CLI output."""
        status = "PASS" if self.passed else "FAIL"
        bad = ",".join(self.failures) or "-"
        return (f"{self.design:<12} seed={self.seed:<3} "
                f"{self.complexity:<6} {status}  "
                f"checks={len(self.checks)} failing={bad}")


class _EventRecorder(Listener):
    """Ordered event capture for the scalar-backend comparison."""

    def __init__(self) -> None:
        self.transitions: List[Tuple[str, str, str]] = []
        self.loads: List[Tuple[str, int]] = []
        self.resets: List[Tuple[str, int]] = []

    def on_transition(self, fsm: str, src: str, dst: str) -> None:
        """Record one FSM arc firing."""
        self.transitions.append((fsm, src, dst))

    def on_counter_load(self, counter: str, value: int) -> None:
        """Record one down-counter load."""
        self.loads.append((counter, value))

    def on_counter_reset(self, counter: str, value: int) -> None:
        """Record one up-counter reset."""
        self.resets.append((counter, value))


class _BatchEventSink:
    """Batch-capable listener: keeps the raw per-row event columns."""

    def __init__(self) -> None:
        self.events = None
        self.row = None

    def absorb_batch_events(self, events, row) -> None:
        """Stash the batch event columns and this job's row index."""
        self.events = events
        self.row = row


def _agg_events(rec: _EventRecorder):
    # Order-free totals: the only view the batch kernel can express.
    load_counts: Counter = Counter(n for n, _v in rec.loads)
    load_sums: Counter = Counter()
    for name, value in rec.loads:
        load_sums[name] += value
    reset_counts: Counter = Counter(n for n, _v in rec.resets)
    reset_sums: Counter = Counter()
    for name, value in rec.resets:
        reset_sums[name] += value

    def _nonzero(counter):
        return {k: v for k, v in counter.items() if v}

    return (dict(Counter(rec.transitions)), _nonzero(load_counts),
            _nonzero(load_sums), _nonzero(reset_counts),
            _nonzero(reset_sums))


def _agg_from_batch(events, row):
    def _nonzero(mapping):
        return {key: int(col[row])
                for key, col in mapping.items() if col[row]}

    return (_nonzero(events.transition_counts),
            _nonzero(events.load_counts),
            _nonzero(events.load_value_sums),
            _nonzero(events.reset_counts),
            _nonzero(events.reset_value_sums))


def _run_scalar(module, cls, job, fast_forward: bool,
                max_cycles: int) -> Dict[str, object]:
    rec = _EventRecorder()
    sim = cls(module, listener=rec, fast_forward=fast_forward)
    sim.load(inputs=job.inputs, memories=job.memories)
    result = sim.run(max_cycles=max_cycles)
    if not result.finished:
        raise RuntimeError(
            f"{module.name}: {cls.__name__} did not terminate in "
            f"{max_cycles} cycles")
    return {
        "cycles": result.cycles,
        "state": dict(sim.state),
        "state_cycles": dict(sim.state_cycles),
        "fsm_state": dict(sim._fsm_state),
        "events": (rec.transitions, rec.loads, rec.resets),
        "events_agg": _agg_events(rec),
    }


def _run_batch(module, job, fast_forward: bool,
               max_cycles: int) -> Dict[str, object]:
    sink = _BatchEventSink()
    sim = BatchScalarSimulation(module, listener=sink,
                                fast_forward=fast_forward)
    sim.load(inputs=job.inputs, memories=job.memories)
    result = sim.run(max_cycles=max_cycles)
    if not result.finished:
        raise RuntimeError(
            f"{module.name}: batch backend did not terminate in "
            f"{max_cycles} cycles")
    return {
        "cycles": result.cycles,
        "state": dict(sim.state),
        "state_cycles": dict(sim.state_cycles),
        "fsm_state": dict(sim._fsm_state),
        "events_agg": _agg_from_batch(sink.events, sink.row),
    }


def check_backend_agreement(design: GeneratedDesign,
                            jobs: Sequence[List[int]],
                            max_cycles: int = 2_000_000) -> None:
    """Assert all four backends agree bit-for-bit on every job.

    Runs each encoded job through ``interp``, ``compiled``,
    ``stepjit`` and the ``batch`` scalar adapter with fast-forward on
    and off, and raises :class:`AssertionError` naming the first
    divergent (backend, field) pair.  Scalar backends must match on
    ordered events; the batch kernel on aggregate event totals.
    """
    module = design.build()
    compiled = compile_module(module)
    for j, items in enumerate(jobs):
        job = design.encode_job(items)
        for fast_forward in (True, False):
            runs = {
                "interp": _run_scalar(module, Simulation, job,
                                      fast_forward, max_cycles),
                "compiled": _run_scalar(compiled, Simulation, job,
                                        fast_forward, max_cycles),
                "stepjit": _run_scalar(module, StepSimulation, job,
                                       fast_forward, max_cycles),
                "batch": _run_batch(module, job, fast_forward,
                                    max_cycles),
            }
            for backend in ("compiled", "stepjit", "batch"):
                fields = ("cycles", "state", "state_cycles",
                          "fsm_state",
                          "events_agg" if backend == "batch"
                          else "events")
                for f in fields:
                    if runs[backend][f] != runs["interp"][f]:
                        raise AssertionError(
                            f"{design.name} job {j} ff={fast_forward}:"
                            f" {backend} disagrees with interp on {f}")


def build_generated_bundle(design: GeneratedDesign,
                           n_train: int = 24,
                           n_test: int = 12,
                           flow_config: FlowConfig = FlowConfig()
                           ) -> BenchmarkBundle:
    """Run the offline flow on a generated design, end to end.

    The registry-keyed :func:`~repro.experiments.runner.bundle_for`
    only knows the seven hand-built benchmarks; this is its generative
    twin — sampled train/test workloads, a freshly trained predictor
    and evaluated test records, packed into the same
    :class:`~repro.experiments.runner.BenchmarkBundle` shape every
    downstream experiment and serving helper consumes.
    """
    train = sample_workload(design, n_train, seed=1)
    test = sample_workload(design, n_test, seed=2)
    package = generate_predictor(design, train, flow_config)
    records = build_job_records(design, package, test)
    workload = BenchmarkWorkload(
        name=design.name, train=train, test=test,
        train_description=f"{n_train} sampled descriptor lists",
        test_description=f"{n_test} sampled descriptor lists",
    )
    return BenchmarkBundle(
        design=design,
        workload=workload,
        package=package,
        test_records=records,
        train_cycles=[float(c) for c in package.train_matrix.cycles],
        train_coarse=[design.encode_job(item).coarse_param
                      for item in train],
    )


def _mean_service_time(ctx: TechContext) -> float:
    records = ctx.bundle.test_records
    mean_cycles = (sum(r.actual_cycles for r in records)
                   / max(len(records), 1))
    return mean_cycles / ctx.bundle.design.nominal_frequency


def _serve_checked(ctx: TechContext, tagged_jobs, scenario: str
                   ) -> None:
    # tagged_jobs: [(deadline, jobs)] -> one stream per deadline class.
    streams = []
    for deadline, jobs in tagged_jobs:
        controller = make_controller(ctx, "prediction")
        config = ServeConfig(deadline=deadline,
                             t_switch=ctx.config.t_switch)
        streams.append((AcceleratorStream(
            f"{ctx.name}:{scenario}", controller, ctx.energy_model,
            ctx.slice_energy_model, predictor=RecordPredictor(),
            config=config), jobs))
    results = serve_streams(streams)
    for result in results:
        violations = check_stream(
            result, ctx.energy_model, ctx.slice_energy_model,
            ctx.levels, t_switch=ctx.config.t_switch)
        if violations:
            raise AssertionError(
                f"{scenario}: {len(violations)} stream violation(s); "
                f"first: {violations[0]}")


def check_stream_scenarios(ctx: TechContext, seed: int,
                           n_jobs: int = 40) -> Dict[str, Optional[str]]:
    """Serve the bundle under every adversarial scenario, checked.

    Returns ``{scenario check name: None | diagnostic}`` for the four
    ``stream:*`` checks.  Arrival rates are scaled to the bundle's
    mean service time (≈60% utilization at nominal frequency) so every
    scenario exercises real queueing without degenerating into a
    single mass shed.
    """
    records = ctx.bundle.test_records
    mean_t = _mean_service_time(ctx)
    rate = 0.6 / mean_t
    deadline = 4.0 * mean_t
    out: Dict[str, Optional[str]] = {}

    def _attempt(name: str, fn) -> None:
        try:
            fn()
            out[name] = None
        except Exception as exc:  # noqa: BLE001 - report, don't die
            out[name] = f"{type(exc).__name__}: {exc}"

    _attempt("stream:poisson", lambda: _serve_checked(
        ctx,
        [(deadline, stream_from_records(
            records, poisson_arrivals(rate, n_jobs=n_jobs,
                                      seed=seed)))],
        "poisson"))
    _attempt("stream:burst", lambda: _serve_checked(
        ctx,
        [(deadline, stream_from_records(
            adversarial_order(records, "front_loaded", seed=seed),
            burst_arrivals(rate, duration=n_jobs / rate,
                           seed=seed)))],
        "burst"))
    _attempt("stream:vfr", lambda: _serve_checked(
        ctx,
        [(deadline, stream_from_records(
            adversarial_order(records, "alternating", seed=seed),
            vfr_arrivals(rate, n_jobs=n_jobs, seed=seed)))],
        "vfr"))

    def _mixed() -> None:
        classes = (DeadlineClass("tight", deadline * 0.5, weight=1.0),
                   DeadlineClass("loose", deadline * 2.0, weight=2.0))
        parts = split_by_deadline(
            adversarial_order(records, "ramp", seed=seed),
            classes, seed=seed)
        per_class = max(n_jobs // len(classes), 1)
        tagged = []
        for k, cls in enumerate(classes):
            arrivals = poisson_arrivals(rate / len(classes),
                                        n_jobs=per_class,
                                        seed=seed * 31 + k)
            tagged.append((cls.deadline, stream_from_records(
                parts[cls.name], arrivals)))
        _serve_checked(ctx, tagged, "mixed_deadline")

    _attempt("stream:mixed_deadline", _mixed)
    return out


def conform_design(design: GeneratedDesign,
                   n_train: int = 24, n_test: int = 12,
                   n_backend_jobs: int = 4) -> ConformanceReport:
    """Run the full conformance battery on one sampled design.

    Executes every check in :data:`CHECKS` order; a failure records
    its diagnostic and marks dependent checks skipped.  Never raises —
    the report carries the whole story.
    """
    report = ConformanceReport(design=design.name, seed=design.seed,
                               complexity=design.complexity)
    checks = report.checks

    try:
        findings = errors_only(lint_module(design.build()))
        checks["lint"] = (None if not findings
                          else f"{len(findings)} lint error(s); "
                               f"first: {findings[0]}")
    except Exception as exc:  # noqa: BLE001
        checks["lint"] = f"{type(exc).__name__}: {exc}"

    try:
        text = to_verilog(design.build())
        checks["verilog"] = (None if "module" in text
                             else "emitted text lacks a module header")
    except Exception as exc:  # noqa: BLE001
        checks["verilog"] = f"{type(exc).__name__}: {exc}"

    try:
        jobs = sample_workload(design, n_backend_jobs, seed=3)
        check_backend_agreement(design, jobs)
        checks["backends"] = None
    except Exception as exc:  # noqa: BLE001
        checks["backends"] = f"{type(exc).__name__}: {exc}"

    bundle = None
    try:
        bundle = build_generated_bundle(design, n_train, n_test)
        missing = [r.index for r in bundle.test_records
                   if r.predicted_cycles is None]
        checks["flow"] = (None if not missing
                          else f"records {missing} carry no prediction")
    except Exception as exc:  # noqa: BLE001
        checks["flow"] = f"{type(exc).__name__}: {exc}"

    contexts: Dict[str, TechContext] = {}
    for tech in ("asic", "fpga"):
        name = f"episode:{tech}"
        if bundle is None or checks["flow"] is not None:
            checks[name] = f"{_SKIPPED}: flow failed"
            continue
        try:
            ctx = tech_context(bundle, tech)
            contexts[tech] = ctx
            for scheme in EPISODE_SCHEMES:
                result = run_scheme(ctx, scheme)
                violations = check_episode(
                    result, ctx.energy_model, ctx.slice_energy_model,
                    ctx.levels, t_switch=ctx.config.t_switch)
                if violations:
                    raise AssertionError(
                        f"{scheme}: {len(violations)} episode "
                        f"violation(s); first: {violations[0]}")
            checks[name] = None
        except Exception as exc:  # noqa: BLE001
            checks[name] = f"{type(exc).__name__}: {exc}"

    if "asic" not in contexts:
        for name in CHECKS:
            if name.startswith("stream:"):
                checks[name] = f"{_SKIPPED}: no ASIC context"
    else:
        checks.update(check_stream_scenarios(contexts["asic"],
                                             seed=design.seed))
    return report


def run_conformance(seeds: Union[int, Sequence[int]],
                    complexity: str = "medium",
                    n_train: int = 24, n_test: int = 12
                    ) -> List[ConformanceReport]:
    """Sweep the conformance battery over a set of seeds.

    ``seeds`` is either a count (run seeds ``0..n-1``) or an explicit
    seed sequence.  Returns one report per seed in order; callers
    gate on ``all(r.passed for r in reports)``.
    """
    if isinstance(seeds, int):
        seeds = range(seeds)
    reports: List[ConformanceReport] = []
    for seed in seeds:
        design = sample_design(seed, complexity)
        reports.append(conform_design(design, n_train=n_train,
                                      n_test=n_test))
    return reports
