"""Generative accelerator designs: builder, sampler, conformance.

The seven hand-built benchmark accelerators exercise the stack on a
fixed design set; this package makes coverage *generative*.  It has
three layers:

* :mod:`repro.gen.blocks` — a composable design builder that
  assembles accelerators in the behavioural RTL IR from pipeline /
  dataflow building blocks (step, wait and dynamic stages, two-way
  mode branches, fork/join dataflow, memory-fed producers), every one
  emitted in the canonical idioms the detectors, slicer and
  fast-forward rely on;
* :mod:`repro.gen.sampler` — a seeded design-space sampler:
  ``sample_design(seed, complexity)`` deterministically emits a valid,
  lint-clean accelerator with a matching workload generator;
* :mod:`repro.gen.conformance` — the differential conformance
  harness (``repro conform``): every sampled design must agree
  bit-for-bit across all four simulation backends, train a predictor
  whose episodes pass :func:`repro.check.check_episode` on both ASIC
  and FPGA technologies, and serve adversarial streams that pass
  :func:`repro.check.check_stream` strictly.
"""

from .blocks import (
    BranchSpec,
    DatapathSpec,
    DesignBuilder,
    DesignSpec,
    FieldSpec,
    ForkJoinSpec,
    ProducerSpec,
    StageSpec,
    build_module,
)
from .conformance import (
    ConformanceReport,
    conform_design,
    run_conformance,
)
from .sampler import (
    COMPLEXITIES,
    GeneratedDesign,
    sample_design,
    sample_workload,
)

__all__ = [
    "BranchSpec",
    "COMPLEXITIES",
    "ConformanceReport",
    "DatapathSpec",
    "DesignBuilder",
    "DesignSpec",
    "FieldSpec",
    "ForkJoinSpec",
    "GeneratedDesign",
    "ProducerSpec",
    "StageSpec",
    "build_module",
    "conform_design",
    "run_conformance",
    "sample_design",
    "sample_workload",
]
