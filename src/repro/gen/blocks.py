"""Composable accelerator building blocks over the behavioural RTL IR.

The vocabulary mirrors what the seven hand-built benchmarks are made
of — "an FSM that loops over items in a scratchpad, spending
data-dependent time in a few stages" — but as *data*: a
:class:`DesignSpec` is a pure description (fields, a pipeline of
blocks, optional co-processes) and :func:`build_module` lowers it to a
finalized :class:`~repro.rtl.module.Module` using only the canonical
idioms the detectors, the slicer and fast-forward rely on.

Block vocabulary (one entry per pipeline position):

* :class:`StageSpec` — a single pipeline stage: ``step`` (one cycle),
  ``wait`` (a counter-backed wait of ``base + coeff * field`` cycles)
  or ``dyn`` (an opaque serial stall of the same duration, invisible
  to feature extraction — the djpeg error source, generatively);
* :class:`BranchSpec` — a two-way mode branch: a select state routes
  each item to one of two wait arms on a descriptor bit (the Figure-8
  toy's COMP_A/COMP_B shape);
* :class:`ForkJoinSpec` — fork/join dataflow: the main loop forks N
  concurrent branch FSMs, each a counter wait of its own, and joins
  when all have finished — the composition idiom of dataflow HLS
  frameworks, expressed in this IR's FSM semantics.

Co-processes and pricing:

* :class:`ProducerSpec` — a memory-fed producer FSM streaming words
  from a side scratchpad while the main loop is busy (extra detected
  counters and transitions outside the main loop);
* :class:`DatapathSpec` — a priced combinational block active in a
  named stage, so generated designs carry realistic per-block energy.

The builder composes like gears: each block consumes the upstream
attach point (the state chain built so far) and returns the new one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..rtl.counter import down_counter, up_counter
from ..rtl.expr import Expr, MemRead, Sig, wrap
from ..rtl.fsm import Fsm, Transition
from ..rtl.module import DatapathBlock, Module

#: Placeholder condition carried on a JOIN state's dangling exit until
#: every main-loop state code exists and the real all-branches-finished
#: expression can be built (see :meth:`DesignBuilder.finish`).
_JOIN_PLACEHOLDER = "join"


@dataclass(frozen=True)
class FieldSpec:
    """One packed descriptor field: ``(word >> offset) & mask``."""

    name: str
    offset: int
    bits: int

    @property
    def mask(self) -> int:
        """Bit mask of the field."""
        return (1 << self.bits) - 1


@dataclass(frozen=True)
class StageSpec:
    """One main-loop pipeline stage.

    ``kind`` is ``step`` (single cycle), ``wait`` (counter-backed) or
    ``dyn`` (opaque dynamic stall).  Wait/dyn durations are the affine
    form ``base + coeff * field`` in cycles; ``field`` names a
    :class:`FieldSpec` (``None`` = constant duration).

    Durations are sampled on the cycle the stage's entry arc fires,
    *before* that arc's register actions land — so when the loop's
    first stage is a wait, its loop-back entries see the outgoing
    item's descriptor (the index increments on the same edge).  Every
    backend and the feature recorder observe the identical loads, so
    designs stay bit-reproducible and fully learnable either way.
    """

    kind: str
    name: str
    base: int = 0
    coeff: int = 0
    field: Optional[str] = None
    feeds_control: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("step", "wait", "dyn"):
            raise ValueError(f"unknown stage kind {self.kind!r}")
        if self.kind != "step" and self.base < 1:
            raise ValueError(f"stage {self.name}: base must be >= 1")


@dataclass(frozen=True)
class BranchSpec:
    """A two-way mode branch: select on a descriptor bit, then one of
    two wait arms (the toy accelerator's COMP_A/COMP_B shape)."""

    name: str
    mode_field: str
    arms: Tuple[StageSpec, StageSpec]

    def __post_init__(self) -> None:
        for arm in self.arms:
            if arm.kind != "wait":
                raise ValueError(
                    f"branch {self.name}: arms must be wait stages")


@dataclass(frozen=True)
class ForkJoinSpec:
    """Fork/join dataflow: N concurrent branch waits per item.

    The main loop passes through a one-cycle FORK state that launches
    one branch FSM per entry of ``branches`` and then parks in a JOIN
    state until every branch has finished.  Each branch is a wait
    stage run in its own FSM.
    """

    name: str
    branches: Tuple[StageSpec, ...]

    def __post_init__(self) -> None:
        if len(self.branches) < 2:
            raise ValueError(
                f"fork/join {self.name}: need at least two branches")
        for b in self.branches:
            if b.kind != "wait":
                raise ValueError(
                    f"fork/join {self.name}: branches must be waits")


@dataclass(frozen=True)
class ProducerSpec:
    """A memory-fed producer FSM running beside the main loop.

    While the main loop is busy, the producer repeatedly reads a word
    from its own scratchpad, waits ``base + (word & mask)`` cycles,
    and advances its pointer — contributing detected transitions and
    counters that are *not* on the main item loop.
    """

    name: str
    mem_name: str
    depth: int
    width: int
    base: int = 1
    mask: int = 0x1F


@dataclass(frozen=True)
class DatapathSpec:
    """A priced combinational block active in one main-loop stage."""

    name: str
    stage: str
    cells: Tuple[Tuple[str, int], ...]
    width: int = 16
    input_field: Optional[str] = None


@dataclass(frozen=True)
class DesignSpec:
    """A complete generated-accelerator description (pure data).

    ``pipeline`` is the ordered block list (:class:`StageSpec`,
    :class:`BranchSpec` or :class:`ForkJoinSpec`); every wait or dyn
    duration references a name in ``fields``.  The spec is what the
    sampler emits and what :func:`build_module` lowers; keeping it
    data-only is what makes sampled designs reproducible from their
    seed alone.
    """

    name: str
    fields: Tuple[FieldSpec, ...]
    pipeline: Tuple[object, ...]
    mem_depth: int = 64
    mem_width: int = 24
    producer: Optional[ProducerSpec] = None
    datapaths: Tuple[DatapathSpec, ...] = ()
    busy_counter: bool = False

    def field_named(self, name: str) -> FieldSpec:
        """Look up a descriptor field by name."""
        for f in self.fields:
            if f.name == name:
                return f
        raise KeyError(f"design {self.name}: no field {name!r}")


class DesignBuilder:
    """Lower a pipeline of blocks onto one main item-loop FSM.

    The builder owns the module, the descriptor scratchpad and the
    main FSM; blocks attach compositionally — each consumes the
    current chain tail (a list of ``(state, cond)`` exit arcs) and
    returns the new tail.  :meth:`finish` closes the item loop exactly
    like :class:`~repro.rtl.idioms.ItemLoop` does, so the detectors
    and the slicer see the canonical shape.
    """

    def __init__(self, spec: DesignSpec):
        self.spec = spec
        m = Module(spec.name)
        self.module = m
        self.count = m.port("n_items", 16)
        m.memory("items", depth=spec.mem_depth, width=spec.mem_width)
        self.idx = m.reg("ctrl_idx", 16)
        self.word = m.wire("item_word",
                           MemRead("items", self.idx), spec.mem_width)
        self.field_wires: Dict[str, Sig] = {}
        for f in spec.fields:
            self.field_wires[f.name] = m.wire(
                f.name, (self.word >> f.offset) & f.mask, f.bits)
        self.fsm = Fsm("ctrl", initial="IDLE")
        #: state name -> duration Expr, for wait-counter creation
        self._wait_loads: Dict[str, Expr] = {}
        #: stage names in main-loop order (entry points of each block)
        self._entries: List[str] = []
        #: dangling exits of the last block: (state, cond-or-None)
        self._tail: List[Tuple[str, Optional[Expr]]] = []
        #: deferred per-branch-FSM constructions for fork/join blocks
        self._forks: List[ForkJoinSpec] = []
        self._finished = False

    # -- duration helper ----------------------------------------------
    def _duration(self, stage: StageSpec) -> Expr:
        """The affine cycle-count expression of a wait/dyn stage."""
        expr: Expr = wrap(stage.base)
        if stage.field is not None and stage.coeff:
            expr = expr + self.field_wires[stage.field] * stage.coeff
        return expr

    def _link(self, entry: str) -> None:
        """Wire every dangling exit of the previous block to ``entry``."""
        for state, cond in self._tail:
            if cond == _JOIN_PLACEHOLDER:
                cond = None  # patched with the join condition at finish()
            self.fsm.transition(state, entry, cond=cond)
        self._entries.append(entry)
        self._tail = []

    # -- blocks (the gears) -------------------------------------------
    def add_stage(self, stage: StageSpec) -> None:
        """Append one step/wait/dyn stage to the main loop."""
        self._check_open()
        self._link(stage.name)
        if stage.kind == "wait":
            self.fsm.wait_state(stage.name, f"c_{stage.name.lower()}",
                                feeds_control=stage.feeds_control)
            self._wait_loads[stage.name] = self._duration(stage)
        elif stage.kind == "dyn":
            self.fsm.dynamic_wait(stage.name, self._duration(stage),
                                  feeds_control=stage.feeds_control)
        self._tail = [(stage.name, None)]

    def add_branch(self, branch: BranchSpec) -> None:
        """Append a two-way mode branch (select state + two arms)."""
        self._check_open()
        sel = f"{branch.name}_SEL"
        self._link(sel)
        mode = self.field_wires[branch.mode_field]
        arm0, arm1 = branch.arms
        self.fsm.transition(sel, arm0.name, cond=(mode & 1) == 0)
        self.fsm.transition(sel, arm1.name)
        for arm in branch.arms:
            self.fsm.wait_state(arm.name, f"c_{arm.name.lower()}",
                                feeds_control=arm.feeds_control)
            self._wait_loads[arm.name] = self._duration(arm)
        self._tail = [(arm0.name, None), (arm1.name, None)]

    def add_fork_join(self, fork: ForkJoinSpec) -> None:
        """Append fork/join dataflow (FORK step, branch FSMs, JOIN)."""
        self._check_open()
        fork_state = f"{fork.name}_FORK"
        join_state = f"{fork.name}_JOIN"
        self._link(fork_state)
        self.fsm.transition(fork_state, join_state)
        self._entries.append(join_state)
        # The branch FSMs need the main FSM's state codes, which only
        # settle once every main-loop state exists — build them at
        # finish() time.
        self._forks.append(fork)
        self._tail = [(join_state, _JOIN_PLACEHOLDER)]

    def _build_fork(self, fork: ForkJoinSpec) -> Expr:
        """Create the branch FSMs of one fork/join; returns the
        all-branches-finished join condition."""
        m = self.module
        ctrl = Sig(self.fsm.state_signal)
        at_fork = ctrl == self.fsm.code_of(f"{fork.name}_FORK")
        at_emit = ctrl == self.fsm.code_of("EMIT")
        done_terms: List[Expr] = []
        for k, stage in enumerate(fork.branches):
            br = Fsm(f"{fork.name.lower()}_br{k}", initial="REST")
            br.transition("REST", "RUN", cond=at_fork)
            br.transition("RUN", "FIN")
            br.transition("FIN", "REST", cond=at_emit)
            counter = f"c_{stage.name.lower()}"
            br.wait_state("RUN", counter,
                          feeds_control=stage.feeds_control)
            m.fsm(br)
            m.counter(down_counter(
                counter,
                load_cond=br.arc_signal("REST", "RUN"),
                load_value=self._duration(stage),
                width=24,
            ))
            done_terms.append(Sig(br.state_signal) == br.code_of("FIN"))
        joined = done_terms[0]
        for term in done_terms[1:]:
            joined = joined & term
        return joined

    # -- closing the loop ---------------------------------------------
    def finish(self) -> Module:
        """Close the item loop, build co-processes, finalize."""
        self._check_open()
        if not self._entries:
            raise ValueError(
                f"design {self.spec.name}: pipeline has no stages")
        self._finished = True
        fsm = self.fsm
        first = self._entries[0]
        fsm.transition("IDLE", first, cond=self.count > 0)
        for state, cond in self._tail:
            if cond == _JOIN_PLACEHOLDER:
                cond = None
            self.fsm.transition(state, "EMIT", cond=cond)
        fsm.transition("EMIT", first,
                       cond=self.idx < (self.count - 1),
                       actions=[(self.idx.name, self.idx + 1)])
        fsm.transition("EMIT", "DONE",
                       actions=[(self.idx.name, self.idx + 1)])
        # Fork/join placeholders: re-gate the JOIN exit arcs now that
        # every state (and hence every code) exists.
        join_conds: Dict[str, Expr] = {}
        for fork in self._forks:
            join_conds[f"{fork.name}_JOIN"] = self._build_fork(fork)
        if join_conds:
            fixed = []
            for t in fsm.transitions:
                cond = join_conds.get(t.src)
                if cond is not None:
                    t = Transition(src=t.src, dst=t.dst, cond=wrap(cond),
                                   actions=t.actions, index=t.index)
                fixed.append(t)
            fsm.transitions[:] = fixed

        m = self.module
        m.fsm(fsm)
        for state, duration in self._wait_loads.items():
            m.counter(down_counter(
                f"c_{state.lower()}",
                load_cond=fsm.entry_signal(state),
                load_value=duration,
                width=24,
            ))
        m.counter(up_counter(
            "items_done",
            reset_cond=fsm.arc_signal("EMIT", "DONE"),
            enable=fsm.entry_signal("EMIT"),
            width=16,
        ))
        if self.spec.busy_counter:
            ctrl = Sig(fsm.state_signal)
            m.counter(up_counter(
                "busy_cycles",
                reset_cond=fsm.arc_signal("IDLE", first),
                enable=(ctrl != fsm.code_of("IDLE"))
                       & (ctrl != fsm.code_of("DONE")),
                width=24,
            ))
        if self.spec.producer is not None:
            self._build_producer(self.spec.producer)
        for dp in self.spec.datapaths:
            inputs = ("item_word",) if dp.input_field is None \
                else (dp.input_field,)
            m.datapath(DatapathBlock(
                dp.name, cells=dict(dp.cells), width=dp.width,
                inputs=inputs, active_states=(("ctrl", dp.stage),),
            ))
        m.set_done(Sig(fsm.state_signal) == fsm.code_of("DONE"))
        return m.finalize()

    def _build_producer(self, prod: ProducerSpec) -> None:
        """A side FSM streaming its own scratchpad while ctrl is busy."""
        m = self.module
        m.memory(prod.mem_name, depth=prod.depth, width=prod.width)
        ptr = m.reg(f"{prod.name}_ptr", 16)
        feed = m.wire(f"{prod.name}_word",
                      MemRead(prod.mem_name, ptr & (prod.depth - 1)),
                      prod.width)
        ctrl = Sig(self.fsm.state_signal)
        busy = (ctrl != self.fsm.code_of("IDLE")) \
            & (ctrl != self.fsm.code_of("DONE"))
        pf = Fsm(prod.name, initial="REST")
        pf.transition("REST", "FETCH", cond=busy)
        pf.transition("FETCH", "REST",
                      actions=[(ptr.name, ptr + 1)])
        counter = f"c_{prod.name.lower()}"
        pf.wait_state("FETCH", counter)
        m.fsm(pf)
        m.counter(down_counter(
            counter,
            load_cond=pf.arc_signal("REST", "FETCH"),
            load_value=(feed & prod.mask) + prod.base,
            width=24,
        ))

    def _check_open(self) -> None:
        if self._finished:
            raise RuntimeError(
                f"design {self.spec.name} is already finished")


def build_module(spec: DesignSpec) -> Module:
    """Lower a :class:`DesignSpec` to a finalized RTL module."""
    builder = DesignBuilder(spec)
    for block in spec.pipeline:
        if isinstance(block, StageSpec):
            builder.add_stage(block)
        elif isinstance(block, BranchSpec):
            builder.add_branch(block)
        elif isinstance(block, ForkJoinSpec):
            builder.add_fork_join(block)
        else:
            raise TypeError(
                f"design {spec.name}: unknown block {block!r}")
    return builder.finish()
