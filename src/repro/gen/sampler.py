"""Seeded design-space sampler: valid accelerators nobody hand-tuned.

``sample_design(seed, complexity)`` deterministically draws one point
from the block vocabulary of :mod:`repro.gen.blocks` — stage counts,
stage kinds, affine latency coefficients, a mode branch, fork/join
dataflow, a memory-fed producer, priced datapath blocks, descriptor
field packing and nominal frequency are all functions of the seed —
and wraps it as a :class:`GeneratedDesign`, a drop-in
:class:`~repro.accelerators.base.AcceleratorDesign` with a matching
workload generator (:func:`sample_workload`).

Sampling is constrained, not filtered: every draw is valid by
construction (lint-clean, terminating, at least one data-dependent
wait so the flow always has informative features), so a conformance
sweep over seeds 0..N-1 never wastes a seed on a rejected design.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..accelerators.base import AcceleratorDesign, JobInput
from ..units import MHZ
from .blocks import (
    BranchSpec,
    DatapathSpec,
    DesignSpec,
    FieldSpec,
    ForkJoinSpec,
    ProducerSpec,
    StageSpec,
    build_module,
)

#: Complexity tiers: (min_stages, max_stages, allow_fork, allow_producer)
COMPLEXITIES = {
    "small": (2, 3, False, False),
    "medium": (3, 5, False, True),
    "large": (4, 6, True, True),
}

#: Cell mixes for priced datapath blocks (name, cells).
_CELL_MIXES = (
    (("MUL", 4), ("ADD", 8)),
    (("MUL", 12), ("ADD", 16)),
    (("ADD", 24), ("XOR", 10)),
    (("MUL", 2), ("ADD", 4), ("SHR", 6)),
)

#: Nominal frequencies generated designs run at (Table-4 style range).
_FREQUENCIES = (50.0, 100.0, 150.0, 200.0, 250.0)


class GeneratedDesign(AcceleratorDesign):
    """A sampled accelerator: spec-driven build plus job encoding.

    Workload items are lists of packed descriptor words (one word per
    loop iteration); ``encode_job`` loads them into the ``items``
    scratchpad, sets ``n_items`` and — when the design has a producer
    — fills the producer's feed memory from a per-job hash of the
    items, so feed contents are reproducible from the item list alone.
    """

    def __init__(self, spec: DesignSpec, nominal_frequency: float,
                 seed: int, complexity: str):
        self.name = spec.name
        self.description = (
            f"generated accelerator (seed {seed}, {complexity}): "
            f"{len(spec.pipeline)}-block item loop"
        )
        self.task_description = "process one descriptor list"
        self.nominal_frequency = nominal_frequency
        self.spec = spec
        self.seed = seed
        self.complexity = complexity
        super().__init__()

    def _build(self):
        """Lower the sampled spec to a finalized RTL module."""
        return build_module(self.spec)

    def encode_job(self, items) -> JobInput:
        """Encode one descriptor list into a loadable job."""
        words = [int(w) & ((1 << self.spec.mem_width) - 1)
                 for w in items]
        memories = {"items": words}
        prod = self.spec.producer
        if prod is not None:
            memories[prod.mem_name] = _feed_words(words, prod)
        return JobInput(
            inputs={"n_items": len(words)},
            memories=memories,
            coarse_param=_coarse_param(words, self.spec),
            meta={"n_items": len(words)},
        )


def _feed_words(words: List[int], prod: ProducerSpec) -> List[int]:
    """Deterministic producer-feed contents derived from the items."""
    mask = (1 << prod.width) - 1
    mixed = 0x9E37
    for w in words:
        mixed = (mixed * 33 + w) & 0xFFFF
    return [((mixed >> (i % 8)) * (i + 3)) & mask
            for i in range(prod.depth)]


def _coarse_param(words: List[int], spec: DesignSpec) -> int:
    """A table-controller lookup key: bucketized total field work."""
    if not spec.fields:
        return len(words) // 4
    f = spec.fields[0]
    total = sum((w >> f.offset) & f.mask for w in words)
    return total // max(16, f.mask)


def _sample_fields(rng: random.Random, mem_width: int
                   ) -> Tuple[FieldSpec, ...]:
    """Pack 2-3 descriptor fields plus a mode bit into the item word."""
    fields: List[FieldSpec] = []
    offset = 0
    n_data = rng.randint(2, 3)
    for i in range(n_data):
        bits = rng.randint(4, 7)
        if offset + bits > mem_width - 1:
            break
        fields.append(FieldSpec(f"f{i}", offset=offset, bits=bits))
        offset += bits
    fields.append(FieldSpec("mode", offset=mem_width - 1, bits=1))
    return tuple(fields)


def _sample_stage(rng: random.Random, name: str, kind: str,
                  data_fields: Tuple[FieldSpec, ...]) -> StageSpec:
    """One stage of the drawn kind with affine data-dependent timing."""
    if kind == "step":
        return StageSpec(kind="step", name=name)
    field = rng.choice(data_fields).name
    return StageSpec(
        kind=kind, name=name,
        base=rng.randint(2, 24),
        coeff=rng.randint(1, 8),
        field=field,
        feeds_control=(kind == "wait" and rng.random() < 0.2),
    )


def sample_design(seed: int, complexity: str = "medium"
                  ) -> GeneratedDesign:
    """Draw one valid, lint-clean accelerator from the design space.

    Deterministic in ``(seed, complexity)``; the returned design's
    name encodes both (``gen<seed>_<tier initial>``).  Guarantees at
    least one counter-backed wait with data-dependent duration, so
    feature discovery always finds informative columns.
    """
    if complexity not in COMPLEXITIES:
        raise ValueError(
            f"unknown complexity {complexity!r}; "
            f"expected one of {tuple(COMPLEXITIES)}")
    lo, hi, allow_fork, allow_producer = COMPLEXITIES[complexity]
    rng = random.Random((seed, complexity).__repr__())

    mem_width = rng.choice((16, 20, 24))
    mem_depth = rng.choice((32, 64))
    fields = _sample_fields(rng, mem_width)
    data_fields = tuple(f for f in fields if f.name != "mode")

    pipeline: List[object] = []
    stage_id = 0
    n_stages = rng.randint(lo, hi)
    kinds: List[str] = []
    for _ in range(n_stages):
        kinds.append(rng.choices(
            ("step", "wait", "dyn"), weights=(2, 5, 1))[0])
    if "wait" not in kinds:  # the informative-feature guarantee
        kinds[rng.randrange(len(kinds))] = "wait"

    use_branch = rng.random() < 0.5
    use_fork = allow_fork and rng.random() < 0.8
    special_slots = []
    if use_branch:
        special_slots.append("branch")
    if use_fork:
        special_slots.append("fork")
    rng.shuffle(special_slots)

    wait_stage_names: List[str] = []
    for kind in kinds:
        name = f"S{stage_id}"
        stage_id += 1
        stage = _sample_stage(rng, name, kind, data_fields)
        pipeline.append(stage)
        if kind == "wait":
            wait_stage_names.append(name)
    for special in special_slots:
        at = rng.randint(0, len(pipeline))
        if special == "branch":
            arm_a = _sample_stage(rng, f"A{stage_id}", "wait",
                                  data_fields)
            arm_b = _sample_stage(rng, f"B{stage_id}", "wait",
                                  data_fields)
            pipeline.insert(at, BranchSpec(
                name=f"BR{stage_id}", mode_field="mode",
                arms=(arm_a, arm_b)))
        else:
            branches = tuple(
                _sample_stage(rng, f"K{stage_id}_{k}", "wait",
                              data_fields)
                for k in range(rng.randint(2, 3)))
            pipeline.insert(at, ForkJoinSpec(
                name=f"FJ{stage_id}", branches=branches))
        stage_id += 1

    producer: Optional[ProducerSpec] = None
    if allow_producer and rng.random() < 0.6:
        producer = ProducerSpec(
            name="prod", mem_name="feed",
            depth=rng.choice((16, 32)), width=12,
            base=rng.randint(1, 4), mask=0x1F,
        )

    datapaths: List[DatapathSpec] = []
    for name in wait_stage_names[:2]:
        if rng.random() < 0.7:
            datapaths.append(DatapathSpec(
                name=f"dp_{name.lower()}", stage=name,
                cells=rng.choice(_CELL_MIXES),
                width=16,
                input_field=rng.choice(data_fields).name,
            ))

    spec = DesignSpec(
        name=f"gen{seed}_{complexity[0]}",
        fields=fields,
        pipeline=tuple(pipeline),
        mem_depth=mem_depth,
        mem_width=mem_width,
        producer=producer,
        datapaths=tuple(datapaths),
        busy_counter=rng.random() < 0.5,
    )
    frequency = rng.choice(_FREQUENCIES) * MHZ
    return GeneratedDesign(spec, frequency, seed, complexity)


def sample_workload(design: GeneratedDesign, n_jobs: int,
                    seed: int = 0) -> List[List[int]]:
    """Seeded descriptor lists matched to a generated design.

    Items fill every packed field with independent draws; job lengths
    vary between 2 and 14 items so the item-count and per-field work
    features both carry variance.  Deterministic in ``(design.seed,
    seed, n_jobs)``.
    """
    rng = random.Random((design.seed, seed, n_jobs).__repr__())
    spec = design.spec
    jobs: List[List[int]] = []
    for _ in range(n_jobs):
        n = rng.randint(2, 14)
        items = []
        for _ in range(n):
            word = 0
            for f in spec.fields:
                word |= (rng.randint(0, f.mask) & f.mask) << f.offset
            items.append(word)
        jobs.append(items)
    return jobs
