"""Trace export: render a captured run as Chrome-trace JSON.

``repro report <run-dir> --export-trace out.json`` converts the
artifacts a ``--run-dir`` session wrote into the Trace Event Format
that ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_
load directly — spans become nested duration slices, per-job records
become per-stream tracks, and the windowed time series become counter
tracks, so a serve run can be scrubbed on a timeline instead of read
as tables.

Two clocks coexist in a run, so the export keeps them on separate
trace *processes*:

* **pid 1 — wall clock**: the manifest's recorded spans (pipeline
  stages, pool maps, the serve umbrella), offset so the first span
  starts at t=0;
* **pid 2 — virtual clock**: per-job slices.  Serve runs carry exact
  virtual ``start``/``finish`` instants per job (``sjob`` events) and
  map 1:1 onto the timeline; episode-runner ``job`` events carry only
  durations, so each (controller, task) track lays its jobs end to
  end.  Time-series windows ride along as Chrome counter tracks
  (miss rate, shed rate, energy per job, p99 decision latency).

Timestamps are microseconds (the format's native unit); payloads are
strict JSON with a top-level ``traceEvents`` list, which is all either
viewer requires.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from .runctx import EVENTS_NAME
from .timeseries import TIMESERIES_NAME, TimeSeriesRegistry

#: Time-series → counter-track renderings: (series, track name, how).
_COUNTER_TRACKS = (
    ("serve.miss", "miss_rate", "mean"),
    ("serve.shed", "shed_rate", "mean"),
    ("serve.fallback", "fallback_rate", "mean"),
    ("serve.energy_per_job", "energy_per_job", "mean"),
    ("serve.decision_ms", "p99_decision_ms", "p99"),
)

_US = 1e6  # seconds -> trace microseconds


def _meta(pid: int, name: str, tid: Optional[int] = None,
          tname: Optional[str] = None) -> List[Dict]:
    events: List[Dict] = [{
        "ph": "M", "pid": pid, "tid": 0, "name": "process_name",
        "args": {"name": name},
    }]
    if tid is not None:
        events.append({
            "ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
            "args": {"name": tname},
        })
    return events


def _span_events(stages: List[Dict]) -> List[Dict]:
    if not stages:
        return []
    t0 = min(float(s.get("start", 0.0)) for s in stages)
    events = []
    for stage in stages:
        events.append({
            "name": str(stage.get("name", "?")),
            "ph": "X",
            "pid": 1,
            "tid": 1,
            "ts": (float(stage.get("start", 0.0)) - t0) * _US,
            "dur": max(float(stage.get("duration_s", 0.0)) * _US, 0.01),
            "args": {str(k): v for k, v
                     in (stage.get("labels") or {}).items()},
        })
    return events


def _job_track(tid: int, events: List[Dict]) -> List[Dict]:
    # Episode-runner job events carry durations but no placement:
    # lay them end to end so the track reads as the episode timeline.
    out = []
    cursor = 0.0
    for event in events:
        duration = (float(event.get("t_slice", 0.0))
                    + float(event.get("t_exec", 0.0)))
        out.append({
            "name": f"job {event.get('index')}",
            "ph": "X", "pid": 2, "tid": tid,
            "ts": cursor * _US,
            "dur": max(duration * _US, 0.01),
            "args": {
                "predicted_cycles": event.get("predicted_cycles"),
                "actual_cycles": event.get("actual_cycles"),
                "missed": bool(event.get("missed")),
                "energy": event.get("energy"),
                "frequency": event.get("frequency"),
            },
        })
        cursor += duration
    return out


def _sjob_events(tid: int, events: List[Dict]) -> List[Dict]:
    # Serve jobs carry exact virtual placement; shed jobs (never
    # executed) become instants at their arrival.
    out = []
    for event in events:
        args = {
            "status": event.get("status"),
            "missed": bool(event.get("missed")),
            "energy": event.get("energy"),
            "decision_ms": event.get("decision_ms"),
        }
        if event.get("status") == "shed":
            out.append({
                "name": f"shed {event.get('index')}",
                "ph": "i", "s": "t", "pid": 2, "tid": tid,
                "ts": float(event.get("arrival", 0.0)) * _US,
                "args": args,
            })
            continue
        start = float(event.get("start", 0.0))
        duration = (float(event.get("t_slice", 0.0))
                    + float(event.get("t_switch", 0.0))
                    + float(event.get("t_exec", 0.0)))
        out.append({
            "name": f"job {event.get('index')}",
            "ph": "X", "pid": 2, "tid": tid,
            "ts": start * _US,
            "dur": max(duration * _US, 0.01),
            "args": args,
        })
    return out


def _counter_events(ts: TimeSeriesRegistry) -> List[Dict]:
    out = []
    for series, track, how in _COUNTER_TRACKS:
        for index, cell in ts.windows(series):
            value = (cell.quantile(0.99) if how == "p99" else cell.mean)
            out.append({
                "name": track, "ph": "C", "pid": 2, "tid": 0,
                "ts": ts.window_start(index) * _US,
                "args": {track: value},
            })
    return out


def chrome_trace(run_dir: Union[str, Path]) -> Dict[str, object]:
    """Build the Chrome-trace payload for one captured run directory.

    Raises :class:`FileNotFoundError` when ``run_dir`` holds no
    manifest (not a run directory).  Missing optional artifacts
    (events, time series) simply contribute no tracks.
    """
    from .report import _salvage_events, load_manifest

    run_dir = Path(run_dir)
    manifest = load_manifest(run_dir)
    trace: List[Dict] = []
    trace += _meta(1, "wall clock (stages)", tid=1, tname="spans")
    trace += _span_events(manifest.get("stages") or [])

    events_path = run_dir / str(manifest.get("events_file")
                                or EVENTS_NAME)
    job_groups: Dict[str, List[Dict]] = {}
    sjob_groups: Dict[str, List[Dict]] = {}
    if events_path.is_file():
        for event in _salvage_events(events_path):
            etype = event.get("type")
            if etype == "job":
                key = (f"{event.get('controller', '?')} on "
                       f"{event.get('task', '?')}")
                job_groups.setdefault(key, []).append(event)
            elif etype == "sjob":
                sjob_groups.setdefault(
                    str(event.get("stream", "?")), []).append(event)

    trace += _meta(2, "virtual clock (jobs)")
    tid = 1
    for key in sorted(sjob_groups):
        trace += _meta(2, "virtual clock (jobs)", tid=tid,
                       tname=f"serve {key}")[1:]
        trace += _sjob_events(tid, sjob_groups[key])
        tid += 1
    for key in sorted(job_groups):
        trace += _meta(2, "virtual clock (jobs)", tid=tid,
                       tname=key)[1:]
        trace += _job_track(tid, job_groups[key])
        tid += 1

    ts_name = manifest.get("timeseries_file")
    ts_path = run_dir / str(ts_name or TIMESERIES_NAME)
    if ts_path.is_file():
        with open(ts_path) as handle:
            ts = TimeSeriesRegistry.from_dict(json.load(handle))
        trace += _counter_events(ts)

    return {
        "traceEvents": trace,
        "displayTimeUnit": "ms",
        "otherData": {
            "command": manifest.get("command"),
            "git_rev": manifest.get("git_rev"),
        },
    }


def write_chrome_trace(run_dir: Union[str, Path],
                       out_path: Union[str, Path]) -> Path:
    """Export ``run_dir`` as Chrome-trace JSON at ``out_path``."""
    payload = chrome_trace(run_dir)
    out_path = Path(out_path)
    with open(out_path, "w") as handle:
        json.dump(payload, handle)
        handle.write("\n")
    return out_path


def validate_chrome_trace(payload: Dict[str, object]) -> List[str]:
    """Structural check of a trace payload; returns problem strings.

    The loadability contract both viewers share: a ``traceEvents``
    list whose entries carry ``ph``/``name``/``pid``/``ts`` (metadata
    events excepted for ``ts``) and non-negative durations.  Used by
    the CI gate and the artifact auditor.
    """
    problems: List[str] = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i} is not an object")
            continue
        for key in ("ph", "name", "pid"):
            if key not in event:
                problems.append(f"event {i} lacks {key!r}")
        if event.get("ph") != "M" and "ts" not in event:
            problems.append(f"event {i} ({event.get('name')}) lacks ts")
        if event.get("ph") == "X" and float(event.get("dur", 0)) < 0:
            problems.append(f"event {i} has negative duration")
    return problems
