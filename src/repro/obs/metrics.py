"""Metrics primitives: counters, gauges, and streaming histograms.

The :class:`MetricsRegistry` is the single sink every instrumented
layer writes to.  Counters and gauges are plain floats; histograms use
a log-bucketed sketch (DDSketch-style) so p50/p95/p99 come out with a
bounded *relative* error without storing individual samples — a run
over millions of jobs costs a few hundred buckets, not millions of
floats.
"""

from __future__ import annotations

import math
from typing import Dict, Optional


class StreamingHistogram:
    """A mergeable quantile sketch over log-spaced buckets.

    Values are mapped to buckets whose boundaries grow geometrically
    by ``gamma = (1 + a) / (1 - a)`` where ``a`` is the requested
    relative accuracy; any quantile estimate is then within ``a`` of
    the true value *relatively* (DDSketch's guarantee).  Negative
    values use a mirrored bucket table and zero gets its own bucket,
    so slack-style signed series work unmodified.
    """

    def __init__(self, relative_accuracy: float = 0.005):
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError("relative_accuracy must be in (0, 1)")
        self.relative_accuracy = relative_accuracy
        self._gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
        self._log_gamma = math.log(self._gamma)
        self._positive: Dict[int, int] = {}
        self._negative: Dict[int, int] = {}
        self._zeros = 0
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def _bucket(self, magnitude: float) -> int:
        return math.ceil(math.log(magnitude) / self._log_gamma)

    def _representative(self, index: int) -> float:
        # Midpoint (harmonically) of the bucket [g^(i-1), g^i]: within
        # ``relative_accuracy`` of every value that landed in it.
        return 2.0 * self._gamma ** index / (self._gamma + 1.0)

    def observe(self, value: float) -> None:
        """Add one sample."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value > 0.0:
            index = self._bucket(value)
            self._positive[index] = self._positive.get(index, 0) + 1
        elif value < 0.0:
            index = self._bucket(-value)
            self._negative[index] = self._negative.get(index, 0) + 1
        else:
            self._zeros += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of all samples (exact, not sketched)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * (self.count - 1)
        cumulative = -1.0
        # Ascending value order: most-negative first (descending
        # magnitude), then zeros, then positives (ascending magnitude).
        for index in sorted(self._negative, reverse=True):
            cumulative += self._negative[index]
            if cumulative >= rank:
                return self._clamp(-self._representative(index))
        cumulative += self._zeros
        if cumulative >= rank:
            return self._clamp(0.0)
        for index in sorted(self._positive):
            cumulative += self._positive[index]
            if cumulative >= rank:
                return self._clamp(self._representative(index))
        return self.max  # numerical belt-and-braces

    def _clamp(self, value: float) -> float:
        return min(max(value, self.min), self.max)

    def snapshot(self) -> Dict[str, float]:
        """Summary dict: count, mean, min/max and the headline
        quantiles."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def to_dict(self) -> Dict[str, object]:
        """Full bucket-level state, JSON-ready and lossless.

        Unlike :meth:`snapshot` (a human summary), this round-trips
        through :meth:`from_dict` bit-exactly — bucket keys become
        strings for JSON, and the empty sketch's ``min``/``max``
        sentinels (``±inf``) become ``None`` so the payload stays
        strict-JSON parseable.
        """
        return {
            "relative_accuracy": self.relative_accuracy,
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "zeros": self._zeros,
            "positive": {str(i): n for i, n in self._positive.items()},
            "negative": {str(i): n for i, n in self._negative.items()},
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "StreamingHistogram":
        """Rebuild a sketch from :meth:`to_dict` output.

        Restores the bucket tables *and* the exact ``min``/``max`` —
        without them a deserialized sketch whose samples all sat in
        one side (or that carried no buckets at all) would answer
        ``quantile`` from the ``-inf`` sentinel.
        """
        hist = cls(relative_accuracy=float(
            payload.get("relative_accuracy", 0.005)))
        hist.count = int(payload.get("count", 0))
        hist.total = float(payload.get("total", 0.0))
        minimum = payload.get("min")
        maximum = payload.get("max")
        hist.min = math.inf if minimum is None else float(minimum)
        hist.max = -math.inf if maximum is None else float(maximum)
        hist._zeros = int(payload.get("zeros", 0))
        hist._positive = {int(i): int(n) for i, n
                          in (payload.get("positive") or {}).items()}
        hist._negative = {int(i): int(n) for i, n
                          in (payload.get("negative") or {}).items()}
        return hist

    def merge(self, other: "StreamingHistogram") -> None:
        """Fold ``other``'s samples into this sketch, in place.

        Bucket-level addition: the merged sketch is exactly what one
        sketch observing both sample streams would hold, which is what
        lets pool workers sketch independently and the parent combine
        them.  Requires matching bucket geometry.
        """
        if other.count == 0:
            return
        if not math.isclose(other.relative_accuracy,
                            self.relative_accuracy):
            raise ValueError(
                f"cannot merge sketches with different accuracies "
                f"({self.relative_accuracy} vs {other.relative_accuracy})")
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self._zeros += other._zeros
        for index, n in other._positive.items():
            self._positive[index] = self._positive.get(index, 0) + n
        for index, n in other._negative.items():
            self._negative[index] = self._negative.get(index, 0) + n


class MetricsRegistry:
    """Named counters, gauges, and histograms for one run."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, StreamingHistogram] = {}

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name`` by ``amount``."""
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest ``value``."""
        self.gauges[name] = float(value)

    def histogram(self, name: str) -> StreamingHistogram:
        """Get (or lazily create) the histogram called ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = StreamingHistogram()
        return hist

    def observe(self, name: str, value: float) -> None:
        """Add a sample to histogram ``name``."""
        self.histogram(name).observe(value)

    def snapshot(self) -> Dict[str, Dict]:
        """JSON-ready view of every metric (histograms summarized)."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: hist.snapshot()
                for name, hist in self.histograms.items()
            },
        }

    def to_dict(self) -> Dict[str, Dict]:
        """Lossless registry state (histograms at bucket level).

        The shape :meth:`merge_dict` consumes — what a pool worker
        ships back with each chunk result so no telemetry dies with
        the worker process.
        """
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: hist.to_dict()
                for name, hist in self.histograms.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Dict]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_dict` output."""
        registry = cls()
        registry.merge_dict(payload)
        return registry

    def merge_dict(self, payload: Dict[str, Dict]) -> None:
        """Fold a :meth:`to_dict` payload into this registry.

        Counters add, histograms merge bucket-for-bucket, gauges take
        the incoming value (latest writer wins — callers that must
        keep their own gauges set them after merging).
        """
        for name, value in (payload.get("counters") or {}).items():
            self.inc(name, float(value))
        for name, value in (payload.get("gauges") or {}).items():
            self.set_gauge(name, float(value))
        for name, hist_payload in (payload.get("histograms") or {}).items():
            incoming = StreamingHistogram.from_dict(hist_payload)
            existing = self.histograms.get(name)
            if existing is None:
                # Adopt wholesale: keeps the sender's bucket geometry
                # instead of forcing the default accuracy on it.
                self.histograms[name] = incoming
            else:
                existing.merge(incoming)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (see :meth:`merge_dict`)."""
        self.merge_dict(other.to_dict())
