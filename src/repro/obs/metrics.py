"""Metrics primitives: counters, gauges, and streaming histograms.

The :class:`MetricsRegistry` is the single sink every instrumented
layer writes to.  Counters and gauges are plain floats; histograms use
a log-bucketed sketch (DDSketch-style) so p50/p95/p99 come out with a
bounded *relative* error without storing individual samples — a run
over millions of jobs costs a few hundred buckets, not millions of
floats.
"""

from __future__ import annotations

import math
from typing import Dict, Optional


class StreamingHistogram:
    """A mergeable quantile sketch over log-spaced buckets.

    Values are mapped to buckets whose boundaries grow geometrically
    by ``gamma = (1 + a) / (1 - a)`` where ``a`` is the requested
    relative accuracy; any quantile estimate is then within ``a`` of
    the true value *relatively* (DDSketch's guarantee).  Negative
    values use a mirrored bucket table and zero gets its own bucket,
    so slack-style signed series work unmodified.
    """

    def __init__(self, relative_accuracy: float = 0.005):
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError("relative_accuracy must be in (0, 1)")
        self.relative_accuracy = relative_accuracy
        self._gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
        self._log_gamma = math.log(self._gamma)
        self._positive: Dict[int, int] = {}
        self._negative: Dict[int, int] = {}
        self._zeros = 0
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def _bucket(self, magnitude: float) -> int:
        return math.ceil(math.log(magnitude) / self._log_gamma)

    def _representative(self, index: int) -> float:
        # Midpoint (harmonically) of the bucket [g^(i-1), g^i]: within
        # ``relative_accuracy`` of every value that landed in it.
        return 2.0 * self._gamma ** index / (self._gamma + 1.0)

    def observe(self, value: float) -> None:
        """Add one sample."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value > 0.0:
            index = self._bucket(value)
            self._positive[index] = self._positive.get(index, 0) + 1
        elif value < 0.0:
            index = self._bucket(-value)
            self._negative[index] = self._negative.get(index, 0) + 1
        else:
            self._zeros += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of all samples (exact, not sketched)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * (self.count - 1)
        cumulative = -1.0
        # Ascending value order: most-negative first (descending
        # magnitude), then zeros, then positives (ascending magnitude).
        for index in sorted(self._negative, reverse=True):
            cumulative += self._negative[index]
            if cumulative >= rank:
                return self._clamp(-self._representative(index))
        cumulative += self._zeros
        if cumulative >= rank:
            return self._clamp(0.0)
        for index in sorted(self._positive):
            cumulative += self._positive[index]
            if cumulative >= rank:
                return self._clamp(self._representative(index))
        return self.max  # numerical belt-and-braces

    def _clamp(self, value: float) -> float:
        return min(max(value, self.min), self.max)

    def snapshot(self) -> Dict[str, float]:
        """Summary dict: count, mean, min/max and the headline
        quantiles."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Named counters, gauges, and histograms for one run."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, StreamingHistogram] = {}

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name`` by ``amount``."""
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest ``value``."""
        self.gauges[name] = float(value)

    def histogram(self, name: str) -> StreamingHistogram:
        """Get (or lazily create) the histogram called ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = StreamingHistogram()
        return hist

    def observe(self, name: str, value: float) -> None:
        """Add a sample to histogram ``name``."""
        self.histogram(name).observe(value)

    def snapshot(self) -> Dict[str, Dict]:
        """JSON-ready view of every metric (histograms summarized)."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: hist.snapshot()
                for name, hist in self.histograms.items()
            },
        }
