"""Span-based wall-clock tracing with a zero-cost disabled mode.

A *span* is one timed region of the run — a pipeline stage, an
episode, a whole experiment — with a name, free-form labels, and its
position in the nesting tree.  ``Tracer.span`` is a context manager::

    with tracer.span("fit", design="aes"):
        model = fit_predictor(...)

When observability is off, callers get :data:`NULL_SPAN` (a shared,
stateless context manager) from :class:`NullTracer`, so instrumented
hot paths pay one attribute lookup and nothing else.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple


@dataclass
class SpanRecord:
    """One finished timed region."""

    name: str
    labels: Dict[str, object]
    start: float          # wall-clock (time.time) at entry
    duration: float       # seconds (perf_counter delta)
    depth: int            # 0 for top-level spans
    parent: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (manifest ``stages`` entries)."""
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "start": self.start,
            "duration_s": self.duration,
            "depth": self.depth,
            "parent": self.parent,
        }


class Tracer:
    """Collects nested :class:`SpanRecord` entries for one run."""

    def __init__(self) -> None:
        self.spans: List[SpanRecord] = []
        self._stack: List[str] = []

    @contextmanager
    def span(self, name: str, **labels: object) -> Iterator[None]:
        """Time a region; records a span when the block exits."""
        depth = len(self._stack)
        parent = self._stack[-1] if self._stack else None
        wall = time.time()
        t0 = time.perf_counter()
        self._stack.append(name)
        try:
            yield
        finally:
            self._stack.pop()
            self.spans.append(SpanRecord(
                name=name, labels=labels, start=wall,
                duration=time.perf_counter() - t0,
                depth=depth, parent=parent,
            ))

    def aggregate(self) -> List[Tuple[str, Optional[str], int, int, float]]:
        """Spans grouped by (name, parent): rows of
        ``(name, parent, depth, count, total_seconds)``, ordered by
        first appearance."""
        order: List[Tuple[str, Optional[str]]] = []
        rows: Dict[Tuple[str, Optional[str]], List[float]] = {}
        depths: Dict[Tuple[str, Optional[str]], int] = {}
        # Spans are recorded at exit (children before parents); order
        # rows by entry time so the table reads as a pre-order tree.
        for span in sorted(self.spans, key=lambda s: (s.start, s.depth)):
            key = (span.name, span.parent)
            if key not in rows:
                rows[key] = []
                depths[key] = span.depth
                order.append(key)
            rows[key].append(span.duration)
        return [
            (name, parent, depths[(name, parent)],
             len(rows[(name, parent)]), sum(rows[(name, parent)]))
            for name, parent in order
        ]


class _NullSpan:
    """The do-nothing context manager handed out when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


#: Shared no-op span: every disabled ``span()`` call returns this very
#: object, so the disabled path allocates nothing.
NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracer stand-in whose spans cost (almost) nothing.

    ``span`` ignores its arguments and returns :data:`NULL_SPAN`;
    ``spans`` is always an empty tuple, so reporting code can treat
    the two tracer types uniformly.
    """

    spans: tuple = ()

    def span(self, name: str, **labels: object) -> _NullSpan:
        """Return the shared no-op context manager."""
        return NULL_SPAN

    def aggregate(self) -> list:
        """No spans, no rows."""
        return []
