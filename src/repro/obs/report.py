"""Render captured runs: stage timings, episodes, serve dashboards.

Pure presentation over the artifacts ``runctx`` wrote — nothing here
mutates a run directory.  ``render_run`` is the engine behind
``repro report <run-dir>``; ``format_stage_table`` also serves the
stage-timing footer ``repro experiment --profile`` prints from the
live tracer.  Serve runs additionally get a time-resolved dashboard
(:func:`summarize_serve_windows` over ``timeseries.json``) and the
manifest's SLO burn-rate status; Chrome-trace export lives in
:mod:`repro.obs.export`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..runtime.trace import sparkline
from .events import read_events
from .runctx import EVENTS_NAME, MANIFEST_NAME
from .slo import describe_slo_rows
from .timeseries import TIMESERIES_NAME, TimeSeriesRegistry, WindowCell

AggregateRows = Sequence[Tuple[str, Optional[str], int, int, float]]


def format_stage_table(rows: AggregateRows) -> str:
    """Aligned stage-timing table from ``Tracer.aggregate()`` rows.

    Nested stages are indented under their parents; ``count`` is how
    many spans shared that (name, parent) slot (e.g. one ``fit`` per
    benchmark), ``total`` their summed wall-clock.
    """
    if not rows:
        return "(no spans recorded)"
    header = ("stage", "count", "total_s", "mean_s")
    table: List[Tuple[str, str, str, str]] = [header]
    for name, _parent, depth, count, total in rows:
        table.append((
            "  " * depth + name,
            str(count),
            f"{total:.3f}",
            f"{total / count:.3f}",
        ))
    widths = [max(len(row[i]) for row in table) for i in range(len(header))]
    return "\n".join(
        "  ".join(
            cell.ljust(w) if i == 0 else cell.rjust(w)
            for i, (cell, w) in enumerate(zip(row, widths))
        )
        for row in table
    )


def summarize_perf(metrics: Dict) -> str:
    """Pool-utilization and cache-effectiveness digest of a metrics
    snapshot.

    Reads the ``pool.*`` and ``cache.*`` series the parallel subsystem
    emits and renders at most two lines — one for process-pool usage,
    one for artifact-cache hits — or an empty string when the run used
    neither, so callers can append it unconditionally.
    """
    counters = metrics.get("counters") or {}
    gauges = metrics.get("gauges") or {}
    lines: List[str] = []
    maps = counters.get("pool.maps", 0)
    if maps:
        tasks = int(counters.get("pool.tasks", 0))
        workers = int(gauges.get("pool.workers", 0))
        line = (f"  pool: {tasks} tasks over {int(maps)} map(s), "
                f"{workers} worker(s)")
        utilization = gauges.get("pool.utilization")
        if utilization is not None:
            line += f", {utilization * 100.0:.0f}% busy"
        lines.append(line)
    hits = counters.get("cache.hit", 0)
    misses = counters.get("cache.miss", 0)
    if hits or misses:
        total = hits + misses
        line = (f"  cache: {int(hits)} hit(s), {int(misses)} miss(es) "
                f"({hits / total * 100.0:.0f}% hit rate), "
                f"{int(counters.get('cache.put', 0))} put(s)")
        evicted = counters.get("cache.evict", 0)
        if evicted:
            line += f", {int(evicted)} evicted"
        lines.append(line)
    skipped = counters.get("flow.record.cached", 0)
    if skipped:
        lines.append(f"  record stage skipped for {int(skipped)} "
                     f"design(s) (cached feature matrix)")
    from ..rtl.backend import BACKENDS
    for backend in reversed(BACKENDS):
        runs = counters.get(f"sim.{backend}.runs", 0)
        if not runs:
            continue
        cycles = counters.get(f"sim.{backend}.cycles", 0.0)
        wall = counters.get(f"sim.{backend}.wall_s", 0.0)
        line = (f"  sim[{backend}]: {int(runs)} run(s), "
                f"{int(cycles)} cycles")
        if wall > 0:
            line += f" at {cycles / wall / 1e6:.2f} Mcyc/s"
        jumps = counters.get(f"sim.{backend}.ff_jumps", 0)
        if jumps:
            line += f", {int(jumps)} fast-forward jump(s)"
        codegen = counters.get(f"sim.{backend}.codegen_s")
        if codegen:
            line += (f"; {int(counters.get(f'sim.{backend}.compiles', 0))}"
                     f" kernel(s) in {codegen * 1e3:.0f} ms")
        if backend == "batch":
            rows = counters.get("sim.batch.rows", 0)
            occupancy = gauges.get("sim.batch.occupancy")
            if rows:
                line += f"; {int(rows)} row(s)"
            if occupancy is not None:
                line += f", {occupancy * 100.0:.0f}% occupancy"
        lines.append(line)
    offered = counters.get("serve.offered", 0)
    if offered:
        line = (f"  serve: {int(offered)} offered, "
                f"{int(counters.get('serve.completed', 0))} completed, "
                f"{int(counters.get('serve.fallback', 0))} fallback, "
                f"{int(counters.get('serve.shed', 0))} shed")
        decision = (metrics.get("histograms") or {}).get(
            "serve.decision_ms") or {}
        if decision.get("count"):
            line += (f"; decision p50/p99 "
                     f"{decision['p50']:.3g}/{decision['p99']:.3g} ms")
        lines.append(line)
    fleet_offered = counters.get("serve.fleet.offered", 0)
    if fleet_offered:
        line = (f"  fleet: {int(fleet_offered)} offered, "
                f"{int(counters.get('serve.fleet.routed', 0))} routed; "
                "shed admission/rate/deadline "
                f"{int(counters.get('serve.fleet.shed.admission', 0))}/"
                f"{int(counters.get('serve.fleet.shed.rate_limit', 0))}/"
                f"{int(counters.get('serve.fleet.shed.deadline', 0))}")
        active = gauges.get("serve.fleet.active")
        if active is not None:
            line += f", {int(active)} active instance(s)"
        ups = counters.get("serve.fleet.scale_up", 0)
        downs = counters.get("serve.fleet.scale_down", 0)
        if ups or downs:
            line += f", {int(ups)} up / {int(downs)} down rescale(s)"
        lines.append(line)
    return "\n".join(lines)


def summarize_job_events(events: Sequence[Dict]) -> str:
    """Per-(controller, task) digest of ``type == "job"`` events.

    Shows job/miss/boost/switch counts, the mean absolute prediction
    error where a prediction was recorded, and a slack sparkline —
    the quick "where did the misses cluster" view.
    """
    groups: Dict[Tuple[str, str], List[Dict]] = {}
    for event in events:
        if event.get("type") != "job":
            continue
        key = (str(event.get("controller", "?")),
               str(event.get("task", "?")))
        groups.setdefault(key, []).append(event)
    if not groups:
        return "(no job events)"
    lines = []
    for (controller, task), jobs in groups.items():
        misses = sum(1 for j in jobs if j.get("missed"))
        boosts = sum(1 for j in jobs if j.get("boosted"))
        switches = sum(1 for j in jobs if j.get("switched"))
        errors = [
            abs(float(j["predicted_cycles"]) - float(j["actual_cycles"]))
            / float(j["actual_cycles"]) * 100.0
            for j in jobs
            if j.get("predicted_cycles") is not None
            and float(j.get("actual_cycles", 0)) > 0
        ]
        slack = [float(j["slack"]) for j in jobs if "slack" in j]
        lines.append(
            f"  {controller} on {task}: {len(jobs)} jobs, "
            f"{misses} missed, {boosts} boosted, {switches} switches"
            + (f", mean |err| {sum(errors) / len(errors):.2f}%"
               if errors else "")
        )
        if slack:
            lines.append(f"    slack {sparkline(slack)}")
    return "\n".join(lines)


def summarize_serve_windows(ts: TimeSeriesRegistry,
                            max_rows: int = 12) -> str:
    """Time-resolved serve dashboard from the windowed registry.

    One row per (possibly coarsened) window — executed jobs, miss /
    shed / fallback rates, mean energy per job, p99 decision latency —
    plus full-resolution sparklines underneath.  When the run spans
    more than ``max_rows`` windows, consecutive windows are merged
    cell-by-cell so the table stays terminal-sized without losing the
    aggregates (sums and sketches merge exactly; only row granularity
    coarsens).
    """
    indices = ts.window_indices()
    if not indices:
        return "  (no windowed serve telemetry)"
    lo, hi = indices[0], indices[-1]
    group = max(1, -(-(hi - lo + 1) // max_rows))  # ceil division

    def coarse(series: str) -> Dict[int, WindowCell]:
        slots: Dict[int, WindowCell] = {}
        for index, cell in ts.windows(series):
            slot = (index - lo) // group
            merged = slots.get(slot)
            if merged is None:
                merged = slots[slot] = WindowCell()
            merged.merge(cell)
        return slots

    miss = coarse("serve.miss")
    shed = coarse("serve.shed")
    fallback = coarse("serve.fallback")
    energy = coarse("serve.energy_per_job")
    decision = coarse("serve.decision_ms")

    header = ("t(s)", "jobs", "miss%", "shed%", "fb%",
              "energy/job", "p99ms")
    table: List[Tuple[str, ...]] = [header]
    for slot in range((hi - lo) // group + 1):
        cells = (miss.get(slot), shed.get(slot), fallback.get(slot),
                 energy.get(slot), decision.get(slot))
        if not any(c is not None and c.count for c in cells):
            continue
        m, s, f, e, d = cells

        def pct(cell: Optional[WindowCell]) -> str:
            return f"{cell.mean * 100:.1f}" if cell is not None \
                and cell.count else "-"

        table.append((
            f"{ts.window_start(lo + slot * group):.2f}",
            str(m.count if m is not None else 0),
            pct(m), pct(s), pct(f),
            f"{e.mean:.3g}" if e is not None and e.count else "-",
            f"{d.quantile(0.99):.3g}" if d is not None and d.count
            else "-",
        ))
    widths = [max(len(row[i]) for row in table)
              for i in range(len(header))]
    lines = [
        "  " + "  ".join(
            cell.ljust(w) if i == 0 else cell.rjust(w)
            for i, (cell, w) in enumerate(zip(row, widths)))
        for row in table
    ]
    if group > 1:
        lines.append(f"  ({group} windows of {ts.window_s:g} s "
                     f"merged per row)")
    for series, label in (("serve.miss", "miss rate "),
                          ("serve.energy_per_job", "energy/job"),
                          ("serve.fleet.backlog", "fleet backlog"),
                          ("serve.fleet.shed", "fleet shed ")):
        values = [cell.mean for _, cell in ts.windows(series)]
        if len(values) > 1:
            lines.append(f"  {label} {sparkline(values)}")
    dropped = {name: n for name, n in ts.dropped_windows.items() if n}
    if dropped:
        detail = ", ".join(f"{name}: {n}"
                           for name, n in sorted(dropped.items()))
        lines.append(f"  (ring evicted old windows — {detail})")
    return "\n".join(lines)


def load_manifest(run_dir: Path) -> Dict:
    """Parse ``manifest.json`` from a run directory."""
    with open(run_dir / MANIFEST_NAME) as handle:
        return json.load(handle)


def _manifest_rows(stages: Sequence[Dict]) -> AggregateRows:
    """Re-aggregate manifest ``stages`` entries by (name, parent)."""
    order: List[Tuple[str, Optional[str]]] = []
    totals: Dict[Tuple[str, Optional[str]], List[float]] = {}
    depths: Dict[Tuple[str, Optional[str]], int] = {}
    # Same pre-order treatment as Tracer.aggregate(): sort by entry.
    stages = sorted(stages, key=lambda s: (float(s.get("start", 0.0)),
                                           int(s.get("depth", 0))))
    for stage in stages:
        key = (stage["name"], stage.get("parent"))
        if key not in totals:
            totals[key] = []
            depths[key] = int(stage.get("depth", 0))
            order.append(key)
        totals[key].append(float(stage["duration_s"]))
    return [
        (name, parent, depths[(name, parent)],
         len(totals[(name, parent)]), sum(totals[(name, parent)]))
        for name, parent in order
    ]


def render_run(run_dir) -> str:
    """The full terminal report for one captured run directory."""
    run_dir = Path(run_dir)
    manifest = load_manifest(run_dir)
    lines = [
        f"run: {manifest.get('command') or '(unknown command)'}",
        f"  dir      {run_dir}",
        f"  git rev  {manifest.get('git_rev', 'unknown')}",
        f"  python   {manifest.get('python', '?')} "
        f"on {manifest.get('platform', '?')}",
        f"  duration {float(manifest.get('duration_s', 0.0)):.2f}s, "
        f"{manifest.get('n_events', 0)} events",
    ]
    config = manifest.get("config") or {}
    if config:
        rendered = ", ".join(f"{k}={v}" for k, v in config.items())
        lines.append(f"  config   {rendered}")
    lines.append("")
    lines.append("stage timings:")
    lines.append(format_stage_table(_manifest_rows(
        manifest.get("stages", []))))
    metrics = manifest.get("metrics") or {}
    perf = summarize_perf(metrics)
    if perf:
        lines.append("")
        lines.append("parallelism/cache:")
        lines.append(perf)
    counters = metrics.get("counters") or {}
    gauges = metrics.get("gauges") or {}
    histograms = metrics.get("histograms") or {}
    if counters or gauges or histograms:
        lines.append("")
        lines.append("metrics:")
        for name in sorted(counters):
            lines.append(f"  {name} = {counters[name]:g}")
        for name in sorted(gauges):
            lines.append(f"  {name} = {gauges[name]:g}")
        for name in sorted(histograms):
            snap = histograms[name]
            if snap.get("count"):
                lines.append(
                    f"  {name}: n={snap['count']} mean={snap['mean']:.4g}"
                    f" p50={snap['p50']:.4g} p95={snap['p95']:.4g}"
                    f" p99={snap['p99']:.4g}"
                )
    ts_path = run_dir / str(manifest.get("timeseries_file")
                            or TIMESERIES_NAME)
    if ts_path.is_file():
        with open(ts_path) as handle:
            ts = TimeSeriesRegistry.from_dict(json.load(handle))
        if any(name.startswith("serve.") for name in ts.series_names()):
            lines.append("")
            lines.append(f"serve (windows of {ts.window_s * 1e3:g} ms, "
                         f"virtual clock):")
            lines.append(summarize_serve_windows(ts))
    slo_rows = manifest.get("slo")
    if slo_rows:
        lines.append("")
        lines.append("slo:")
        lines.append(describe_slo_rows(slo_rows))
    events_path = run_dir / EVENTS_NAME
    if events_path.exists():
        lines.append("")
        lines.append("episodes:")
        try:
            events = read_events(events_path)
        except json.JSONDecodeError:
            # A torn final line (crash mid-write) shouldn't kill the
            # report — salvage the complete lines and say so.
            events = _salvage_events(events_path)
            lines.append(f"  (events file truncated mid-write; "
                         f"salvaged {len(events)} complete events)")
        lines.append(summarize_job_events(events))
    return "\n".join(lines)


def _salvage_events(path: Path) -> List[Dict]:
    """Parse a JSONL file line by line, skipping unparseable lines."""
    events: List[Dict] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return events
