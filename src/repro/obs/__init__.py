"""Observability: spans, metrics, time series, SLOs, run artifacts.

The package's layers, importable à la carte:

* :mod:`~repro.obs.tracer` — nested wall-clock spans with labels and a
  zero-allocation no-op mode;
* :mod:`~repro.obs.metrics` — counters, gauges, and streaming
  (log-bucketed) histograms for p50/p95/p99 without sample storage,
  all mergeable across processes at bucket level;
* :mod:`~repro.obs.timeseries` — ring-buffered windowed aggregates on
  the serve runtime's virtual clock (rate/mean/quantiles per window);
* :mod:`~repro.obs.slo` — declarative windowed SLOs with error-budget
  burn-rate accounting over those windows;
* :mod:`~repro.obs.events` — a JSONL event sink and reader;
* :mod:`~repro.obs.merge` — the worker→parent telemetry wire protocol
  used by :mod:`repro.parallel.pool`;
* :mod:`~repro.obs.runctx` — the ambient :class:`Observer` installed
  by :func:`session`, plus the run-manifest/time-series writers.

Instrumented code uses two entry points only: ``with span("fit",
design=...):`` for timings and ``obs = get_observer()`` (``None`` when
disabled) for events/metrics — so the disabled hot path costs one
global read.  ``repro.obs.report`` (the run renderer, including the
windowed serve dashboard) and :mod:`repro.obs.export` (Chrome-trace
export) are imported lazily by the CLI.
"""

from .events import EventSink, read_events
from .metrics import MetricsRegistry, StreamingHistogram
from .runctx import (
    EVENTS_NAME,
    MANIFEST_NAME,
    Observer,
    get_observer,
    git_revision,
    session,
    span,
)
from .slo import SloSpec, SloTracker, parse_slo
from .timeseries import TIMESERIES_NAME, TimeSeriesRegistry, WindowCell
from .tracer import NULL_SPAN, NullTracer, SpanRecord, Tracer

__all__ = [
    "EVENTS_NAME", "EventSink", "MANIFEST_NAME", "MetricsRegistry",
    "NULL_SPAN", "NullTracer", "Observer", "SloSpec", "SloTracker",
    "SpanRecord", "StreamingHistogram", "TIMESERIES_NAME",
    "TimeSeriesRegistry", "Tracer", "WindowCell", "get_observer",
    "git_revision", "parse_slo", "read_events", "session", "span",
]
