"""Observability: spans, metrics, and structured run artifacts.

The package has four layers, importable à la carte:

* :mod:`~repro.obs.tracer` — nested wall-clock spans with labels and a
  zero-allocation no-op mode;
* :mod:`~repro.obs.metrics` — counters, gauges, and streaming
  (log-bucketed) histograms for p50/p95/p99 without sample storage;
* :mod:`~repro.obs.events` — a JSONL event sink and reader;
* :mod:`~repro.obs.runctx` — the ambient :class:`Observer` installed
  by :func:`session`, plus the run-manifest writer.

Instrumented code uses two entry points only: ``with span("fit",
design=...):`` for timings and ``obs = get_observer()`` (``None`` when
disabled) for events/metrics — so the disabled hot path costs one
global read.  ``repro.obs.report`` (imported lazily by the CLI)
renders captured runs.
"""

from .events import EventSink, read_events
from .metrics import MetricsRegistry, StreamingHistogram
from .runctx import (
    EVENTS_NAME,
    MANIFEST_NAME,
    Observer,
    get_observer,
    git_revision,
    session,
    span,
)
from .tracer import NULL_SPAN, NullTracer, SpanRecord, Tracer

__all__ = [
    "EVENTS_NAME", "EventSink", "MANIFEST_NAME", "MetricsRegistry",
    "NULL_SPAN", "NullTracer", "Observer", "SpanRecord",
    "StreamingHistogram", "Tracer", "get_observer", "git_revision",
    "read_events", "session", "span",
]
