"""Time-resolved metrics: ring-buffered windowed aggregates.

End-of-run aggregates (``MetricsRegistry``) answer *how much*; a
serving runtime also needs *when*.  The :class:`TimeSeriesRegistry`
buckets samples into fixed-width windows keyed on the serve runtime's
**virtual clock**, so "miss rate over 1 s windows" and "p99 decision
latency per 100 ms" are first-class signals — the shape the SLO
tracker (:mod:`repro.obs.slo`), the ``repro report`` dashboard, and
the ROADMAP's fleet power-cap item all consume.

Each (series, window) cell keeps count/total/min/max plus an optional
quantile sketch, so a window's *rate* (count over window length),
*mean* (e.g. miss rate from 0/1 samples), and *quantiles* all come out
without per-sample storage.  A per-series ring bounds memory on
unbounded streams: once ``capacity`` windows exist the oldest is
evicted (and counted in ``dropped_windows``, so downstream consumers
can tell a complete record from a truncated one).

The registry serializes losslessly (:meth:`TimeSeriesRegistry.to_dict`
/ :meth:`~TimeSeriesRegistry.from_dict`) — a ``--run-dir`` session
persists it as ``timeseries.json`` next to the manifest — and merges
(:meth:`~TimeSeriesRegistry.merge`), so per-process registries can be
combined fleet-wide.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from .metrics import StreamingHistogram

#: Artifact filename a run-dir session writes the registry to.
TIMESERIES_NAME = "timeseries.json"

#: Default window width (seconds of virtual time).
DEFAULT_WINDOW_S = 0.1

#: Default per-series ring capacity (windows kept before eviction).
DEFAULT_CAPACITY = 600


class WindowCell:
    """Aggregates of one series over one time window."""

    __slots__ = ("count", "total", "min", "max", "sketch")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.sketch: Optional[StreamingHistogram] = None

    @property
    def mean(self) -> float:
        """Arithmetic mean of the window's samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def add(self, value: float, sketch_accuracy: Optional[float]) -> None:
        """Fold one sample in (``sketch_accuracy=None`` skips the
        quantile sketch — the cheap counter/rate path)."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if sketch_accuracy is not None:
            if self.sketch is None:
                self.sketch = StreamingHistogram(sketch_accuracy)
            self.sketch.observe(value)

    def quantile(self, q: float) -> float:
        """Window quantile from the sketch (falls back to min/mean/max
        for sketchless cells)."""
        if self.sketch is not None:
            return self.sketch.quantile(q)
        if self.count == 0:
            return 0.0
        if q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        return self.mean

    def merge(self, other: "WindowCell") -> None:
        """Fold another cell covering the same window into this one."""
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        if other.sketch is not None:
            if self.sketch is None:
                self.sketch = StreamingHistogram.from_dict(
                    other.sketch.to_dict())
            else:
                self.sketch.merge(other.sketch)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready cell state (lossless; ``min``/``max`` are
        ``None`` on the empty cell)."""
        payload: Dict[str, object] = {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }
        if self.sketch is not None:
            payload["sketch"] = self.sketch.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "WindowCell":
        """Rebuild a cell from :meth:`to_dict` output."""
        cell = cls()
        cell.count = int(payload.get("count", 0))
        cell.total = float(payload.get("total", 0.0))
        minimum = payload.get("min")
        maximum = payload.get("max")
        cell.min = math.inf if minimum is None else float(minimum)
        cell.max = -math.inf if maximum is None else float(maximum)
        sketch = payload.get("sketch")
        if sketch is not None:
            cell.sketch = StreamingHistogram.from_dict(sketch)
        return cell


class TimeSeriesRegistry:
    """Named time series of ring-buffered windowed aggregates.

    Two verbs mirror :class:`~repro.obs.metrics.MetricsRegistry`:
    :meth:`inc` for event-rate series (cheap, no sketch) and
    :meth:`observe` for value distributions (adds a per-window
    quantile sketch).  Observing a 0/1 indicator makes the window mean
    a *rate* — miss rate, shed rate and fallback rate are recorded
    exactly this way by the serving runtime.
    """

    def __init__(self, window_s: float = DEFAULT_WINDOW_S,
                 capacity: int = DEFAULT_CAPACITY,
                 sketch_accuracy: float = 0.01):
        if window_s <= 0.0:
            raise ValueError("window_s must be positive")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.window_s = float(window_s)
        self.capacity = int(capacity)
        self.sketch_accuracy = float(sketch_accuracy)
        self._series: Dict[str, Dict[int, WindowCell]] = {}
        self.dropped_windows: Dict[str, int] = {}

    def __bool__(self) -> bool:
        return bool(self._series)

    def window_index(self, t: float) -> int:
        """The window that instant ``t`` falls into (clamped at 0)."""
        return max(0, int(t // self.window_s))

    def window_start(self, index: int) -> float:
        """Start instant of window ``index``."""
        return index * self.window_s

    def _cell(self, name: str, t: float) -> WindowCell:
        windows = self._series.get(name)
        if windows is None:
            windows = self._series[name] = {}
        index = self.window_index(t)
        cell = windows.get(index)
        if cell is None:
            cell = windows[index] = WindowCell()
            if len(windows) > self.capacity:
                oldest = min(windows)
                del windows[oldest]
                self.dropped_windows[name] = \
                    self.dropped_windows.get(name, 0) + 1
        return cell

    def inc(self, name: str, t: float, amount: float = 1.0) -> None:
        """Count an event on series ``name`` at virtual instant ``t``."""
        self._cell(name, t).add(float(amount), None)

    def observe(self, name: str, t: float, value: float) -> None:
        """Add a sample to series ``name`` at virtual instant ``t``
        (keeps a per-window quantile sketch)."""
        self._cell(name, t).add(float(value), self.sketch_accuracy)

    def series_names(self) -> List[str]:
        """Recorded series names, sorted."""
        return sorted(self._series)

    def windows(self, name: str) -> List[Tuple[int, WindowCell]]:
        """``(window_index, cell)`` pairs of one series, in time order."""
        return sorted((self._series.get(name) or {}).items())

    def window_indices(self) -> List[int]:
        """Union of window indices across every series, sorted."""
        indices = set()
        for windows in self._series.values():
            indices.update(windows)
        return sorted(indices)

    def cell(self, name: str, index: int) -> Optional[WindowCell]:
        """The cell of ``name`` at window ``index`` (``None`` if no
        samples landed there)."""
        return (self._series.get(name) or {}).get(index)

    def total_count(self, name: str) -> int:
        """Samples currently held for ``name`` (evicted windows
        excluded — check :attr:`dropped_windows`)."""
        return sum(c.count for _, c in self.windows(name))

    def merge(self, other: "TimeSeriesRegistry") -> None:
        """Fold another registry in, window by window.

        Both registries must share ``window_s`` — merging differently
        bucketed series silently misaligns time, so it raises instead.
        """
        if not math.isclose(other.window_s, self.window_s):
            raise ValueError(
                f"cannot merge time series with different windows "
                f"({self.window_s} s vs {other.window_s} s)")
        for name in other.series_names():
            mine = self._series.setdefault(name, {})
            for index, cell in other.windows(name):
                existing = mine.get(index)
                if existing is None:
                    mine[index] = WindowCell.from_dict(cell.to_dict())
                else:
                    existing.merge(cell)
            if name in other.dropped_windows:
                self.dropped_windows[name] = \
                    self.dropped_windows.get(name, 0) \
                    + other.dropped_windows[name]

    def to_dict(self) -> Dict[str, object]:
        """Lossless JSON-ready registry state (the ``timeseries.json``
        artifact body)."""
        return {
            "window_s": self.window_s,
            "capacity": self.capacity,
            "sketch_accuracy": self.sketch_accuracy,
            "dropped_windows": dict(self.dropped_windows),
            "series": {
                name: {str(index): cell.to_dict()
                       for index, cell in self.windows(name)}
                for name in self.series_names()
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "TimeSeriesRegistry":
        """Rebuild a registry from :meth:`to_dict` output."""
        registry = cls(
            window_s=float(payload.get("window_s", DEFAULT_WINDOW_S)),
            capacity=int(payload.get("capacity", DEFAULT_CAPACITY)),
            sketch_accuracy=float(payload.get("sketch_accuracy", 0.01)),
        )
        registry.dropped_windows = {
            str(k): int(v) for k, v
            in (payload.get("dropped_windows") or {}).items()}
        for name, windows in (payload.get("series") or {}).items():
            registry._series[name] = {
                int(index): WindowCell.from_dict(cell)
                for index, cell in windows.items()
            }
        return registry
