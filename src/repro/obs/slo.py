"""Declarative SLOs with error-budget burn-rate accounting.

A service-level objective here is a *windowed* statement — "miss rate
below 5 % in at least 99 % of 1 s windows", "p99 decision latency
under 1 ms" — evaluated live against the
:class:`~repro.obs.timeseries.TimeSeriesRegistry` the serving runtime
records into.  Each spec compares one per-window aggregate (mean,
rate, a quantile, min/max) of one series against a threshold; windows
that violate it consume *error budget*, and the **burn rate** is the
fraction of budget consumed relative to what the objective allows:

    burn_rate = (bad_windows / evaluated_windows) / (1 - objective)

``burn_rate > 1`` means the budget is exhausted — ``repro serve
--slo ...`` exits non-zero on it, the CI gate for "this change made
the service worse".  Specs parse from compact CLI strings::

    miss_rate<5%              # named signal, default 99% objective
    p99_decision_ms<1@95%     # explicit 95% objective
    mean:serve.energy_per_job<2.5e-4   # generic agg:series form

Named signals map onto the ``serve.*`` series
:class:`~repro.serve.server.AcceleratorStream` records (0/1 indicator
series make the window mean a rate), so the spec language needs no
schema beyond the series that already exist.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .timeseries import TimeSeriesRegistry

#: CLI-friendly signal names -> (series, per-window aggregate).
NAMED_SIGNALS = {
    "miss_rate": ("serve.miss", "mean"),
    "shed_rate": ("serve.shed", "mean"),
    "fallback_rate": ("serve.fallback", "mean"),
    "energy_per_job": ("serve.energy_per_job", "mean"),
    "p50_decision_ms": ("serve.decision_ms", "p50"),
    "p99_decision_ms": ("serve.decision_ms", "p99"),
    "max_decision_ms": ("serve.decision_ms", "max"),
}

#: Aggregates a spec may apply to a window.
AGGREGATES = ("mean", "rate", "min", "max", "p50", "p95", "p99")

_SPEC_RE = re.compile(
    r"^(?P<signal>[A-Za-z0-9_.:]+)"
    r"\s*(?P<op><=|<)\s*"
    r"(?P<threshold>[-+0-9.eE]+)(?P<percent>%?)"
    r"(?:@(?P<objective>[0-9.]+)%?)?$")


@dataclass(frozen=True)
class SloSpec:
    """One parsed objective over one windowed signal."""

    name: str           # display name (the spec text's signal part)
    series: str         # time-series name the windows come from
    agg: str            # per-window aggregate (see AGGREGATES)
    op: str             # "<" or "<="
    threshold: float
    objective: float = 0.99   # fraction of windows that must comply

    def __post_init__(self) -> None:
        if self.agg not in AGGREGATES:
            raise ValueError(f"unknown aggregate {self.agg!r}; "
                             f"valid: {', '.join(AGGREGATES)}")
        if not 0.0 < self.objective <= 1.0:
            raise ValueError("objective must be in (0, 1]")

    def describe(self) -> str:
        """The spec back as a compact string."""
        return (f"{self.name}{self.op}{self.threshold:g}"
                f"@{self.objective * 100:g}%")

    def window_value(self, cell, window_s: float) -> float:
        """The aggregate this spec reads off one window cell."""
        if self.agg == "mean":
            return cell.mean
        if self.agg == "rate":
            return cell.count / window_s
        if self.agg == "min":
            return cell.min
        if self.agg == "max":
            return cell.max
        return cell.quantile(float(self.agg[1:]) / 100.0)

    def complies(self, value: float) -> bool:
        """Does one window's aggregate satisfy the objective?"""
        if self.op == "<":
            return value < self.threshold
        return value <= self.threshold


def parse_slo(text: str) -> SloSpec:
    """Parse one CLI spec string (see the module docstring grammar).

    Raises :class:`ValueError` on anything unparseable, with the
    valid named signals listed — the CLI surfaces that as exit 2.
    """
    match = _SPEC_RE.match(text.strip())
    if not match:
        raise ValueError(
            f"cannot parse SLO {text!r}; expected e.g. 'miss_rate<5%', "
            f"'p99_decision_ms<1@95%' or 'mean:serve.miss<0.05'")
    signal = match.group("signal")
    threshold = float(match.group("threshold"))
    if match.group("percent"):
        threshold /= 100.0
    objective = 0.99
    if match.group("objective"):
        objective = float(match.group("objective")) / 100.0
    if ":" in signal:
        agg, series = signal.split(":", 1)
    elif signal in NAMED_SIGNALS:
        series, agg = NAMED_SIGNALS[signal]
    else:
        raise ValueError(
            f"unknown SLO signal {signal!r}; named signals: "
            f"{', '.join(NAMED_SIGNALS)} (or use 'agg:series' with "
            f"agg one of {', '.join(AGGREGATES)})")
    return SloSpec(name=signal, series=series, agg=agg,
                   op=match.group("op"), threshold=threshold,
                   objective=objective)


@dataclass
class _SpecState:
    """Mutable per-spec accounting."""

    windows: int = 0
    bad_windows: int = 0
    worst: float = -math.inf
    last_index: int = -1          # highest window index evaluated
    bad_examples: List[int] = field(default_factory=list)


class SloTracker:
    """Evaluates a set of specs against a live time-series registry.

    :meth:`evaluate` is incremental and idempotent: each call folds in
    the windows that *closed* since the last call (a window closes
    once the virtual clock passes its end — the current, still-filling
    window is never judged early).  :meth:`finalize` force-closes
    everything at end of stream.  Windows where the spec's series saw
    no samples are skipped — an idle window has no miss rate.
    """

    def __init__(self, specs: Sequence[SloSpec]):
        if not specs:
            raise ValueError("SloTracker needs at least one spec")
        self.specs = list(specs)
        self._state: Dict[SloSpec, _SpecState] = {
            spec: _SpecState() for spec in self.specs}

    def evaluate(self, ts: TimeSeriesRegistry,
                 upto_t: Optional[float] = None) -> None:
        """Fold in windows fully before ``upto_t`` (``None`` = all)."""
        horizon = (ts.window_index(upto_t) if upto_t is not None
                   else None)
        for spec in self.specs:
            state = self._state[spec]
            for index, cell in ts.windows(spec.series):
                if index <= state.last_index or cell.count == 0:
                    continue
                if horizon is not None and index >= horizon:
                    break
                value = spec.window_value(cell, ts.window_s)
                state.windows += 1
                state.worst = max(state.worst, value)
                if not spec.complies(value):
                    state.bad_windows += 1
                    if len(state.bad_examples) < 8:
                        state.bad_examples.append(index)
                state.last_index = index

    def finalize(self, ts: TimeSeriesRegistry) -> None:
        """Close every remaining window (end of stream)."""
        self.evaluate(ts, upto_t=None)

    def burn_rate(self, spec: SloSpec) -> float:
        """Budget consumed relative to allowance (1.0 = exhausted)."""
        state = self._state[spec]
        if state.windows == 0:
            return 0.0
        bad_fraction = state.bad_windows / state.windows
        allowed = 1.0 - spec.objective
        if allowed <= 0.0:
            return math.inf if state.bad_windows else 0.0
        return bad_fraction / allowed

    @property
    def exhausted(self) -> bool:
        """True when any spec has burned through its error budget."""
        return any(self.burn_rate(spec) > 1.0 for spec in self.specs)

    def summary(self) -> List[Dict[str, object]]:
        """JSON-ready per-spec accounting (manifest ``slo`` section)."""
        rows = []
        for spec in self.specs:
            state = self._state[spec]
            burn = self.burn_rate(spec)
            rows.append({
                "spec": spec.describe(),
                "series": spec.series,
                "agg": spec.agg,
                "threshold": spec.threshold,
                "objective": spec.objective,
                "windows": state.windows,
                "bad_windows": state.bad_windows,
                "worst": (state.worst if state.windows else None),
                "burn_rate": (burn if math.isfinite(burn) else None),
                "exhausted": burn > 1.0,
                "bad_window_indices": list(state.bad_examples),
            })
        return rows

    def describe(self) -> str:
        """Human status lines, one per spec (CLI footer)."""
        return describe_slo_rows(self.summary())


def describe_slo_rows(rows: Sequence[Dict]) -> str:
    """Render :meth:`SloTracker.summary` rows (live or from a
    manifest) as human status lines, one per spec."""
    lines = []
    for row in rows:
        burn = row.get("burn_rate")
        burn_text = ("inf" if burn is None and row.get("bad_windows")
                     else "0.00" if burn is None
                     else f"{burn:.2f}")
        status = "EXHAUSTED" if row.get("exhausted") else "ok"
        lines.append(
            f"  slo {row['spec']}: {row.get('bad_windows', 0)}/"
            f"{row.get('windows', 0)} bad window(s), "
            f"burn rate {burn_text} — {status}")
    return "\n".join(lines)
