"""Structured event stream: JSONL writer/reader for run artifacts.

Every instrumented layer emits flat dict events (``type`` plus
free-form fields); the sink appends them as one JSON object per line
to ``events.jsonl`` under the run directory.  JSONL keeps the file
appendable under crashes (every completed line parses) and trivially
greppable/``jq``-able — the format the ROADMAP's later regression
gating will diff.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, IO, List, Optional, Union


class EventSink:
    """Writes timestamped events to a JSONL file.

    Each sink owns its file: by default it truncates on open, so
    reusing a ``--run-dir`` replaces the previous run's events instead
    of silently mixing two runs (pass ``mode="a"`` to append).  The
    sink buffers through the underlying file object and flushes on
    :meth:`close` (and on context-manager exit); ``emit`` never raises
    on a closed sink — late events after shutdown are dropped rather
    than crashing the instrumented caller.
    """

    def __init__(self, path: Union[str, Path], mode: str = "w"):
        self.path = Path(path)
        self._handle: Optional[IO[str]] = open(self.path, mode)
        self.n_events = 0

    def emit(self, event: Dict[str, object]) -> None:
        """Append one event (a ``ts`` field is added if missing)."""
        if self._handle is None:
            return
        if "ts" not in event:
            event = {**event, "ts": time.time()}
        self._handle.write(json.dumps(event, default=str) + "\n")
        self.n_events += 1

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def read_events(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Parse a JSONL events file back into a list of dicts.

    Blank lines are skipped; a torn final line (crash mid-write)
    raises ``json.JSONDecodeError`` — callers that want to salvage a
    partial file should slice off the last line themselves.
    """
    events: List[Dict[str, object]] = []
    with open(Path(path)) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
