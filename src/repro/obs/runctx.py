"""Run context: the ambient Observer and the run-manifest writer.

One :class:`Observer` bundles the three instrumentation primitives —
tracer, metrics registry, event sink — for the duration of a run.  It
is installed process-wide by :func:`session`; instrumented code pulls
it with :func:`get_observer` (``None`` when observability is off) or
opens spans through the module-level :func:`span` helper, which
degrades to a shared no-op context manager at near-zero cost.

A session given a ``run_dir`` writes two artifacts on exit:

* ``events.jsonl`` — the structured event stream (see ``events.py``);
* ``manifest.json`` — command, config, git revision, interpreter and
  platform, wall-clock duration, every recorded span, and a metrics
  snapshot.  ``repro report <run-dir>`` renders both.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

from .events import EventSink
from .metrics import MetricsRegistry
from .timeseries import TIMESERIES_NAME, TimeSeriesRegistry
from .tracer import NULL_SPAN, Tracer

MANIFEST_NAME = "manifest.json"
EVENTS_NAME = "events.jsonl"


class Observer:
    """The live instrumentation bundle for one run."""

    def __init__(self, run_dir: Optional[Union[str, Path]] = None,
                 command: str = "", config: Optional[Dict] = None):
        self.run_dir = Path(run_dir) if run_dir is not None else None
        self.command = command
        self.config = dict(config or {})
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        #: Windowed (virtual-clock) aggregates; replace before serving
        #: to change the window width.  Persisted as
        #: ``timeseries.json`` when non-empty and a run_dir was given.
        self.timeseries = TimeSeriesRegistry()
        #: Optional live SLO tracker (set by ``repro serve --slo``);
        #: its summary lands in the manifest.
        self.slo = None
        self.started_at = time.time()
        self._t0 = time.perf_counter()
        self.sink: Optional[EventSink] = None
        if self.run_dir is not None:
            self.run_dir.mkdir(parents=True, exist_ok=True)
            self.sink = EventSink(self.run_dir / EVENTS_NAME)

    def span(self, name: str, **labels: object):
        """Open a traced span (context manager)."""
        return self.tracer.span(name, **labels)

    def emit(self, event_type: str, **fields: object) -> None:
        """Emit one structured event (dropped when no run_dir)."""
        if self.sink is not None:
            self.sink.emit({"type": event_type, **fields})

    def manifest(self) -> Dict[str, object]:
        """The JSON-ready run manifest (computable at any point)."""
        manifest = {
            "command": self.command,
            "config": self.config,
            "git_rev": git_revision(),
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "started_at": self.started_at,
            "duration_s": time.perf_counter() - self._t0,
            "events_file": EVENTS_NAME if self.sink is not None else None,
            "n_events": self.sink.n_events if self.sink is not None else 0,
            "timeseries_file": (TIMESERIES_NAME
                                if self.run_dir is not None
                                and self.timeseries else None),
            "stages": [s.to_dict() for s in self.tracer.spans],
            "metrics": self.metrics.snapshot(),
        }
        if self.slo is not None:
            manifest["slo"] = self.slo.summary()
        return manifest

    def finish(self) -> Optional[Path]:
        """Close the sink and write ``manifest.json`` plus (when any
        windowed series were recorded) ``timeseries.json``."""
        if self.sink is not None:
            self.sink.close()
        if self.run_dir is None:
            return None
        if self.timeseries:
            with open(self.run_dir / TIMESERIES_NAME, "w") as handle:
                json.dump(self.timeseries.to_dict(), handle)
                handle.write("\n")
        path = self.run_dir / MANIFEST_NAME
        with open(path, "w") as handle:
            json.dump(self.manifest(), handle, indent=2, default=str)
            handle.write("\n")
        return path


_CURRENT: Optional[Observer] = None


def get_observer() -> Optional[Observer]:
    """The installed Observer, or ``None`` when observability is off."""
    return _CURRENT


def _deactivate() -> None:
    # Drop the ambient observer without finalizing it.  Used by pool
    # workers: a fork copies the parent's Observer (including open file
    # descriptors), and letting the child write spans or events would
    # corrupt the parent's artifacts.
    global _CURRENT
    _CURRENT = None


def span(name: str, **labels: object):
    """Span on the ambient observer; a shared no-op when disabled."""
    observer = _CURRENT
    if observer is None:
        return NULL_SPAN
    return observer.tracer.span(name, **labels)


@contextmanager
def session(run_dir: Optional[Union[str, Path]] = None,
            command: str = "", config: Optional[Dict] = None
            ) -> Iterator[Observer]:
    """Install an Observer for the duration of the block.

    On exit the manifest and events file are finalized (when a
    ``run_dir`` was given) and the previous observer — normally none —
    is restored, so sessions nest safely in tests.
    """
    global _CURRENT
    observer = Observer(run_dir=run_dir, command=command, config=config)
    previous = _CURRENT
    _CURRENT = observer
    try:
        yield observer
    finally:
        _CURRENT = previous
        observer.finish()


def git_revision() -> str:
    """The repository's HEAD commit, or ``"unknown"`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"
