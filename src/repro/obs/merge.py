"""Cross-process telemetry: ship worker metrics home and merge them.

Forked pool workers must never write to the parent's span buffers or
event files (shared descriptors), so each worker runs its **own**
file-less :class:`~repro.obs.runctx.Observer`.  The metrics it records
— ``sim.*`` kernel counters, nested-map ``pool.*`` series, streaming
histograms — used to die with the worker; these helpers are the wire
protocol that keeps them:

* :func:`activate_worker` — installed by the pool initializer: replace
  the forked parent observer with a fresh in-memory one;
* :func:`worker_snapshot` — called at the end of each work chunk:
  detach the chunk's bucket-level
  :meth:`~repro.obs.metrics.MetricsRegistry.to_dict` payload plus its
  windowed :class:`~repro.obs.timeseries.TimeSeriesRegistry` state and
  reset both, so every chunk ships exactly its own deltas;
* :func:`absorb_snapshots` — called in the parent after the map:
  merge every shipped payload into the ambient registry (counters
  add, histograms merge bucket-for-bucket, time-series windows merge
  cell-for-cell), counting any chunk that arrived without telemetry
  in ``pool.dropped_observers`` — and any whose windowed series were
  bucketed differently than the parent's in
  ``pool.dropped_timeseries`` — so reports can flag undercounted
  runs.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from .metrics import MetricsRegistry
from .runctx import Observer, get_observer
from .timeseries import TimeSeriesRegistry
from .tracer import Tracer

#: Counter flagging chunks whose worker telemetry could not be
#: captured — a nonzero value means aggregate ``sim.*``/histogram
#: figures undercount the run.
DROPPED_COUNTER = "pool.dropped_observers"

#: Counter flagging chunks whose windowed time series could not be
#: merged (worker window width differed from the parent's) — the
#: aggregate ``serve.*`` window record undercounts those chunks.
DROPPED_TIMESERIES = "pool.dropped_timeseries"


def activate_worker() -> None:
    """Install a fresh, file-less Observer in a pool worker.

    The fork copied the parent's Observer — including open file
    descriptors — so the first thing a worker must do is replace it:
    the replacement has no run dir (events are dropped, nothing is
    written on finish) but a live :class:`MetricsRegistry` whose
    contents :func:`worker_snapshot` ships back chunk by chunk.
    """
    from . import runctx
    runctx._CURRENT = Observer(run_dir=None, command="pool-worker")


def worker_snapshot() -> Optional[Dict]:
    """Detach and return the worker's telemetry since the last call.

    Returns ``{"metrics": ..., "timeseries": ...}`` — the bucket-level
    metrics payload plus the windowed time-series state (``None`` when
    that chunk recorded no windowed samples), or ``None`` when no
    observer is installed at all (the parent counts that as a dropped
    observer).  The worker's registries and tracer are reset so the
    next chunk ships only its own deltas and span memory stays bounded
    across long maps.
    """
    observer = get_observer()
    if observer is None:
        return None
    payload: Dict = {"metrics": observer.metrics.to_dict()}
    timeseries = observer.timeseries
    payload["timeseries"] = (timeseries.to_dict() if timeseries
                             else None)
    observer.metrics = MetricsRegistry()
    observer.timeseries = TimeSeriesRegistry(
        window_s=timeseries.window_s,
        capacity=timeseries.capacity,
        sketch_accuracy=timeseries.sketch_accuracy)
    observer.tracer = Tracer()
    return payload


def absorb_snapshots(snapshots: List[Optional[Dict]]) -> None:
    """Merge worker chunk payloads into the ambient registry.

    No-op when observability is off.  ``None`` entries (a chunk that
    ran without a worker observer) increment :data:`DROPPED_COUNTER`
    instead of silently vanishing.
    """
    observer = get_observer()
    if observer is None:
        return
    dropped = 0
    dropped_ts = 0
    for payload in snapshots:
        if payload is None:
            dropped += 1
            continue
        if "metrics" not in payload:
            # Legacy flat shape: the payload *is* the metrics dict.
            observer.metrics.merge_dict(payload)
            continue
        observer.metrics.merge_dict(payload["metrics"])
        ts_payload = payload.get("timeseries")
        if ts_payload is None:
            continue
        incoming = TimeSeriesRegistry.from_dict(ts_payload)
        if math.isclose(incoming.window_s, observer.timeseries.window_s):
            observer.timeseries.merge(incoming)
        else:
            dropped_ts += 1
    if dropped:
        observer.metrics.inc(DROPPED_COUNTER, dropped)
    if dropped_ts:
        observer.metrics.inc(DROPPED_TIMESERIES, dropped_ts)
