"""Wait-state elision (Sec. 3.5).

A slice that kept the original FSM timing would take as long as the
full accelerator: "the control unit is not aware that some parts of the
hardware were removed, and still waits in certain states as if the
original computation is still taking place."  Elision rewrites the FSM
transition table so those states pass through immediately.

Which waits are elidable?  Exactly those whose underlying work was
sliced away — pure datapath computation.  Waits that *feed control*
(``feeds_control=True``, e.g. a serial bitstream parser producing the
descriptor fields later control decisions read) must keep their timing:
the slice genuinely performs that work.  Dynamic waits (opaque serial
logic) never produce features in this framework, so they are elidable
whenever their result does not feed control — designs mark them the
same way.
"""

from __future__ import annotations

from typing import FrozenSet, Set, Tuple

from ..rtl.module import Module

StateKey = Tuple[str, str]


def elidable_wait_states(module: Module) -> FrozenSet[StateKey]:
    """Wait states whose computation is sliced away (not feeds_control)."""
    out: Set[StateKey] = set()
    for fsm in module.fsms.values():
        for state in fsm.wait_states:
            if state not in fsm.control_waits:
                out.add((fsm.name, state))
    return frozenset(out)


def elidable_dynamic_waits(module: Module) -> FrozenSet[StateKey]:
    """Dynamic-wait states that do not feed control (yield no features
    and produce nothing retained logic consumes)."""
    out: Set[StateKey] = set()
    for fsm in module.fsms.values():
        for state in fsm.dynamic_waits:
            if state not in fsm.control_dynamic:
                out.add((fsm.name, state))
    return frozenset(out)
