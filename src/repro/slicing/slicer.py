"""Hardware slicing (Sec. 3.5): build the minimal prediction machine.

Given the full design and the features the trained model selected, the
slicer:

1. applies wait-state elision (the FSM transition-table rewrite);
2. synthesizes the elided design and computes the backward fan-in
   closure of the feature probe nets plus the done signal;
3. rebuilds a runnable behavioural module containing only the retained
   constructs — the bitstream-parser/control skeleton of the paper's
   case study — with every datapath block dropped.

The resulting slice computes exactly the selected features, in a small
fraction of the original cycles, and its synthesized netlist prices the
area/resource overhead (Figs 12 and 17).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Sequence, Set, Tuple

from ..analysis.depgraph import probe_nets
from ..analysis.features import FeatureSet, FeatureSpec
from ..rtl.module import Module
from ..rtl.netlist import Netlist
from ..rtl.synth import synthesize
from ..rtl.transform import derive_module
from .wait_elision import elidable_dynamic_waits, elidable_wait_states

StateKey = Tuple[str, str]


@dataclass
class HardwareSlice:
    """The generated prediction slice."""

    module: Module            # runnable, waits elided, datapath removed
    netlist: Netlist          # synthesized slice (for costing)
    features: FeatureSet      # the features the slice computes
    elided_waits: FrozenSet[StateKey]
    elided_dynamic: FrozenSet[StateKey]
    dropped_counters: FrozenSet[str]
    dropped_regs: FrozenSet[str]
    dropped_fsms: FrozenSet[str]


def build_slice(module: Module, features: Sequence[FeatureSpec],
                name: str = "") -> HardwareSlice:
    """Slice ``module`` down to the logic computing ``features``."""
    feature_set = features if isinstance(features, FeatureSet) \
        else FeatureSet(list(features))
    unwait = elidable_wait_states(module)
    drop_dynamic = elidable_dynamic_waits(module)

    # Elide first, then slice: the closure must not retain counters whose
    # only consumers were the removed wait gates.
    elided = derive_module(
        module,
        name=name or f"{module.name}__slice",
        unwait=unwait,
        drop_dynamic=drop_dynamic,
        drop_datapath=True,
    )
    netlist = synthesize(elided)

    start = probe_nets(elided, netlist, feature_set)
    start.add("__done")
    retained_cells = netlist.fanin_closure(start)

    retained: Set[Tuple[str, str]] = set()
    for cid in retained_cells:
        prov = netlist.cells[cid].provenance
        retained.add((prov.construct, prov.name))

    drop_counters = {
        c for c in module.counters
        if ("counter", c) not in retained
    }
    drop_regs = {
        r for r in module.regs
        if ("reg", r) not in retained
    }
    drop_fsms = {
        f for f in module.fsms
        if ("fsm", f) not in retained
    }
    drop_memories = {
        mem for mem in module.memories
        if ("memory", mem) not in retained
    }
    # Counters that *are* feature sources must stay regardless of what
    # the net closure found: the IC/AIV/APV instrumentation registers
    # hang off the counter's load/reset events, and a counter whose
    # load value is a constant leaves no counter-provenance cells in
    # the probe cone (the constant is a shared cell).
    for spec in feature_set:
        if spec.kind in ("ic", "aivs", "apvs"):
            drop_counters.discard(spec.source)
    # Retained wait states must keep their counters even if no feature
    # reads them (the slice still sequences through them).
    for fsm in module.fsms.values():
        if fsm.name in drop_fsms:
            continue
        for state, counter in fsm.wait_states.items():
            if (fsm.name, state) not in unwait:
                drop_counters.discard(counter)

    drop_wires = _unreferenced_wires(
        module, drop_counters, drop_regs, drop_fsms)

    slice_module = derive_module(
        module,
        name=name or f"{module.name}__slice",
        unwait=unwait,
        drop_dynamic=drop_dynamic,
        drop_counters=drop_counters,
        drop_regs=drop_regs,
        drop_fsms=drop_fsms,
        drop_wires=drop_wires,
        drop_memories=drop_memories,
        drop_datapath=True,
    )
    return HardwareSlice(
        module=slice_module,
        netlist=synthesize(slice_module),
        features=feature_set,
        elided_waits=unwait,
        elided_dynamic=drop_dynamic,
        dropped_counters=frozenset(drop_counters),
        dropped_regs=frozenset(drop_regs),
        dropped_fsms=frozenset(drop_fsms),
    )


def _unreferenced_wires(module: Module, drop_counters: Set[str],
                        drop_regs: Set[str],
                        drop_fsms: Set[str]) -> Set[str]:
    """Wires that only existed to feed dropped constructs.

    Iteratively removes wires no retained expression references, so the
    derived slice validates.  Auto-generated transition wires are
    regenerated by finalize and never copied, so they are ignored here.
    """
    generated = {
        fsm.transition_signal(t)
        for fsm in module.fsms.values()
        for t in fsm.transitions
    }
    dropped_signals = set(drop_counters) | set(drop_regs)
    for fsm_name in drop_fsms:
        dropped_signals.add(module.fsms[fsm_name].state_signal)

    user_wires = [w for w in module.wires.values()
                  if w.name not in generated]

    def referenced_by_retained(candidate_drops: Set[str]) -> Set[str]:
        used: Set[str] = set()

        def scan(expr) -> None:
            used.update(expr.signals())

        for wire in user_wires:
            if wire.name in candidate_drops:
                continue
            scan(wire.expr)
        for counter in module.counters.values():
            if counter.name in drop_counters:
                continue
            if counter.load_cond is not None:
                scan(counter.load_cond)
            if counter.load_value is not None:
                scan(counter.load_value)
            if counter.enable is not None:
                scan(counter.enable)
        for idx, upd in enumerate(module.updates):
            if upd.reg in drop_regs:
                continue
            if upd.fsm is not None and upd.fsm in drop_fsms:
                continue
            scan(upd.value)
            if upd.cond is not None:
                scan(upd.cond)
        for fsm in module.fsms.values():
            if fsm.name in drop_fsms:
                continue
            for t in fsm.transitions:
                if t.cond is not None:
                    scan(t.cond)
                for reg, value in t.actions:
                    if reg not in drop_regs:
                        scan(value)
            for state, duration in fsm.dynamic_waits.items():
                if state in fsm.control_dynamic:
                    scan(duration)  # feeds-control stalls stay in the slice
        scan(module.done_expr)
        return used

    drops: Set[str] = set()
    while True:
        used = referenced_by_retained(drops)
        new_drops = {
            w.name for w in user_wires
            if w.name not in used and w.name not in drops
        }
        # Also drop wires that reference dropped state (they can no
        # longer be evaluated), unless something retained uses them —
        # in which case the closure was wrong and finalize will raise.
        for wire in user_wires:
            if wire.name in drops or wire.name in new_drops:
                continue
            if wire.expr.signals() & dropped_signals and wire.name not in used:
                new_drops.add(wire.name)
        if not new_drops:
            return drops
        drops |= new_drops
