"""Hardware slicing: minimal feature-computing accelerators."""

from .cost import SliceCost, compute_slice_cost
from .slicer import HardwareSlice, build_slice
from .wait_elision import elidable_dynamic_waits, elidable_wait_states

__all__ = [
    "HardwareSlice", "SliceCost", "build_slice", "compute_slice_cost",
    "elidable_dynamic_waits", "elidable_wait_states",
]
