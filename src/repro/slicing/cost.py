"""Slice overhead accounting (Figs 12 and 17 of the paper).

Three overheads are charged to the prediction slice:

* area (ASIC) / resources (FPGA) — priced on the synthesized slice
  netlist relative to the full accelerator;
* energy — the slice's switching + leakage while it runs, at nominal
  voltage, relative to the job's own energy;
* time — the slice's execution cycles at nominal frequency, relative
  to the job's deadline budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..rtl import tech
from ..rtl.netlist import Netlist


@dataclass(frozen=True)
class SliceCost:
    """Static cost of a hardware slice relative to its accelerator."""

    asic_area_full: float
    asic_area_slice: float
    fpga_full: tech.FpgaResources
    fpga_slice: tech.FpgaResources

    @property
    def area_fraction(self) -> float:
        """Slice area as a fraction of the full ASIC accelerator."""
        if self.asic_area_full <= 0:
            return 0.0
        return self.asic_area_slice / self.asic_area_full

    @property
    def resource_fraction(self) -> float:
        """Average LUT/DSP/BRAM fraction, the paper's FPGA metric."""
        return self.fpga_slice.fraction_of(self.fpga_full)


def compute_slice_cost(full_netlist: Netlist,
                       slice_netlist: Netlist) -> SliceCost:
    """Price a slice netlist against the full accelerator's."""
    return SliceCost(
        asic_area_full=tech.asic_area(full_netlist),
        asic_area_slice=tech.asic_area(slice_netlist),
        fpga_full=tech.fpga_resources(full_netlist),
        fpga_slice=tech.fpga_resources(slice_netlist),
    )
