"""HLS-level slicing (Sec. 4.5, Figs 18 and 19).

Accelerators generated from C via high-level synthesis admit a better
slicing strategy: apply *program* slicing to the C source, keep only
the statements that compute the control-flow features, and let the HLS
tool synthesize that sliced program into hardware.  The HLS scheduler
can pipeline and unroll the feature scan, so the slice runs far faster
than an RTL-level slice that must step the original FSM at its
original pace — eliminating the deadline misses caused by insufficient
post-slice budget.

This module provides:

* a mini structured-program IR (:class:`Statement` / :class:`Program`):
  scalar assignments and per-element array reductions, with
  expressions reused from :mod:`repro.rtl.expr`;
* :func:`program_slice` — classic backward dependence slicing [37];
* :class:`HlsSchedule` — a pipelined schedule estimate (initiation
  interval 1, configurable unroll) with operator inventory for
  area/resource costing;
* :class:`HlsSlicePredictor` — the runtime artifact: evaluates the
  sliced program on a job's inputs to produce feature values, plus the
  scheduled cycle count of that evaluation in hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Set, Tuple

from ..rtl.expr import Expr, walk, BinOp, UnOp, Mux

#: The reserved name bound to the current array element in a reduction.
ELEM = "__elem__"


@dataclass(frozen=True)
class Statement:
    """One statement of the mini-C program.

    Without ``array``: a scalar assignment ``target = expr`` over
    previously-defined variables and parameters.

    With ``array``: a reduction ``target = sum(expr for elem in
    array)`` where ``expr`` may reference :data:`ELEM`.  This is the
    shape feature computations take (sums of per-item contributions).
    """

    target: str
    expr: Expr
    array: Optional[str] = None

    def reads(self) -> Set[str]:
        """Names this statement depends on (excluding the loop element)."""
        names = set(self.expr.signals())
        names.discard(ELEM)
        if self.array is not None:
            names.add(self.array)
        return names


@dataclass(frozen=True)
class Program:
    """A straight-line program with reductions (loops over arrays)."""

    name: str
    params: Tuple[str, ...]          # scalar inputs
    arrays: Tuple[str, ...]          # array inputs
    statements: Tuple[Statement, ...]

    def __post_init__(self) -> None:
        defined = set(self.params) | set(self.arrays)
        for stmt in self.statements:
            missing = stmt.reads() - defined
            if missing:
                raise ValueError(
                    f"{self.name}: statement {stmt.target!r} reads "
                    f"undefined names {sorted(missing)}"
                )
            if stmt.target in defined:
                raise ValueError(
                    f"{self.name}: {stmt.target!r} assigned twice (the "
                    "mini-C IR is single-assignment)"
                )
            defined.add(stmt.target)

    def evaluate(self, params: Mapping[str, int],
                 arrays: Mapping[str, Sequence[int]]) -> Dict[str, float]:
        """Interpret the program; returns every variable's value."""
        env: Dict[str, float] = {p: int(params.get(p, 0))
                                 for p in self.params}
        for stmt in self.statements:
            if stmt.array is None:
                env[stmt.target] = stmt.expr.eval(env)
            else:
                data = arrays.get(stmt.array, ())
                total = 0
                local = dict(env)
                for item in data:
                    local[ELEM] = int(item)
                    total += stmt.expr.eval(local)
                env[stmt.target] = total
        return env


def program_slice(program: Program, needed: Sequence[str]) -> Program:
    """Backward-dependence slice keeping statements computing ``needed``."""
    want: Set[str] = set(needed)
    by_target = {s.target: s for s in program.statements}
    unknown = want - set(by_target) - set(program.params)
    if unknown:
        raise KeyError(f"slice criteria not produced by {program.name}: "
                       f"{sorted(unknown)}")
    keep: Set[str] = set()
    frontier = list(want)
    while frontier:
        name = frontier.pop()
        stmt = by_target.get(name)
        if stmt is None or stmt.target in keep:
            continue
        keep.add(stmt.target)
        frontier.extend(stmt.reads())
    retained = tuple(
        s for s in program.statements if s.target in keep
    )
    used: Set[str] = set()
    for s in retained:
        used |= s.reads()
    return Program(
        name=f"{program.name}__slice",
        params=tuple(p for p in program.params if p in used),
        arrays=tuple(a for a in program.arrays if a in used),
        statements=retained,
    )


_OP_KINDS = {
    "add": "ADD", "sub": "SUB", "mul": "MUL", "div": "DIV", "mod": "MOD",
    "and": "AND", "or": "OR", "xor": "XOR", "shl": "SHL", "shr": "SHR",
    "eq": "EQ", "ne": "NE", "lt": "LT", "le": "LE", "gt": "GT", "ge": "GE",
    "min": "MIN", "max": "MAX",
}


def _count_ops(expr: Expr) -> Dict[str, int]:
    ops: Dict[str, int] = {}
    for node in walk(expr):
        if isinstance(node, BinOp):
            kind = _OP_KINDS[node.op]
        elif isinstance(node, UnOp):
            kind = "NOT"
        elif isinstance(node, Mux):
            kind = "MUX"
        else:
            continue
        ops[kind] = ops.get(kind, 0) + 1
    return ops


@dataclass(frozen=True)
class HlsSchedule:
    """A pipelined schedule of a (sliced) program.

    Reductions run as pipelined loops at initiation interval 1 with
    ``unroll`` parallel lanes; scalar statements chain through a short
    pipeline.  ``cells`` is the operator inventory (unrolled), priced
    by the same technology library as RTL cells.
    """

    program: Program
    unroll: int = 4
    pipeline_depth: int = 6
    mem_words_per_cycle: int = 1  # per lane, scratchpad port width

    def cycles(self, arrays: Mapping[str, Sequence[int]]) -> int:
        """Scheduled cycle count for one job's inputs."""
        total = 0
        for stmt in self.program.statements:
            if stmt.array is None:
                total += 1  # chained scalar op, one stage
            else:
                trips = len(arrays.get(stmt.array, ()))
                lanes = max(self.unroll * self.mem_words_per_cycle, 1)
                total += -(-trips // lanes) + self.pipeline_depth
        return total + self.pipeline_depth

    def cells(self) -> Dict[str, int]:
        """Unrolled operator inventory for costing."""
        inventory: Dict[str, int] = {}
        for stmt in self.program.statements:
            ops = _count_ops(stmt.expr)
            factor = self.unroll if stmt.array is not None else 1
            for kind, count in ops.items():
                inventory[kind] = inventory.get(kind, 0) + count * factor
            if stmt.array is not None:
                # The reduction adder tree.
                inventory["ADD"] = inventory.get("ADD", 0) + self.unroll
        return inventory


@dataclass
class HlsSlicePredictor:
    """The runtime HLS-generated slice: program + schedule + model.

    ``feature_vars`` maps feature names (matching the trained model's
    feature set) to program variables.
    """

    program: Program
    schedule: HlsSchedule
    feature_vars: Dict[str, str]

    @classmethod
    def build(cls, program: Program, feature_vars: Dict[str, str],
              unroll: int = 4) -> "HlsSlicePredictor":
        sliced = program_slice(program, list(feature_vars.values()))
        return cls(
            program=sliced,
            schedule=HlsSchedule(sliced, unroll=unroll),
            feature_vars=dict(feature_vars),
        )

    def run(self, params: Mapping[str, int],
            arrays: Mapping[str, Sequence[int]]
            ) -> Tuple[Dict[str, float], int]:
        """Evaluate features and return (values, scheduled cycles)."""
        env = self.program.evaluate(params, arrays)
        features = {
            feat: env[var] for feat, var in self.feature_vars.items()
        }
        return features, self.schedule.cycles(arrays)
