"""Unit helpers and shared physical constants.

All internal computation uses SI base units (seconds, hertz, joules,
watts, square metres are expressed as square micrometres for area since
that is the natural unit at chip scale).  These helpers exist so that
code reads ``16.7 * MS`` instead of ``0.0167`` and reviewers can match
values against the paper directly.
"""

from __future__ import annotations

# Time.
S = 1.0
MS = 1e-3
US = 1e-6
NS = 1e-9

# Frequency.
HZ = 1.0
KHZ = 1e3
MHZ = 1e6
GHZ = 1e9

# Energy / power.
J = 1.0
MJ = 1e-3
UJ = 1e-6
NJ = 1e-9
PJ = 1e-12
FJ = 1e-15
W = 1.0
MW = 1e-3
UW = 1e-6

# The 60 fps deadline used throughout the paper's evaluation (Sec. 4.2).
FRAME_DEADLINE_60FPS = 16.7 * MS

# DVFS switching time, conservatively set to 100 us in the paper.
DVFS_SWITCH_TIME = 100 * US

# Shared relative tolerance for wall-clock comparisons.  A job planned
# to fit its budget *exactly* (oracle at margin 0) can come out a few
# ULPs past the deadline after the divide/accumulate round trip
# (``t_exec = cycles / (cycles / budget)`` plus the running-clock sum);
# both the episode runner and the invariant checker treat overruns
# within this fraction of the deadline as on-time.
TIME_EPS_REL = 1e-9


def deadline_missed(finish: float, release: float, deadline: float,
                    rel_eps: float = TIME_EPS_REL) -> bool:
    """Whether ``finish`` overruns ``release + deadline`` beyond rounding.

    The single deadline predicate shared by :func:`repro.runtime.episode.
    run_episode` and the invariant checker, so the two can never disagree
    on what counts as a miss.
    """
    return finish - (release + deadline) > rel_eps * deadline


def cycles_to_time(cycles: int, frequency_hz: float) -> float:
    """Convert a cycle count at ``frequency_hz`` into seconds."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return cycles / frequency_hz


def time_to_cycles(seconds: float, frequency_hz: float) -> int:
    """Convert seconds into whole cycles at ``frequency_hz`` (rounded up)."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    cycles = seconds * frequency_hz
    whole = int(cycles)
    return whole if whole == cycles else whole + 1


def format_time(seconds: float) -> str:
    """Render a time compactly for reports (e.g. ``7.56ms``)."""
    if seconds >= 1.0:
        return f"{seconds:.3g}s"
    if seconds >= MS:
        return f"{seconds / MS:.3g}ms"
    if seconds >= US:
        return f"{seconds / US:.3g}us"
    return f"{seconds / NS:.3g}ns"


def format_frequency(hz: float) -> str:
    """Render a frequency compactly for reports (e.g. ``250MHz``)."""
    if hz >= GHZ:
        return f"{hz / GHZ:.3g}GHz"
    if hz >= MHZ:
        return f"{hz / MHZ:.3g}MHz"
    if hz >= KHZ:
        return f"{hz / KHZ:.3g}kHz"
    return f"{hz:.3g}Hz"
