"""Predictor export: hand the trained model to other toolchains.

Two formats:

* **JSON** — lossless round-trip of a :class:`LinearPredictor`
  (feature names, coefficients, intercept), for archiving a trained
  model next to its workload trace;
* **C header** — the fixed-point coefficient table a hardware MAC
  array (or the driver programming it) consumes, generated from a
  :class:`QuantizedPredictor`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from .linear import LinearPredictor
from .quantize import QuantizedPredictor

FORMAT_VERSION = 1


def predictor_to_json(predictor: LinearPredictor) -> str:
    """Serialize a predictor losslessly."""
    return json.dumps({
        "version": FORMAT_VERSION,
        "feature_names": list(predictor.feature_names),
        "coeffs": [float(c) for c in predictor.coeffs],
        "intercept": float(predictor.intercept),
    })


def predictor_from_json(text: str) -> LinearPredictor:
    """Reload a predictor written by :func:`predictor_to_json`."""
    payload = json.loads(text)
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported predictor format {version!r}")
    return LinearPredictor(
        feature_names=tuple(payload["feature_names"]),
        coeffs=np.asarray(payload["coeffs"], dtype=float),
        intercept=float(payload["intercept"]),
    )


def save_predictor(predictor: LinearPredictor,
                   path: Union[str, Path]) -> None:
    """Write a predictor to a JSON file."""
    Path(path).write_text(predictor_to_json(predictor))


def load_predictor(path: Union[str, Path]) -> LinearPredictor:
    """Read a predictor from a JSON file."""
    return predictor_from_json(Path(path).read_text())


def _c_identifier(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() else "_")
    ident = "".join(out).strip("_").upper()
    return ident or "F"


def to_c_header(quantized: QuantizedPredictor,
                symbol: str = "exec_time_model") -> str:
    """Render the fixed-point model as a C header.

    The generated arithmetic matches :meth:`QuantizedPredictor.predict`:
    signed integer MACs into a 64-bit accumulator, then one arithmetic
    shift right by the fraction width.
    """
    fmt = quantized.fmt
    lines = [
        "/* Generated execution-time prediction model.",
        f" * Fixed point: Q{fmt.integer_bits}.{fmt.fraction_bits} "
        f"(scale {fmt.scale}).",
        " * predicted_cycles =",
        f" *   (intercept + sum(feature[i] * coeff[i])) >> "
        f"{fmt.fraction_bits}",
        " */",
        "#ifndef EXEC_TIME_MODEL_H",
        "#define EXEC_TIME_MODEL_H",
        "",
        "#include <stdint.h>",
        "",
        f"#define {symbol.upper()}_N_FEATURES "
        f"{len(quantized.raw_coeffs)}",
        f"#define {symbol.upper()}_FRACTION_BITS {fmt.fraction_bits}",
        "",
        "/* Feature order: */",
    ]
    for i, name in enumerate(quantized.feature_names):
        lines.append(f"/*  [{i:3d}] {name} */")
    lines.append("")
    lines.append(f"static const int64_t {symbol}_intercept = "
                 f"{quantized.raw_intercept};")
    lines.append(f"static const int32_t {symbol}_coeffs"
                 f"[{len(quantized.raw_coeffs)}] = {{")
    for raw, name in zip(quantized.raw_coeffs, quantized.feature_names):
        lines.append(f"    {raw:>12d}, /* {_c_identifier(name)} */")
    lines.append("};")
    lines.append("")
    lines.append(f"""static inline int64_t {symbol}_predict(
        const int64_t features[{symbol.upper()}_N_FEATURES]) {{
    int64_t acc = {symbol}_intercept;
    for (int i = 0; i < {symbol.upper()}_N_FEATURES; i++) {{
        acc += features[i] * (int64_t){symbol}_coeffs[i];
    }}
    return acc >> {symbol.upper()}_FRACTION_BITS;
}}""")
    lines.append("")
    lines.append("#endif /* EXEC_TIME_MODEL_H */")
    return "\n".join(lines) + "\n"
