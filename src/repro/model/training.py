"""Training pipeline: standardize, solve, select, refit.

The pipeline mirrors Sec. 3.4 end to end:

1. standardize features and scale the target (numerical conditioning —
   the returned predictor is mapped back to raw feature space);
2. minimize the asymmetric + L1 objective (Lasso feature selection);
3. *refit* on the selected features with the L1 term dropped, keeping
   the asymmetric loss.  Refitting removes Lasso shrinkage, which would
   otherwise bias predictions low — dangerous in a deadline context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..analysis.features import FeatureMatrix
from .linear import LinearPredictor
from .objective import make_objective
from .solver import SolveResult, solve


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters of the predictor training flow.

    ``alpha`` is the paper's under-prediction weight; ``gamma`` the L1
    weight (``None`` selects it automatically via the Lasso path, see
    :mod:`repro.model.lasso`).  ``gamma`` is expressed per training
    sample (it is multiplied by ``n_jobs`` internally) so one value
    works across workload sizes.
    """

    alpha: float = 8.0
    gamma: Optional[float] = 3e-4
    refit: bool = True
    max_iter: int = 4000
    tol: float = 1e-10

    def __post_init__(self) -> None:
        if self.alpha < 1.0:
            raise ValueError("alpha must be >= 1")
        if self.gamma is not None and self.gamma < 0:
            raise ValueError("gamma must be >= 0")


@dataclass
class Standardizer:
    """Feature standardization with constant-column protection."""

    mean: np.ndarray
    scale: np.ndarray

    @classmethod
    def fit(cls, x: np.ndarray) -> "Standardizer":
        mean = x.mean(axis=0) if x.size else np.zeros(x.shape[1])
        scale = x.std(axis=0) if x.size else np.ones(x.shape[1])
        scale = np.where(scale < 1e-12, 1.0, scale)
        return cls(mean=mean, scale=scale)

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Standardize features with the fitted statistics."""
        return (x - self.mean) / self.scale


@dataclass
class TrainedModel:
    """A fitted predictor plus training diagnostics."""

    predictor: LinearPredictor
    gamma: float
    alpha: float
    solve_info: SolveResult
    n_candidate_features: int

    @property
    def n_selected_features(self) -> int:
        return self.predictor.n_terms


def fit_predictor(matrix: FeatureMatrix,
                  config: TrainingConfig = TrainingConfig()
                  ) -> TrainedModel:
    """Train the execution-time predictor on a feature matrix."""
    if matrix.n_jobs < 2:
        raise ValueError("need at least two training jobs")
    gamma = config.gamma if config.gamma is not None else 0.0
    beta_std, intercept_std, std, y_scale, info = _solve_standardized(
        matrix.x, matrix.cycles, config.alpha,
        gamma * matrix.n_jobs, config.max_iter, config.tol,
    )

    if config.refit:
        selected = _nonzero(beta_std)
        if selected:
            refit_x = matrix.x[:, selected]
            rb, rb0, rstd, ry, rinfo = _solve_standardized(
                refit_x, matrix.cycles, config.alpha, 0.0,
                config.max_iter, config.tol,
            )
            beta_std = np.zeros_like(beta_std)
            beta_std[selected] = rb
            # Rebuild a full-width standardizer view for the mapping.
            full_mean = np.zeros(matrix.n_features)
            full_scale = np.ones(matrix.n_features)
            full_mean[selected] = rstd.mean
            full_scale[selected] = rstd.scale
            std = Standardizer(full_mean, full_scale)
            intercept_std, y_scale, info = rb0, ry, rinfo

    coeffs = beta_std / std.scale * y_scale
    intercept = (intercept_std - float(beta_std @ (std.mean / std.scale))
                 ) * y_scale
    predictor = LinearPredictor(
        feature_names=tuple(matrix.feature_set.names()),
        coeffs=coeffs,
        intercept=intercept,
    )
    return TrainedModel(
        predictor=predictor,
        gamma=gamma,
        alpha=config.alpha,
        solve_info=info,
        n_candidate_features=matrix.n_features,
    )


def _solve_standardized(x: np.ndarray, y: np.ndarray, alpha: float,
                        gamma: float, max_iter: int, tol: float
                        ) -> Tuple[np.ndarray, float, Standardizer, float,
                                   SolveResult]:
    """Solve in standardized space; returns (beta, intercept, ...)."""
    std = Standardizer.fit(x)
    xs = std.transform(x)
    y_scale = float(np.mean(np.abs(y)))
    if y_scale < 1e-12:
        y_scale = 1.0
    ys = y / y_scale
    design = np.hstack([xs, np.ones((xs.shape[0], 1))])
    objective = make_objective(design, ys, alpha=alpha, gamma=gamma,
                               intercept_col=design.shape[1] - 1)
    info = solve(objective, max_iter=max_iter, tol=tol)
    beta = info.beta[:-1]
    intercept = float(info.beta[-1])
    return beta, intercept, std, y_scale, info


def _nonzero(beta: np.ndarray, rel_tol: float = 1e-6) -> List[int]:
    scale = float(np.max(np.abs(beta))) if beta.size else 0.0
    if scale == 0.0:
        return []
    return [i for i, b in enumerate(beta) if abs(b) > scale * rel_tol]
