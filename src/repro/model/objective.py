"""The paper's convex training objective (Sec. 3.4).

.. math::

    \\min_\\beta \\; \\|pos(X\\beta - y)\\|^2
        + \\alpha \\|neg(X\\beta - y)\\|^2
        + \\gamma \\|\\beta\\|_1

with :math:`pos(x) = max(x, 0)`, :math:`neg(x) = max(-x, 0)` and
:math:`\\alpha > 1` weighting *under*-predictions (negative residuals
cause deadline misses) more heavily than over-predictions.

The first two terms form a once-differentiable convex quadratic-spline
loss; the L1 term is handled by the proximal step of the solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class AsymmetricLassoObjective:
    """Smooth part + L1 weights of the training objective.

    Args:
        x: design matrix (n_jobs, n_coeffs).
        y: observed execution times (n_jobs,).
        alpha: under-prediction penalty weight (>= 1).
        gamma: L1 penalty weight (>= 0).
        penalize: per-coefficient L1 mask (False for the intercept).
    """

    x: np.ndarray
    y: np.ndarray
    alpha: float
    gamma: float
    penalize: np.ndarray

    def __post_init__(self) -> None:
        if self.alpha < 1.0:
            raise ValueError(f"alpha must be >= 1, got {self.alpha}")
        if self.gamma < 0.0:
            raise ValueError(f"gamma must be >= 0, got {self.gamma}")
        if self.x.ndim != 2 or self.y.ndim != 1:
            raise ValueError("x must be 2-D and y 1-D")
        if self.x.shape[0] != self.y.shape[0]:
            raise ValueError("x and y disagree on sample count")
        if self.penalize.shape != (self.x.shape[1],):
            raise ValueError("penalize mask must have one entry per coeff")

    @property
    def n_coeffs(self) -> int:
        return self.x.shape[1]

    def residual_weights(self, residuals: np.ndarray) -> np.ndarray:
        """1 for over-predictions, alpha for under-predictions."""
        return np.where(residuals >= 0.0, 1.0, self.alpha)

    def smooth_value(self, beta: np.ndarray) -> float:
        """The asymmetric squared loss (without the L1 term)."""
        r = self.x @ beta - self.y
        w = self.residual_weights(r)
        return float(np.sum(w * r * r))

    def smooth_grad(self, beta: np.ndarray) -> np.ndarray:
        """Gradient of the asymmetric squared loss."""
        r = self.x @ beta - self.y
        w = self.residual_weights(r)
        return 2.0 * (self.x.T @ (w * r))

    def l1_value(self, beta: np.ndarray) -> float:
        """The gamma-weighted L1 penalty of the coefficients."""
        return float(self.gamma * np.sum(np.abs(beta[self.penalize])))

    def value(self, beta: np.ndarray) -> float:
        """The full objective: smooth loss plus L1 penalty."""
        return self.smooth_value(beta) + self.l1_value(beta)

    def lipschitz(self) -> float:
        """An upper bound on the smooth part's gradient Lipschitz const.

        The Hessian is bounded by ``2 * alpha * X^T X``; its largest
        eigenvalue is ``2 * alpha * sigma_max(X)^2``.
        """
        if self.x.size == 0:
            return 1.0
        sigma = np.linalg.norm(self.x, 2)
        return max(2.0 * self.alpha * sigma * sigma, 1e-12)

    def prox(self, beta: np.ndarray, step: float) -> np.ndarray:
        """Soft-threshold the penalized coefficients."""
        if self.gamma == 0.0:
            return beta
        threshold = self.gamma * step
        out = beta.copy()
        p = self.penalize
        out[p] = np.sign(beta[p]) * np.maximum(np.abs(beta[p]) - threshold,
                                               0.0)
        return out


def make_objective(x: np.ndarray, y: np.ndarray, alpha: float, gamma: float,
                   intercept_col: Optional[int] = None
                   ) -> AsymmetricLassoObjective:
    """Build an objective, optionally exempting one column from L1."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    penalize = np.ones(x.shape[1], dtype=bool)
    if intercept_col is not None:
        penalize[intercept_col] = False
    return AsymmetricLassoObjective(x=x, y=y, alpha=alpha, gamma=gamma,
                                    penalize=penalize)
