"""Model validation utilities: cross-validation and learning curves.

The paper trains once on a fixed training workload.  These helpers let
a user of the library answer the obvious follow-up questions — is the
model over-fit?  how many training jobs does an accelerator need before
the predictor is trustworthy? — without touching the flow internals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..analysis.features import FeatureMatrix
from .metrics import percent_errors
from .training import TrainingConfig, fit_predictor


@dataclass(frozen=True)
class FoldResult:
    """Held-out accuracy of one cross-validation fold."""

    fold: int
    n_train: int
    n_test: int
    mean_abs_pct: float
    max_under_pct: float


def cross_validate(matrix: FeatureMatrix,
                   config: TrainingConfig = TrainingConfig(),
                   k: int = 5, seed: int = 0) -> List[FoldResult]:
    """K-fold cross-validation of the training configuration."""
    n = matrix.n_jobs
    if k < 2:
        raise ValueError("need at least 2 folds")
    if n < 2 * k:
        raise ValueError(f"{n} jobs is too few for {k}-fold CV")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    folds = np.array_split(order, k)
    results: List[FoldResult] = []
    for i, test_idx in enumerate(folds):
        train_idx = np.setdiff1d(order, test_idx)
        train = FeatureMatrix(matrix.feature_set, matrix.x[train_idx],
                              matrix.cycles[train_idx])
        model = fit_predictor(train, config)
        predicted = model.predictor.predict(matrix.x[test_idx])
        errors = percent_errors(predicted, matrix.cycles[test_idx])
        under = errors[errors < 0]
        results.append(FoldResult(
            fold=i,
            n_train=len(train_idx),
            n_test=len(test_idx),
            mean_abs_pct=float(np.mean(np.abs(errors))),
            max_under_pct=float(-under.min()) if under.size else 0.0,
        ))
    return results


@dataclass(frozen=True)
class LearningPoint:
    """Held-out accuracy at one training-set size."""

    n_train: int
    mean_abs_pct: float


def learning_curve(matrix: FeatureMatrix,
                   config: TrainingConfig = TrainingConfig(),
                   sizes: Sequence[float] = (0.2, 0.4, 0.6, 0.8),
                   seed: int = 0) -> List[LearningPoint]:
    """Held-out error as a function of training-set size.

    The last 20% of a shuffled split is always the evaluation set; each
    point trains on a prefix of the remainder.
    """
    n = matrix.n_jobs
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    n_eval = max(n // 5, 1)
    eval_idx = order[:n_eval]
    pool = order[n_eval:]
    points: List[LearningPoint] = []
    for fraction in sizes:
        take = max(int(round(len(pool) * fraction)), 2)
        train_idx = pool[:take]
        train = FeatureMatrix(matrix.feature_set, matrix.x[train_idx],
                              matrix.cycles[train_idx])
        model = fit_predictor(train, config)
        predicted = model.predictor.predict(matrix.x[eval_idx])
        errors = percent_errors(predicted, matrix.cycles[eval_idx])
        points.append(LearningPoint(
            n_train=take,
            mean_abs_pct=float(np.mean(np.abs(errors))),
        ))
    return points
