"""The runtime prediction model: a sparse linear map.

At runtime the hardware predictor computes ``y = x . beta + b`` with a
handful of multiply-accumulates (Sec. 3.4: "Linear models are very
simple to evaluate at runtime").  Coefficients live in *raw feature
space* (counts and value sums), so the hardware needs no normalization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

#: Coefficients smaller than this (relative to the largest) count as zero.
SPARSITY_TOL = 1e-8


@dataclass(frozen=True)
class LinearPredictor:
    """A trained execution-time predictor.

    ``coeffs`` has one entry per feature in ``feature_names`` (zeros for
    unselected features); ``intercept`` is in the same unit as the
    training target (cycles).
    """

    feature_names: Tuple[str, ...]
    coeffs: np.ndarray
    intercept: float

    def __post_init__(self) -> None:
        if self.coeffs.shape != (len(self.feature_names),):
            raise ValueError("one coefficient per feature required")

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict execution time for feature vector(s) ``x``."""
        x = np.asarray(x, dtype=float)
        return x @ self.coeffs + self.intercept

    def predict_one(self, x: Sequence[float]) -> float:
        """Predict execution time for one feature vector."""
        return float(np.asarray(x, dtype=float) @ self.coeffs
                     + self.intercept)

    @property
    def selected_indices(self) -> List[int]:
        scale = float(np.max(np.abs(self.coeffs))) if self.coeffs.size else 0.0
        if scale == 0.0:
            return []
        threshold = scale * SPARSITY_TOL
        return [i for i, c in enumerate(self.coeffs) if abs(c) > threshold]

    @property
    def n_terms(self) -> int:
        """Number of non-zero coefficients (hardware MAC count)."""
        return len(self.selected_indices)

    @property
    def selected_features(self) -> List[str]:
        return [self.feature_names[i] for i in self.selected_indices]

    def as_dict(self) -> Dict[str, float]:
        """Non-zero coefficients keyed by feature name."""
        return {
            self.feature_names[i]: float(self.coeffs[i])
            for i in self.selected_indices
        }

    def restricted(self) -> "LinearPredictor":
        """A copy with exact zeros outside the selected set."""
        coeffs = np.zeros_like(self.coeffs)
        idx = self.selected_indices
        coeffs[idx] = self.coeffs[idx]
        return LinearPredictor(self.feature_names, coeffs, self.intercept)


def predict_cycles_batch(predictor: LinearPredictor,
                         x: np.ndarray) -> np.ndarray:
    """One batched evaluation of the linear model over a feature matrix.

    The serving tier predicts whole micro-batches (and, in the
    vectorized engine, whole epochs) with a single kernel call instead
    of one dot product per job.  The kernel is ``np.einsum`` rather
    than BLAS ``@`` deliberately: einsum reduces each row with the
    same scalar accumulation regardless of how many rows the matrix
    has, so a job's prediction is bit-identical whether it is batched
    alone or with 10 000 neighbours — the property the engine
    equivalence tests gate on.  (BLAS GEMV may change row results with
    the batch shape; ``predict_one``'s dot product is a third
    summation order again, which is why both serving engines must
    route through the *same* kernel.)
    """
    matrix = np.asarray(x, dtype=float)
    if matrix.ndim == 1:
        matrix = matrix[np.newaxis, :]
    return (np.einsum("ij,j->i", matrix, predictor.coeffs)
            + predictor.intercept)
