"""Fixed-point quantization of the prediction model.

The paper's runtime predictor is "a series of multiply accumulate
operations" in hardware — which means fixed-point coefficients, not
floats.  This module quantizes a trained :class:`LinearPredictor` to a
signed Qm.n format, reports the representation error, and provides the
quantized predictor (whose ``predict`` uses only integer arithmetic,
exactly what the MAC array would compute).

The ablation bench sweeps the fraction width to find where accuracy
degrades — in practice a handful of fraction bits suffice because
feature values are large integers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from .linear import LinearPredictor


@dataclass(frozen=True)
class FixedPointFormat:
    """Signed fixed-point Qm.n: ``integer_bits`` + ``fraction_bits``
    (plus sign)."""

    integer_bits: int = 20
    fraction_bits: int = 8

    def __post_init__(self) -> None:
        if self.integer_bits < 1 or self.fraction_bits < 0:
            raise ValueError("need >=1 integer bit and >=0 fraction bits")

    @property
    def scale(self) -> int:
        return 1 << self.fraction_bits

    @property
    def max_value(self) -> float:
        return (1 << self.integer_bits) - 1 / self.scale

    def quantize(self, value: float) -> int:
        """Nearest representable raw integer (saturating)."""
        raw = int(round(value * self.scale))
        limit = (1 << (self.integer_bits + self.fraction_bits)) - 1
        return max(-limit - 1, min(limit, raw))

    def dequantize(self, raw: int) -> float:
        """The real value a raw fixed-point integer encodes."""
        return raw / self.scale


@dataclass(frozen=True)
class QuantizedPredictor:
    """An integer-arithmetic view of a linear predictor.

    ``raw_coeffs`` and ``raw_intercept`` are the fixed-point integers a
    MAC array would hold; ``predict`` reproduces the hardware datapath:
    integer multiply-accumulate followed by one final shift.
    """

    feature_names: Tuple[str, ...]
    raw_coeffs: Tuple[int, ...]
    raw_intercept: int
    fmt: FixedPointFormat

    def predict_one(self, x: Sequence[float]) -> float:
        """Integer MAC over one feature vector, final shift last."""
        accumulator = self.raw_intercept
        for value, coeff in zip(x, self.raw_coeffs):
            accumulator += int(value) * coeff
        return accumulator / self.fmt.scale

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict one vector or a batch (rows)."""
        x = np.asarray(x)
        if x.ndim == 1:
            return np.asarray(self.predict_one(x))
        return np.array([self.predict_one(row) for row in x])

    @property
    def n_terms(self) -> int:
        return sum(1 for c in self.raw_coeffs if c != 0)

    def coefficient_error(self,
                          original: LinearPredictor) -> float:
        """Largest relative coefficient representation error."""
        worst = 0.0
        for raw, coeff in zip(self.raw_coeffs, original.coeffs):
            if abs(coeff) < 1e-12:
                continue
            err = abs(self.fmt.dequantize(raw) - coeff) / abs(coeff)
            worst = max(worst, err)
        return worst


def quantize_predictor(predictor: LinearPredictor,
                       fmt: FixedPointFormat = FixedPointFormat()
                       ) -> QuantizedPredictor:
    """Quantize a trained model to fixed point."""
    return QuantizedPredictor(
        feature_names=predictor.feature_names,
        raw_coeffs=tuple(fmt.quantize(c) for c in predictor.coeffs),
        raw_intercept=fmt.quantize(predictor.intercept),
        fmt=fmt,
    )


def quantization_sweep(predictor: LinearPredictor, x: np.ndarray,
                       fraction_bits: Sequence[int] = (0, 2, 4, 8, 12)
                       ) -> list:
    """(fraction_bits, max |pct delta| vs float model) pairs."""
    reference = predictor.predict(x)
    points = []
    for bits in fraction_bits:
        fmt = FixedPointFormat(fraction_bits=bits)
        quantized = quantize_predictor(predictor, fmt)
        approx = quantized.predict(x)
        with np.errstate(divide="ignore", invalid="ignore"):
            delta = np.abs(approx - reference) / np.maximum(
                np.abs(reference), 1e-12) * 100
        points.append((bits, float(np.max(delta))))
    return points
