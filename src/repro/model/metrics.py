"""Prediction-quality metrics, including Figure 10's box statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def percent_errors(predicted: np.ndarray, actual: np.ndarray) -> np.ndarray:
    """Signed percent errors: positive = over-prediction (safe side)."""
    predicted = np.asarray(predicted, dtype=float)
    actual = np.asarray(actual, dtype=float)
    if predicted.shape != actual.shape:
        raise ValueError("shape mismatch")
    return (predicted - actual) / np.maximum(actual, 1e-12) * 100.0


@dataclass(frozen=True)
class BoxStats:
    """Box-and-whisker summary matching the paper's Fig 10 convention:
    box from Q1 to Q3 with the median marked; whiskers extend to the
    most extreme points within 1.5 IQR; everything beyond is an
    outlier."""

    median: float
    q1: float
    q3: float
    whisker_low: float
    whisker_high: float
    outliers: tuple

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "BoxStats":
        data = np.asarray(list(samples), dtype=float)
        if data.size == 0:
            raise ValueError("no samples")
        q1, median, q3 = np.percentile(data, [25, 50, 75])
        iqr = q3 - q1
        low_limit = q1 - 1.5 * iqr
        high_limit = q3 + 1.5 * iqr
        inside = data[(data >= low_limit) & (data <= high_limit)]
        whisker_low = float(inside.min()) if inside.size else float(q1)
        whisker_high = float(inside.max()) if inside.size else float(q3)
        outliers = tuple(
            float(v) for v in data[(data < low_limit) | (data > high_limit)]
        )
        return cls(
            median=float(median), q1=float(q1), q3=float(q3),
            whisker_low=whisker_low, whisker_high=whisker_high,
            outliers=outliers,
        )


@dataclass(frozen=True)
class PredictionReport:
    """Aggregate accuracy summary for one benchmark."""

    n_jobs: int
    mean_abs_pct: float
    max_over_pct: float
    max_under_pct: float  # reported as a positive magnitude
    under_rate: float     # fraction of jobs under-predicted
    box: BoxStats

    @classmethod
    def from_predictions(cls, predicted: np.ndarray,
                         actual: np.ndarray) -> "PredictionReport":
        errors = percent_errors(predicted, actual)
        under = errors[errors < 0]
        over = errors[errors > 0]
        return cls(
            n_jobs=int(errors.size),
            mean_abs_pct=float(np.mean(np.abs(errors))),
            max_over_pct=float(over.max()) if over.size else 0.0,
            max_under_pct=float(-under.min()) if under.size else 0.0,
            under_rate=float(under.size) / max(errors.size, 1),
            box=BoxStats.from_samples(errors),
        )


def worst_case_error_pct(predicted: np.ndarray, actual: np.ndarray) -> float:
    """Largest |percent error| — the paper's case-study headline metric."""
    return float(np.max(np.abs(percent_errors(predicted, actual))))
