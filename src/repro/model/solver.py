"""Proximal-gradient solver (FISTA with adaptive restart).

The paper notes the objective "is convex.  Thus, we can use a convex
optimization solver to fit the model."  This module is that solver: an
accelerated proximal gradient method (FISTA) with backtracking line
search and function-value adaptive restart, which handles the smooth
asymmetric loss plus the non-smooth L1 term exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .objective import AsymmetricLassoObjective


@dataclass
class SolveResult:
    """Solver outcome."""

    beta: np.ndarray
    value: float
    iterations: int
    converged: bool


def solve(objective: AsymmetricLassoObjective,
          beta0: Optional[np.ndarray] = None,
          max_iter: int = 4000,
          tol: float = 1e-9) -> SolveResult:
    """Minimize the objective; returns coefficients and diagnostics.

    Convergence is declared when the relative objective decrease over
    an iteration falls below ``tol``.
    """
    n = objective.n_coeffs
    beta = np.zeros(n) if beta0 is None else np.asarray(beta0, float).copy()
    momentum = beta.copy()
    t = 1.0
    step = 1.0 / objective.lipschitz()

    value = objective.value(beta)
    for iteration in range(1, max_iter + 1):
        grad = objective.smooth_grad(momentum)
        candidate = objective.prox(momentum - step * grad, step)

        # Backtracking: the quadratic upper bound at `momentum` must
        # majorize the smooth loss at the candidate.
        smooth_mom = objective.smooth_value(momentum)
        for _ in range(60):
            diff = candidate - momentum
            bound = (smooth_mom + float(grad @ diff)
                     + float(diff @ diff) / (2.0 * step))
            if objective.smooth_value(candidate) <= bound + 1e-12:
                break
            step *= 0.5
            candidate = objective.prox(momentum - step * grad, step)

        new_value = objective.value(candidate)
        if new_value > value:  # adaptive restart: drop momentum
            momentum = beta.copy()
            t = 1.0
            grad = objective.smooth_grad(momentum)
            candidate = objective.prox(momentum - step * grad, step)
            new_value = objective.value(candidate)

        t_next = (1.0 + np.sqrt(1.0 + 4.0 * t * t)) / 2.0
        momentum = candidate + ((t - 1.0) / t_next) * (candidate - beta)
        improvement = value - new_value
        beta = candidate
        value = new_value
        t = t_next

        if improvement >= 0 and improvement <= tol * max(abs(value), 1.0):
            return SolveResult(beta=beta, value=value,
                               iterations=iteration, converged=True)

    return SolveResult(beta=beta, value=value,
                       iterations=max_iter, converged=False)
