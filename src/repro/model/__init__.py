"""Execution-time prediction model (convex optimization, Sec. 3.4)."""

from .lasso import PathPoint, lasso_path, select_gamma
from .linear import LinearPredictor, predict_cycles_batch
from .metrics import (
    BoxStats,
    PredictionReport,
    percent_errors,
    worst_case_error_pct,
)
from .objective import AsymmetricLassoObjective, make_objective
from .solver import SolveResult, solve
from .training import Standardizer, TrainedModel, TrainingConfig, fit_predictor

__all__ = [
    "AsymmetricLassoObjective", "BoxStats", "LinearPredictor", "PathPoint",
    "PredictionReport", "SolveResult", "Standardizer", "TrainedModel",
    "TrainingConfig", "fit_predictor", "lasso_path", "make_objective",
    "percent_errors", "predict_cycles_batch", "select_gamma", "solve",
    "worst_case_error_pct",
]
