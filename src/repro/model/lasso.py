"""Lasso path utilities: choosing the L1 weight gamma.

The paper sets gamma "empirically ... to reduce the number of non-zero
coefficients without impacting modeling accuracy too much".  This
module automates that: sweep gamma over a grid, measure held-out
accuracy and feature count at each point, and pick the sparsest model
whose validation error is within a tolerance of the best.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.features import FeatureMatrix
from .training import TrainingConfig, fit_predictor


@dataclass(frozen=True)
class PathPoint:
    """One point of the Lasso path."""

    gamma: float
    n_features: int
    val_error: float  # mean |pct error| on the validation split


DEFAULT_GAMMAS: Tuple[float, ...] = tuple(
    float(g) for g in np.logspace(-6, -1, 11)
)


def _split(matrix: FeatureMatrix, val_fraction: float,
           seed: int) -> Tuple[FeatureMatrix, np.ndarray, np.ndarray]:
    n = matrix.n_jobs
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    n_val = max(1, int(round(n * val_fraction)))
    val_idx = order[:n_val]
    train_idx = order[n_val:]
    if len(train_idx) < 2:
        raise ValueError("not enough jobs to split for gamma selection")
    train = FeatureMatrix(matrix.feature_set, matrix.x[train_idx],
                          matrix.cycles[train_idx])
    return train, matrix.x[val_idx], matrix.cycles[val_idx]


def _fit_path_point(train: FeatureMatrix, x_val: np.ndarray,
                    y_val: np.ndarray, alpha: float,
                    gamma: float) -> PathPoint:
    # One gamma point: fit on the train split, score on the held-out
    # split.  Module-level so the path can fan out over pool workers.
    config = TrainingConfig(alpha=alpha, gamma=gamma)
    model = fit_predictor(train, config)
    pred = model.predictor.predict(x_val)
    with np.errstate(divide="ignore", invalid="ignore"):
        pct = np.abs(pred - y_val) / np.maximum(y_val, 1e-12) * 100.0
    return PathPoint(
        gamma=gamma,
        n_features=model.n_selected_features,
        val_error=float(np.mean(pct)),
    )


def lasso_path(matrix: FeatureMatrix, alpha: float = 8.0,
               gammas: Sequence[float] = DEFAULT_GAMMAS,
               val_fraction: float = 0.25,
               seed: int = 0,
               workers: Optional[int] = None) -> List[PathPoint]:
    """Fit at every gamma; report sparsity and held-out error.

    Gamma points are independent fits over the same split, so
    ``workers > 1`` distributes them over a process pool
    (``workers=None`` follows the ambient ``--jobs``/``REPRO_JOBS``
    setting); the returned path is identical to a serial run.
    """
    from ..parallel import pmap

    train, x_val, y_val = _split(matrix, val_fraction, seed)
    fn = functools.partial(_fit_path_point, train, x_val, y_val, alpha)
    return pmap(fn, list(gammas), jobs=workers, label="lasso_path.pmap")


def select_gamma(matrix: FeatureMatrix, alpha: float = 8.0,
                 gammas: Sequence[float] = DEFAULT_GAMMAS,
                 accuracy_slack: float = 0.5,
                 val_fraction: float = 0.25,
                 seed: int = 0,
                 workers: Optional[int] = None
                 ) -> Tuple[float, List[PathPoint]]:
    """Pick the sparsest gamma within ``accuracy_slack`` (percentage
    points of mean error) of the best point on the path."""
    points = lasso_path(matrix, alpha=alpha, gammas=gammas,
                        val_fraction=val_fraction, seed=seed,
                        workers=workers)
    best = min(p.val_error for p in points)
    eligible = [p for p in points if p.val_error <= best + accuracy_slack]
    chosen = min(eligible, key=lambda p: (p.n_features, -p.gamma))
    return chosen.gamma, points
