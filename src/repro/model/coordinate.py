"""Proximal coordinate-descent solver — an independent second opinion.

Minimizes the same asymmetric + L1 objective as :mod:`solver` (FISTA)
by cycling through coordinates: for each coefficient, take a prox
step along that axis using the coordinate-wise Lipschitz constant.
Coordinate descent converges on these piecewise-quadratic objectives
and shares no code with FISTA beyond the objective itself, so
agreement between the two is strong evidence both are correct — the
test suite checks they land on the same optimum.

For production training FISTA is the default (faster on correlated
designs); this solver also tends to produce exact zeros sooner, which
makes it handy for inspecting sparsity along the Lasso path.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .objective import AsymmetricLassoObjective
from .solver import SolveResult


def _soft_threshold(value: float, threshold: float) -> float:
    if value > threshold:
        return value - threshold
    if value < -threshold:
        return value + threshold
    return 0.0


def solve_coordinate(objective: AsymmetricLassoObjective,
                     beta0: Optional[np.ndarray] = None,
                     max_sweeps: int = 2000,
                     tol: float = 1e-10) -> SolveResult:
    """Minimize the objective with cyclic proximal coordinate descent."""
    x = objective.x
    y = objective.y
    n, p = x.shape
    beta = np.zeros(p) if beta0 is None else np.asarray(beta0,
                                                        float).copy()
    residual = x @ beta - y

    # Coordinate-wise curvature bound: 2 * alpha * sum(x_j^2).
    col_sq = (x * x).sum(axis=0)
    lipschitz = np.maximum(2.0 * objective.alpha * col_sq, 1e-12)

    value = objective.value(beta)
    for sweep in range(1, max_sweeps + 1):
        for j in range(p):
            weights = objective.residual_weights(residual)
            grad_j = 2.0 * float(x[:, j] @ (weights * residual))
            step = 1.0 / lipschitz[j]
            candidate = beta[j] - step * grad_j
            if objective.penalize[j] and objective.gamma > 0.0:
                candidate = _soft_threshold(candidate,
                                            objective.gamma * step)
            delta = candidate - beta[j]
            if delta != 0.0:
                residual = residual + delta * x[:, j]
                beta[j] = candidate
        new_value = objective.value(beta)
        improvement = value - new_value
        value = new_value
        if 0 <= improvement <= tol * max(abs(value), 1.0):
            return SolveResult(beta=beta, value=value,
                               iterations=sweep, converged=True)
    return SolveResult(beta=beta, value=value,
                       iterations=max_sweeps, converged=False)
