"""Persistent, content-addressed artifact cache for the offline flow.

Expensive flow artifacts — recorded :class:`FeatureMatrix` objects and
whole :class:`BenchmarkBundle` pickles — are stored on disk keyed by
the fingerprints of everything that determines them (design structure,
workload content, flow configuration, code version; see
:mod:`~repro.parallel.fingerprint`).  A warm rerun of an experiment
then skips RTL simulation entirely.

Layout: ``<root>/<kind>/<key[:2]>/<key>.pkl`` with atomic writes
(temp file + ``os.replace``), so concurrent workers and concurrent
repro processes can share one cache directory safely.  Reads touch the
entry's mtime, giving least-recently-used eviction when the cache
exceeds ``max_bytes`` (``REPRO_CACHE_MAX_BYTES``; unlimited when
unset).  Corrupt or truncated entries are deleted and counted as
misses — the cache never propagates a bad pickle.

The process-wide cache is configured by the CLI's ``--cache-dir`` flag
or the ``REPRO_CACHE_DIR`` environment variable and read through
:func:`get_cache` (``None`` = caching disabled, the default).  Every
hit/miss/put/eviction increments both the cache's own
:class:`CacheStats` and — when an observability session is active —
the ``cache.*`` counters that ``repro report`` summarizes.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

from ..obs import get_observer, span

#: Where ``--cache-dir`` without an argument puts artifacts.
DEFAULT_CACHE_DIR = "~/.cache/repro"


@dataclass
class CacheStats:
    """Lifetime operation counts of one :class:`ArtifactCache`."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    errors: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when nothing was looked up)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def describe(self) -> str:
        """One-line digest for CLI footers."""
        return (f"{self.hits} hit(s), {self.misses} miss(es), "
                f"{self.puts} put(s), {self.evictions} evicted")


class ArtifactCache:
    """Content-addressed pickle store under one root directory."""

    def __init__(self, root: Union[str, Path],
                 max_bytes: Optional[int] = None):
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        if max_bytes is None:
            raw = os.environ.get("REPRO_CACHE_MAX_BYTES", "")
            max_bytes = int(raw) if raw else None
        self.max_bytes = max_bytes
        self.stats = CacheStats()

    def _path(self, kind: str, key: str) -> Path:
        return self.root / kind / key[:2] / f"{key}.pkl"

    def _count(self, metric: str, kind: str) -> None:
        self.stats.by_kind[f"{kind}.{metric}"] = (
            self.stats.by_kind.get(f"{kind}.{metric}", 0) + 1)
        observer = get_observer()
        if observer is not None:
            observer.metrics.inc(f"cache.{metric}")
            observer.metrics.inc(f"cache.{metric}.{kind}")

    def has(self, kind: str, key: str) -> bool:
        """Whether an entry exists (no load, no stats update)."""
        return self._path(kind, key).exists()

    def get(self, kind: str, key: str):
        """Load the entry, or ``None`` on a miss or corrupt pickle."""
        path = self._path(kind, key)
        if not path.exists():
            self.stats.misses += 1
            self._count("miss", kind)
            return None
        with span("cache.load", kind=kind):
            try:
                with open(path, "rb") as handle:
                    artifact = pickle.load(handle)
            except Exception:
                # Torn write or stale schema: drop it, report a miss.
                self.stats.errors += 1
                self.stats.misses += 1
                self._count("miss", kind)
                try:
                    path.unlink()
                except OSError:
                    pass
                return None
        try:
            os.utime(path)  # LRU bookkeeping
        except OSError:
            pass
        self.stats.hits += 1
        self._count("hit", kind)
        return artifact

    def put(self, kind: str, key: str, artifact) -> Path:
        """Store the entry atomically; evicts LRU entries if over
        ``max_bytes``."""
        path = self._path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        with span("cache.store", kind=kind):
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(artifact, handle,
                                protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        self.stats.puts += 1
        self._count("put", kind)
        self._evict_over_limit()
        return path

    def cached(self, kind: str, key: str, build):
        """Fetch the entry or build-and-store it via ``build()``."""
        artifact = self.get(kind, key)
        if artifact is None:
            artifact = build()
            self.put(kind, key, artifact)
        return artifact

    def entries(self):
        """All (path, size, mtime) triples currently stored."""
        out = []
        for path in self.root.glob("*/*/*.pkl"):
            try:
                stat = path.stat()
            except OSError:
                continue
            out.append((path, stat.st_size, stat.st_mtime))
        return out

    def total_bytes(self) -> int:
        """Bytes currently used by cache entries."""
        return sum(size for _, size, _ in self.entries())

    def _evict_over_limit(self) -> None:
        if self.max_bytes is None:
            return
        entries = self.entries()
        total = sum(size for _, size, _ in entries)
        if total <= self.max_bytes:
            return
        for path, size, _ in sorted(entries, key=lambda e: e[2]):
            try:
                path.unlink()
            except OSError:
                continue
            self.stats.evictions += 1
            observer = get_observer()
            if observer is not None:
                observer.metrics.inc("cache.evict")
            total -= size
            if total <= self.max_bytes:
                break

    def __repr__(self) -> str:
        return f"ArtifactCache({str(self.root)!r})"


_CACHE: Optional[ArtifactCache] = None
_CACHE_CONFIGURED = False


def get_cache() -> Optional[ArtifactCache]:
    """The process-wide cache (``None`` = disabled).

    First call without an explicit :func:`set_cache` reads
    ``REPRO_CACHE_DIR`` from the environment.
    """
    global _CACHE, _CACHE_CONFIGURED
    if not _CACHE_CONFIGURED:
        _CACHE_CONFIGURED = True
        cache_dir = os.environ.get("REPRO_CACHE_DIR", "")
        if cache_dir:
            _CACHE = ArtifactCache(cache_dir)
    return _CACHE


def set_cache(cache: Optional[ArtifactCache]) -> Optional[ArtifactCache]:
    """Install (or with ``None`` disable) the process-wide cache."""
    global _CACHE, _CACHE_CONFIGURED
    _CACHE_CONFIGURED = True
    _CACHE = cache
    return cache
