"""Process-pool execution layer: a deterministic parallel map.

:func:`pmap` fans a picklable function out over a pool of worker
processes while keeping the result order identical to the input order,
so a parallel run is bit-identical to a serial one — the property every
caller in the offline flow (job recording, the Lasso path, bundle
builds) relies on.  ``jobs=1`` (the default) short-circuits to a plain
list comprehension with zero multiprocessing overhead.

The ambient worker count comes from :func:`set_default_jobs` (the CLI's
``--jobs`` flag) or the ``REPRO_JOBS`` environment variable; library
code passes ``jobs=None`` and lets :func:`resolve_jobs` decide.  Pool
workers are daemonic, so a worker that itself calls :func:`pmap`
(e.g. ``record_jobs`` inside a parallel bundle build) degrades to the
serial path instead of forking grandchildren.

Every map emits spans and metrics into the PR 1 observability
subsystem: ``pool.tasks``/``pool.maps`` counters, ``pool.workers`` and
``pool.utilization`` gauges, and a ``pool.map_s`` wall-clock histogram
— ``repro report`` summarizes them as pool effectiveness.  Observers
are process-local: a forked worker replaces the inherited observer
with a fresh file-less one (so span buffers and event files are only
ever written by the parent), records into it, and ships its
bucket-level metrics snapshot back with every chunk result; the
parent merges each snapshot into the ambient registry, so ``sim.*``
counters and worker-side histograms survive ``--jobs N`` instead of
dying with the pool.  A chunk that somehow arrives without telemetry
is counted in ``pool.dropped_observers`` so reports can flag
undercounted runs.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Callable, List, Optional, Sequence, TypeVar

from ..obs import get_observer, span

T = TypeVar("T")
R = TypeVar("R")

_DEFAULT_JOBS: Optional[int] = None

#: Worker-process state installed by the pool initializer.
_WORKER_FN: Optional[Callable] = None


def set_default_jobs(jobs: Optional[int]) -> None:
    """Set the ambient worker count (``None`` restores env/serial)."""
    global _DEFAULT_JOBS
    if jobs is not None and jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    _DEFAULT_JOBS = jobs


def get_default_jobs() -> int:
    """Ambient worker count: ``set_default_jobs``, else ``REPRO_JOBS``,
    else 1 (serial)."""
    if _DEFAULT_JOBS is not None:
        return _DEFAULT_JOBS
    raw = os.environ.get("REPRO_JOBS", "")
    if raw:
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(f"REPRO_JOBS must be an integer, got {raw!r}")
        if value < 1:
            raise ValueError("REPRO_JOBS must be >= 1")
        return value
    return 1


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Normalize a ``jobs`` argument (``None`` -> ambient default).

    Inside a daemonic pool worker this always returns 1: nested
    parallelism would need grandchild processes, which multiprocessing
    forbids, so nested maps run serially (and still bit-identically).
    """
    if jobs is None:
        jobs = get_default_jobs()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if multiprocessing.current_process().daemon:
        return 1
    return jobs


def _init_worker(fn: Callable) -> None:
    # Runs once per worker process.  Replace any observer forked from
    # the parent with a fresh file-less one: worker-side spans/events
    # must never reach the parent's buffers/files through shared
    # descriptors, but worker metrics are kept and shipped home.
    global _WORKER_FN
    _WORKER_FN = fn
    from ..obs.merge import activate_worker
    activate_worker()


def _run_chunk(chunk: Sequence) -> tuple:
    # Worker body: apply the installed function to one chunk of items,
    # reporting the chunk's busy time for utilization accounting and
    # its metrics deltas for parent-side aggregation.
    from ..obs.merge import worker_snapshot
    t0 = time.perf_counter()
    results = [_WORKER_FN(item) for item in chunk]
    busy = time.perf_counter() - t0
    return results, busy, worker_snapshot()


def _note_metrics(label: str, n_tasks: int, workers: int,
                  busy_s: float, wall_s: float) -> None:
    observer = get_observer()
    if observer is None:
        return
    metrics = observer.metrics
    metrics.inc("pool.maps")
    metrics.inc("pool.tasks", n_tasks)
    metrics.inc(f"pool.tasks.{label}", n_tasks)
    metrics.inc("pool.busy_s", busy_s)
    metrics.set_gauge("pool.workers", workers)
    if wall_s > 0 and workers > 0:
        metrics.set_gauge("pool.utilization",
                          min(busy_s / (wall_s * workers), 1.0))
    metrics.observe("pool.map_s", wall_s)


def balanced_chunks(items: Sequence[T], n_chunks: int) -> List[List[T]]:
    """Split ``items`` into ``n_chunks`` contiguous, balanced chunks.

    Chunk sizes differ by at most one and no chunk is empty (the chunk
    count is capped at ``len(items)``), so a split never produces the
    degenerate shapes naive ``ceil(n / target)`` slicing yields when
    ``n`` barely exceeds — or falls short of — the chunk target.
    Concatenating the chunks reproduces ``items`` exactly, in order.
    """
    items = list(items)
    if n_chunks < 1:
        raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
    n = len(items)
    if n == 0:
        return []
    n_chunks = min(n_chunks, n)
    base, extra = divmod(n, n_chunks)
    chunks: List[List[T]] = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        chunks.append(items[start:start + size])
        start += size
    return chunks


def pmap(fn: Callable[[T], R], items: Sequence[T],
         jobs: Optional[int] = None,
         chunk_size: Optional[int] = None,
         label: str = "pmap") -> List[R]:
    """Map ``fn`` over ``items`` across worker processes, in order.

    * ``jobs=None`` resolves via :func:`resolve_jobs`; ``jobs=1`` (or a
      single item, or a daemonic caller) runs serially in-process.
    * ``chunk_size=None`` splits the work into roughly ``4 * jobs``
      chunks — large enough to amortize IPC, small enough to balance
      uneven item costs.
    * ``fn`` and the items must be picklable (a module-level function
      or :func:`functools.partial` of one); exceptions raised by ``fn``
      propagate to the caller.

    Results are returned in input order regardless of which worker
    finished first, making parallel runs bit-identical to serial ones.
    """
    items = list(items)
    n = len(items)
    workers = min(resolve_jobs(jobs), max(n, 1))
    if workers <= 1 or n <= 1:
        with span(label, mode="serial", tasks=n):
            t0 = time.perf_counter()
            results = [fn(item) for item in items]
            busy = time.perf_counter() - t0
        _note_metrics(label, n, 1, busy, busy)
        return results
    if chunk_size is None:
        chunks = balanced_chunks(items, workers * 4)
    else:
        chunks = [items[i:i + chunk_size]
                  for i in range(0, n, chunk_size)]
    context = _pool_context()
    if context is None:  # no usable start method: degrade gracefully
        return pmap(fn, items, jobs=1, label=label)
    with span(label, mode="parallel", tasks=n, workers=workers,
              chunks=len(chunks)):
        t0 = time.perf_counter()
        with context.Pool(processes=workers, initializer=_init_worker,
                          initargs=(fn,)) as pool:
            chunk_results = pool.map(_run_chunk, chunks, chunksize=1)
        wall = time.perf_counter() - t0
    results: List[R] = []
    busy = 0.0
    snapshots = []
    for chunk_out, chunk_busy, snapshot in chunk_results:
        results.extend(chunk_out)
        busy += chunk_busy
        snapshots.append(snapshot)
    from ..obs.merge import absorb_snapshots
    absorb_snapshots(snapshots)
    _note_metrics(label, n, workers, busy, wall)
    return results


def _pool_context():
    # Prefer fork (cheap, shares the built design modules copy-on-write);
    # fall back to the platform default, or to None when multiprocessing
    # has no usable start method at all.
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        pass
    try:
        return multiprocessing.get_context()
    except ValueError:  # pragma: no cover - exotic platforms
        return None
