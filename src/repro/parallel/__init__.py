"""Parallel execution and persistent artifact caching for the flow.

Two cooperating layers turn the embarrassingly parallel offline flow
(independent training jobs, independent Lasso gamma points, independent
benchmark bundles) into wall-clock wins:

* :mod:`~repro.parallel.pool` — :func:`pmap`, an order-preserving
  process-pool map with chunking, a ``--jobs N`` / ``REPRO_JOBS`` knob
  and a zero-overhead serial fallback;
* :mod:`~repro.parallel.cache` — :class:`ArtifactCache`, an on-disk
  content-addressed store for feature matrices and benchmark bundles,
  keyed by the :mod:`~repro.parallel.fingerprint` digests of design
  structure, workload content, flow configuration and code version.

Both report into the observability subsystem (``pool.*`` and
``cache.*`` metrics plus spans), so ``repro report`` shows pool
utilization and cache effectiveness next to the stage timings.
"""

from .cache import (
    DEFAULT_CACHE_DIR,
    ArtifactCache,
    CacheStats,
    get_cache,
    set_cache,
)
from .fingerprint import (
    CACHE_SCHEMA_VERSION,
    code_version,
    combine_fingerprints,
    design_hash,
    flow_config_fingerprint,
    jobs_fingerprint,
    stable_hash,
    workload_fingerprint,
)
from .pool import (
    get_default_jobs,
    pmap,
    resolve_jobs,
    set_default_jobs,
)

__all__ = [
    "ArtifactCache", "CACHE_SCHEMA_VERSION", "CacheStats",
    "DEFAULT_CACHE_DIR", "code_version", "combine_fingerprints",
    "design_hash", "flow_config_fingerprint", "get_cache",
    "get_default_jobs", "jobs_fingerprint", "pmap", "resolve_jobs",
    "set_cache", "set_default_jobs", "stable_hash",
    "workload_fingerprint",
]
