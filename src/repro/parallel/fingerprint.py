"""Stable content fingerprints for cacheable offline-flow artifacts.

A cache entry is only as trustworthy as its key.  The fingerprints here
are pure functions of artifact *content* — never of object identity,
memory layout, or wall-clock — so they are stable across processes and
interpreter runs:

* :func:`design_hash` — SHA-256 of the design's Verilog export, the
  canonical structural description of a module (ports, wires, FSMs,
  counters, memories, updates).  Any structural edit changes the hash;
  renaming a Python variable that doesn't alter the RTL does not.
* :func:`jobs_fingerprint` — digest of the encoded training jobs (port
  values and scratchpad contents), so a cached feature matrix is only
  reused for byte-identical workload data.
* :func:`flow_config_fingerprint` — digest of every
  :class:`~repro.flow.pipeline.FlowConfig` field.  Execution knobs
  (worker counts, cache dirs) deliberately live *outside* FlowConfig so
  they never perturb cache keys.
* :func:`code_version` — package version plus
  :data:`CACHE_SCHEMA_VERSION`; bump the schema constant whenever the
  pickled artifact layout changes to orphan stale entries.

:func:`combine_fingerprints` folds the parts into one key for the
on-disk cache.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

#: Bump when the pickled layout of cached artifacts changes; old cache
#: entries then miss instead of unpickling into stale shapes.
CACHE_SCHEMA_VERSION = 1


def _update(h, obj) -> None:
    # Type-tagged, order-stable serialization into the running hash.
    if obj is None:
        h.update(b"N;")
    elif isinstance(obj, bool):
        h.update(b"b1;" if obj else b"b0;")
    elif isinstance(obj, int):
        h.update(b"i" + str(obj).encode() + b";")
    elif isinstance(obj, float):
        h.update(b"f" + repr(obj).encode() + b";")
    elif isinstance(obj, str):
        data = obj.encode()
        h.update(b"s" + str(len(data)).encode() + b":" + data)
    elif isinstance(obj, bytes):
        h.update(b"y" + str(len(obj)).encode() + b":" + obj)
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        h.update(b"a" + str(arr.dtype).encode() + str(arr.shape).encode())
        h.update(arr.tobytes())
    elif isinstance(obj, (list, tuple)):
        h.update(b"l" if isinstance(obj, list) else b"t")
        h.update(str(len(obj)).encode() + b":")
        if len(obj) > 64 and all(
                isinstance(x, int) and not isinstance(x, bool)
                for x in obj):
            # Scratchpad contents: hash as one int64 block, not one
            # update per word (a megabyte memory costs ~ms, not ~s).
            try:
                _update(h, np.asarray(obj, dtype=np.int64))
                return
            except OverflowError:
                pass
        for item in obj:
            _update(h, item)
    elif isinstance(obj, dict):
        h.update(b"d" + str(len(obj)).encode() + b":")
        for key in sorted(obj, key=repr):
            _update(h, key)
            _update(h, obj[key])
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        h.update(b"c" + type(obj).__name__.encode() + b":")
        for field in dataclasses.fields(obj):
            _update(h, field.name)
            _update(h, getattr(obj, field.name))
    else:
        raise TypeError(
            f"cannot fingerprint {type(obj).__name__!r} values; "
            f"convert to plain data first"
        )


def stable_hash(obj) -> str:
    """SHA-256 hex digest of a plain-data value (dicts key-sorted)."""
    h = hashlib.sha256()
    _update(h, obj)
    return h.hexdigest()


def design_hash(module) -> str:
    """Structural hash of a finalized module via its Verilog export."""
    from ..rtl.verilog import to_verilog

    return hashlib.sha256(to_verilog(module).encode()).hexdigest()


def jobs_fingerprint(
    jobs: Iterable[Tuple[Dict[str, int], Dict[str, Sequence[int]]]]
) -> str:
    """Digest of encoded jobs: (port dict, memory dict) pairs."""
    h = hashlib.sha256()
    h.update(b"jobs:")
    for inputs, memories in jobs:
        _update(h, inputs)
        _update(h, {name: list(words) for name, words in memories.items()})
    return h.hexdigest()


def flow_config_fingerprint(config) -> str:
    """Digest of every FlowConfig field (model-relevant knobs only)."""
    return stable_hash(config)


def workload_fingerprint(name: str, scale: float) -> str:
    """Digest of a registry workload identity: (name, scale).

    Registry workloads are deterministic functions of (name, scale) —
    the generators use fixed seeds — so identity is content here.
    """
    return stable_hash(("workload", name, float(scale)))


def code_version() -> str:
    """Package version + cache schema, part of every cache key."""
    from .. import __version__

    return f"{__version__}+schema{CACHE_SCHEMA_VERSION}"


def combine_fingerprints(*parts: str) -> str:
    """Fold part digests into the final content-addressed key."""
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode() + b"\n")
    return h.hexdigest()
