"""Per-benchmark train/test workloads (Table 3 of the paper).

``scale`` shrinks or grows job counts uniformly (1.0 reproduces the
structure of Table 3 at a laptop-friendly size: the paper's 600/1500
h264 frames become 200/300, everything else keeps its 100/200-job
shape).  Train and test sets always use disjoint random seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List

from .datastream import generate_pieces
from .images import generate_images, generate_raw_images
from .particles import generate_trajectory
from .video import generate_clips, test_clips, train_clips

ALL_BENCHMARKS = ("h264", "cjpeg", "djpeg", "md", "stencil", "aes", "sha")


@dataclass(frozen=True)
class BenchmarkWorkload:
    """Train and test item lists for one benchmark."""

    name: str
    train: List[Any]
    test: List[Any]
    train_description: str
    test_description: str


def _count(base: int, scale: float, floor: int = 8) -> int:
    return max(int(round(base * scale)), floor)


def workload_for(name: str, scale: float = 1.0) -> BenchmarkWorkload:
    """Build the Table 3 workload for one benchmark."""
    if name == "h264":
        n_train = _count(100, scale)
        n_test = _count(60, scale)
        return BenchmarkWorkload(
            name=name,
            train=generate_clips(train_clips(n_train)),
            test=generate_clips(test_clips(n_test)),
            train_description=f"2 videos ({2 * n_train} frames, same size)",
            test_description=f"5 videos ({5 * n_test} frames, same size)",
        )
    if name == "cjpeg":
        n = _count(100, scale)
        return BenchmarkWorkload(
            name=name,
            train=generate_images(n, seed=311, min_dim_blocks=12,
                                  max_dim_blocks=48),
            test=generate_images(n, seed=312, min_dim_blocks=12,
                                 max_dim_blocks=48),
            train_description=f"{n} images (various sizes)",
            test_description=f"{n} images (various sizes)",
        )
    if name == "djpeg":
        n = _count(100, scale)
        return BenchmarkWorkload(
            name=name,
            train=generate_images(n, seed=321, min_dim_blocks=18,
                                  max_dim_blocks=45),
            test=generate_images(n, seed=322, min_dim_blocks=18,
                                 max_dim_blocks=45),
            train_description=f"{n} images (various sizes)",
            test_description=f"{n} images (various sizes)",
        )
    if name == "md":
        n = _count(200, scale)
        return BenchmarkWorkload(
            name=name,
            train=generate_trajectory(n, seed=331),
            test=generate_trajectory(n, seed=332),
            train_description=f"{n} steps (particle pos. changes)",
            test_description=f"{n} steps (particle pos. changes)",
        )
    if name == "stencil":
        n = _count(100, scale)
        return BenchmarkWorkload(
            name=name,
            train=generate_raw_images(n, seed=341),
            test=generate_raw_images(n, seed=342),
            train_description=f"{n} images (various sizes)",
            test_description=f"{n} images (various sizes)",
        )
    if name == "aes":
        n = _count(100, scale)
        mb = 1024 * 1024
        return BenchmarkWorkload(
            name=name,
            train=generate_pieces(n, seed=351, min_bytes=mb,
                                  max_bytes=int(6.35 * mb)),
            test=generate_pieces(n, seed=352, min_bytes=mb,
                                 max_bytes=int(6.35 * mb)),
            train_description=f"{n} pieces of data (various sizes)",
            test_description=f"{n} pieces of data (various sizes)",
        )
    if name == "sha":
        n = _count(100, scale)
        kb = 1024
        return BenchmarkWorkload(
            name=name,
            train=generate_pieces(n, seed=361, min_bytes=400 * kb,
                                  max_bytes=5000 * kb),
            test=generate_pieces(n, seed=362, min_bytes=400 * kb,
                                 max_bytes=5000 * kb),
            train_description=f"{n} pieces of data (various sizes)",
            test_description=f"{n} pieces of data (various sizes)",
        )
    raise KeyError(f"unknown benchmark {name!r}; "
                   f"choose from {ALL_BENCHMARKS}")
