"""Synthetic image workloads for cjpeg, djpeg and stencil.

"100 images (various sizes)" per Table 3: dimensions follow a
log-AR(1) process with regime jumps, so job times span more than an
order of magnitude.  Sizes within a burst correlate, but every regime
jump blindsides reactive controllers (Sec. 2.4: images arriving at the
JPEG accelerator carry no reliable correlation a history-based scheme
could bank on).

Images carry per-strip content: a strip is one 8-pixel-tall row of
8x8 blocks, the granularity the accelerators' control loops iterate
at.  ``detail`` controls how many non-zero transform coefficients each
block produces, i.e. entropy-coding effort.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .rng import clipped_normal_int, stream


@dataclass(frozen=True)
class Strip:
    """One block-row of an image."""

    n_blocks: int
    nnz_total: int   # non-zero coefficients across the strip
    noise: int       # serial-decode irregularity (0..15), per strip


@dataclass(frozen=True)
class Image:
    """One encode/decode/filter job."""

    index: int
    width_blocks: int
    height_blocks: int
    detail: float
    restart: bool             # djpeg: restart markers present
    kernel: int               # stencil: 0 box3, 1 gauss5, 2 sharpen
    strips: Tuple[Strip, ...]

    @property
    def n_blocks(self) -> int:
        return self.width_blocks * self.height_blocks

    @property
    def size_class(self) -> int:
        """Coarse size bucket (what a table-based controller keys on)."""
        return max(self.n_blocks.bit_length() - 1, 0)


def _correlated_dims(sizes, n: int, min_dim: int, max_dim: int,
                     rho: float = 0.78, jump_prob: float = 0.10):
    """Log-AR(1) dimension pairs: batches of similar-sized images with
    occasional regime switches (a new page, a new burst)."""
    import numpy as np

    lo, hi = np.log(min_dim), np.log(max_dim)
    mid = (lo + hi) / 2.0
    spread = (hi - lo) / 2.0
    state = [sizes.uniform(lo, hi), sizes.uniform(lo, hi)]
    for _ in range(n):
        if sizes.random() < jump_prob:
            state = [sizes.uniform(lo, hi), sizes.uniform(lo, hi)]
        else:
            state = [
                float(np.clip(mid + rho * (s - mid)
                              + sizes.normal(0.0, 0.22 * spread), lo, hi))
                for s in state
            ]
        yield (int(round(np.exp(state[0]))), int(round(np.exp(state[1]))))


def generate_images(n: int, seed: int,
                    min_dim_blocks: int = 14,
                    max_dim_blocks: int = 60,
                    restart_prob: float = 0.15) -> List[Image]:
    """Generate ``n`` images of various, mildly correlated sizes."""
    sizes = stream(seed, "images:sizes")
    content = stream(seed, "images:content")
    images: List[Image] = []
    dims = _correlated_dims(sizes, n, min_dim_blocks, max_dim_blocks)
    for index, (width, height) in enumerate(dims):
        detail = float(content.uniform(0.15, 0.9))
        restart = bool(content.random() < restart_prob)
        kernel = int(content.integers(0, 3))
        nnz_per_block = detail * 40.0
        strips = []
        for _ in range(height):
            nnz = clipped_normal_int(
                content, nnz_per_block * width,
                0.25 * nnz_per_block * width, 0, 63 * width)
            strips.append(Strip(
                n_blocks=width,
                nnz_total=nnz,
                noise=int(content.integers(0, 16)),
            ))
        images.append(Image(
            index=index, width_blocks=width, height_blocks=height,
            detail=detail, restart=restart, kernel=kernel,
            strips=tuple(strips),
        ))
    return images


@dataclass(frozen=True)
class RawImage:
    """A pixel-domain image for the stencil accelerator."""

    index: int
    rows: int
    cols: int
    kernel: int   # 0: 3x3 box, 1: 5x5 gaussian, 2: 3x3 sharpen

    @property
    def n_pixels(self) -> int:
        return self.rows * self.cols

    @property
    def size_class(self) -> int:
        return max(self.n_pixels.bit_length() - 1, 0)


def generate_raw_images(n: int, seed: int,
                        min_dim: int = 256,
                        max_dim: int = 784) -> List[RawImage]:
    """Pixel-domain images of various sizes for stencil filtering."""
    sizes = stream(seed, "raw_images:sizes")
    content = stream(seed, "raw_images:content")
    images: List[RawImage] = []
    dims = _correlated_dims(sizes, n, min_dim, max_dim)
    for index, (rows, cols) in enumerate(dims):
        images.append(RawImage(
            index=index, rows=rows, cols=cols,
            kernel=int(content.integers(0, 3)),
        ))
    return images
