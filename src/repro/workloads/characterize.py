"""Workload characterization: the statistics DVFS schemes care about.

A controller's fate is determined by three properties of the job
series it faces: the *spread* of job sizes (how much energy is on the
table), the *autocorrelation* (whether reactive schemes can track it),
and the *spike rate* (how often reactive schemes get ambushed).
``characterize`` computes them from any benchmark's item list using
each item's intrinsic size proxy, before any simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .datastream import DataPiece
from .images import Image, RawImage
from .particles import Timestep
from .video import Frame


def size_proxy(item) -> float:
    """An architecture-free proxy for a job's work amount."""
    if isinstance(item, Frame):
        return float(sum(mb.n_coeffs + 20 for mb in item.mbs))
    if isinstance(item, Image):
        return float(sum(s.n_blocks * 40 + s.nnz_total
                         for s in item.strips))
    if isinstance(item, RawImage):
        return float(item.n_pixels)
    if isinstance(item, Timestep):
        return float(item.total_pairs)
    if isinstance(item, DataPiece):
        return float(item.n_bytes)
    raise TypeError(f"no size proxy for {type(item).__name__}")


@dataclass(frozen=True)
class WorkloadProfile:
    """Summary statistics of one job series."""

    n_jobs: int
    mean: float
    cv: float               # coefficient of variation (spread)
    lag1_autocorr: float    # how trackable the series is
    spike_rate: float       # fraction of jobs > 1.5x the running mean

    @property
    def reactive_friendly(self) -> bool:
        """Heuristic: reactive control works when the series is smooth
        and spikes are rare (the paper's Sec. 2.4 criterion)."""
        return self.lag1_autocorr > 0.8 and self.spike_rate < 0.02


def characterize(items: Sequence) -> WorkloadProfile:
    """Compute the profile of a workload item list."""
    sizes = np.array([size_proxy(item) for item in items], dtype=float)
    if sizes.size < 2:
        raise ValueError("need at least two jobs to characterize")
    mean = float(sizes.mean())
    std = float(sizes.std())
    cv = std / mean if mean > 0 else 0.0
    if std < 1e-12:
        lag1 = 1.0  # a constant series is perfectly trackable
    else:
        lag1 = float(np.corrcoef(sizes[:-1], sizes[1:])[0, 1])

    spikes = 0
    running = sizes[0]
    for value in sizes[1:]:
        if value > 1.5 * running:
            spikes += 1
        running = 0.8 * running + 0.2 * value
    return WorkloadProfile(
        n_jobs=int(sizes.size),
        mean=mean,
        cv=cv,
        lag1_autocorr=lag1,
        spike_rate=spikes / max(sizes.size - 1, 1),
    )


def profile_table(profiles: dict) -> str:
    """Render benchmark profiles as an aligned table."""
    lines = [
        f"{'bench':10s} {'jobs':>5s} {'cv':>6s} {'lag1':>6s} "
        f"{'spike%':>7s} {'reactive?':>9s}"
    ]
    for name, p in profiles.items():
        lines.append(
            f"{name:10s} {p.n_jobs:5d} {p.cv:6.2f} "
            f"{p.lag1_autocorr:6.2f} {p.spike_rate * 100:7.2f} "
            f"{'yes' if p.reactive_friendly else 'no':>9s}"
        )
    return "\n".join(lines)
