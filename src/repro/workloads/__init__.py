"""Synthetic workload generators (Table 3 of the paper)."""

from .datastream import DataPiece, generate_pieces
from .images import Image, RawImage, Strip, generate_images, generate_raw_images
from .particles import N_PARTICLES, Timestep, generate_trajectory
from .registry import ALL_BENCHMARKS, BenchmarkWorkload, workload_for
from .video import (
    ClipSpec,
    Frame,
    MacroblockDesc,
    fig2_clips,
    generate_clip,
    generate_clips,
    test_clips,
    train_clips,
)

__all__ = [
    "ALL_BENCHMARKS", "BenchmarkWorkload", "ClipSpec", "DataPiece", "Frame",
    "Image", "MacroblockDesc", "N_PARTICLES", "RawImage", "Strip",
    "Timestep", "fig2_clips", "generate_clip", "generate_clips",
    "generate_images", "generate_pieces", "generate_raw_images",
    "generate_trajectory", "test_clips", "train_clips", "workload_for",
]
