"""Molecular-dynamics workload: particle neighbour statistics.

The md accelerator's per-timestep cost is dominated by force
computation over neighbour pairs within the cutoff radius.  As
particles drift and cluster, neighbour counts change slowly between
consecutive timesteps ("particle pos. changes", Table 3) — so md is a
workload where reactive control is *not* hopeless, but spikes still
occur when clusters merge.

The generator models a global density factor following an AR(1)
process with occasional cluster-merge jumps, and per-particle
neighbour counts drawn around it with persistent per-particle offsets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .rng import stream

N_PARTICLES = 256
MAX_NEIGHBORS = 1023  # 10-bit field


@dataclass(frozen=True)
class Timestep:
    """One job: a simulation timestep over all particles."""

    index: int
    neighbor_counts: Tuple[int, ...]

    @property
    def total_pairs(self) -> int:
        return sum(self.neighbor_counts)


def generate_trajectory(n_steps: int, seed: int,
                        n_particles: int = N_PARTICLES,
                        density_mean: float = 0.95,
                        density_rho: float = 0.96,
                        density_sigma: float = 0.15,
                        merge_prob: float = 0.02) -> List[Timestep]:
    """Generate ``n_steps`` timesteps of neighbour-count data."""
    rng = stream(seed, "md:density")
    particle_rng = stream(seed, "md:particles")
    # Persistent per-particle offsets: particles deep in a cluster
    # always see more neighbours.
    offsets = particle_rng.normal(0.0, 0.25, size=n_particles)
    density = density_mean
    steps: List[Timestep] = []
    for index in range(n_steps):
        if rng.random() < merge_prob:
            density = min(density * rng.uniform(1.3, 1.8), 2.2)
        else:
            density = (density_mean
                       + density_rho * (density - density_mean)
                       + rng.normal(0.0, density_sigma))
            density = float(np.clip(density, 0.08, 2.2))
        base = 150.0 * density
        counts = np.clip(
            base * (1.0 + offsets)
            + particle_rng.normal(0.0, 12.0, size=n_particles),
            0, MAX_NEIGHBORS,
        ).astype(int)
        steps.append(Timestep(index=index,
                              neighbor_counts=tuple(int(c) for c in counts)))
    return steps
