"""Variable-size data pieces for the aes and sha accelerators.

"100 pieces of data (various sizes)" per Table 3.  Sizes are drawn
log-uniformly and consecutive pieces are independent — e.g. the
DRM-video and burst-camera scenarios of Sec. 4.2 where each frame's
payload differs.  AES pieces also pick a cipher mode (CBC or CTR),
which changes the per-block cycle count, and a key size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .rng import stream

AES_BLOCK_BYTES = 16
SHA_CHUNK_BYTES = 64


@dataclass(frozen=True)
class DataPiece:
    """One encryption/hash job."""

    index: int
    n_bytes: int
    mode: int = 0      # aes: 0 = CBC, 1 = CTR
    key256: bool = False

    @property
    def aes_blocks(self) -> int:
        return (self.n_bytes + AES_BLOCK_BYTES - 1) // AES_BLOCK_BYTES

    @property
    def sha_chunks(self) -> int:
        # +9 bytes of mandatory padding/length, rounded up.
        return (self.n_bytes + 9 + SHA_CHUNK_BYTES - 1) // SHA_CHUNK_BYTES

    @property
    def size_class(self) -> int:
        return max(self.n_bytes.bit_length() - 1, 0)


def generate_pieces(n: int, seed: int,
                    min_bytes: int, max_bytes: int,
                    size_rho: float = 0.78,
                    session_switch_prob: float = 0.10) -> List[DataPiece]:
    """Pieces with mildly correlated sizes and session-sticky modes.

    Consecutive payloads in one stream (frames of one DRM video, shots
    of one camera burst) are similar in size; sessions switch
    occasionally, changing size regime, cipher mode and key length.
    """
    import itertools

    import numpy as np

    sizes = stream(seed, "data:sizes")
    modes = stream(seed, "data:modes")
    lo, hi = np.log(min_bytes), np.log(max_bytes)
    mid = (lo + hi) / 2.0
    spread = (hi - lo) / 2.0
    # Sessions draw (mode, key) from a shuffled cycle so even small
    # workloads cover every cipher configuration.
    combos = [(0, False), (0, True), (1, False), (1, True)]
    modes.shuffle(combos)
    combo_cycle = itertools.cycle(combos)
    forced_switch_every = max(n // 4, 1)

    log_size = sizes.uniform(lo, hi)
    mode, key256 = next(combo_cycle)
    pieces: List[DataPiece] = []
    for i in range(n):
        forced = i > 0 and i % forced_switch_every == 0
        if forced or modes.random() < session_switch_prob:
            log_size = sizes.uniform(lo, hi)
            mode, key256 = next(combo_cycle)
        else:
            log_size = (mid + size_rho * (log_size - mid)
                        + sizes.normal(0.0, 0.22 * spread))
            log_size = float(np.clip(log_size, lo, hi))
        pieces.append(DataPiece(
            index=i,
            n_bytes=int(round(np.exp(log_size))),
            mode=mode,
            key256=bool(key256),
        ))
    return pieces
