"""Synthetic H.264 bitstream workload (Fig 2's three clips and the
five-clip test set).

Real H.264 job time varies because frame content drives per-macroblock
mode decisions (Sec. 2.3).  The generator reproduces that statistical
structure per clip:

* a frame-level complexity process — AR(1) with occasional scene cuts;
* scene-cut frames encode mostly intra macroblocks with heavy residue
  (the execution-time spikes PID controllers trip over, Fig 3);
* per-macroblock draws of coding mode (intra/inter/skip), transform
  coefficient count, motion-vector precision (full/half/quarter pel),
  and an entropy-coding irregularity term.

All frames of one resolution have the same macroblock count, matching
the paper's "same size" clips.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .rng import clipped_normal, clipped_normal_int, stream

MB_TYPE_INTRA = 0
MB_TYPE_INTER = 1
MB_TYPE_SKIP = 2

MAX_COEFFS = 96
MAX_ENTROPY = 31


@dataclass(frozen=True)
class MacroblockDesc:
    """One macroblock's decode-relevant content descriptors."""

    mb_type: int
    n_coeffs: int     # transform coefficients to decode (residue cost)
    mv_frac: int      # 0 full-pel, 1 half-pel, 2 quarter-pel
    entropy: int      # serial entropy-decode irregularity (0..31)
    cabac: int = 0    # hidden arithmetic-coder state (0..15): drives a
                      # serial stall no counter captures (error source)


@dataclass(frozen=True)
class Frame:
    """One job: a frame's worth of macroblocks."""

    index: int
    clip: str
    is_scene_cut: bool
    mbs: Tuple[MacroblockDesc, ...]


@dataclass(frozen=True)
class ClipSpec:
    """Statistical parameters of one synthetic clip."""

    name: str
    n_frames: int
    seed: int
    mb_count: int = 54            # 9x6 macroblocks, one resolution
    coeff_mean: float = 40.0      # average coefficients per macroblock
    coeff_rho: float = 0.85       # AR(1) persistence of complexity
    coeff_sigma: float = 6.0      # innovation of the complexity process
    mb_coeff_sigma: float = 12.0  # within-frame macroblock spread
    inter_fraction: float = 0.7   # P(inter) on a normal frame
    skip_fraction: float = 0.12   # P(skip) on a normal frame
    qpel_fraction: float = 0.35   # P(quarter-pel | inter)
    scene_cut_prob: float = 0.03


def generate_clip(spec: ClipSpec) -> List[Frame]:
    """Generate all frames of a clip."""
    content = stream(spec.seed, f"video:{spec.name}:content")
    cuts = stream(spec.seed, f"video:{spec.name}:cuts")
    frames: List[Frame] = []
    complexity = spec.coeff_mean
    for index in range(spec.n_frames):
        is_cut = index == 0 or cuts.random() < spec.scene_cut_prob
        if is_cut:
            # An I-frame: complexity spikes, intra-only coding.
            complexity = clipped_normal(
                content, spec.coeff_mean * 1.5, spec.coeff_sigma * 2,
                5.0, MAX_COEFFS - 1)
        else:
            complexity = (
                spec.coeff_mean
                + spec.coeff_rho * (complexity - spec.coeff_mean)
                + content.normal(0.0, spec.coeff_sigma)
            )
            complexity = min(max(complexity, 5.0), MAX_COEFFS - 1.0)
        cabac_stress = clipped_normal(content, 7.5, 3.5, 1.0, 14.0)
        mbs = tuple(
            _draw_macroblock(content, spec, complexity, is_cut,
                             cabac_stress)
            for _ in range(spec.mb_count)
        )
        frames.append(Frame(index=index, clip=spec.name,
                            is_scene_cut=is_cut, mbs=mbs))
    return frames


def _draw_macroblock(rng, spec: ClipSpec, complexity: float,
                     is_cut: bool, cabac_stress: float) -> MacroblockDesc:
    n_coeffs = clipped_normal_int(rng, complexity, spec.mb_coeff_sigma,
                                  0, MAX_COEFFS)
    if is_cut:
        mb_type = MB_TYPE_INTRA
        n_coeffs = min(int(n_coeffs * 1.3) + 8, MAX_COEFFS)
    else:
        roll = rng.random()
        if roll < spec.skip_fraction:
            mb_type = MB_TYPE_SKIP
            n_coeffs = 0
        elif roll < spec.skip_fraction + spec.inter_fraction:
            mb_type = MB_TYPE_INTER
        else:
            mb_type = MB_TYPE_INTRA
    if mb_type == MB_TYPE_INTER:
        roll = rng.random()
        if roll < spec.qpel_fraction:
            mv_frac = 2
        elif roll < spec.qpel_fraction + 0.35:
            mv_frac = 1
        else:
            mv_frac = 0
    else:
        mv_frac = 0
    entropy = int(rng.integers(0, MAX_ENTROPY + 1))
    cabac = clipped_normal_int(rng, cabac_stress, 3.0, 0, 15)
    return MacroblockDesc(mb_type=mb_type, n_coeffs=n_coeffs,
                          mv_frac=mv_frac, entropy=entropy, cabac=cabac)


# -- the paper's named clips (Fig 2) + train/test sets ----------------------

def fig2_clips(n_frames: int = 100) -> List[ClipSpec]:
    """coastguard / foreman / news with distinct content statistics."""
    return [
        ClipSpec("coastguard", n_frames, seed=101, coeff_mean=55.0,
                 coeff_rho=0.92, coeff_sigma=4.0, inter_fraction=0.78,
                 qpel_fraction=0.45, scene_cut_prob=0.0),
        ClipSpec("foreman", n_frames, seed=102, coeff_mean=42.0,
                 coeff_rho=0.85, coeff_sigma=7.0, inter_fraction=0.7,
                 qpel_fraction=0.35, scene_cut_prob=0.02),
        ClipSpec("news", n_frames, seed=103, coeff_mean=31.0,
                 coeff_rho=0.8, coeff_sigma=5.0, inter_fraction=0.62,
                 skip_fraction=0.3, qpel_fraction=0.2,
                 scene_cut_prob=0.04),
    ]


def train_clips(n_frames: int = 100) -> List[ClipSpec]:
    """Two training videos (Table 3)."""
    return [
        ClipSpec("train_a", n_frames, seed=201, coeff_mean=48.0,
                 coeff_rho=0.88, inter_fraction=0.72,
                 qpel_fraction=0.4, scene_cut_prob=0.02),
        ClipSpec("train_b", n_frames, seed=202, coeff_mean=30.0,
                 coeff_rho=0.82, coeff_sigma=8.0, inter_fraction=0.65,
                 skip_fraction=0.22, qpel_fraction=0.25,
                 scene_cut_prob=0.04),
    ]


def test_clips(n_frames: int = 60) -> List[ClipSpec]:
    """Five test videos (Table 3), same resolution as training."""
    return fig2_clips(n_frames) + [
        ClipSpec("mobile", n_frames, seed=104, coeff_mean=62.0,
                 coeff_rho=0.9, coeff_sigma=5.0, inter_fraction=0.75,
                 qpel_fraction=0.5, scene_cut_prob=0.01),
        ClipSpec("container", n_frames, seed=105, coeff_mean=30.0,
                 coeff_rho=0.75, coeff_sigma=4.0, inter_fraction=0.6,
                 skip_fraction=0.22, qpel_fraction=0.15,
                 scene_cut_prob=0.05),
    ]


def generate_clips(specs: Sequence[ClipSpec]) -> List[Frame]:
    """Concatenate the frames of several clips."""
    frames: List[Frame] = []
    for spec in specs:
        frames.extend(generate_clip(spec))
    return frames
