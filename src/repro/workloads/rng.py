"""Seeded random helpers shared by the workload generators."""

from __future__ import annotations

import zlib

import numpy as np


def stream(seed: int, label: str) -> np.random.Generator:
    """A deterministic generator derived from a seed and a label.

    Labels keep independent aspects of a workload (sizes, content,
    noise) on independent streams so changing one does not reshuffle
    the others.  The derivation uses a *stable* hash (CRC32), never
    Python's per-process-salted ``hash``, so workloads are identical
    across runs and machines.
    """
    h = zlib.crc32(f"{seed}:{label}".encode("utf-8")) & 0x7FFFFFFF
    return np.random.default_rng(h)


def clipped_normal(rng: np.random.Generator, mean: float, sigma: float,
                   low: float, high: float) -> float:
    """One normal draw clipped into [low, high]."""
    return float(np.clip(rng.normal(mean, sigma), low, high))


def clipped_normal_int(rng: np.random.Generator, mean: float, sigma: float,
                       low: int, high: int) -> int:
    """A clipped normal draw rounded to int."""
    return int(round(clipped_normal(rng, mean, sigma, low, high)))


def log_uniform_int(rng: np.random.Generator, low: int, high: int) -> int:
    """Integer drawn log-uniformly in [low, high] (sizes vary in scale)."""
    if low <= 0 or high < low:
        raise ValueError("need 0 < low <= high")
    return int(round(np.exp(rng.uniform(np.log(low), np.log(high)))))
