"""Workload serialization: save and reload job traces as JSON.

Synthetic workloads are seeded and reproducible, but experiments often
need to be pinned to an exact trace (e.g. to share a failing job with
a colleague, or to re-run an evaluation after generator parameters
change).  ``save_workload``/``load_workload`` round-trip any
benchmark's item list through a versioned JSON document.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Any, List, Sequence, Union

from .datastream import DataPiece
from .images import Image, RawImage, Strip
from .particles import Timestep
from .video import Frame, MacroblockDesc

FORMAT_VERSION = 1

_ITEM_TYPES = {
    "Frame": Frame,
    "Image": Image,
    "RawImage": RawImage,
    "Timestep": Timestep,
    "DataPiece": DataPiece,
}


def _encode_item(item: Any) -> dict:
    kind = type(item).__name__
    if kind not in _ITEM_TYPES:
        raise TypeError(f"cannot serialize workload item {kind!r}")
    return {"kind": kind, "data": asdict(item)}


def _decode_item(payload: dict) -> Any:
    kind = payload["kind"]
    if kind not in _ITEM_TYPES:
        raise ValueError(f"unknown workload item kind {kind!r}")
    data = dict(payload["data"])
    if kind == "Frame":
        data["mbs"] = tuple(
            MacroblockDesc(**mb) for mb in data["mbs"]
        )
    elif kind == "Image":
        data["strips"] = tuple(Strip(**s) for s in data["strips"])
    elif kind == "Timestep":
        data["neighbor_counts"] = tuple(data["neighbor_counts"])
    return _ITEM_TYPES[kind](**data)


def save_workload(items: Sequence[Any],
                  path: Union[str, Path]) -> None:
    """Write a workload item list to ``path`` as JSON."""
    document = {
        "version": FORMAT_VERSION,
        "n_items": len(items),
        "items": [_encode_item(item) for item in items],
    }
    Path(path).write_text(json.dumps(document))


def load_workload(path: Union[str, Path]) -> List[Any]:
    """Reload a workload item list written by :func:`save_workload`."""
    document = json.loads(Path(path).read_text())
    version = document.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported workload format version {version!r}"
        )
    items = [_decode_item(p) for p in document["items"]]
    if len(items) != document.get("n_items"):
        raise ValueError("workload file is inconsistent")
    return items
