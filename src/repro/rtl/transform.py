"""Module-to-module transforms.

``derive_module`` rebuilds a behavioural module minus a set of
constructs.  The slicer uses it twice:

* *wait elision* — drop the wait declaration of states whose associated
  computation was sliced away, so the slice steps straight through them
  (Sec. 3.5 of the paper: "modifying the FSM transition table to remove
  the waiting behavior");
* *slicing* — drop counters, registers, wires, updates and datapath
  blocks outside the retained closure.

State codes and construct names are preserved exactly, so features
recorded from a derived module are directly comparable with features
recorded from the original — a property the test suite checks.
"""

from __future__ import annotations

from typing import AbstractSet, Optional, Tuple

from .fsm import Fsm
from .module import Module

StateKey = Tuple[str, str]


def derive_module(
    module: Module,
    name: Optional[str] = None,
    unwait: AbstractSet[StateKey] = frozenset(),
    drop_dynamic: AbstractSet[StateKey] = frozenset(),
    drop_counters: AbstractSet[str] = frozenset(),
    drop_regs: AbstractSet[str] = frozenset(),
    drop_wires: AbstractSet[str] = frozenset(),
    drop_updates: AbstractSet[int] = frozenset(),
    drop_fsms: AbstractSet[str] = frozenset(),
    drop_memories: AbstractSet[str] = frozenset(),
    drop_datapath: bool = False,
) -> Module:
    """Clone ``module`` without the named constructs.

    ``unwait`` removes the *wait* declaration of ``(fsm, state)`` pairs
    (the state remains; its outgoing arcs stop being gated on the
    counter).  ``drop_dynamic`` removes dynamic-wait declarations the
    same way.  Update indices refer to ``module.updates`` order.

    The caller is responsible for dropping a dependency-closed set;
    ``finalize`` on the result will raise if a retained expression
    references a dropped signal.
    """
    out = Module(name or f"{module.name}__derived")
    for port in module.ports.values():
        out.port(port.name, port.width)
    for mem in module.memories.values():
        if mem.name not in drop_memories:
            out.memory(mem.name, mem.depth, mem.width)
    # Auto-generated transition wires are regenerated at finalize; copy
    # only user wires.
    generated = {
        fsm.transition_signal(t)
        for fsm in module.fsms.values()
        for t in fsm.transitions
    }
    for wire in module.wires.values():
        if wire.name in generated or wire.name in drop_wires:
            continue
        out.wire(wire.name, wire.expr, wire.width)
    for reg in module.regs.values():
        if reg.name not in drop_regs:
            out.reg(reg.name, reg.width, reg.init)
    for counter in module.counters.values():
        if counter.name not in drop_counters:
            out.counter(counter)
    for fsm in module.fsms.values():
        if fsm.name in drop_fsms:
            continue
        out.fsm(_derive_fsm(fsm, unwait, drop_dynamic, drop_counters,
                            drop_regs))
    for idx, upd in enumerate(module.updates):
        if idx in drop_updates or upd.reg in drop_regs:
            continue
        if upd.fsm is not None and upd.fsm in drop_fsms:
            continue
        out.updates.append(upd)
    if not drop_datapath:
        for block in module.datapath_blocks:
            out.datapath(block)
    out.set_done(module.done_expr)
    return out.finalize()


def _derive_fsm(fsm: Fsm, unwait: AbstractSet[StateKey],
                drop_dynamic: AbstractSet[StateKey],
                drop_counters: AbstractSet[str],
                drop_regs: AbstractSet[str]) -> Fsm:
    clone = Fsm(fsm.name, fsm.initial)
    for state in fsm.states:  # preserves registration order => same codes
        clone.add_state(state)
    for t in fsm.transitions:
        actions = [
            (reg, value) for reg, value in t.actions if reg not in drop_regs
        ]
        clone.transition(t.src, t.dst, cond=t.cond, actions=actions)
    for state, counter in fsm.wait_states.items():
        if (fsm.name, state) in unwait:
            continue
        if counter in drop_counters:
            raise ValueError(
                f"cannot drop counter {counter!r}: state {state} of FSM "
                f"{fsm.name} still waits on it (unwait the state first)"
            )
        clone.wait_state(state, counter,
                         feeds_control=state in fsm.control_waits)
    for state, duration in fsm.dynamic_waits.items():
        if (fsm.name, state) not in drop_dynamic:
            clone.dynamic_wait(state, duration,
                               feeds_control=state in fsm.control_dynamic)
    return clone
