"""Signal declarations for the behavioural RTL IR.

Four kinds of state/connectivity elements exist:

* :class:`Port` — an input pin set by the testbench when a job is loaded.
* :class:`Wire` — a combinational signal with a driving expression.
* :class:`Reg`  — a flip-flop bank with a width mask applied on commit.
* :class:`Memory` — a scratchpad SRAM loaded with the job's input data.

Sequential behaviour (what a :class:`Reg` does each cycle) is expressed
through :class:`Update` rules owned by the module, not by the register
itself, mirroring how always-blocks drive registers in Verilog.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .expr import Expr, wrap, ExprLike


def mask_for(width: int) -> int:
    """Bit mask for a signal of ``width`` bits."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    return (1 << width) - 1


@dataclass(frozen=True)
class Port:
    """A module input, loaded per job by the testbench."""

    name: str
    width: int = 32

    def __post_init__(self) -> None:
        mask_for(self.width)  # validates width


@dataclass(frozen=True)
class Wire:
    """A combinational signal driven by ``expr``."""

    name: str
    expr: Expr
    width: int = 32

    def __post_init__(self) -> None:
        mask_for(self.width)


@dataclass(frozen=True)
class Reg:
    """A register bank with an initial value."""

    name: str
    width: int = 32
    init: int = 0

    def __post_init__(self) -> None:
        if self.init < 0:
            raise ValueError(f"register init must be >= 0, got {self.init}")
        if self.init > mask_for(self.width):
            raise ValueError(
                f"init {self.init} does not fit in {self.width} bits"
            )

    @property
    def mask(self) -> int:
        return mask_for(self.width)


@dataclass(frozen=True)
class Memory:
    """A scratchpad memory (SRAM) holding the job's working set.

    ``depth`` and ``width`` size the SRAM macro for area/energy purposes;
    the simulator stores whatever list the testbench loads (shorter than
    ``depth`` is fine, reads past the end return zero).
    """

    name: str
    depth: int
    width: int = 32

    def __post_init__(self) -> None:
        if self.depth <= 0:
            raise ValueError(f"memory depth must be positive, got {self.depth}")
        mask_for(self.width)

    @property
    def bits(self) -> int:
        return self.depth * self.width


@dataclass(frozen=True)
class Update:
    """A guarded register update: ``if cond: reg <= value`` each cycle.

    Updates belonging to a module are evaluated in declaration order; the
    *last* matching rule for a register wins within a cycle, matching the
    semantics of sequential non-blocking assignments in an always-block.
    An ``Update`` may optionally be tied to an FSM state so it only fires
    while the FSM is in that state.
    """

    reg: str
    value: Expr
    cond: Optional[Expr] = None
    fsm: Optional[str] = None
    state: Optional[str] = None

    def __post_init__(self) -> None:
        if (self.fsm is None) != (self.state is None):
            raise ValueError("fsm and state must be given together")


def update(reg: str, value: ExprLike, cond: Optional[ExprLike] = None,
           fsm: Optional[str] = None, state: Optional[str] = None) -> Update:
    """Convenience constructor coercing ints to constants."""
    return Update(
        reg=reg,
        value=wrap(value),
        cond=None if cond is None else wrap(cond),
        fsm=fsm,
        state=state,
    )
