"""Module container for the behavioural RTL IR.

A :class:`Module` aggregates ports, wires, registers, counters, FSMs,
scratchpad memories, update rules and datapath blocks, and owns the
namespace they share.  ``finalize()`` validates the design, generates
the per-transition "criteria" wires that instrumentation and synthesis
rely on, and topologically orders the combinational wires.

Datapath blocks deserve a note: the paper's accelerators spend most of
their *area* in computation datapaths whose outputs do not feed control
decisions.  Timing of that computation is expressed through wait
counters; the datapath itself is modelled as a :class:`DatapathBlock` —
a bag of cells (multipliers, adders, SRAM ports ...) that consumes
control signals and produces a sink output no control logic reads.
Slicing then removes datapath blocks exactly the way the paper's
hardware slicer removes the prediction-irrelevant majority of the
accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from .counter import Counter
from .expr import Expr, Sig, wrap, ExprLike
from .fsm import Fsm
from .signals import Memory, Port, Reg, Update, Wire


@dataclass(frozen=True)
class DatapathBlock:
    """A computation block modelled for area/energy, not behaviour.

    ``cells`` maps cell kind (e.g. ``"MUL"``, ``"ADD"``) to a count;
    ``width`` applies to all of them.  ``inputs`` are the control/data
    signals the block consumes; ``output`` is a pseudo-net it produces.
    ``active_states`` optionally lists ``(fsm, state)`` pairs during
    which the block toggles (for activity-based energy accounting).
    """

    name: str
    cells: Mapping[str, int]
    width: int = 32
    inputs: Tuple[str, ...] = ()
    active_states: Tuple[Tuple[str, str], ...] = ()

    @property
    def output(self) -> str:
        return f"{self.name}__out"


class Module:
    """A hardware accelerator design in the behavioural IR."""

    def __init__(self, name: str):
        self.name = name
        self.ports: Dict[str, Port] = {}
        self.wires: Dict[str, Wire] = {}
        self.regs: Dict[str, Reg] = {}
        self.counters: Dict[str, Counter] = {}
        self.fsms: Dict[str, Fsm] = {}
        self.memories: Dict[str, Memory] = {}
        self.updates: List[Update] = []
        self.datapath_blocks: List[DatapathBlock] = []
        self.done_expr: Optional[Expr] = None
        self._finalized = False
        self._wire_order: List[str] = []

    # -- namespace ------------------------------------------------------
    def _claim(self, name: str) -> None:
        if name in self.all_signal_names():
            raise ValueError(f"signal name {name!r} already used in {self.name}")

    def all_signal_names(self) -> set:
        """Every name in the module's signal namespace."""
        names = set(self.ports) | set(self.wires) | set(self.regs)
        names |= set(self.counters)
        names |= {fsm.state_signal for fsm in self.fsms.values()}
        return names

    # -- construction ---------------------------------------------------
    def port(self, name: str, width: int = 32) -> Sig:
        """Declare an input port; returns its signal."""
        self._check_open()
        self._claim(name)
        self.ports[name] = Port(name, width)
        return Sig(name)

    def wire(self, name: str, expr: ExprLike, width: int = 32) -> Sig:
        """Declare a combinational wire; returns its signal."""
        self._check_open()
        self._claim(name)
        self.wires[name] = Wire(name, wrap(expr), width)
        return Sig(name)

    def reg(self, name: str, width: int = 32, init: int = 0) -> Sig:
        """Declare a register; returns its signal."""
        self._check_open()
        self._claim(name)
        self.regs[name] = Reg(name, width, init)
        return Sig(name)

    def counter(self, counter: Counter) -> Sig:
        """Attach a counter; returns its value signal."""
        self._check_open()
        self._claim(counter.name)
        self.counters[counter.name] = counter
        return Sig(counter.name)

    def fsm(self, fsm: Fsm) -> Fsm:
        """Attach a finite state machine."""
        self._check_open()
        if fsm.name in self.fsms:
            raise ValueError(f"FSM {fsm.name!r} already added")
        self._claim(fsm.state_signal)
        self.fsms[fsm.name] = fsm
        return fsm

    def memory(self, name: str, depth: int, width: int = 32) -> Memory:
        """Declare a scratchpad memory."""
        self._check_open()
        if name in self.memories:
            raise ValueError(f"memory {name!r} already added")
        mem = Memory(name, depth, width)
        self.memories[name] = mem
        return mem

    def update(self, reg: str, value: ExprLike,
               cond: Optional[ExprLike] = None,
               fsm: Optional[str] = None,
               state: Optional[str] = None) -> None:
        """Add a guarded register-update rule."""
        self._check_open()
        self.updates.append(Update(
            reg=reg,
            value=wrap(value),
            cond=None if cond is None else wrap(cond),
            fsm=fsm,
            state=state,
        ))

    def datapath(self, block: DatapathBlock) -> None:
        """Attach a priced datapath block."""
        self._check_open()
        self.datapath_blocks.append(block)

    def set_done(self, expr: ExprLike) -> None:
        """Define the job-completion expression."""
        self._check_open()
        self.done_expr = wrap(expr)

    def _check_open(self) -> None:
        if self._finalized:
            raise RuntimeError(f"module {self.name} is finalized")

    # -- finalization ---------------------------------------------------
    def finalize(self) -> "Module":
        """Validate the design and derive generated structures."""
        if self._finalized:
            return self
        if self.done_expr is None:
            raise ValueError(f"module {self.name} has no done expression")
        for fsm in self.fsms.values():
            fsm.validate()
            for state, counter in fsm.wait_states.items():
                if counter not in self.counters:
                    raise ValueError(
                        f"FSM {fsm.name} wait state {state} references "
                        f"unknown counter {counter!r}"
                    )
                if self.counters[counter].mode != "down":
                    raise ValueError(
                        f"wait state {state} must use a down counter"
                    )
        # Generate the per-transition criteria wires (the paper's
        # instrumentation points) before resolving references.
        for fsm in self.fsms.values():
            for t in fsm.transitions:
                name = fsm.transition_signal(t)
                if name not in self.wires:
                    self.wires[name] = Wire(name, fsm.effective_cond(t), 1)
        self._validate_references()
        self._wire_order = self._topo_sort_wires()
        self._validate_updates()
        self._finalized = True
        return self

    @property
    def finalized(self) -> bool:
        return self._finalized

    @property
    def wire_order(self) -> List[str]:
        if not self._finalized:
            raise RuntimeError("module not finalized")
        return list(self._wire_order)

    def _known_signals(self) -> set:
        known = self.all_signal_names()
        known |= {f"__mem__{m}" for m in self.memories}
        known |= {b.output for b in self.datapath_blocks}
        known |= {
            fsm.dynbusy_signal for fsm in self.fsms.values()
            if fsm.dynamic_waits
        }
        return known

    def _validate_references(self) -> None:
        known = self._known_signals()

        def check(expr: Expr, where: str) -> None:
            missing = expr.signals() - known
            if missing:
                raise ValueError(
                    f"{self.name}: {where} references unknown signals "
                    f"{sorted(missing)}"
                )

        for wire in self.wires.values():
            check(wire.expr, f"wire {wire.name}")
        for counter in self.counters.values():
            if counter.load_cond is not None:
                check(counter.load_cond, f"counter {counter.name} load_cond")
            if counter.load_value is not None:
                check(counter.load_value, f"counter {counter.name} load_value")
            if counter.enable is not None:
                check(counter.enable, f"counter {counter.name} enable")
        for upd in self.updates:
            if upd.reg not in self.regs:
                raise ValueError(
                    f"{self.name}: update targets unknown register {upd.reg!r}"
                )
            check(upd.value, f"update of {upd.reg}")
            if upd.cond is not None:
                check(upd.cond, f"update cond of {upd.reg}")
        for fsm in self.fsms.values():
            for t in fsm.transitions:
                if t.cond is not None:
                    check(t.cond, f"FSM {fsm.name} arc {t.src}->{t.dst}")
                for reg, value in t.actions:
                    if reg not in self.regs:
                        raise ValueError(
                            f"{self.name}: FSM {fsm.name} arc action targets "
                            f"unknown register {reg!r}"
                        )
                    check(value, f"FSM {fsm.name} arc action on {reg}")
            for expr in fsm.dynamic_waits.values():
                check(expr, f"FSM {fsm.name} dynamic wait")
        check(self.done_expr, "done expression")
        for block in self.datapath_blocks:
            missing = set(block.inputs) - known
            if missing:
                raise ValueError(
                    f"{self.name}: datapath {block.name} consumes unknown "
                    f"signals {sorted(missing)}"
                )
            for fsm_name, state in block.active_states:
                if fsm_name not in self.fsms:
                    raise ValueError(
                        f"datapath {block.name}: unknown FSM {fsm_name!r}"
                    )
                if state not in self.fsms[fsm_name].states:
                    raise ValueError(
                        f"datapath {block.name}: unknown state {state!r}"
                    )

    def _validate_updates(self) -> None:
        for upd in self.updates:
            if upd.fsm is not None:
                if upd.fsm not in self.fsms:
                    raise ValueError(f"update references unknown FSM {upd.fsm}")
                if upd.state not in self.fsms[upd.fsm].states:
                    raise ValueError(
                        f"update references unknown state {upd.state} "
                        f"of FSM {upd.fsm}"
                    )

    def _topo_sort_wires(self) -> List[str]:
        """Order wires so each is computed after the wires it reads."""
        order: List[str] = []
        visiting: set = set()
        done: set = set()

        def visit(name: str) -> None:
            if name in done:
                return
            if name in visiting:
                raise ValueError(
                    f"{self.name}: combinational cycle through wire {name!r}"
                )
            visiting.add(name)
            for dep in self.wires[name].expr.signals():
                if dep in self.wires:
                    visit(dep)
            visiting.discard(name)
            done.add(name)
            order.append(name)

        for name in self.wires:
            visit(name)
        return order

    def __repr__(self) -> str:
        return (
            f"Module({self.name!r}, wires={len(self.wires)}, "
            f"regs={len(self.regs)}, counters={len(self.counters)}, "
            f"fsms={len(self.fsms)})"
        )
