"""Behavioural RTL IR, simulator, and structural synthesis substrate.

This package is the reproduction's stand-in for the paper's Verilog +
Yosys + RTL-simulation toolchain.  Accelerator designs are written
against :class:`Module` (FSMs, counters, wires, registers, scratchpads,
datapath blocks); :func:`synthesize` lowers a design to a structural
:class:`Netlist`; :class:`Simulation` executes jobs cycle-accurately.
"""

from .backend import (
    BACKENDS,
    compiled_clone,
    make_simulation,
    resolve_backend,
    set_default_backend,
)
from .batchsim import (
    BatchEvents,
    BatchProgram,
    BatchRunResult,
    BatchScalarSimulation,
    BatchSimulation,
    compile_batch_stepper,
)
from .compiled import CompiledExpr, compile_expr, compile_module
from .counter import Counter, down_counter, up_counter
from .dot import netlist_to_dot
from .idioms import ItemLoop
from .lint import LintFinding, errors_only, lint_module
from .expr import (
    BinOp,
    Const,
    Expr,
    MemRead,
    Mux,
    Sig,
    UnOp,
    all_of,
    any_of,
    maximum,
    minimum,
    wrap,
)
from .fsm import Fsm, Transition
from .module import DatapathBlock, Module
from .netlist import Cell, Netlist, Provenance
from .signals import Memory, Port, Reg, Update, Wire
from .simulator import Listener, RunResult, Simulation
from .stepjit import StepProgram, StepSimulation, compile_stepper
from .synth import synthesize
from .transform import derive_module
from .verilog import to_verilog
from .wave import VcdWriter

__all__ = [
    "BACKENDS", "BatchEvents", "BatchProgram", "BatchRunResult",
    "BatchScalarSimulation", "BatchSimulation", "BinOp", "Cell",
    "CompiledExpr", "Const", "Counter",
    "DatapathBlock",
    "ItemLoop", "LintFinding", "VcdWriter", "errors_only", "lint_module",
    "netlist_to_dot",
    "Expr", "Fsm", "Listener", "MemRead", "Memory", "Module", "Mux",
    "Netlist", "Port", "Provenance", "Reg", "RunResult", "Sig",
    "Simulation", "StepProgram", "StepSimulation", "Transition", "UnOp",
    "Update", "Wire", "all_of",
    "any_of", "compile_batch_stepper", "compile_expr", "compile_module",
    "compile_stepper",
    "compiled_clone", "derive_module",
    "down_counter", "make_simulation", "maximum", "minimum",
    "resolve_backend", "set_default_backend", "synthesize", "to_verilog",
    "up_counter", "wrap",
]
