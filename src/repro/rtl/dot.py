"""Graphviz export of structural netlists.

``netlist_to_dot`` renders a synthesized netlist as a DOT graph,
clustered by source construct — the visual a designer reaches for when
checking what the slicer kept.  Pass ``highlight`` (a set of cell ids,
e.g. a fan-in closure) to color the retained cone.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from .netlist import Cell, Netlist

_SHAPES = {
    "DFF": "box",
    "SRAM": "box3d",
    "PORT": "invhouse",
    "CONST": "plaintext",
    "MUX": "trapezium",
    "SEQCTL": "octagon",
}


def _label(cell: Cell) -> str:
    label = f"{cell.kind}"
    if cell.count > 1:
        label += f" x{cell.count}"
    if cell.kind == "CONST":
        label = str(cell.param)
    return f"{label}\\n{cell.out}"


def netlist_to_dot(netlist: Netlist,
                   highlight: Optional[Iterable[int]] = None,
                   max_cells: int = 2000) -> str:
    """Render the netlist as a Graphviz digraph."""
    if len(netlist.cells) > max_cells:
        raise ValueError(
            f"netlist has {len(netlist.cells)} cells; raise max_cells "
            "to render it anyway"
        )
    marked: Set[int] = set(highlight or ())
    lines = [f'digraph "{netlist.name}" {{', "  rankdir=LR;",
             "  node [fontsize=9];"]

    clusters: dict = {}
    for cell in netlist:
        key = (cell.provenance.construct, cell.provenance.name)
        clusters.setdefault(key, []).append(cell)

    for index, ((construct, name), cells) in enumerate(
            sorted(clusters.items())):
        lines.append(f"  subgraph cluster_{index} {{")
        lines.append(f'    label="{construct}:{name}"; color=gray;')
        for cell in cells:
            shape = _SHAPES.get(cell.kind, "ellipse")
            style = ' style=filled fillcolor="#ffd37f"' \
                if cell.cid in marked else ""
            lines.append(
                f'    c{cell.cid} [label="{_label(cell)}" '
                f"shape={shape}{style}];"
            )
        lines.append("  }")

    for cell in netlist:
        for net in cell.fanin:
            driver = netlist.driver(net)
            if driver is not None:
                lines.append(f"  c{driver.cid} -> c{cell.cid};")
    lines.append("}")
    return "\n".join(lines) + "\n"
