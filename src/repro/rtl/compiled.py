"""Compiled simulation backend (the Verilator of this substrate).

``compile_module`` returns a clone of a behavioural module in which
every expression tree has been replaced by a :class:`CompiledExpr` —
an expression whose ``eval`` is a Python function generated from the
tree (via :func:`repro.rtl.expr.to_python`) and compiled once.  The
clone is a drop-in replacement for simulation::

    sim = Simulation(compile_module(design.build()))

Everything else (two-phase semantics, fast-forward, listeners) is
unchanged, because CompiledExpr still exposes ``signals()`` and
``children()`` of the original tree for the static analyses.

The interpreter walks expression objects node by node; the compiled
form runs each tree as one flat Python expression, which is typically
2-4x faster end to end.  The test suite checks cycle-exact equivalence
between both backends on the benchmark designs.

Note: compiled modules are for *simulation*; structural synthesis
pattern-matches concrete node classes, so always synthesize the
original module.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Tuple

from .counter import Counter
from .expr import Env, Expr, to_python
from .fsm import Fsm
from .module import Module
from .signals import Update, Wire


class CompiledExpr(Expr):
    """An expression evaluated by generated code.

    Keeps the original tree for structural queries (dependence
    analyses, provenance) while ``eval`` dispatches straight to a
    compiled function of the environment.
    """

    __slots__ = ("original", "_fn")

    def __init__(self, original: Expr):
        if isinstance(original, CompiledExpr):
            original = original.original
        self.original = original
        source = to_python(original, env_name="env")
        self._fn = eval(  # compiled once; pure expression over `env`
            compile(f"lambda env: {source}", "<compiled-expr>", "eval"))

    def eval(self, env: Env) -> int:
        """Run the generated function on the environment."""
        return self._fn(env)

    def __reduce__(self):
        """Pickle as the original tree; recompile on load.

        The generated ``_fn`` lambda is unpicklable, but it is a pure
        function of ``original`` — so compiled modules can cross
        process boundaries (pool workers, the on-disk artifact cache)
        and come back simulation-identical.
        """
        return (CompiledExpr, (self.original,))

    def signals(self) -> FrozenSet[str]:
        return self.original.signals()

    def children(self) -> Tuple[Expr, ...]:
        """The original tree's children (for analyses)."""
        return self.original.children()

    def __repr__(self) -> str:
        return f"CompiledExpr({self.original!r})"


def compile_expr(expr: Optional[Expr]) -> Optional[Expr]:
    """Compile an expression; None passes through."""
    if expr is None:
        return None
    return CompiledExpr(expr)


def compile_module(module: Module) -> Module:
    """A simulation-equivalent clone with compiled expressions."""
    if not module.finalized:
        raise ValueError(f"module {module.name} must be finalized first")
    out = Module(f"{module.name}__compiled")
    for port in module.ports.values():
        out.port(port.name, port.width)
    for mem in module.memories.values():
        out.memory(mem.name, mem.depth, mem.width)
    generated = {
        fsm.transition_signal(t)
        for fsm in module.fsms.values()
        for t in fsm.transitions
    }
    for wire in module.wires.values():
        if wire.name in generated:
            continue  # regenerated (compiled) at finalize via the FSM
        out.wire(wire.name, compile_expr(wire.expr), wire.width)
    for reg in module.regs.values():
        out.reg(reg.name, reg.width, reg.init)
    for counter in module.counters.values():
        out.counter(Counter(
            name=counter.name,
            width=counter.width,
            mode=counter.mode,
            load_cond=compile_expr(counter.load_cond),
            load_value=compile_expr(counter.load_value),
            enable=compile_expr(counter.enable),
            step=counter.step,
        ))
    for fsm in module.fsms.values():
        out.fsm(_compile_fsm(fsm))
    for upd in module.updates:
        out.updates.append(Update(
            reg=upd.reg,
            value=compile_expr(upd.value),
            cond=compile_expr(upd.cond),
            fsm=upd.fsm,
            state=upd.state,
        ))
    for block in module.datapath_blocks:
        out.datapath(block)
    out.set_done(compile_expr(module.done_expr))
    out.finalize()
    # The finalize pass regenerated the transition-criteria wires from
    # effective_cond; compile those too (they are evaluated every cycle
    # as counter load conditions).
    for name in list(out.wires):
        wire = out.wires[name]
        if not isinstance(wire.expr, CompiledExpr):
            out.wires[name] = Wire(name, CompiledExpr(wire.expr),
                                   wire.width)
    return out


def _compile_fsm(fsm: Fsm) -> Fsm:
    clone = Fsm(fsm.name, fsm.initial)
    for state in fsm.states:
        clone.add_state(state)
    for t in fsm.transitions:
        clone.transition(
            t.src, t.dst,
            cond=compile_expr(t.cond),
            actions=[(reg, compile_expr(value)) for reg, value in t.actions],
        )
    for state, counter in fsm.wait_states.items():
        clone.wait_state(state, counter,
                         feeds_control=state in fsm.control_waits)
    for state, duration in fsm.dynamic_waits.items():
        clone.dynamic_wait(state, compile_expr(duration),
                           feeds_control=state in fsm.control_dynamic)
    return clone
