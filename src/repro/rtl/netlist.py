"""Structural netlist: the output of synthesis.

The netlist is a flat sea of cells connected by named nets.  It serves
three consumers:

* the FSM/counter *detectors* (``repro.analysis``), which walk cell
  patterns exactly the way the paper's netlist-level extraction [24]
  does;
* the *slicer* (``repro.slicing``), which computes backward fan-in
  closures from feature probe nets;
* the *cost models* (``repro.rtl.tech``), which price cells in ASIC
  area/energy or FPGA resources.

Net naming convention: nets carrying user-visible signals keep their
behavioural names (like Yosys keeps RTL names); intermediate nets are
``<owner>__n<k>``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple


@dataclass(frozen=True)
class Provenance:
    """Where a cell came from in the behavioural IR.

    ``construct`` is one of: ``port``, ``const``, ``memory``, ``wire``,
    ``reg``, ``counter``, ``fsm``, ``fsm_arc``, ``dynamic``, ``update``,
    ``datapath``, ``done``.  ``name`` identifies the construct and
    ``role`` the cell's function within it (e.g. ``dff``, ``load_mux``).
    """

    construct: str
    name: str
    role: str = ""


@dataclass(frozen=True)
class Cell:
    """One gate/macro instance.

    ``fanin`` ordering conventions: ``MUX`` is ``(sel, a, b)`` meaning
    ``sel ? a : b``; ``MEMRD`` is ``(mem, index)``; binary ops are
    ``(a, b)``.  ``param`` carries the constant for CONST cells and the
    step for ADD/SUB used by counters.  ``count`` lets one cell stand
    for N identical instances (used for datapath blocks).
    """

    cid: int
    kind: str
    out: str
    fanin: Tuple[str, ...]
    width: int = 32
    provenance: Provenance = Provenance("wire", "?")
    param: int = 0
    count: int = 1


# Cell kinds produced by the synthesizer.
COMB_KINDS = frozenset((
    "ADD", "SUB", "MUL", "DIV", "MOD", "AND", "OR", "XOR", "SHL", "SHR",
    "EQ", "NE", "LT", "LE", "GT", "GE", "MIN", "MAX", "MUX", "NOT",
    "BOOL", "MEMRD", "BUF",
))
SEQ_KINDS = frozenset(("DFF", "SEQCTL"))
SOURCE_KINDS = frozenset(("PORT", "CONST", "SRAM"))
ALL_KINDS = COMB_KINDS | SEQ_KINDS | SOURCE_KINDS


class Netlist:
    """A flat structural netlist with single-driver nets."""

    def __init__(self, name: str):
        self.name = name
        self.cells: List[Cell] = []
        self._driver: Dict[str, Cell] = {}
        self._tmp = 0
        self._readers: Optional[Dict[str, List[Cell]]] = None

    # -- construction -----------------------------------------------------
    def add(self, kind: str, fanin: Sequence[str], out: Optional[str] = None,
            width: int = 32, provenance: Optional[Provenance] = None,
            param: int = 0, count: int = 1) -> str:
        """Add a cell; returns its output net name."""
        if kind not in ALL_KINDS:
            raise ValueError(f"unknown cell kind {kind!r}")
        if out is None:
            owner = provenance.name if provenance else "t"
            out = f"{owner}__n{self._tmp}"
            self._tmp += 1
        if out in self._driver:
            raise ValueError(f"net {out!r} already driven")
        cell = Cell(
            cid=len(self.cells),
            kind=kind,
            out=out,
            fanin=tuple(fanin),
            width=width,
            provenance=provenance or Provenance("wire", "?"),
            param=param,
            count=count,
        )
        self.cells.append(cell)
        self._driver[out] = cell
        self._readers = None
        return out

    # -- queries ----------------------------------------------------------
    def driver(self, net: str) -> Optional[Cell]:
        """The cell driving ``net`` (None if undriven)."""
        return self._driver.get(net)

    def readers(self, net: str) -> List[Cell]:
        """All cells reading ``net``."""
        if self._readers is None:
            table: Dict[str, List[Cell]] = {}
            for cell in self.cells:
                for fin in cell.fanin:
                    table.setdefault(fin, []).append(cell)
            self._readers = table
        return self._readers.get(net, [])

    def cells_of_kind(self, kind: str) -> List[Cell]:
        """All cells of one kind."""
        return [c for c in self.cells if c.kind == kind]

    def cells_of(self, construct: str,
                 name: Optional[str] = None) -> List[Cell]:
        """Cells by provenance construct (and optional name)."""
        return [
            c for c in self.cells
            if c.provenance.construct == construct
            and (name is None or c.provenance.name == name)
        ]

    def fanin_closure(self, start_nets: Iterable[str],
                      stop_at_state: bool = False) -> Set[int]:
        """Cell ids reachable backward from ``start_nets``.

        With ``stop_at_state`` the walk includes DFF/SRAM cells it
        reaches but does not continue through their fan-in (used for
        combinational cone inspection by the detectors).
        """
        seen_nets: Set[str] = set()
        cells: Set[int] = set()
        stack = list(start_nets)
        while stack:
            net = stack.pop()
            if net in seen_nets:
                continue
            seen_nets.add(net)
            cell = self._driver.get(net)
            if cell is None:
                continue  # undriven net (e.g. dangling port name)
            if cell.cid in cells:
                continue
            cells.add(cell.cid)
            if stop_at_state and cell.kind in ("DFF", "SRAM", "SEQCTL"):
                continue
            stack.extend(cell.fanin)
        return cells

    def comb_cone(self, net: str, max_cells: int = 4000) -> List[Cell]:
        """The combinational cone driving ``net`` (stops at state cells).

        Returns cells in discovery order; raises if the cone explodes
        (which would indicate a synthesis bug).
        """
        ids = self.fanin_closure([net], stop_at_state=True)
        if len(ids) > max_cells:
            raise RuntimeError(f"cone of {net!r} has {len(ids)} cells")
        return [self.cells[i] for i in sorted(ids)]

    def stats(self) -> Dict[str, int]:
        """Cell counts by kind (weighted by ``count``)."""
        out: Dict[str, int] = {}
        for cell in self.cells:
            out[cell.kind] = out.get(cell.kind, 0) + cell.count
        return out

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[Cell]:
        return iter(self.cells)

    def __repr__(self) -> str:
        return f"Netlist({self.name!r}, cells={len(self.cells)})"
