"""Reusable design idioms: the control shapes accelerators repeat.

Every benchmark accelerator in this library is "an FSM that loops over
items in a scratchpad, spending data-dependent time in a few stages".
:class:`ItemLoop` packages that shape so new designs are a dozen lines
instead of a hundred — and every construct it emits uses the canonical
patterns the detectors, slicer and fast-forward rely on.

Example (a run-length codec whose per-item cost is 9 cycles per
symbol)::

    m = Module("rle")
    loop = ItemLoop(m, mem_name="runs", mem_depth=256, mem_width=16)
    length = loop.field("length", offset=0, bits=8)
    loop.wait_stage("EXPAND", length * 9 + 20)
    loop.finish()
"""

from __future__ import annotations

from typing import List

from .counter import down_counter, up_counter
from .expr import MemRead, Sig, wrap, ExprLike
from .fsm import Fsm
from .module import Module


class ItemLoop:
    """An FSM that iterates a scratchpad of item descriptors.

    Stages are added in order with :meth:`step_stage` (one cycle),
    :meth:`wait_stage` (a counter-backed wait) or
    :meth:`dynamic_stage` (an opaque serial stall); :meth:`finish`
    closes the loop (EMIT/DONE states, the item counter, the done
    expression) and finalizes the module.
    """

    def __init__(self, module: Module, mem_name: str, mem_depth: int,
                 mem_width: int = 32, fsm_name: str = "ctrl",
                 count_port: str = "n_items"):
        self.module = module
        self.mem_name = mem_name
        self.count = module.port(count_port, 16)
        module.memory(mem_name, depth=mem_depth, width=mem_width)
        self.idx = module.reg(f"{fsm_name}_idx", 16)
        self.word = module.wire(
            f"{mem_name}_word", MemRead(mem_name, self.idx), mem_width)
        self.fsm = Fsm(fsm_name, initial="IDLE")
        self._stages: List[tuple] = []
        self._finished = False

    def field(self, name: str, offset: int, bits: int) -> Sig:
        """Expose a packed descriptor field as a named wire."""
        mask = (1 << bits) - 1
        return self.module.wire(name, (self.word >> offset) & mask, bits)

    def step_stage(self, name: str) -> None:
        """A single-cycle stage (fetch, handshake, ...)."""
        self._check_open()
        self._stages.append(("step", name, None))

    def wait_stage(self, name: str, cycles: ExprLike,
                   feeds_control: bool = False) -> None:
        """A counter-backed wait of ``cycles`` (data-dependent OK)."""
        self._check_open()
        self._stages.append(
            ("wait", name, (wrap(cycles), feeds_control)))

    def dynamic_stage(self, name: str, cycles: ExprLike,
                      feeds_control: bool = False) -> None:
        """An opaque serial stall — invisible to feature extraction."""
        self._check_open()
        self._stages.append(
            ("dyn", name, (wrap(cycles), feeds_control)))

    def finish(self) -> Module:
        """Close the loop and finalize the module."""
        self._check_open()
        if not self._stages:
            raise ValueError("an ItemLoop needs at least one stage")
        self._finished = True
        fsm = self.fsm
        names = [name for _, name, _ in self._stages]
        fsm.transition("IDLE", names[0], cond=self.count > 0)
        for here, there in zip(names, names[1:]):
            fsm.transition(here, there)
        fsm.transition(names[-1], "EMIT")
        fsm.transition("EMIT", names[0],
                       cond=self.idx < (self.count - 1),
                       actions=[(self.idx.name, self.idx + 1)])
        fsm.transition("EMIT", "DONE",
                       actions=[(self.idx.name, self.idx + 1)])

        for i, (kind, name, payload) in enumerate(self._stages):
            if kind == "wait":
                cycles, feeds_control = payload
                counter = f"c_{name.lower()}"
                fsm.wait_state(name, counter,
                               feeds_control=feeds_control)
            elif kind == "dyn":
                cycles, feeds_control = payload
                fsm.dynamic_wait(name, cycles,
                                 feeds_control=feeds_control)
        self.module.fsm(fsm)
        for i, (kind, name, payload) in enumerate(self._stages):
            if kind != "wait":
                continue
            cycles, _ = payload
            if i == 0:
                load = fsm.entry_signal(name)
            else:
                load = fsm.arc_signal(names[i - 1], name)
            self.module.counter(down_counter(
                f"c_{name.lower()}", load_cond=load,
                load_value=cycles, width=24,
            ))
        self.module.counter(up_counter(
            "items_done",
            reset_cond=fsm.arc_signal("EMIT", "DONE"),
            enable=fsm.entry_signal("EMIT"),
            width=16,
        ))
        self.module.set_done(
            Sig(fsm.state_signal) == fsm.code_of("DONE"))
        return self.module.finalize()

    def _check_open(self) -> None:
        if self._finished:
            raise RuntimeError("ItemLoop already finished")
