"""Behavioural-to-structural lowering (the Yosys stand-in).

``synthesize`` turns a finalized :class:`Module` into a flat
:class:`Netlist` of cells.  The lowering is deterministic and emits the
canonical patterns the structural detectors look for:

* a register becomes a DFF fed by a priority mux chain folded from its
  update rules and FSM entry actions;
* a counter becomes DFF + SUB/ADD + load/tick muxes + a ``> 0`` compare;
* an FSM becomes a state DFF fed by a mux chain keyed on the
  per-transition criteria wires (which are ordinary wires, lowered like
  any other);
* a dynamic wait becomes an opaque SEQCTL macro holding the state —
  serial logic with no extractable counter, by construction.

Every cell carries provenance back to its behavioural construct so the
slicer can rebuild a runnable slice module from a retained cell set.
"""

from __future__ import annotations

from typing import Dict, Optional

from .counter import Counter
from .expr import BinOp, Const, Expr, MemRead, Mux, Sig, UnOp
from .module import Module
from .netlist import Netlist, Provenance

_BIN_KIND = {
    "add": "ADD", "sub": "SUB", "mul": "MUL", "div": "DIV", "mod": "MOD",
    "and": "AND", "or": "OR", "xor": "XOR", "shl": "SHL", "shr": "SHR",
    "eq": "EQ", "ne": "NE", "lt": "LT", "le": "LE", "gt": "GT", "ge": "GE",
    "min": "MIN", "max": "MAX",
}
_UN_KIND = {"not": "NOT", "bool": "BOOL", "neg": "SUB"}


class _Lowerer:
    """Holds per-module lowering state (const memo, net allocation)."""

    def __init__(self, module: Module, netlist: Netlist):
        self.module = module
        self.netlist = netlist
        self._const_nets: Dict[int, str] = {}

    def const(self, value: int, prov: Provenance) -> str:
        if value not in self._const_nets:
            tag = str(value) if value >= 0 else f"m{-value}"
            self._const_nets[value] = self.netlist.add(
                "CONST", (), out=f"__const_{tag}",
                provenance=Provenance("const", str(value)),
                param=value, width=max(value.bit_length(), 1),
            )
        return self._const_nets[value]

    def lower(self, expr: Expr, prov: Provenance,
              out: Optional[str] = None, width: int = 32) -> str:
        """Lower an expression tree; returns its output net."""
        nl = self.netlist
        if isinstance(expr, Const):
            net = self.const(expr.value, prov)
            if out is not None:
                net = nl.add("BUF", (net,), out=out, width=width,
                             provenance=prov)
            return net
        if isinstance(expr, Sig):
            if out is not None:
                return nl.add("BUF", (expr.name,), out=out, width=width,
                              provenance=prov)
            return expr.name
        if isinstance(expr, MemRead):
            idx = self.lower(expr.index, prov)
            return nl.add("MEMRD", (f"__mem__{expr.memory}", idx), out=out,
                          width=width, provenance=prov)
        if isinstance(expr, Mux):
            sel = self.lower(expr.sel, prov)
            a = self.lower(expr.a, prov)
            b = self.lower(expr.b, prov)
            return nl.add("MUX", (sel, a, b), out=out, width=width,
                          provenance=prov)
        if isinstance(expr, UnOp):
            a = self.lower(expr.a, prov)
            if expr.op == "neg":
                zero = self.const(0, prov)
                return nl.add("SUB", (zero, a), out=out, width=width,
                              provenance=prov)
            return nl.add(_UN_KIND[expr.op], (a,), out=out, width=1,
                          provenance=prov)
        if isinstance(expr, BinOp):
            a = self.lower(expr.a, prov)
            b = self.lower(expr.b, prov)
            kind = _BIN_KIND[expr.op]
            w = 1 if expr.op in ("eq", "ne", "lt", "le", "gt", "ge",
                                 "and", "or") else width
            param = 0
            bexp = expr.b
            if isinstance(bexp, Const):
                param = bexp.value
            return nl.add(kind, (a, b), out=out, width=w,
                          provenance=prov, param=param)
        raise TypeError(f"cannot lower expression {expr!r}")

    def mux(self, sel: str, a: str, b: str, prov: Provenance,
            out: Optional[str] = None, width: int = 32) -> str:
        return self.netlist.add("MUX", (sel, a, b), out=out, width=width,
                                provenance=prov)


def synthesize(module: Module) -> Netlist:
    """Lower a finalized behavioural module to a structural netlist."""
    if not module.finalized:
        raise ValueError(f"module {module.name} must be finalized first")
    nl = Netlist(module.name)
    lo = _Lowerer(module, nl)

    # Sources: ports and memories.
    for port in module.ports.values():
        nl.add("PORT", (), out=port.name, width=port.width,
               provenance=Provenance("port", port.name))
    for mem in module.memories.values():
        nl.add("SRAM", (), out=f"__mem__{mem.name}", width=mem.width,
               provenance=Provenance("memory", mem.name), param=mem.bits)

    # Identify which wires are FSM transition-criteria wires so they get
    # provenance pointing at the arc (for probing and diagnostics).
    arc_wires: Dict[str, Provenance] = {}
    for fsm in module.fsms.values():
        for t in fsm.transitions:
            arc_wires[fsm.transition_signal(t)] = Provenance(
                "fsm_arc", f"{fsm.name}:{t.index}",
                role=f"{t.src}->{t.dst}",
            )

    # Combinational wires, in topological order.
    for name in module.wire_order:
        wire = module.wires[name]
        prov = arc_wires.get(name, Provenance("wire", name))
        lo.lower(wire.expr, prov, out=name, width=wire.width)

    # Registers: fold updates (declaration order, later wins => outer
    # mux) then FSM entry actions (override updates => outermost).
    for reg in module.regs.values():
        prov = Provenance("reg", reg.name, "next")
        current = reg.name  # hold path
        for idx, upd in enumerate(module.updates):
            if upd.reg != reg.name:
                continue
            uprov = Provenance("update", f"{reg.name}:{idx}")
            value_net = lo.lower(upd.value, uprov, width=reg.width)
            cond_net = None
            if upd.cond is not None:
                cond_net = lo.lower(upd.cond, uprov)
            if upd.fsm is not None:
                fsm = module.fsms[upd.fsm]
                in_state = nl.add(
                    "EQ",
                    (fsm.state_signal,
                     lo.const(fsm.code_of(upd.state), uprov)),
                    width=1, provenance=uprov,
                )
                if cond_net is None:
                    cond_net = in_state
                else:
                    cond_net = nl.add("AND", (in_state, cond_net), width=1,
                                      provenance=uprov)
            if cond_net is None:
                cond_net = lo.const(1, uprov)
            current = lo.mux(cond_net, value_net, current, uprov,
                             width=reg.width)
        for fsm in module.fsms.values():
            for t in fsm.transitions:
                for target, value in t.actions:
                    if target != reg.name:
                        continue
                    aprov = Provenance(
                        "fsm_arc", f"{fsm.name}:{t.index}", role="action")
                    value_net = lo.lower(value, aprov, width=reg.width)
                    current = lo.mux(fsm.transition_signal(t), value_net,
                                     current, aprov, width=reg.width)
        nl.add("DFF", (current,), out=reg.name, width=reg.width,
               provenance=Provenance("reg", reg.name, "dff"))

    # Counters: canonical load/tick mux patterns.
    for counter in module.counters.values():
        _lower_counter(lo, counter)

    # FSM state registers: mux chain keyed on criteria wires; dynamic
    # waits contribute an opaque SEQCTL hold path.
    for fsm in module.fsms.values():
        prov = Provenance("fsm", fsm.name, "next")
        current = fsm.state_signal  # hold
        for t in reversed(fsm.transitions):
            dst_net = lo.const(fsm.code_of(t.dst), prov)
            current = lo.mux(fsm.transition_signal(t), dst_net, current,
                             Provenance("fsm", fsm.name,
                                        f"next_mux:{t.index}"),
                             width=16)
        if fsm.dynamic_waits:
            # The opaque serial-control macro: consumes the duration
            # operands and the state, produces the busy flag that gates
            # arcs out of dynamic-wait states.  No counter pattern
            # exists here by construction — feature extraction cannot
            # see these stalls.
            dur_nets = []
            for state, duration in fsm.dynamic_waits.items():
                dprov = Provenance("dynamic", f"{fsm.name}:{state}")
                dur_nets.append(lo.lower(duration, dprov))
            nl.add("SEQCTL", tuple(dur_nets) + (fsm.state_signal,),
                   out=fsm.dynbusy_signal, width=1,
                   provenance=Provenance("dynamic", fsm.name, "busy"))
        nl.add("DFF", (current,), out=fsm.state_signal, width=16,
               provenance=Provenance("fsm", fsm.name, "state_dff"))

    # Datapath blocks: a bag of priced cells plus a sink output.
    for block in module.datapath_blocks:
        outs = []
        for kind, count in sorted(block.cells.items()):
            if count <= 0:
                continue
            outs.append(nl.add(
                kind, tuple(block.inputs), width=block.width,
                provenance=Provenance("datapath", block.name, kind),
                count=count,
            ))
        nl.add("BUF", tuple(outs), out=block.output, width=block.width,
               provenance=Provenance("datapath", block.name, "sink"))

    # Done expression.
    lo.lower(module.done_expr, Provenance("done", module.name),
             out="__done", width=1)
    return nl


def _lower_counter(lo: _Lowerer, counter: Counter) -> None:
    nl = lo.netlist
    name = counter.name
    step_net = lo.const(counter.step, Provenance("counter", name, "step"))
    if counter.mode == "down":
        prov = Provenance("counter", name, "dec")
        dec = nl.add("SUB", (name, step_net), width=counter.width,
                     provenance=prov, param=counter.step)
        gt = nl.add("GT", (name, lo.const(0, prov)), width=1,
                    provenance=Provenance("counter", name, "gt0"))
        if counter.enable is not None:
            en = lo.lower(counter.enable,
                          Provenance("counter", name, "enable"))
            tick = nl.add("AND", (gt, en), width=1,
                          provenance=Provenance("counter", name, "tick"))
        else:
            tick = gt
        hold_mux = lo.mux(tick, dec, name,
                          Provenance("counter", name, "tick_mux"),
                          width=counter.width)
        load_cond = lo.lower(counter.load_cond,
                             Provenance("counter", name, "load_cond"))
        load_val = lo.lower(counter.load_value,
                            Provenance("counter", name, "load_value"),
                            width=counter.width)
        nxt = lo.mux(load_cond, load_val, hold_mux,
                     Provenance("counter", name, "load_mux"),
                     width=counter.width)
    else:
        prov = Provenance("counter", name, "inc")
        inc = nl.add("ADD", (name, step_net), width=counter.width,
                     provenance=prov, param=counter.step)
        if counter.enable is not None:
            en = lo.lower(counter.enable,
                          Provenance("counter", name, "enable"))
            hold_mux = lo.mux(en, inc, name,
                              Provenance("counter", name, "tick_mux"),
                              width=counter.width)
        else:
            hold_mux = inc
        reset_cond = lo.lower(counter.load_cond,
                              Provenance("counter", name, "load_cond"))
        zero = lo.const(0, Provenance("counter", name, "zero"))
        nxt = lo.mux(reset_cond, zero, hold_mux,
                     Provenance("counter", name, "load_mux"),
                     width=counter.width)
    nl.add("DFF", (nxt,), out=name, width=counter.width,
           provenance=Provenance("counter", name, "dff"))
