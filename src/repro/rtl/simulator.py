"""Cycle-accurate event-driven simulator for the behavioural RTL IR.

The simulator executes one cycle at a time with two-phase semantics
(evaluate everything against the pre-cycle state, then commit), exactly
like synchronous hardware.  Its one optimization is *fast-forwarding*:
when every FSM is either parked in a wait state or provably quiescent,
and nothing can change except counters counting, the simulator jumps
ahead to the first cycle where a countdown expires.  The jump is exact
— the committed state after the jump is identical to stepping cycle by
cycle — which the test suite verifies by running both ways.

Soundness of the jump rests on a small static analysis: a guard may
reference a counting counter only through ``counter == 0`` / ``!= 0`` /
``> 0`` shapes.  Those are constant during the countdown stretch — a
down counter stays strictly positive until exactly the cycle the jump
stops at, and a ticking up counter that is already positive stays
positive.  Guards that read a counting counter any other way veto the
jump, as do any update rules, counter loads, or resets that would fire.

This is what makes the paper's millisecond-scale jobs (millions of
cycles) tractable in Python: a job becomes a few hundred FSM steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..obs import get_observer
from .expr import BinOp, Const, Expr, Sig
from .fsm import Fsm, Transition
from .module import Module
from .signals import Update


def record_sim_run(backend: str, cycles: int, wall_s: float,
                   ff_jumps: int) -> None:
    """Publish per-run ``sim.*`` kernel metrics (no-op when obs is off).

    Counters per backend: ``runs``, ``cycles``, ``wall_s`` and
    ``ff_jumps`` — enough for ``--profile`` footers to derive
    cycles/sec and the fast-forward hit rate per kernel.
    """
    obs = get_observer()
    if obs is None:
        return
    metrics = obs.metrics
    metrics.inc(f"sim.{backend}.runs")
    metrics.inc(f"sim.{backend}.cycles", float(cycles))
    metrics.inc(f"sim.{backend}.wall_s", wall_s)
    metrics.inc(f"sim.{backend}.ff_jumps", float(ff_jumps))


class Listener:
    """Instrumentation callback interface (all methods optional)."""

    #: Set True to receive :meth:`on_cycle` after every committed cycle
    #: (and once after each fast-forward jump).  Off by default — the
    #: per-cycle callback costs real time on long runs.
    wants_cycles: bool = False

    def on_transition(self, fsm: str, src: str, dst: str) -> None:
        """An FSM arc fired."""
        pass

    def on_counter_load(self, counter: str, value: int) -> None:
        """A down counter was (re)loaded."""
        pass

    def on_counter_reset(self, counter: str, value: int) -> None:
        """An up counter was reset (value is pre-reset)."""
        pass

    def on_cycle(self, cycle: int, state: Dict[str, object]) -> None:
        """Committed architectural state at the end of ``cycle``."""
        pass


@dataclass
class RunResult:
    """Outcome of simulating one job."""

    cycles: int
    finished: bool
    state_cycles: Dict[Tuple[str, str], int] = field(default_factory=dict)

    def cycles_in(self, fsm: str, state: str) -> int:
        """Cycles spent in one (fsm, state)."""
        return self.state_cycles.get((fsm, state), 0)


class _LazyEnv(dict):
    """Environment that computes combinational wires on demand.

    One instance is reused for an entire run: ``new_cycle`` drops the
    values memoized during the previous cycle instead of rebuilding the
    environment from a full copy of the state dict (the old behaviour
    cost O(|state|) per cycle).  A missing key falls back to the
    architectural state first, then computes the named wire; either way
    the value is cached for the remainder of the cycle.
    """

    __slots__ = ("_state", "_wires")

    def __init__(self, state: dict, wires: dict):
        super().__init__()
        self._state = state
        self._wires = wires

    def new_cycle(self) -> None:
        """Invalidate everything memoized during the previous cycle."""
        self.clear()

    def __missing__(self, key: str) -> int:
        state = self._state
        if key in state:
            value = state[key]
        else:
            value = self._wires[key].expr.eval(self)
        self[key] = value
        return value


_ZERO_SAFE_OPS = ("eq", "ne", "gt")


def _zero_compared_signal(expr: Expr) -> Optional[str]:
    """Return the signal name if ``expr`` is ``sig (==|!=|>) 0``."""
    if isinstance(expr, BinOp) and expr.op in _ZERO_SAFE_OPS:
        a, b = expr.a, expr.b
        if isinstance(a, Sig) and isinstance(b, Const) and b.value == 0:
            return a.name
        if expr.op in ("eq", "ne"):
            if isinstance(b, Sig) and isinstance(a, Const) and a.value == 0:
                return b.name
    return None


#: (unstable counter refs, zero-compared counter refs)
DepPair = Tuple[FrozenSet[str], FrozenSet[str]]

_EMPTY_PAIR: DepPair = (frozenset(), frozenset())


class _DepAnalysis:
    """Classifies how guard expressions depend on counters.

    ``analyze`` returns two sets of counter names: those referenced in
    arbitrary ways (*unstable* during a countdown stretch) and those
    referenced only through zero-compares (*stable* for down counters,
    and for up counters that are already positive).
    """

    def __init__(self, module: Module):
        self._wires = module.wires
        self._counters = frozenset(module.counters)
        self._wire_memo: Dict[str, DepPair] = {}

    def analyze(self, expr: Optional[Expr]) -> DepPair:
        if expr is None:
            return _EMPTY_PAIR
        return self._visit(expr)

    def _visit(self, expr: Expr) -> DepPair:
        original = getattr(expr, "original", None)
        if original is not None:
            # A CompiledExpr wrapper: classify the real tree, so the
            # compiled backend fast-forwards exactly as often as the
            # interpreter (a wrapped ``counter == 0`` is still a
            # zero-compare, not an arbitrary reference).
            expr = original
        zeroed = _zero_compared_signal(expr)
        if zeroed is not None:
            if zeroed in self._counters:
                return (frozenset(), frozenset((zeroed,)))
            if zeroed in self._wires:
                return self._wire(zeroed)
            return _EMPTY_PAIR
        if isinstance(expr, Sig):
            name = expr.name
            if name in self._counters:
                return (frozenset((name,)), frozenset())
            if name in self._wires:
                return self._wire(name)
            return _EMPTY_PAIR
        unstable: Set[str] = set()
        zerocmp: Set[str] = set()
        for child in expr.children():
            u, z = self._visit(child)
            unstable |= u
            zerocmp |= z
        return (frozenset(unstable), frozenset(zerocmp))

    def _wire(self, name: str) -> DepPair:
        if name not in self._wire_memo:
            self._wire_memo[name] = _EMPTY_PAIR  # cycle guard
            self._wire_memo[name] = self._visit(self._wires[name].expr)
        return self._wire_memo[name]


class Simulation:
    """Simulates a finalized :class:`Module`.

    Args:
        module: the design (must be finalized).
        listener: optional instrumentation hook.
        fast_forward: enable bulk wait skipping (default on; exact).
        elide: set of ``(fsm, state)`` wait/dynamic-wait states whose
            stalls are skipped entirely — used to execute hardware
            slices after wait-state elision.
        track_state_cycles: record per-(fsm, state) cycle counts for
            activity-based energy accounting.
    """

    def __init__(self, module: Module, listener: Optional[Listener] = None,
                 fast_forward: bool = True,
                 elide: Optional[Set[Tuple[str, str]]] = None,
                 track_state_cycles: bool = True):
        if not module.finalized:
            raise ValueError(f"module {module.name} must be finalized first")
        self.module = module
        self.listener = listener
        self.fast_forward = fast_forward
        self.elide = frozenset(elide or ())
        self.track_state_cycles = track_state_cycles
        # Compiled modules carry CompiledExpr trees everywhere; the
        # done expression is the cheapest reliable tell.
        self._backend_name = (
            "compiled"
            if getattr(module.done_expr, "original", None) is not None
            else "interp"
        )
        self._build_static()
        self.reset()

    # -- static precomputation ---------------------------------------------
    def _build_static(self) -> None:
        m = self.module
        deps = _DepAnalysis(m)

        # Hoisted iteration lists: ``dict.values()`` re-materialized
        # every cycle shows up in profiles on million-cycle runs.
        self._fsms: List[Fsm] = list(m.fsms.values())
        self._counters: List = list(m.counters.values())

        self._arc_table: Dict[str, Dict[str, List[Transition]]] = {}
        self._arc_deps: Dict[Tuple[str, int], DepPair] = {}
        for fsm in m.fsms.values():
            table: Dict[str, List[Transition]] = {}
            for t in fsm.transitions:
                table.setdefault(t.src, []).append(t)
                self._arc_deps[(fsm.name, t.index)] = deps.analyze(t.cond)
            self._arc_table[fsm.name] = table

        self._global_updates: List[Update] = []
        self._state_updates: Dict[Tuple[str, str], List[Update]] = {}
        for upd in m.updates:
            if upd.fsm is None:
                self._global_updates.append(upd)
            else:
                self._state_updates.setdefault(
                    (upd.fsm, upd.state), []).append(upd)

        self._down = [c for c in m.counters.values() if c.mode == "down"]
        self._up = [c for c in m.counters.values() if c.mode == "up"]

        self._update_deps = [deps.analyze(u.cond) for u in m.updates]
        self._counter_deps = {}
        for c in m.counters.values():
            lu, lz = deps.analyze(c.load_cond)
            eu, ez = deps.analyze(c.enable)
            self._counter_deps[c.name] = (lu | eu, lz | ez)
        self._done_deps = deps.analyze(m.done_expr)

    # -- lifecycle -----------------------------------------------------------
    def reset(self) -> None:
        """Return all architectural state to power-on values."""
        m = self.module
        self.state: Dict[str, object] = {}
        for port in m.ports.values():
            self.state[port.name] = 0
        for reg in m.regs.values():
            self.state[reg.name] = reg.init
        for counter in m.counters.values():
            self.state[counter.name] = 0
        for fsm in m.fsms.values():
            self.state[fsm.state_signal] = fsm.code_of(fsm.initial)
        for mem in m.memories.values():
            self.state[f"__mem__{mem.name}"] = []
        for block in m.datapath_blocks:
            self.state[block.output] = 0
        self._fsm_state: Dict[str, str] = {
            fsm.name: fsm.initial for fsm in m.fsms.values()
        }
        self._dyn_stall: Dict[str, int] = {f: 0 for f in m.fsms}
        for fsm in m.fsms.values():
            if fsm.dynamic_waits:
                self.state[fsm.dynbusy_signal] = 0
        self.cycle = 0
        self.ff_jumps = 0
        self.state_cycles: Dict[Tuple[str, str], int] = {}

    def load(self, inputs: Optional[Dict[str, int]] = None,
             memories: Optional[Dict[str, Sequence[int]]] = None,
             ignore_unknown: bool = False) -> None:
        """Load one job: set input ports and scratchpad contents.

        ``ignore_unknown`` silently skips ports/memories the module
        does not have — used when feeding a full job into a hardware
        slice from which some inputs were sliced away.
        """
        for name, value in (inputs or {}).items():
            if name not in self.module.ports:
                if ignore_unknown:
                    continue
                raise KeyError(f"unknown port {name!r}")
            self.state[name] = int(value)
        for name, data in (memories or {}).items():
            if name not in self.module.memories:
                if ignore_unknown:
                    continue
                raise KeyError(f"unknown memory {name!r}")
            self.state[f"__mem__{name}"] = list(data)

    # -- execution -------------------------------------------------------------
    def run(self, max_cycles: int = 200_000_000) -> RunResult:
        """Run until the module's done expression holds (or ``max_cycles``)."""
        done_expr = self.module.done_expr
        fsms = self._fsms
        env = _LazyEnv(self.state, self.module.wires)
        start_cycle = self.cycle
        start_jumps = self.ff_jumps
        start = perf_counter()
        finished = False

        while self.cycle < max_cycles:
            env.new_cycle()
            if done_expr.eval(env):
                finished = True
                break

            # Phase 1: FSM arc selection (against pre-cycle state).
            fired: List[Tuple[Fsm, Transition]] = []
            for fsm in fsms:
                current = self._fsm_state[fsm.name]
                if (fsm.name, current) not in self.elide:
                    counter = fsm.wait_states.get(current)
                    if counter is not None and env[counter] > 0:
                        continue  # parked on a wait counter
                    if (current in fsm.dynamic_waits
                            and self._dyn_stall[fsm.name] > 0):
                        continue  # parked on opaque serial logic
                for t in self._arc_table[fsm.name].get(current, ()):
                    if t.cond is None or t.cond.eval(env):
                        fired.append((fsm, t))
                        break

            if not fired and self.fast_forward and self._try_skip(env):
                continue

            self._step_once(env, fired)

        record_sim_run(self._backend_name, self.cycle - start_cycle,
                       perf_counter() - start,
                       self.ff_jumps - start_jumps)
        return RunResult(self.cycle, finished, dict(self.state_cycles))

    def _step_once(self, env: _LazyEnv,
                   fired: List[Tuple[Fsm, Transition]]) -> None:
        """Execute exactly one cycle given the already-selected arcs."""
        m = self.module
        listener = self.listener
        pending: Dict[str, int] = {}

        # Phase 2a: counters.
        counter_next: Dict[str, int] = {}
        for c in self._down:
            value = self.state[c.name]
            if c.load_cond.eval(env):
                loaded = c.load_value.eval(env) & c.mask
                counter_next[c.name] = loaded
                if listener is not None:
                    listener.on_counter_load(c.name, loaded)
            elif value > 0 and (c.enable is None or c.enable.eval(env)):
                nxt = value - c.step
                counter_next[c.name] = nxt if nxt > 0 else 0
        for c in self._up:
            value = self.state[c.name]
            if c.load_cond is not None and c.load_cond.eval(env):
                counter_next[c.name] = 0
                if listener is not None:
                    listener.on_counter_reset(c.name, value)
            elif c.enable is None or c.enable.eval(env):
                counter_next[c.name] = (value + c.step) & c.mask

        # Phase 2b: update rules (declaration order; later rules win).
        for upd in self._global_updates:
            if upd.cond is None or upd.cond.eval(env):
                pending[upd.reg] = upd.value.eval(env)
        for fsm in self._fsms:
            current = self._fsm_state[fsm.name]
            for upd in self._state_updates.get((fsm.name, current), ()):
                if upd.cond is None or upd.cond.eval(env):
                    pending[upd.reg] = upd.value.eval(env)

        # Phase 2c: FSM arcs and their entry actions (override updates).
        fsm_next: Dict[str, str] = {}
        dyn_next: Dict[str, int] = {}
        for fsm, t in fired:
            fsm_next[fsm.name] = t.dst
            for reg, value in t.actions:
                pending[reg] = value.eval(env)
            if t.dst in fsm.dynamic_waits:
                if (fsm.name, t.dst) in self.elide:
                    dyn_next[fsm.name] = 0
                else:
                    duration = fsm.dynamic_waits[t.dst].eval(env)
                    dyn_next[fsm.name] = max(int(duration), 0)
            if listener is not None:
                listener.on_transition(fsm.name, t.src, t.dst)

        # Phase 3: commit.
        if self.track_state_cycles:
            cells = self.state_cycles
            for fsm in self._fsms:
                key = (fsm.name, self._fsm_state[fsm.name])
                cells[key] = cells.get(key, 0) + 1
        for name, value in counter_next.items():
            self.state[name] = value
        for reg, value in pending.items():
            self.state[reg] = value & m.regs[reg].mask
        for fsm_name, stall in dyn_next.items():
            self._dyn_stall[fsm_name] = stall
        for fsm in self._fsms:
            name = fsm.name
            if name in fsm_next:
                self._fsm_state[name] = fsm_next[name]
                self.state[fsm.state_signal] = fsm.code_of(fsm_next[name])
            elif name not in dyn_next and self._dyn_stall[name] > 0:
                self._dyn_stall[name] -= 1  # parked in a dynamic wait
            if fsm.dynamic_waits:
                self.state[fsm.dynbusy_signal] = int(
                    self._dyn_stall[name] > 0)
        self.cycle += 1
        if listener is not None and listener.wants_cycles:
            listener.on_cycle(self.cycle, self.state)

    # -- fast-forward -------------------------------------------------------
    def _try_skip(self, env: _LazyEnv) -> bool:
        """Jump over a provably-inert stretch of stalled cycles.

        Called only when no FSM arc fires this cycle.  Returns True if
        a jump was committed.
        """
        m = self.module
        remaining: List[int] = []
        quiescent: List[Fsm] = []  # FSMs idle for non-wait reasons

        # Which FSMs are parked, and on what.
        for fsm in self._fsms:
            current = self._fsm_state[fsm.name]
            if (fsm.name, current) not in self.elide:
                counter_name = fsm.wait_states.get(current)
                if counter_name is not None and self.state[counter_name] > 0:
                    continue  # ETA comes from the counting-counter scan
                if (current in fsm.dynamic_waits
                        and self._dyn_stall[fsm.name] > 0):
                    remaining.append(self._dyn_stall[fsm.name])
                    continue
            quiescent.append(fsm)

        # Every counter that advances this cycle joins the changing set.
        changing: Set[str] = set()
        counting_down: List = []
        ticking_up: List = []
        zero_up: Set[str] = set()  # ticking up counters currently at zero
        for c in self._down:
            value = self.state[c.name]
            if value > 0 and (c.enable is None or c.enable.eval(env)):
                counting_down.append(c)
                changing.add(c.name)
                remaining.append(-(-value // c.step))  # ceil: cycles to 0
        for c in self._up:
            if c.load_cond is not None and c.load_cond.eval(env):
                return False  # a reset would fire this cycle
            if c.enable is None or c.enable.eval(env):
                ticking_up.append(c)
                changing.add(c.name)
                value = self.state[c.name]
                if value == 0:
                    zero_up.add(c.name)
                remaining.append((c.mask - value) // c.step)  # wrap bound

        # A parked FSM whose wait counter is not actually counting has
        # no ETA; bail rather than guess.
        for fsm in self._fsms:
            current = self._fsm_state[fsm.name]
            if (fsm.name, current) in self.elide:
                continue
            counter_name = fsm.wait_states.get(current)
            if (counter_name is not None and self.state[counter_name] > 0
                    and counter_name not in changing):
                return False

        if not remaining:
            return False

        def vetoed(dep_pair: DepPair) -> bool:
            unstable, zerocmp = dep_pair
            if unstable & changing:
                return True
            # zero-compares are stable except on an up counter leaving 0.
            return bool(zerocmp & zero_up)

        for fsm in quiescent:
            current = self._fsm_state[fsm.name]
            for t in self._arc_table[fsm.name].get(current, ()):
                if vetoed(self._arc_deps[(fsm.name, t.index)]):
                    return False
        for c in self._counters:
            if vetoed(self._counter_deps[c.name]):
                return False
        for c in self._down:
            if c.name not in changing and c.load_cond.eval(env):
                return False  # a load would fire this cycle
        for dep_pair, upd in zip(self._update_deps, m.updates):
            if vetoed(dep_pair):
                return False
            if upd.fsm is not None and self._fsm_state[upd.fsm] != upd.state:
                continue
            if upd.cond is None or upd.cond.eval(env):
                return False  # a register write would fire this cycle
        if vetoed(self._done_deps):
            return False

        k = min(remaining)
        if k <= 1:
            return False  # not worth a bulk jump; step normally

        # Commit the jump.
        for c in counting_down:
            value = self.state[c.name] - k * c.step
            self.state[c.name] = value if value > 0 else 0
        for c in ticking_up:
            self.state[c.name] = (self.state[c.name] + k * c.step) & c.mask
        for fsm in self._fsms:
            current = self._fsm_state[fsm.name]
            if (current in fsm.dynamic_waits
                    and (fsm.name, current) not in self.elide
                    and self._dyn_stall[fsm.name] > 0):
                self._dyn_stall[fsm.name] -= k
            if fsm.dynamic_waits:
                self.state[fsm.dynbusy_signal] = int(
                    self._dyn_stall[fsm.name] > 0)
            if self.track_state_cycles:
                key = (fsm.name, current)
                self.state_cycles[key] = self.state_cycles.get(key, 0) + k
        self.cycle += k
        self.ff_jumps += 1
        if self.listener is not None and self.listener.wants_cycles:
            self.listener.on_cycle(self.cycle, self.state)
        return True
