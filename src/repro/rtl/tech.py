"""Technology libraries: cell-level area, power and FPGA resources.

This is the stand-in for the paper's gate-level modelling flow
(Synopsys DC/ICC/PrimeTime with TSMC 65 nm, and Vivado on Kintex-7).
Per-cell coefficients are calibrated so that synthesized benchmark
accelerators land in the area/power regime the paper reports (Table 4:
tens of thousands to ~660k um^2; ~100 mW-class dynamic power), which is
what matters for the *relative* quantities the evaluation uses
(slice-vs-full area, energy normalized to baseline).

ASIC energy model per cell: a switching energy per active cycle at the
nominal 1 V (scales with V^2 when DVFS is applied — handled by
``repro.dvfs.energy``) and a leakage power at 1 V.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .netlist import Cell, Netlist

# -- ASIC (65 nm-class) -----------------------------------------------------

#: Area in um^2 for a cell of width w.  MUL grows quadratically (array
#: multiplier), SRAM per bit plus macro overhead, everything else linear.
_ASIC_AREA_PER_BIT: Dict[str, float] = {
    "DFF": 6.0,
    "ADD": 4.0,
    "SUB": 4.0,
    "DIV": 14.0,
    "MOD": 14.0,
    "AND": 1.4,
    "OR": 1.4,
    "XOR": 1.8,
    "SHL": 3.0,
    "SHR": 3.0,
    "EQ": 2.2,
    "NE": 2.2,
    "LT": 2.6,
    "LE": 2.6,
    "GT": 2.6,
    "GE": 2.6,
    "MIN": 4.6,
    "MAX": 4.6,
    "MUX": 2.0,
    "NOT": 0.8,
    "BOOL": 0.8,
    "BUF": 0.6,
    "SEQCTL": 30.0,
    "MEMRD": 3.0,  # address decode / read port mux share
}
_ASIC_MUL_COEFF = 1.1          # um^2 per bit^2
_ASIC_SRAM_PER_BIT = 0.7       # um^2 per bit
_ASIC_SRAM_OVERHEAD = 900.0    # um^2 per macro

#: Switching energy at 1 V in femtojoules per um^2 per active cycle,
#: already including an average activity factor.
_ASIC_SWITCH_FJ_PER_UM2 = 0.80
#: SRAM macros toggle far less of their area per access.
_ASIC_SRAM_ACTIVITY = 0.08
#: Leakage power density at 1 V in microwatts per um^2 (65 nm-class).
_ASIC_LEAK_UW_PER_UM2 = 0.040


def asic_cell_area(cell: Cell) -> float:
    """ASIC area of one cell instance in um^2 (includes ``count``)."""
    if cell.kind in ("PORT", "CONST"):
        return 0.0
    if cell.kind == "SRAM":
        bits = cell.param  # synthesizer stores total bits in param
        unit = _ASIC_SRAM_OVERHEAD + _ASIC_SRAM_PER_BIT * bits
    elif cell.kind == "MUL":
        unit = _ASIC_MUL_COEFF * cell.width * cell.width
    else:
        unit = _ASIC_AREA_PER_BIT[cell.kind] * cell.width
    return unit * cell.count


def asic_area(netlist: Netlist) -> float:
    """Total ASIC area of a netlist in um^2."""
    return sum(asic_cell_area(cell) for cell in netlist)


def asic_switch_energy_per_cycle(cell: Cell) -> float:
    """Switching energy in joules per *active* cycle at 1 V."""
    area = asic_cell_area(cell)
    factor = _ASIC_SRAM_ACTIVITY if cell.kind == "SRAM" else 1.0
    return area * _ASIC_SWITCH_FJ_PER_UM2 * factor * 1e-15


def asic_leakage_power(area_um2: float) -> float:
    """Leakage power in watts at 1 V for a block of ``area_um2``."""
    return area_um2 * _ASIC_LEAK_UW_PER_UM2 * 1e-6


# -- FPGA (Kintex-7-class) ---------------------------------------------------

@dataclass(frozen=True)
class FpgaResources:
    """LUT/FF/DSP/BRAM usage of a design or slice."""

    luts: float = 0.0
    ffs: float = 0.0
    dsps: float = 0.0
    brams: float = 0.0

    def __add__(self, other: "FpgaResources") -> "FpgaResources":
        return FpgaResources(
            self.luts + other.luts,
            self.ffs + other.ffs,
            self.dsps + other.dsps,
            self.brams + other.brams,
        )

    def fraction_of(self, total: "FpgaResources") -> float:
        """Average utilization fraction across used resource types.

        Matches the paper's Fig 17 metric ("average of LUT/DSP/BRAM").
        """
        fractions = []
        for mine, theirs in ((self.luts, total.luts),
                             (self.dsps, total.dsps),
                             (self.brams, total.brams)):
            if theirs > 0:
                fractions.append(mine / theirs)
        if not fractions:
            return 0.0
        return sum(fractions) / len(fractions)


_FPGA_LUTS_PER_BIT: Dict[str, float] = {
    "ADD": 1.0, "SUB": 1.0, "DIV": 6.0, "MOD": 6.0,
    "AND": 0.5, "OR": 0.5, "XOR": 0.5,
    "SHL": 1.5, "SHR": 1.5,
    "EQ": 0.5, "NE": 0.5, "LT": 0.8, "LE": 0.8, "GT": 0.8, "GE": 0.8,
    "MIN": 1.3, "MAX": 1.3,
    "MUX": 0.5, "NOT": 0.2, "BOOL": 0.2, "BUF": 0.1,
    "SEQCTL": 8.0, "MEMRD": 1.0,
}
_FPGA_BRAM_BITS = 18 * 1024
_FPGA_DSP_WIDTH = 18


def fpga_cell_resources(cell: Cell) -> FpgaResources:
    """FPGA resources of one cell instance (includes ``count``)."""
    n = cell.count
    if cell.kind in ("PORT", "CONST"):
        return FpgaResources()
    if cell.kind == "DFF":
        return FpgaResources(ffs=cell.width * n)
    if cell.kind == "SRAM":
        brams = max(1.0, cell.param / _FPGA_BRAM_BITS)
        return FpgaResources(brams=brams * n)
    if cell.kind == "MUL":
        dsps = max(1.0, (cell.width + _FPGA_DSP_WIDTH - 1) // _FPGA_DSP_WIDTH)
        return FpgaResources(dsps=dsps * n)
    luts = _FPGA_LUTS_PER_BIT[cell.kind] * cell.width
    return FpgaResources(luts=luts * n)


def fpga_resources(netlist: Netlist) -> FpgaResources:
    """Total FPGA resources of a netlist."""
    total = FpgaResources()
    for cell in netlist:
        total = total + fpga_cell_resources(cell)
    return total


#: FPGA dynamic energy at 1 V: joules per active cycle per "resource
#: unit" where a LUT counts 1, an FF 0.5, a DSP 40, a BRAM 60.  FPGAs
#: burn roughly an order of magnitude more energy per operation than
#: ASICs, which these coefficients reflect.
_FPGA_SWITCH_FJ = {"lut": 9.0, "ff": 4.5, "dsp": 360.0, "bram": 540.0}
#: FPGA static power per resource unit at 1 V (watts).
_FPGA_LEAK_W = {"lut": 4e-7, "ff": 2e-7, "dsp": 1.6e-5, "bram": 2.4e-5}


def fpga_switch_energy_per_cycle(res: FpgaResources) -> float:
    """Switching energy in joules per active cycle at 1 V."""
    return (
        res.luts * _FPGA_SWITCH_FJ["lut"]
        + res.ffs * _FPGA_SWITCH_FJ["ff"]
        + res.dsps * _FPGA_SWITCH_FJ["dsp"]
        + res.brams * _FPGA_SWITCH_FJ["bram"]
    ) * 1e-15


def fpga_leakage_power(res: FpgaResources) -> float:
    """Static power in watts at 1 V."""
    return (
        res.luts * _FPGA_LEAK_W["lut"]
        + res.ffs * _FPGA_LEAK_W["ff"]
        + res.dsps * _FPGA_LEAK_W["dsp"]
        + res.brams * _FPGA_LEAK_W["bram"]
    )
