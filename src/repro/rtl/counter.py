"""Behavioural counter construct.

Counters are the paper's second feature source (Sec. 3.2): a control
unit loads a counter with the latency of a computation and decrements it
each cycle; the load count (IC), average initial value (AIV) and average
pre-reset value (APV) summarize how much time the computation consumed.

Two flavours exist:

* ``down`` — loaded with a value, decrements to zero.  The canonical
  "wait this many cycles" idiom; FSM wait states reference one of these.
* ``up`` — counts up while enabled and is reset by a condition; its
  pre-reset value is the interesting quantity (APV).

Synthesis lowers counters to DFF + ADD/SUB + MUX + CMP cells so the
structural counter detector has a realistic pattern to find.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .expr import Expr, wrap, ExprLike
from .signals import mask_for


@dataclass(frozen=True)
class Counter:
    """A hardware counter.

    Attributes:
        name: signal name of the counter value.
        width: bit width (value is masked on load).
        mode: ``"down"`` or ``"up"``.
        load_cond: when truthy, the counter is (re)loaded (down counters)
            or reset to zero (up counters treat this as the reset).
        load_value: value loaded on ``load_cond`` (down counters only;
            up counters always reset to zero).
        enable: counting happens only while this is truthy (default: a
            down counter counts whenever nonzero; an up counter counts
            every cycle).
        step: increment/decrement per enabled cycle (default 1).
    """

    name: str
    width: int = 32
    mode: str = "down"
    load_cond: Optional[Expr] = None
    load_value: Optional[Expr] = None
    enable: Optional[Expr] = None
    step: int = 1

    def __post_init__(self) -> None:
        mask_for(self.width)
        if self.mode not in ("down", "up"):
            raise ValueError(f"counter mode must be down/up, got {self.mode!r}")
        if self.mode == "down" and self.load_value is None:
            raise ValueError("down counters need a load_value")
        if self.mode == "down" and self.load_cond is None:
            raise ValueError("down counters need a load_cond")
        if self.step <= 0:
            raise ValueError(f"counter step must be positive, got {self.step}")

    @property
    def mask(self) -> int:
        return mask_for(self.width)


def down_counter(name: str, load_cond: ExprLike, load_value: ExprLike,
                 width: int = 32, enable: Optional[ExprLike] = None,
                 step: int = 1) -> Counter:
    """A decrementing wait counter (the common idiom)."""
    return Counter(
        name=name,
        width=width,
        mode="down",
        load_cond=wrap(load_cond),
        load_value=wrap(load_value),
        enable=None if enable is None else wrap(enable),
        step=step,
    )


def up_counter(name: str, reset_cond: ExprLike, width: int = 32,
               enable: Optional[ExprLike] = None, step: int = 1) -> Counter:
    """An incrementing counter reset by ``reset_cond``."""
    return Counter(
        name=name,
        width=width,
        mode="up",
        load_cond=wrap(reset_cond),
        load_value=None,
        enable=None if enable is None else wrap(enable),
        step=step,
    )
