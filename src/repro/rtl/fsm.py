"""Finite State Machine construct for the behavioural RTL IR.

FSMs are the paper's primary feature source: state-transition counts
(STC) summarize the control decisions a job's input induced (Sec. 3.2).

Semantics (uniform, no special cases):

* The FSM owns a state register ``<name>__state``.
* Each cycle, the transitions out of the current state are evaluated in
  declaration order; the first whose condition holds is taken.
* A *wait state* is a state tied to a down counter; its outgoing
  transitions are automatically gated with ``counter == 0`` so the FSM
  sits in the state until the counter expires.  This is the canonical
  "computation takes N cycles" idiom, and is what the simulator can
  fast-forward and the slicer's wait-elision pass can remove.
* A *dynamic wait state* stalls for a number of cycles computed from an
  expression at entry — e.g. a serial Huffman decode whose duration is
  visible only bit-by-bit.  Structurally this lowers to opaque serial
  logic with no extractable counter, so the feature detector cannot see
  its duration (this reproduces the paper's djpeg error source).

On taking a transition, its *entry actions* (register assignments,
evaluated against the pre-transition environment) are committed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .expr import BinOp, Const, Expr, Sig, UnOp, wrap, ExprLike

Action = Tuple[str, Expr]


@dataclass(frozen=True)
class Transition:
    """One arc of the FSM transition table."""

    src: str
    dst: str
    cond: Optional[Expr]  # None == always taken (default arc)
    actions: Tuple[Action, ...] = ()
    index: int = 0  # global declaration index within the FSM


class Fsm:
    """A finite state machine with named states.

    States are registered explicitly via :meth:`add_state` or implicitly
    by being mentioned in a transition.  State codes are assigned in
    registration order.
    """

    def __init__(self, name: str, initial: str):
        if not name:
            raise ValueError("FSM name must be non-empty")
        self.name = name
        self.initial = initial
        self._states: Dict[str, int] = {}
        self.transitions: List[Transition] = []
        self.wait_states: Dict[str, str] = {}  # state -> down counter name
        self.control_waits: set = set()  # wait states whose work feeds control
        self.dynamic_waits: Dict[str, Expr] = {}  # state -> duration expr
        self.control_dynamic: set = set()  # dynamic waits feeding control
        self.add_state(initial)

    # -- construction --------------------------------------------------
    def add_state(self, state: str) -> None:
        """Register a state (codes assigned in order)."""
        if not state:
            raise ValueError("state name must be non-empty")
        if state not in self._states:
            self._states[state] = len(self._states)

    def transition(self, src: str, dst: str,
                   cond: Optional[ExprLike] = None,
                   actions: Sequence[Tuple[str, ExprLike]] = ()) -> None:
        """Add an arc ``src -> dst`` taken when ``cond`` holds.

        ``cond=None`` adds a default arc (always taken once reached in
        priority order).  ``actions`` are (register, value) pairs
        committed when the arc fires.
        """
        self.add_state(src)
        self.add_state(dst)
        wrapped = tuple((reg, wrap(value)) for reg, value in actions)
        self.transitions.append(Transition(
            src=src,
            dst=dst,
            cond=None if cond is None else wrap(cond),
            actions=wrapped,
            index=len(self.transitions),
        ))

    def wait_state(self, state: str, counter: str,
                   feeds_control: bool = False) -> None:
        """Declare ``state`` as a wait on down counter ``counter``.

        ``feeds_control=True`` marks waits whose underlying work
        produces values the control logic consumes (e.g. a serial
        bitstream parser filling descriptor registers).  The slicer must
        retain such waits; ordinary waits (pure datapath computation)
        are elidable.
        """
        self.add_state(state)
        if state in self.dynamic_waits:
            raise ValueError(f"state {state} is already a dynamic wait")
        self.wait_states[state] = counter
        if feeds_control:
            self.control_waits.add(state)

    def dynamic_wait(self, state: str, cycles: ExprLike,
                     feeds_control: bool = False) -> None:
        """Declare ``state`` as a data-dependent stall of ``cycles``.

        The expression is evaluated once on entry.  No counter exists
        structurally, so the duration is invisible to feature
        extraction.  ``feeds_control=True`` marks stalls whose serial
        work produces values downstream control consumes (e.g. Huffman
        decode revealing coefficient counts): the slice must keep their
        timing.
        """
        self.add_state(state)
        if state in self.wait_states:
            raise ValueError(f"state {state} is already a counter wait")
        self.dynamic_waits[state] = wrap(cycles)
        if feeds_control:
            self.control_dynamic.add(state)

    # -- queries --------------------------------------------------------
    @property
    def states(self) -> Dict[str, int]:
        return dict(self._states)

    @property
    def state_signal(self) -> str:
        """Name of the state register signal."""
        return f"{self.name}__state"

    @property
    def dynbusy_signal(self) -> str:
        """Name of the 'dynamic wait in progress' signal.

        Exists only when the FSM has dynamic waits; it is the output of
        the opaque serial-control logic (a SEQCTL macro structurally)
        and gates arcs leaving dynamic-wait states.
        """
        return f"{self.name}__dynbusy"

    def code_of(self, state: str) -> int:
        """The integer encoding of a state."""
        return self._states[state]

    def transitions_from(self, src: str) -> List[Transition]:
        """All arcs leaving ``src``, in priority order."""
        return [t for t in self.transitions if t.src == src]

    def transition_signal(self, t: Transition) -> str:
        """Name of the auto-generated 'transition fires' wire."""
        return f"{self.name}__t{t.index}__{t.src}__{t.dst}"

    def arc_signal(self, src: str, dst: str) -> Sig:
        """The 'arc fires' wire for the unique transition ``src -> dst``.

        Designs use this as the load condition of wait counters: the
        counter loads exactly when the FSM enters the wait state.
        """
        matches = [t for t in self.transitions
                   if t.src == src and t.dst == dst]
        if not matches:
            raise KeyError(f"FSM {self.name}: no arc {src} -> {dst}")
        if len(matches) > 1:
            raise KeyError(f"FSM {self.name}: multiple arcs {src} -> {dst}")
        return Sig(self.transition_signal(matches[0]))

    def entry_signal(self, dst: str) -> Expr:
        """An expression that pulses whenever any arc enters ``dst``."""
        arcs = [t for t in self.transitions if t.dst == dst]
        if not arcs:
            raise KeyError(f"FSM {self.name}: no arc enters {dst}")
        expr: Expr = Sig(self.transition_signal(arcs[0]))
        for t in arcs[1:]:
            expr = BinOp("or", expr, Sig(self.transition_signal(t)))
        return expr

    def effective_cond(self, t: Transition) -> Expr:
        """Condition for arc ``t`` to fire, *including* priority gating.

        This is the instrumentable "transition criteria" signal of the
        paper: ``(state == src) & not(earlier arcs) & cond & wait done``.
        """
        state_is_src: Expr = BinOp(
            "eq", Sig(self.state_signal), Const(self.code_of(t.src))
        )
        term: Expr = state_is_src
        if t.src in self.wait_states:
            counter = self.wait_states[t.src]
            term = BinOp("and", term, BinOp("eq", Sig(counter), Const(0)))
        if t.src in self.dynamic_waits:
            term = BinOp("and", term,
                         UnOp("not", Sig(self.dynbusy_signal)))
        for earlier in self.transitions_from(t.src):
            if earlier.index >= t.index:
                break
            if earlier.cond is not None:
                term = BinOp("and", term, UnOp("not", earlier.cond))
        if t.cond is not None:
            term = BinOp("and", term, UnOp("bool", t.cond))
        return term

    def validate(self) -> None:
        """Check structural sanity; raises ``ValueError`` on problems."""
        mentioned = {t.src for t in self.transitions}
        mentioned |= {t.dst for t in self.transitions}
        unknown = mentioned - set(self._states)
        if unknown:
            raise ValueError(f"FSM {self.name}: unknown states {unknown}")
        for src in mentioned:
            arcs = self.transitions_from(src)
            defaults = [t for t in arcs if t.cond is None]
            if len(defaults) > 1:
                raise ValueError(
                    f"FSM {self.name}: state {src} has multiple default arcs"
                )
            if defaults and defaults[0].index != arcs[-1].index:
                raise ValueError(
                    f"FSM {self.name}: default arc of {src} must be last"
                )
        for state in self.wait_states:
            if state not in self._states:
                raise ValueError(
                    f"FSM {self.name}: wait state {state} never registered"
                )

    def __repr__(self) -> str:
        return (
            f"Fsm({self.name!r}, states={len(self._states)}, "
            f"transitions={len(self.transitions)})"
        )
