"""Expression AST for the behavioural RTL IR.

Expressions are small immutable trees evaluated against an environment
mapping signal names to integer values.  They are deliberately simple:
integers only, no implicit widths (registers apply width masks on
commit).  Operator overloading lets accelerator designs read naturally::

    busy = (state == S_RUN) & (count > 0)

Every node knows the set of signal names it references, which the
synthesizer and the slicer use to build dependence edges.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Tuple, Union

Env = Dict[str, int]
ExprLike = Union["Expr", int, bool]


class Expr:
    """Base class for expression nodes."""

    __slots__ = ()

    def eval(self, env: Env) -> int:
        """Value of this expression in ``env``."""
        raise NotImplementedError

    def signals(self) -> FrozenSet[str]:
        """Names of all signals referenced anywhere in this tree."""
        raise NotImplementedError

    def children(self) -> Tuple["Expr", ...]:
        """Child expression nodes."""
        return ()

    # -- operator sugar ------------------------------------------------
    def __add__(self, other: ExprLike) -> "Expr":
        return BinOp("add", self, wrap(other))

    def __radd__(self, other: ExprLike) -> "Expr":
        return BinOp("add", wrap(other), self)

    def __sub__(self, other: ExprLike) -> "Expr":
        return BinOp("sub", self, wrap(other))

    def __rsub__(self, other: ExprLike) -> "Expr":
        return BinOp("sub", wrap(other), self)

    def __mul__(self, other: ExprLike) -> "Expr":
        return BinOp("mul", self, wrap(other))

    def __rmul__(self, other: ExprLike) -> "Expr":
        return BinOp("mul", wrap(other), self)

    def __floordiv__(self, other: ExprLike) -> "Expr":
        return BinOp("div", self, wrap(other))

    def __mod__(self, other: ExprLike) -> "Expr":
        return BinOp("mod", self, wrap(other))

    def __and__(self, other: ExprLike) -> "Expr":
        return BinOp("and", self, wrap(other))

    def __rand__(self, other: ExprLike) -> "Expr":
        return BinOp("and", wrap(other), self)

    def __or__(self, other: ExprLike) -> "Expr":
        return BinOp("or", self, wrap(other))

    def __ror__(self, other: ExprLike) -> "Expr":
        return BinOp("or", wrap(other), self)

    def __xor__(self, other: ExprLike) -> "Expr":
        return BinOp("xor", self, wrap(other))

    def __lshift__(self, other: ExprLike) -> "Expr":
        return BinOp("shl", self, wrap(other))

    def __rshift__(self, other: ExprLike) -> "Expr":
        return BinOp("shr", self, wrap(other))

    def __invert__(self) -> "Expr":
        return UnOp("not", self)

    def __neg__(self) -> "Expr":
        return BinOp("sub", Const(0), self)

    # Comparison operators return Expr, so they cannot be used for
    # Python-level equality.  Designs always compare via these.
    def __eq__(self, other: object) -> "Expr":  # type: ignore[override]
        return BinOp("eq", self, wrap(other))  # type: ignore[arg-type]

    def __ne__(self, other: object) -> "Expr":  # type: ignore[override]
        return BinOp("ne", self, wrap(other))  # type: ignore[arg-type]

    def __lt__(self, other: ExprLike) -> "Expr":
        return BinOp("lt", self, wrap(other))

    def __le__(self, other: ExprLike) -> "Expr":
        return BinOp("le", self, wrap(other))

    def __gt__(self, other: ExprLike) -> "Expr":
        return BinOp("gt", self, wrap(other))

    def __ge__(self, other: ExprLike) -> "Expr":
        return BinOp("ge", self, wrap(other))

    __hash__ = None  # type: ignore[assignment]


def wrap(value: ExprLike) -> Expr:
    """Coerce ints/bools to :class:`Const`; pass expressions through."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return Const(int(value))
    if isinstance(value, int):
        return Const(value)
    raise TypeError(f"cannot use {type(value).__name__} as an expression")


class Const(Expr):
    """An integer literal."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        if not isinstance(value, int):
            raise TypeError(f"Const takes int, got {type(value).__name__}")
        self.value = value

    def eval(self, env: Env) -> int:
        """The literal value."""
        return self.value

    def signals(self) -> FrozenSet[str]:
        return frozenset()

    def __repr__(self) -> str:
        return f"Const({self.value})"


class Sig(Expr):
    """A reference to a named signal (port, wire, reg, counter, state)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name:
            raise ValueError("signal name must be non-empty")
        self.name = name

    def eval(self, env: Env) -> int:
        """Look the signal up in the environment."""
        return env[self.name]

    def signals(self) -> FrozenSet[str]:
        return frozenset((self.name,))

    def __repr__(self) -> str:
        return f"Sig({self.name!r})"


_BINOPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: a // b if b else 0,
    "mod": lambda a, b: a % b if b else 0,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << b,
    "shr": lambda a, b: a >> b,
    "eq": lambda a, b: int(a == b),
    "ne": lambda a, b: int(a != b),
    "lt": lambda a, b: int(a < b),
    "le": lambda a, b: int(a <= b),
    "gt": lambda a, b: int(a > b),
    "ge": lambda a, b: int(a >= b),
    "min": lambda a, b: a if a < b else b,
    "max": lambda a, b: a if a > b else b,
}

_PYOPS = {
    "add": "+", "sub": "-", "mul": "*", "and": "&", "or": "|",
    "xor": "^", "shl": "<<", "shr": ">>",
}

_CMPOPS = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">="}


class BinOp(Expr):
    """A binary operation; ``op`` is a key of the operation table."""

    __slots__ = ("op", "a", "b")

    def __init__(self, op: str, a: ExprLike, b: ExprLike):
        if op not in _BINOPS:
            raise ValueError(f"unknown binary op {op!r}")
        self.op = op
        self.a = wrap(a)
        self.b = wrap(b)

    def eval(self, env: Env) -> int:
        """Apply the binary operation to both operands."""
        return _BINOPS[self.op](self.a.eval(env), self.b.eval(env))

    def signals(self) -> FrozenSet[str]:
        return self.a.signals() | self.b.signals()

    def children(self) -> Tuple[Expr, ...]:
        """Both operands."""
        return (self.a, self.b)

    def __repr__(self) -> str:
        return f"BinOp({self.op!r}, {self.a!r}, {self.b!r})"


_UNOPS = {
    "not": lambda a: int(not a),
    "bool": lambda a: int(bool(a)),
    "neg": lambda a: -a,
}


class UnOp(Expr):
    """A unary operation (logical not, boolean cast, arithmetic negate)."""

    __slots__ = ("op", "a")

    def __init__(self, op: str, a: ExprLike):
        if op not in _UNOPS:
            raise ValueError(f"unknown unary op {op!r}")
        self.op = op
        self.a = wrap(a)

    def eval(self, env: Env) -> int:
        """Apply the unary operation."""
        return _UNOPS[self.op](self.a.eval(env))

    def signals(self) -> FrozenSet[str]:
        return self.a.signals()

    def children(self) -> Tuple[Expr, ...]:
        """The single operand."""
        return (self.a,)

    def __repr__(self) -> str:
        return f"UnOp({self.op!r}, {self.a!r})"


class Mux(Expr):
    """``sel ? a : b`` — the workhorse of synthesized control logic."""

    __slots__ = ("sel", "a", "b")

    def __init__(self, sel: ExprLike, a: ExprLike, b: ExprLike):
        self.sel = wrap(sel)
        self.a = wrap(a)
        self.b = wrap(b)

    def eval(self, env: Env) -> int:
        """Select between the two data inputs."""
        return self.a.eval(env) if self.sel.eval(env) else self.b.eval(env)

    def signals(self) -> FrozenSet[str]:
        return self.sel.signals() | self.a.signals() | self.b.signals()

    def children(self) -> Tuple[Expr, ...]:
        """Select and both data inputs."""
        return (self.sel, self.a, self.b)

    def __repr__(self) -> str:
        return f"Mux({self.sel!r}, {self.a!r}, {self.b!r})"


class MemRead(Expr):
    """An indexed read from a named scratchpad memory."""

    __slots__ = ("memory", "index")

    def __init__(self, memory: str, index: ExprLike):
        if not memory:
            raise ValueError("memory name must be non-empty")
        self.memory = memory
        self.index = wrap(index)

    def eval(self, env: Env) -> int:
        """Read the indexed memory word (0 out of range)."""
        data = env[f"__mem__{self.memory}"]
        idx = self.index.eval(env)
        if 0 <= idx < len(data):
            return data[idx]
        return 0  # out-of-range reads return zero, like an SRAM with gating

    def signals(self) -> FrozenSet[str]:
        # The memory itself is a dependence too; expose it with a marker
        # prefix so the dependence graph can treat it as a net.
        return self.index.signals() | frozenset((f"__mem__{self.memory}",))

    def children(self) -> Tuple[Expr, ...]:
        """The index expression."""
        return (self.index,)

    def __repr__(self) -> str:
        return f"MemRead({self.memory!r}, {self.index!r})"


def minimum(a: ExprLike, b: ExprLike) -> Expr:
    """Two-input minimum as a dedicated node (maps to a CMP+MUX cell pair)."""
    return BinOp("min", a, b)


def maximum(a: ExprLike, b: ExprLike) -> Expr:
    """Two-input maximum as a dedicated node (maps to a CMP+MUX cell pair)."""
    return BinOp("max", a, b)


def all_of(*terms: ExprLike) -> Expr:
    """Logical AND of one or more terms (each coerced to 0/1 semantics)."""
    if not terms:
        raise ValueError("all_of requires at least one term")
    result = wrap(terms[0])
    for term in terms[1:]:
        result = BinOp("and", UnOp("bool", result), UnOp("bool", wrap(term)))
    return result


def any_of(*terms: ExprLike) -> Expr:
    """Logical OR of one or more terms (each coerced to 0/1 semantics)."""
    if not terms:
        raise ValueError("any_of requires at least one term")
    result = wrap(terms[0])
    for term in terms[1:]:
        result = BinOp("or", UnOp("bool", result), UnOp("bool", wrap(term)))
    return result


def walk(expr: Expr) -> Iterable[Expr]:
    """Yield every node of ``expr`` in depth-first pre-order."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children()))


def to_python(expr: Expr, env_name: str = "env") -> str:
    """Render an expression as a Python source fragment.

    Used by the compiled simulator backend to generate a flat step
    function.  Signals become dict lookups on ``env_name``.
    """
    original = getattr(expr, "original", None)
    if original is not None:  # a CompiledExpr wrapper: unwrap its tree
        return to_python(original, env_name)
    if isinstance(expr, Const):
        return repr(expr.value)
    if isinstance(expr, Sig):
        return f"{env_name}[{expr.name!r}]"
    if isinstance(expr, MemRead):
        idx = to_python(expr.index, env_name)
        return (
            f"(lambda _d, _i: _d[_i] if 0 <= _i < len(_d) else 0)"
            f"({env_name}['__mem__{expr.memory}'], {idx})"
        )
    if isinstance(expr, Mux):
        sel = to_python(expr.sel, env_name)
        a = to_python(expr.a, env_name)
        b = to_python(expr.b, env_name)
        return f"({a} if {sel} else {b})"
    if isinstance(expr, UnOp):
        a = to_python(expr.a, env_name)
        if expr.op == "not":
            return f"(0 if {a} else 1)"
        if expr.op == "bool":
            return f"(1 if {a} else 0)"
        return f"(-({a}))"
    if isinstance(expr, BinOp):
        a = to_python(expr.a, env_name)
        b = to_python(expr.b, env_name)
        if expr.op in _PYOPS:
            return f"({a} {_PYOPS[expr.op]} {b})"
        if expr.op in _CMPOPS:
            return f"(1 if {a} {_CMPOPS[expr.op]} {b} else 0)"
        if expr.op == "div":
            return f"(({a}) // ({b}) if ({b}) else 0)"
        if expr.op == "mod":
            return f"(({a}) % ({b}) if ({b}) else 0)"
        if expr.op == "min":
            return f"min({a}, {b})"
        if expr.op == "max":
            return f"max({a}, {b})"
    raise TypeError(f"cannot compile expression node {expr!r}")
