"""Vectorized lockstep batch backend: N jobs as one numpy array program.

Where :mod:`repro.rtl.stepjit` compiles the two-phase cycle of a
:class:`Module` into one specialized Python function that advances *one*
job, this module compiles the same cycle into a numpy *array program*
that advances a whole batch of jobs in lockstep: every piece of
architectural state — FSM state codes, counter values, registers,
dynamic-wait stalls — is an ``int64`` column with one row per job, and
one pass through the generated kernel body advances every live row by
one cycle (or, via the fast-forward jump, by ``k`` cycles).

The kernel preserves the interpreter's exact semantics per row:

* arc selection is priority-ordered mask evaluation over the state-code
  columns — the per-FSM arc tables of stepjit lifted to boolean masks;
* the fast-forward jump mirrors ``Simulation._try_skip`` with the veto
  tables evaluated as per-row boolean columns, so each row jumps exactly
  the stretches the interpreter would (rows that cannot jump step one
  cycle in the same pass; the two row sets are disjoint);
* finished rows (and rows that hit ``max_cycles``) are masked out of
  every phase, and the batch drains until no live rows remain — or
  until live occupancy falls below a compaction threshold, at which
  point the driver scatters results, drops retired rows, and re-enters
  the kernel on the survivors (log₂(N) compaction phases total);
* listener callbacks are replaced by *event columns*: per-arc fired
  counts and per-counter load/reset counts and value sums, accumulated
  as ``int64`` per-row totals.  :class:`FeatureRecorder`-style
  aggregates are recovered exactly from these (every quantity is an
  integer, so converting the final totals to float matches the serial
  listener's incremental float accumulation bit-for-bit while totals
  stay below 2**53 — always true for the paper's designs).

State columns are ``int64``; the compiler refuses modules with signal
widths above 62 bits so no masked value can overflow.  Division, modulo
and memory reads are guarded helpers, so masked-out rows never fault on
garbage operands.

Programs are cached per module (weakly) and per variant (elide set,
state-cycle tracking, fast-forward) and pickle as (module, options),
recompiling on load — the same contract as :class:`StepProgram`.

Two driver classes sit on the kernel: :class:`BatchSimulation` runs a
whole job list through :meth:`run_jobs` (the ``record_jobs`` and
``SlicePredictor`` hot path), and :class:`BatchScalarSimulation` is the
drop-in :class:`Simulation` adapter used by ``make_simulation`` — a
width-1 batch behind the ordinary ``reset``/``load``/``run`` surface.

Bit-exactness against the interpreter is enforced by the differential
fuzz suite and the golden gate (``repro check --backend batch``).
"""

from __future__ import annotations

import keyword
import re
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple
from weakref import WeakKeyDictionary

import numpy as np

from ..obs import get_observer
from .expr import _CMPOPS, _PYOPS, BinOp, Const, Expr, MemRead, Mux, Sig, UnOp
from .fsm import Fsm
from .module import Module
from .simulator import RunResult, Simulation, _DepAnalysis, record_sim_run

_MEM_PREFIX = "__mem__"

#: Largest representable jump distance; also the "no ETA" sentinel.
_BIG = 1 << 62

#: Widest signal the int64 columns can hold without overflow headroom.
_MAX_WIDTH = 62

_I0 = np.int64(0)
_I1 = np.int64(1)


def _b2i(mask) -> np.ndarray:
    """Boolean mask -> int64 0/1 column (never ``bool + bool``)."""
    return np.where(mask, _I1, _I0)


def _truth(value) -> np.ndarray:
    """Integer column -> boolean truthiness column."""
    return np.asarray(value) != 0


def _div(a, b):
    """Row-wise ``a // b`` with the IR's divide-by-zero-is-zero rule."""
    b = np.asarray(b)
    nz = b != 0
    safe = np.where(nz, b, _I1)
    return np.where(nz, np.floor_divide(a, safe), _I0)


def _mod(a, b):
    """Row-wise ``a % b`` with the IR's modulo-by-zero-is-zero rule."""
    b = np.asarray(b)
    nz = b != 0
    safe = np.where(nz, b, _I1)
    return np.where(nz, np.mod(a, safe), _I0)


def _mread(data, lengths, rows, idx):
    """Row-wise memory gather with per-row bounds (out of range -> 0)."""
    if data.shape[1] == 0:
        return np.zeros(data.shape[0], dtype=np.int64)
    idx = np.asarray(idx)
    ok = (idx >= 0) & (idx < lengths)
    safe = np.where(ok, idx, 0)
    return np.where(ok, data[rows, safe], _I0)


_KERNEL_GLOBALS = {
    "np": np, "_b2i": _b2i, "_truth": _truth, "_div": _div,
    "_mod": _mod, "_mread": _mread, "_I0": _I0, "_I1": _I1,
}


class _Names:
    """Collision-free Python identifiers for generated locals."""

    _RESERVED = frozenset(keyword.kwlist) | {
        "S", "MEMS", "ML", "DYN", "SC", "EV", "CYC", "FIN",
        "max_cycles", "compact_below", "np", "int", "len",
        "_b2i", "_truth", "_div", "_mod", "_mread", "_I0", "_I1",
        "_m", "_f", "_x", "_r", "_veto", "_jump", "_k", "_inc",
        "_sm", "_pm", "_nofire", "_stepm", "_live", "_done",
        "_n", "R", "_ln", "_la", "_iters", "_lives", "_ffj",
    }

    def __init__(self) -> None:
        self._used = set(self._RESERVED)

    def make(self, prefix: str, name: str) -> str:
        """A fresh identifier derived from ``prefix`` + ``name``."""
        base = prefix + re.sub(r"\W", "_", name)
        candidate = base
        serial = 1
        while candidate in self._used:
            serial += 1
            candidate = f"{base}_{serial}"
        self._used.add(candidate)
        return candidate


class _BatchCompiler:
    """Emits the vectorized ``_step`` kernel for one module variant."""

    def __init__(self, module: Module, elide: FrozenSet[Tuple[str, str]],
                 track_state_cycles: bool, fast_forward: bool,
                 events: bool = True):
        if not module.finalized:
            raise ValueError(
                f"module {module.name} must be finalized first")
        for c in module.counters.values():
            if c.width > _MAX_WIDTH:
                raise ValueError(
                    f"batch backend: counter {c.name!r} is {c.width} bits "
                    f"wide; int64 columns support at most {_MAX_WIDTH}")
        for r in module.regs.values():
            if r.width > _MAX_WIDTH:
                raise ValueError(
                    f"batch backend: register {r.name!r} is {r.width} bits "
                    f"wide; int64 columns support at most {_MAX_WIDTH}")
        self.m = module
        self.elide = elide
        self.track = track_state_cycles
        self.fast_forward = fast_forward
        self.events = events
        self.deps = _DepAnalysis(module)

        names = _Names()
        # Scalar slot order mirrors Simulation.reset() (minus memories).
        self.scalar_names: List[str] = (
            [p.name for p in module.ports.values()]
            + [r.name for r in module.regs.values()]
            + [c.name for c in module.counters.values()]
            + [f.state_signal for f in module.fsms.values()]
            + [b.output for b in module.datapath_blocks]
            + [f.dynbusy_signal for f in module.fsms.values()
               if f.dynamic_waits]
        )
        self.scalar_local = {
            name: names.make("v_", name) for name in self.scalar_names
        }
        self.mem_names = list(module.memories)
        self.mem_local = {
            name: names.make("m_", name) for name in self.mem_names
        }
        self.mem_len_local = {
            name: names.make("ml_", name) for name in self.mem_names
        }
        self.wire_local = {
            name: names.make("w_", name) for name in module.wire_order
        }
        self.fsms: List[Fsm] = list(module.fsms.values())
        self.dyn_fsms = [f for f in self.fsms if f.dynamic_waits]
        self.down = [c for c in module.counters.values() if c.mode == "down"]
        self.up = [c for c in module.counters.values() if c.mode == "up"]
        self.cn = {c.name: names.make("cn_", c.name)
                   for c in self.down + self.up}
        self.ch = {c.name: names.make("ch_", c.name)
                   for c in self.down + self.up}
        self.zu = {c.name: names.make("zu_", c.name) for c in self.up}
        written = {u.reg for u in module.updates}
        for fsm in self.fsms:
            for t in fsm.transitions:
                for reg, _value in t.actions:
                    written.add(reg)
        self.pending_regs = [r for r in module.regs if r in written]
        self.p_local = {r: names.make("p_", r) for r in self.pending_regs}

        # Event column layout: per-arc fired counts, then per-counter
        # load/reset counts and value sums.  One int64 column each.
        # With events off (no recorder observing), the layout is empty
        # and the kernel skips all event accumulation — the same deal
        # the serial backends get from a None listener.
        self.event_layout: List[Tuple[str, ...]] = []
        self.ev_slot: Dict[Tuple[str, ...], int] = {}
        for fsm in self.fsms if events else ():
            for t in fsm.transitions:
                key = ("arc", fsm.name, t.index)
                self.ev_slot[key] = len(self.event_layout)
                self.event_layout.append(
                    ("stc", fsm.name, t.src, t.dst))
        for c in self.down if events else ():
            self.ev_slot[("load_count", c.name)] = len(self.event_layout)
            self.event_layout.append(("load_count", c.name))
            self.ev_slot[("load_sum", c.name)] = len(self.event_layout)
            self.event_layout.append(("load_sum", c.name))
        for c in self.up if events else ():
            if c.load_cond is None:
                continue  # never resets; no events possible
            self.ev_slot[("reset_count", c.name)] = len(self.event_layout)
            self.event_layout.append(("reset_count", c.name))
            self.ev_slot[("reset_sum", c.name)] = len(self.event_layout)
            self.event_layout.append(("reset_sum", c.name))

        self._lines: List[str] = []
        self._indent = 1
        #: Rendered-expression string -> temp local holding its value.
        #: Valid because every rendered expression reads only pre-cycle
        #: state: value columns are mutated in place only by the skip
        #: commit (jump rows, where every later consumer is masked out
        #: by ``_stepm``) and by the final commit (after the last read).
        self._cse: Dict[str, str] = {}

    # -- emission helpers ----------------------------------------------
    def w(self, line: str = "") -> None:
        """Append one indented source line."""
        self._lines.append("    " * self._indent + line if line else "")

    def push(self) -> None:
        """Increase indentation."""
        self._indent += 1

    def pop(self) -> None:
        """Decrease indentation."""
        self._indent -= 1

    def cse(self, expr_str: str) -> str:
        """Emit ``expr_str`` into a temp once; reuse it on repeats.

        Loop-body only: the temp is computed each lockstep iteration at
        its first point of use and shared by every later consumer.
        """
        cached = self._cse.get(expr_str)
        if cached is None:
            cached = f"_c{len(self._cse)}"
            self._cse[expr_str] = cached
            self.w(f"{cached} = {expr_str}")
        return cached

    def ev(self, *key) -> str:
        """The local name of an event column."""
        return f"ev_{self.ev_slot[key]}"

    # -- expression rendering ------------------------------------------
    def ref(self, name: str) -> str:
        """The local holding a named signal's column."""
        local = self.scalar_local.get(name)
        if local is not None:
            return local
        local = self.wire_local.get(name)
        if local is not None:
            return local
        raise KeyError(f"batchsim: unknown signal {name!r} in {self.m.name}")

    def _is_boolish(self, expr: Expr) -> bool:
        """True when ``expr`` can only evaluate to 0 or 1."""
        original = getattr(expr, "original", None)
        if original is not None:
            return self._is_boolish(original)
        if isinstance(expr, Const):
            return expr.value in (0, 1)
        if isinstance(expr, Sig):
            wire = self.m.wires.get(expr.name)
            if wire is not None:
                return self._is_boolish(wire.expr)
            return any(f.dynamic_waits and f.dynbusy_signal == expr.name
                       for f in self.fsms)
        if isinstance(expr, BinOp):
            if expr.op in _CMPOPS:
                return True
            if expr.op in ("and", "or"):
                return (self._is_boolish(expr.a)
                        and self._is_boolish(expr.b))
            return False
        if isinstance(expr, UnOp):
            return expr.op in ("not", "bool")
        if isinstance(expr, Mux):
            return self._is_boolish(expr.a) and self._is_boolish(expr.b)
        return False

    def render(self, expr: Expr) -> str:
        """Render ``expr`` for a value context (an int64 column).

        Compound nodes land in CSE temps, so a subexpression shared by
        several wires, guards or load values is computed once per
        iteration.  Wires are inlined through the same cache — the
        arc-indicator wires then share their state-compare masks with
        arc selection instead of recomputing them in the int domain.
        """
        original = getattr(expr, "original", None)
        if original is not None:  # CompiledExpr wrapper: use the tree
            return self.render(original)
        if isinstance(expr, Const):
            return repr(expr.value)
        if isinstance(expr, Sig):
            wire = self.m.wires.get(expr.name)
            if wire is not None:
                return self.render(wire.expr)
            return self.ref(expr.name)
        if isinstance(expr, MemRead):
            mem = self.mem_local[expr.memory]
            lengths = self.mem_len_local[expr.memory]
            return self.cse(
                f"_mread({mem}, {lengths}, R, {self.render(expr.index)})")
        if isinstance(expr, Mux):
            return self.cse(f"np.where({self.cond(expr.sel)}, "
                            f"{self.render(expr.a)}, "
                            f"{self.render(expr.b)})")
        if isinstance(expr, UnOp):
            if expr.op in ("not", "bool"):
                return self.cse(f"_b2i({self.cond(expr)})")
            return self.cse(f"(-({self.render(expr.a)}))")
        if isinstance(expr, BinOp):
            op = expr.op
            if op in _CMPOPS:
                return self.cse(f"_b2i({self.cond(expr)})")
            if op in ("and", "or") and self._is_boolish(expr):
                return self.cse(f"_b2i({self.cond(expr)})")
            a = self.render(expr.a)
            b = self.render(expr.b)
            if op in _PYOPS:
                return self.cse(f"({a} {_PYOPS[op]} {b})")
            if op == "div":
                return self.cse(f"_div({a}, {b})")
            if op == "mod":
                return self.cse(f"_mod({a}, {b})")
            if op == "min":
                return self.cse(f"np.minimum({a}, {b})")
            if op == "max":
                return self.cse(f"np.maximum({a}, {b})")
        raise TypeError(f"cannot compile expression node {expr!r}")

    def cond(self, expr: Optional[Expr]) -> str:
        """Render ``expr`` for a mask context (a boolean column).

        One-bit logic stays in the boolean domain: ``a & b`` over
        boolean-valued operands renders as a mask AND instead of two
        ``_b2i`` conversions and an integer AND.
        """
        if expr is None:
            return "True"
        original = getattr(expr, "original", None)
        if original is not None:
            return self.cond(original)
        if isinstance(expr, Const):
            return "True" if expr.value else "False"
        if isinstance(expr, Sig):
            wire = self.m.wires.get(expr.name)
            if wire is not None:
                return self.cond(wire.expr)
            return self.cse(f"({self.ref(expr.name)} != 0)")
        if isinstance(expr, BinOp) and expr.op in _CMPOPS:
            a = self.render(expr.a)
            b = self.render(expr.b)
            return self.cse(f"({a} {_CMPOPS[expr.op]} {b})")
        if (isinstance(expr, BinOp) and expr.op in ("and", "or")
                and self._is_boolish(expr)):
            a = self.cond(expr.a)
            b = self.cond(expr.b)
            return self.cse(f"({a} {_PYOPS[expr.op]} {b})")
        if isinstance(expr, UnOp):
            if expr.op == "not":
                return self.cse(f"np.logical_not({self.cond(expr.a)})")
            if expr.op == "bool":
                return self.cond(expr.a)
        return self.cse(f"_truth({self.render(expr)})")

    # -- veto tables ----------------------------------------------------
    def veto_terms(self, pair) -> List[str]:
        """Mask locals that, where set, veto a fast-forward jump."""
        unstable, zerocmp = pair
        terms = []
        for name in sorted(unstable):
            flag = self.ch.get(name)
            if flag is not None:
                terms.append(flag)
        for name in sorted(zerocmp):
            # Zero-compares are stable except on an up counter leaving 0.
            flag = self.zu.get(name)
            if flag is not None:
                terms.append(flag)
        return terms

    def arc_veto_terms(self, fsm: Fsm, state: str) -> List[str]:
        """Veto masks for the arcs out of one state."""
        terms: List[str] = []
        for t in fsm.transitions_from(state):
            for term in self.veto_terms(self.deps.analyze(t.cond)):
                if term not in terms:
                    terms.append(term)
        return terms

    # -- program assembly -----------------------------------------------
    def source(self) -> str:
        """The full generated kernel source."""
        self._lines = [
            f"# batchsim kernel for module {self.m.name!r}",
            f"# variant: elide={sorted(self.elide)!r}, "
            f"track={self.track}, fast_forward={self.fast_forward}",
            "def _step(S, MEMS, ML, DYN, SC, EV, CYC, FIN,"
            " max_cycles, compact_below):",
        ]
        self._emit_unpack()
        self.w("_n = CYC.shape[0]")
        self.w("R = np.arange(_n)")
        self._emit_prealloc()
        self.w("_iters = 0")
        self.w("_lives = 0")
        self.w("_ffj = 0")
        self.w("while 1:")
        self.push()
        self.w("_live = np.logical_not(FIN) & (CYC < max_cycles)")
        self.w("_ln = int(_live.sum())")
        self.w("if _ln == 0 or _ln < compact_below:")
        self.push()
        self.w("break")
        self.pop()
        self._emit_done_check()
        self.w("_iters += 1")
        self.w("_lives += _la")
        self._emit_arc_selection()
        if self.fast_forward:
            self._emit_fast_forward()
            self.w("_stepm = _live & np.logical_not(_jump)")
        else:
            self.w("_stepm = _live")
        self._emit_counters()
        self._emit_updates()
        self._emit_arc_commit_prep()
        self._emit_commit()
        self.pop()
        self._emit_writeback()
        self.w("return (_iters, _lives, _ffj)")
        return "\n".join(self._lines) + "\n"

    def _emit_unpack(self) -> None:
        for slot, name in enumerate(self.scalar_names):
            self.w(f"{self.scalar_local[name]} = S[{slot}]")
        for slot, name in enumerate(self.mem_names):
            self.w(f"{self.mem_local[name]} = MEMS[{slot}]")
            self.w(f"{self.mem_len_local[name]} = ML[{slot}]")
        for slot, fsm in enumerate(self.dyn_fsms):
            self.w(f"d_{self.fsms.index(fsm)} = DYN[{slot}]")
        if self.track:
            for i in range(len(self.fsms)):
                self.w(f"SC_{i} = SC[{i}]")
        for slot in range(len(self.event_layout)):
            self.w(f"ev_{slot} = EV[{slot}]")

    def _emit_prealloc(self) -> None:
        # Scratch buffers reused across lockstep iterations: within one
        # kernel call the batch width is fixed, so every fixed-shape
        # temporary is allocated once and refilled (or swapped) per
        # iteration instead of reallocated by np.where rebinds.
        for i, fsm in enumerate(self.fsms):
            if fsm.transitions:
                self.w(f"t_{i} = np.empty(_n, dtype=np.int64)")
                self.w(f"ns_{i} = np.empty(_n, dtype=np.int64)")
                dsts = [0] * len(fsm.transitions)
                for t in fsm.transitions:
                    dsts[t.index] = fsm.code_of(t.dst)
                self.w(f"DST_{i} = np.array({dsts!r}, dtype=np.int64)")
                if fsm.dynamic_waits:
                    self.w(f"dn_{i} = np.empty(_n, dtype=np.int64)")
        for c in self.down + self.up:
            self.w(f"{self.cn[c.name]} = np.empty(_n, dtype=np.int64)")
        for reg in self.pending_regs:
            self.w(f"{self.p_local[reg]} = np.empty(_n, dtype=np.int64)")
        if self.fast_forward:
            self.w("_veto = np.empty(_n, dtype=np.bool_)")
            self.w("_r = np.empty(_n, dtype=np.int64)")
            self.w("_k = np.empty(_n, dtype=np.int64)")

    def _emit_writeback(self) -> None:
        for slot, name in enumerate(self.scalar_names):
            self.w(f"S[{slot}] = {self.scalar_local[name]}")
        for slot, fsm in enumerate(self.dyn_fsms):
            self.w(f"DYN[{slot}] = d_{self.fsms.index(fsm)}")

    def _emit_done_check(self) -> None:
        # Per-row equivalent of the interpreter's "done? break" header:
        # done rows retire before the cycle is stepped.
        self.w(f"_done = _live & ({self.cond(self.m.done_expr)})")
        self.w("FIN |= _done")
        self.w("_live &= np.logical_not(_done)")
        self.w("_la = int(_live.sum())")
        self.w("if _la == 0:")
        self.push()
        self.w("continue")
        self.pop()

    # Phase 1: arc selection against pre-cycle state.
    def _emit_arc_selection(self) -> None:
        for i, fsm in enumerate(self.fsms):
            if not fsm.transitions:
                continue
            st = self.scalar_local[fsm.state_signal]
            self.w(f"t_{i}.fill(-1)")
            for state, code in fsm.states.items():
                arcs = fsm.transitions_from(state)
                if not arcs:
                    continue
                smc = self.cse(f"({st} == {code})")
                self.w(f"_m = _live & {smc}")
                if (fsm.name, state) not in self.elide:
                    counter = fsm.wait_states.get(state)
                    if counter is not None:
                        ctr = self.scalar_local[counter]
                        self.w(f"_m &= {self.cse(f'({ctr} <= 0)')}")
                    if state in fsm.dynamic_waits:
                        self.w(f"_m &= {self.cse(f'(d_{i} <= 0)')}")
                for pos, t in enumerate(arcs):
                    if t.cond is None:
                        self.w(f"np.copyto(t_{i}, {t.index}, where=_m)")
                        break
                    self.w(f"_f = _m & ({self.cond(t.cond)})")
                    self.w(f"np.copyto(t_{i}, {t.index}, where=_f)")
                    if pos + 1 < len(arcs):
                        self.w("_m &= np.logical_not(_f)")

    # The fast-forward jump: Simulation._try_skip as row masks.
    def _emit_fast_forward(self) -> None:
        nofire = "_live"
        for i, fsm in enumerate(self.fsms):
            if fsm.transitions:
                nofire += f" & (t_{i} < 0)"
        self.w(f"_nofire = {nofire}")
        self.w("_veto.fill(False)")
        self.w(f"_r.fill({_BIG})")
        self._emit_skip_counters()
        self._emit_skip_fsm_scan()
        self._emit_skip_vetoes()
        self.w("_jump = _nofire & np.logical_not(_veto)")
        self.w("_jump &= (_r > 1)")
        self.w(f"_jump &= (_r < {_BIG})")
        self.w("_ffj += int(_jump.sum())")
        self.w("np.multiply(_r, _jump, out=_k)")
        self._emit_skip_commit()

    def _emit_skip_counters(self) -> None:
        for c in self.down:
            v = self.scalar_local[c.name]
            ch = self.cse(f"({v} > 0)")
            if c.enable is not None:
                ch = self.cse(f"({ch} & {self.cond(c.enable)})")
            self.ch[c.name] = ch
            eta = v if c.step == 1 else f"(-(-{v} // {c.step}))"
            self.w(f"np.minimum(_r, {eta}, out=_r, where={ch})")
        for c in self.up:
            v = self.scalar_local[c.name]
            if c.load_cond is not None:
                # A reset firing this cycle forbids the jump on that row.
                self.w(f"_veto |= ({self.cond(c.load_cond)})")
            ch = "True" if c.enable is None else self.cond(c.enable)
            self.ch[c.name] = ch
            if ch == "True":
                self.zu[c.name] = self.cse(f"({v} == 0)")
            else:
                self.zu[c.name] = self.cse(f"({ch} & ({v} == 0))")
            eta = f"({c.mask} - {v})"
            if c.step != 1:
                eta = f"({eta} // {c.step})"
            if ch == "True":
                self.w(f"np.minimum(_r, {eta}, out=_r)")
            else:
                self.w(f"np.minimum(_r, {eta}, out=_r, where={ch})")

    def _emit_skip_fsm_scan(self) -> None:
        for i, fsm in enumerate(self.fsms):
            st = self.scalar_local[fsm.state_signal]
            for state, code in fsm.states.items():
                elided = (fsm.name, state) in self.elide
                counter = fsm.wait_states.get(state)
                arc_terms = self.arc_veto_terms(fsm, state)
                arcs = "True" if "True" in arc_terms \
                    else " | ".join(arc_terms)
                if counter is not None and not elided:
                    ctr = self.scalar_local[counter]
                    smc = self.cse(f"({st} == {code})")
                    # Parked on a wait counter that is not counting:
                    # no ETA exists for that row.  With no enable the
                    # counting mask is exactly (ctr > 0), so the term
                    # is statically false and elided.
                    if self.m.counters[counter].enable is not None:
                        notch = self.cse(
                            f"np.logical_not({self.ch[counter]})")
                        gt = self.cse(f"({ctr} > 0)")
                        self.w(f"_veto |= ({smc} & {gt} & {notch})")
                    if arc_terms:
                        le = self.cse(f"({ctr} <= 0)")
                        if arcs == "True":
                            self.w(f"_veto |= ({smc} & {le})")
                        else:
                            self.w(f"_veto |= ({smc} & {le} & ({arcs}))")
                elif state in fsm.dynamic_waits and not elided:
                    smc = self.cse(f"({st} == {code})")
                    self.w(f"np.minimum(_r, d_{i}, out=_r, "
                           f"where=({smc} & (d_{i} > 0)))")
                    if arc_terms:
                        le = self.cse(f"(d_{i} <= 0)")
                        if arcs == "True":
                            self.w(f"_veto |= ({smc} & {le})")
                        else:
                            self.w(f"_veto |= ({smc} & {le} & ({arcs}))")
                elif arc_terms:
                    smc = self.cse(f"({st} == {code})")
                    if arcs == "True":
                        self.w(f"_veto |= {smc}")
                    else:
                        self.w(f"_veto |= ({smc} & ({arcs}))")

    def _emit_skip_vetoes(self) -> None:
        # Unconditional vetoes: counter load/enable deps, update deps,
        # and done-expression deps (order is free — evaluations are pure).
        terms: List[str] = []
        for c in self.down + self.up:
            lu, lz = self.deps.analyze(c.load_cond)
            eu, ez = self.deps.analyze(c.enable)
            for term in self.veto_terms((lu | eu, lz | ez)):
                if term not in terms:
                    terms.append(term)
        for upd in self.m.updates:
            for term in self.veto_terms(self.deps.analyze(upd.cond)):
                if term not in terms:
                    terms.append(term)
        for term in self.veto_terms(self.deps.analyze(self.m.done_expr)):
            if term not in terms:
                terms.append(term)
        if "True" in terms:
            self.w("_veto |= True")
        elif terms:
            self.w(f"_veto |= ({' | '.join(terms)})")
        for c in self.down:
            # A load on a non-counting down counter would fire mid-jump.
            notch = self.cse(f"np.logical_not({self.ch[c.name]})")
            self.w(f"_veto |= ({notch} "
                   f"& ({self.cond(c.load_cond)}))")
        for upd in self.m.updates:
            # A register write that fires this cycle forbids jumping.
            guard = f"({self.cond(upd.cond)})"
            if upd.fsm is not None:
                fsm = self.m.fsms[upd.fsm]
                st = self.scalar_local[fsm.state_signal]
                smc = self.cse(f"({st} == {fsm.code_of(upd.state)})")
                guard = smc if upd.cond is None else f"{smc} & {guard}"
            self.w(f"_veto |= ({guard})")

    def _emit_skip_commit(self) -> None:
        for c in self.down:
            v = self.scalar_local[c.name]
            delta = "_k" if c.step == 1 else f"_k * {c.step}"
            self.w(f"_pm = _jump & {self.ch[c.name]}")
            self.w(f"np.copyto({v}, np.maximum({v} - {delta}, 0), "
                   f"where=_pm)")
        for c in self.up:
            v = self.scalar_local[c.name]
            delta = "_k" if c.step == 1 else f"_k * {c.step}"
            self.w(f"_pm = _jump & {self.ch[c.name]}")
            self.w(f"np.copyto({v}, ({v} + {delta}) & {c.mask}, "
                   f"where=_pm)")
        for i, fsm in enumerate(self.fsms):
            st = self.scalar_local[fsm.state_signal]
            live_dyn = [code for state, code in fsm.states.items()
                        if state in fsm.dynamic_waits
                        and (fsm.name, state) not in self.elide]
            if live_dyn:
                parked = " | ".join(f"({st} == {code})"
                                    for code in live_dyn)
                self.w(f"_pm = _jump & ({parked})")
                self.w(f"_pm &= (d_{i} > 0)")
                self.w(f"np.copyto(d_{i}, d_{i} - _k, where=_pm)")
            if fsm.dynamic_waits:
                busy = self.scalar_local[fsm.dynbusy_signal]
                self.w(f"np.copyto({busy}, d_{i} > 0, where=_jump)")

    # Phase 2a: counters (step rows only; jump rows keep skip results).
    def _emit_counters(self) -> None:
        for c in self.down:
            v = self.scalar_local[c.name]
            cn = self.cn[c.name]
            self.w(f"_m = _stepm & ({self.cond(c.load_cond)})")
            self.w(f"_x = ({self.render(c.load_value)}) & {c.mask}")
            if self.events:
                self.w(f"{self.ev('load_count', c.name)} += _m")
                self.w(f"np.add({self.ev('load_sum', c.name)}, _x, "
                       f"out={self.ev('load_sum', c.name)}, where=_m)")
            self.w(f"_f = _stepm & np.logical_not(_m)")
            self.w(f"_f &= {self.cse(f'({v} > 0)')}")
            if c.enable is not None:
                self.w(f"_f &= ({self.cond(c.enable)})")
            if c.step == 1:
                # v >= 0 and the mask requires v > 0, so the saturating
                # decrement is exactly a boolean subtraction.
                self.w(f"np.subtract({v}, _f, out={cn})")
            else:
                self.w(f"np.copyto({cn}, {v})")
                self.w(f"np.copyto({cn}, "
                       f"np.maximum({v} - {c.step}, 0), where=_f)")
            self.w(f"np.copyto({cn}, _x, where=_m)")
        for c in self.up:
            v = self.scalar_local[c.name]
            cn = self.cn[c.name]
            tick = f"({v} + {c.step}) & {c.mask}"
            if c.load_cond is not None:
                self.w(f"_m = _stepm & ({self.cond(c.load_cond)})")
                if self.events:
                    self.w(f"{self.ev('reset_count', c.name)} += _m")
                    self.w(f"np.add({self.ev('reset_sum', c.name)}, {v}, "
                           f"out={self.ev('reset_sum', c.name)}, "
                           f"where=_m)")
                self.w(f"_f = _stepm & np.logical_not(_m)")
                if c.enable is not None:
                    self.w(f"_f &= ({self.cond(c.enable)})")
                if c.step == 1:
                    self.w(f"np.add({v}, _f, out={cn})")
                    self.w(f"{cn} &= {c.mask}")
                else:
                    self.w(f"np.copyto({cn}, {v})")
                    self.w(f"np.copyto({cn}, {tick}, where=_f)")
                self.w(f"np.copyto({cn}, 0, where=_m)")
            else:
                if c.enable is None:
                    ticker = "_stepm"
                else:
                    self.w(f"_f = _stepm & ({self.cond(c.enable)})")
                    ticker = "_f"
                if c.step == 1:
                    self.w(f"np.add({v}, {ticker}, out={cn})")
                    self.w(f"{cn} &= {c.mask}")
                else:
                    self.w(f"np.copyto({cn}, {v})")
                    self.w(f"np.copyto({cn}, {tick}, where={ticker})")

    # Phase 2b: update rules (globals first, then state-bound ones).
    def _emit_updates(self) -> None:
        for reg in self.pending_regs:
            self.w(f"np.copyto({self.p_local[reg]}, "
                   f"{self.scalar_local[reg]})")
        for upd in self.m.updates:
            if upd.fsm is None:
                self._emit_one_update(upd, None)
        for fsm in self.fsms:
            per_state: Dict[str, List] = {}
            for upd in self.m.updates:
                if upd.fsm == fsm.name:
                    per_state.setdefault(upd.state, []).append(upd)
            if not per_state:
                continue
            st = self.scalar_local[fsm.state_signal]
            for state, code in fsm.states.items():
                upds = per_state.get(state)
                if not upds:
                    continue
                for upd in upds:
                    self._emit_one_update(
                        upd, self.cse(f"({st} == {code})"))

    def _emit_one_update(self, upd, state_mask: Optional[str]) -> None:
        target = self.p_local[upd.reg]
        if state_mask is None and upd.cond is None:
            self.w(f"np.copyto({target}, {self.render(upd.value)}, "
                   f"where=_stepm)")
            return
        if state_mask is not None:
            self.w(f"_m = _stepm & {state_mask}")
        else:
            self.w(f"_m = _stepm & ({self.cond(upd.cond)})")
        if state_mask is not None and upd.cond is not None:
            self.w(f"_m &= ({self.cond(upd.cond)})")
        self.w(f"np.copyto({target}, {self.render(upd.value)}, "
               f"where=_m)")

    # Phase 2c: fired arcs — next state, entry actions, dynamic waits.
    def _emit_arc_commit_prep(self) -> None:
        for i, fsm in enumerate(self.fsms):
            if not fsm.transitions:
                continue
            st = self.scalar_local[fsm.state_signal]
            self.w(f"np.copyto(ns_{i}, {st})")
            # Next states come from one gather through the destination
            # table instead of a masked copy per arc.  Unfired rows have
            # t_i == -1 and gather the table's last entry; the where
            # mask discards them.
            self.w(f"np.copyto(ns_{i}, DST_{i}[t_{i}], "
                   f"where=(t_{i} >= 0))")
            if fsm.dynamic_waits:
                self.w(f"dn_{i}.fill(-1)")
            for t in fsm.transitions:
                needs_mask = (self.events or t.actions
                              or t.dst in fsm.dynamic_waits)
                if not needs_mask:
                    continue
                # t_i >= 0 only on live rows that fired, and a fired row
                # is never a jump row, so (t_i == idx) already implies
                # _stepm — no mask AND needed.
                self.w(f"_m = (t_{i} == {t.index})")
                if self.events:
                    self.w(f"{self.ev('arc', fsm.name, t.index)} += _m")
                for reg, value in t.actions:
                    self.w(f"np.copyto({self.p_local[reg]}, "
                           f"{self.render(value)}, where=_m)")
                if t.dst in fsm.dynamic_waits:
                    if (fsm.name, t.dst) in self.elide:
                        self.w(f"np.copyto(dn_{i}, 0, where=_m)")
                    else:
                        duration = fsm.dynamic_waits[t.dst]
                        self.w(f"_x = {self.render(duration)}")
                        self.w(f"np.copyto(dn_{i}, "
                               f"np.maximum(_x, _I0), where=_m)")

    # Phase 3: commit.
    def _emit_commit(self) -> None:
        if self.track:
            # Each row's (row, pre-commit state) cell is unique, so the
            # fancy-indexed in-place add has no duplicate targets.
            inc = "(_k + _stepm)" if self.fast_forward else "_stepm"
            for i, fsm in enumerate(self.fsms):
                st = self.scalar_local[fsm.state_signal]
                self.w(f"SC_{i}[R, {st}] += {inc}")
        self.w("CYC += _stepm")
        if self.fast_forward:
            self.w("CYC += _k")
        for c in self.down + self.up:
            # Swap value and scratch columns: the scratch becomes the
            # committed value; the old value array is reused next cycle.
            v = self.scalar_local[c.name]
            cn = self.cn[c.name]
            self.w(f"{v}, {cn} = {cn}, {v}")
        for reg in self.pending_regs:
            mask = self.m.regs[reg].mask
            v = self.scalar_local[reg]
            self.w(f"np.copyto({v}, {self.p_local[reg]} & {mask}, "
                   f"where=_stepm)")
        for i, fsm in enumerate(self.fsms):
            st = self.scalar_local[fsm.state_signal]
            if fsm.transitions:
                if fsm.dynamic_waits:
                    self.w(f"_pm = _stepm & (t_{i} < 0)")
                    self.w(f"_pm &= (d_{i} > 0)")
                    self.w(f"np.copyto(d_{i}, d_{i} - _I1, where=_pm)")
                    self.w(f"np.copyto(d_{i}, dn_{i}, "
                           f"where=(_stepm & (dn_{i} >= 0)))")
                self.w(f"{st}, ns_{i} = ns_{i}, {st}")
            elif fsm.dynamic_waits:
                self.w(f"_pm = _stepm & (d_{i} > 0)")
                self.w(f"np.copyto(d_{i}, d_{i} - _I1, where=_pm)")
            if fsm.dynamic_waits:
                busy = self.scalar_local[fsm.dynbusy_signal]
                self.w(f"np.copyto({busy}, d_{i} > 0, where=_stepm)")


class BatchProgram:
    """A compiled lockstep batch kernel for one (module, variant) pair.

    Holds the generated source (for inspection/tests), the compiled
    function, and the column layout drivers use to pack and unpack
    per-row architectural state.  Pickles as (module, options) and
    regenerates its code on load, exactly like :class:`StepProgram`.
    """

    def __init__(self, module: Module,
                 elide: Iterable[Tuple[str, str]] = (),
                 track_state_cycles: bool = False,
                 fast_forward: bool = True,
                 events: bool = True):
        start = perf_counter()
        self.module = module
        self.elide = frozenset(elide)
        self.track_state_cycles = bool(track_state_cycles)
        self.fast_forward = bool(fast_forward)
        self.events = bool(events)
        compiler = _BatchCompiler(module, self.elide,
                                  self.track_state_cycles,
                                  self.fast_forward, self.events)
        self.source = compiler.source()
        namespace: Dict[str, object] = dict(_KERNEL_GLOBALS)
        exec(compile(self.source, f"<batchsim:{module.name}>", "exec"),
             namespace)
        self.fn = namespace["_step"]
        self.scalar_names = list(compiler.scalar_names)
        self.scalar_index = {
            name: slot for slot, name in enumerate(self.scalar_names)
        }
        self.mem_names = list(compiler.mem_names)
        self.fsm_names = [f.name for f in compiler.fsms]
        self.fsm_state_signals = [f.state_signal for f in compiler.fsms]
        self.fsm_states = [
            [state for state, _code in sorted(f.states.items(),
                                              key=lambda kv: kv[1])]
            for f in compiler.fsms
        ]
        self.dyn_names = [f.name for f in compiler.dyn_fsms]
        self.event_layout = list(compiler.event_layout)
        module_defaults = {
            **{p.name: 0 for p in module.ports.values()},
            **{r.name: r.init for r in module.regs.values()},
        }
        for fsm in module.fsms.values():
            module_defaults[fsm.state_signal] = fsm.code_of(fsm.initial)
        self.scalar_defaults = [
            module_defaults.get(name, 0) for name in self.scalar_names
        ]
        self.codegen_s = perf_counter() - start
        obs = get_observer()
        if obs is not None:
            obs.metrics.inc("sim.batch.compiles")
            obs.metrics.inc("sim.batch.codegen_s", self.codegen_s)

    def __reduce__(self):
        # The generated function is unpicklable; regenerate on load so
        # programs cross process pools and the artifact cache.
        return (BatchProgram, (self.module, tuple(sorted(self.elide)),
                               self.track_state_cycles,
                               self.fast_forward, self.events))


#: module -> {variant key -> BatchProgram}; weak so modules can die.
_PROGRAMS: "WeakKeyDictionary[Module, Dict]" = WeakKeyDictionary()


def compile_batch_stepper(module: Module, *,
                          elide: Iterable[Tuple[str, str]] = (),
                          track_state_cycles: bool = False,
                          fast_forward: bool = True,
                          events: bool = True) -> BatchProgram:
    """The cached :class:`BatchProgram` for a module variant."""
    variants = _PROGRAMS.get(module)
    if variants is None:
        variants = _PROGRAMS.setdefault(module, {})
    key = (frozenset(elide), bool(track_state_cycles),
           bool(fast_forward), bool(events))
    program = variants.get(key)
    if program is None:
        program = variants[key] = BatchProgram(
            module, key[0], key[1], key[2], key[3])
    return program


@dataclass
class BatchEvents:
    """Aggregate per-row event totals for one batch run.

    Every value is an ``int64`` column of batch width: transition fired
    counts keyed ``(fsm, src, dst)``, down-counter load counts and
    loaded-value sums, and up-counter reset counts and pre-reset value
    sums — exactly the quantities a :class:`Listener` would have seen,
    pre-aggregated per row.
    """

    transition_counts: Dict[Tuple[str, str, str], np.ndarray] \
        = field(default_factory=dict)
    load_counts: Dict[str, np.ndarray] = field(default_factory=dict)
    load_value_sums: Dict[str, np.ndarray] = field(default_factory=dict)
    reset_counts: Dict[str, np.ndarray] = field(default_factory=dict)
    reset_value_sums: Dict[str, np.ndarray] = field(default_factory=dict)

    @classmethod
    def from_arrays(cls, layout: Sequence[Tuple[str, ...]],
                    arrays: Sequence[np.ndarray]) -> "BatchEvents":
        """Fold raw event columns into keyed aggregates.

        Multiple arcs between the same (fsm, src, dst) pair sum into
        one entry, matching what a transition listener would count.
        """
        events = cls()
        for entry, column in zip(layout, arrays):
            kind = entry[0]
            if kind == "stc":
                key = (entry[1], entry[2], entry[3])
                existing = events.transition_counts.get(key)
                events.transition_counts[key] = (
                    column if existing is None else existing + column)
            elif kind == "load_count":
                events.load_counts[entry[1]] = column
            elif kind == "load_sum":
                events.load_value_sums[entry[1]] = column
            elif kind == "reset_count":
                events.reset_counts[entry[1]] = column
            elif kind == "reset_sum":
                events.reset_value_sums[entry[1]] = column
        return events


@dataclass
class BatchRunResult:
    """Outcome of one :meth:`BatchSimulation.run_jobs` call.

    Per-row columns (``cycles``, ``finished``), aggregate event totals
    (:class:`BatchEvents`), optional per-row state-cycle matrices, and
    the lockstep telemetry the ``sim.batch.*`` counters are built from.
    """

    cycles: np.ndarray
    finished: np.ndarray
    events: BatchEvents
    fsm_names: List[str]
    fsm_states: List[List[str]]
    state_cycles: Optional[List[np.ndarray]] = None
    lockstep_cycles: int = 0
    live_row_steps: int = 0
    row_steps: int = 0
    ff_jumps: int = 0

    @property
    def rows(self) -> int:
        """Batch width (number of jobs simulated)."""
        return int(self.cycles.shape[0])

    @property
    def occupancy(self) -> float:
        """Live-row fraction of all lockstep row-slots (1.0 = no waste)."""
        if self.row_steps <= 0:
            return 1.0
        return self.live_row_steps / self.row_steps

    def state_cycles_for(self, row: int) -> Dict[Tuple[str, str], int]:
        """One row's ``(fsm, state) -> cycles`` map (tracking required)."""
        if self.state_cycles is None:
            raise ValueError("state cycles were not tracked for this run")
        cells: Dict[Tuple[str, str], int] = {}
        for name, states, counts in zip(self.fsm_names, self.fsm_states,
                                        self.state_cycles):
            for state, count in zip(states, counts[row]):
                if count:
                    cells[(name, state)] = int(count)
        return cells


def _note_batch_metrics(rows: int, lockstep: int, live_steps: int,
                        row_steps: int) -> None:
    # Batch-specific telemetry on top of record_sim_run's sim.batch.*
    # counters: widths, lockstep iterations and the occupancy gauge.
    obs = get_observer()
    if obs is None:
        return
    metrics = obs.metrics
    metrics.inc("sim.batch.rows", float(rows))
    metrics.inc("sim.batch.lockstep_cycles", float(lockstep))
    metrics.inc("sim.batch.live_row_steps", float(live_steps))
    metrics.inc("sim.batch.row_steps", float(row_steps))
    if row_steps > 0:
        metrics.set_gauge("sim.batch.occupancy", live_steps / row_steps)


class BatchSimulation:
    """Lockstep simulation of many independent jobs on one module.

    Unlike :class:`Simulation` this is a *batch* driver: there is no
    persistent per-job state surface — :meth:`run_jobs` takes a whole
    job list (the same ``(inputs, memories)`` pairs ``record_jobs``
    feeds), runs every row to completion in lockstep, and returns the
    per-row cycle counts plus aggregate event totals.  Construction
    options mirror :class:`Simulation` (minus ``listener``, which the
    event columns replace).
    """

    def __init__(self, module: Module, fast_forward: bool = True,
                 elide: Optional[Iterable[Tuple[str, str]]] = None,
                 track_state_cycles: bool = False,
                 events: bool = True):
        if not module.finalized:
            raise ValueError(
                f"module {module.name} must be finalized first")
        self.module = module
        self.fast_forward = bool(fast_forward)
        self.elide = frozenset(elide or ())
        self.track_state_cycles = bool(track_state_cycles)
        #: With events off the kernel skips all event accumulation and
        #: :attr:`BatchRunResult.events` comes back empty — use when
        #: only cycle counts are consumed (throughput probes, goldens).
        self.events = bool(events)

    def program(self) -> BatchProgram:
        """The compiled batch kernel for this configuration."""
        return compile_batch_stepper(
            self.module, elide=self.elide,
            track_state_cycles=self.track_state_cycles,
            fast_forward=self.fast_forward, events=self.events)

    def _pack(self, jobs: List, program: BatchProgram,
              ignore_unknown: bool):
        # Column-ize job inputs: scalar defaults overridden per row,
        # memories as (rows, max-length) gather tables + length columns.
        n = len(jobs)
        scalars = [np.full(n, default, dtype=np.int64)
                   for default in program.scalar_defaults]
        ports = self.module.ports
        memories = self.module.memories
        mem_rows: Dict[str, Dict[int, List[int]]] = {
            name: {} for name in program.mem_names
        }
        for row, (inputs, mems) in enumerate(jobs):
            for name, value in (inputs or {}).items():
                if name not in ports:
                    if ignore_unknown:
                        continue
                    raise KeyError(f"unknown port {name!r}")
                scalars[program.scalar_index[name]][row] = int(value)
            for name, data in (mems or {}).items():
                if name not in memories:
                    if ignore_unknown:
                        continue
                    raise KeyError(f"unknown memory {name!r}")
                mem_rows[name][row] = list(data)
        mem_tables: List[np.ndarray] = []
        mem_lengths: List[np.ndarray] = []
        for name in program.mem_names:
            per_row = mem_rows[name]
            lengths = np.zeros(n, dtype=np.int64)
            for row, words in per_row.items():
                lengths[row] = len(words)
            cap = int(lengths.max()) if n else 0
            table = np.zeros((n, cap), dtype=np.int64)
            for row, words in per_row.items():
                if words:
                    table[row, :len(words)] = words
            mem_tables.append(table)
            mem_lengths.append(lengths)
        return scalars, mem_tables, mem_lengths

    def run_jobs(self, jobs: Iterable, max_cycles: int = 200_000_000,
                 ignore_unknown: bool = False) -> BatchRunResult:
        """Simulate every ``(inputs, memories)`` job to completion.

        All rows start from power-on state, load their own inputs, and
        advance in lockstep; a row retires when its done expression
        holds or it reaches ``max_cycles`` (reported via ``finished``).
        When live occupancy halves, retired rows are compacted away and
        the kernel re-entered on the survivors.
        """
        program = self.program()
        job_list = list(jobs)
        n = len(job_list)
        n_events = len(program.event_layout)
        out_cycles = np.zeros(n, dtype=np.int64)
        out_fin = np.zeros(n, dtype=np.bool_)
        out_events = [np.zeros(n, dtype=np.int64)
                      for _ in range(n_events)]
        if self.track_state_cycles:
            out_sc = [np.zeros((n, len(states)), dtype=np.int64)
                      for states in program.fsm_states]
        else:
            out_sc = None
        lockstep = live_steps = row_steps = ff_jumps = 0
        wall = 0.0
        if n:
            scalars, mem_tables, mem_lengths = self._pack(
                job_list, program, ignore_unknown)
            dyn = [np.zeros(n, dtype=np.int64)
                   for _ in program.dyn_names]
            if self.track_state_cycles:
                sc = [np.zeros((n, len(states)), dtype=np.int64)
                      for states in program.fsm_states]
            else:
                sc = None
            events = [np.zeros(n, dtype=np.int64)
                      for _ in range(n_events)]
            cycles = np.zeros(n, dtype=np.int64)
            fin = np.zeros(n, dtype=np.bool_)
            origin = np.arange(n)
            start = perf_counter()
            while True:
                cur_n = int(cycles.shape[0])
                iters, lives, ffj = program.fn(
                    scalars, mem_tables, mem_lengths, dyn, sc, events,
                    cycles, fin, max_cycles, max(1, cur_n // 2))
                lockstep += iters
                live_steps += lives
                row_steps += iters * cur_n
                ff_jumps += ffj
                out_cycles[origin] = cycles
                out_fin[origin] = fin
                for slot in range(n_events):
                    out_events[slot][origin] = events[slot]
                if out_sc is not None:
                    for i, counts in enumerate(sc):
                        out_sc[i][origin] = counts
                keep = np.logical_not(fin | (cycles >= max_cycles))
                if not keep.any():
                    break
                scalars = [col[keep] for col in scalars]
                mem_tables = [t[keep] for t in mem_tables]
                mem_lengths = [col[keep] for col in mem_lengths]
                dyn = [col[keep] for col in dyn]
                if sc is not None:
                    sc = [counts[keep] for counts in sc]
                events = [col[keep] for col in events]
                cycles = cycles[keep]
                fin = fin[keep]
                origin = origin[keep]
            wall = perf_counter() - start
        record_sim_run("batch", int(out_cycles.sum()), wall, ff_jumps)
        _note_batch_metrics(n, lockstep, live_steps, row_steps)
        return BatchRunResult(
            cycles=out_cycles,
            finished=out_fin,
            events=BatchEvents.from_arrays(program.event_layout,
                                           out_events),
            fsm_names=list(program.fsm_names),
            fsm_states=[list(states) for states in program.fsm_states],
            state_cycles=out_sc,
            lockstep_cycles=lockstep,
            live_row_steps=live_steps,
            row_steps=row_steps,
            ff_jumps=ff_jumps,
        )


class BatchScalarSimulation(Simulation):
    """Drop-in :class:`Simulation` backed by a width-1 batch kernel.

    Construction, ``reset``, ``load`` and all inspection surfaces
    (``state``, ``cycle``, ``state_cycles``, ``_fsm_state``) behave
    exactly like the interpreter's; ``run`` packs the current state
    into one-row columns, drains the batch kernel, and unpacks the
    (cycle-exact) result back.  A listener, when attached, must
    implement ``absorb_batch_events`` (and not ``wants_cycles``) —
    event columns replace the per-event callbacks; ``make_simulation``
    falls back to :class:`StepSimulation` for incompatible listeners.
    """

    def _build_static(self) -> None:
        # The kernel bakes arc tables and dependence analyses into
        # generated code; skip the interpreter's per-instance tables.
        self._fsms = list(self.module.fsms.values())

    def program(self) -> BatchProgram:
        """The compiled batch kernel for this simulation's options.

        The event-accumulation variant is keyed off the listener: with
        nobody observing, the kernel skips event columns entirely —
        the batch analogue of the serial backends' None-listener path.
        """
        return compile_batch_stepper(
            self.module, elide=self.elide,
            track_state_cycles=self.track_state_cycles,
            fast_forward=self.fast_forward,
            events=self.listener is not None)

    def run(self, max_cycles: int = 200_000_000) -> RunResult:
        """Run until done (or ``max_cycles``) on the batch kernel."""
        listener = self.listener
        if listener is not None and (
                getattr(listener, "wants_cycles", False)
                or not hasattr(listener, "absorb_batch_events")):
            raise TypeError(
                "batch backend listeners must implement "
                "absorb_batch_events (and not wants_cycles); use "
                "make_simulation, which falls back to stepjit for "
                "incompatible listeners")
        program = self.program()
        state = self.state
        scalars = [np.array([state[name]], dtype=np.int64)
                   for name in program.scalar_names]
        mem_tables = []
        mem_lengths = []
        for name in program.mem_names:
            words = state[f"{_MEM_PREFIX}{name}"]
            table = np.zeros((1, len(words)), dtype=np.int64)
            if words:
                table[0, :] = words
            mem_tables.append(table)
            mem_lengths.append(np.array([len(words)], dtype=np.int64))
        dyn = [np.array([self._dyn_stall[name]], dtype=np.int64)
               for name in program.dyn_names]
        if self.track_state_cycles:
            sc = [
                np.array([[self.state_cycles.get((name, s), 0)
                           for s in states]], dtype=np.int64)
                for name, states in zip(program.fsm_names,
                                        program.fsm_states)
            ]
        else:
            sc = None
        events = [np.zeros(1, dtype=np.int64)
                  for _ in program.event_layout]
        cycles = np.array([self.cycle], dtype=np.int64)
        fin = np.zeros(1, dtype=np.bool_)
        start_cycle = self.cycle
        start = perf_counter()
        _iters, _lives, ff_jumps = program.fn(
            scalars, mem_tables, mem_lengths, dyn, sc, events,
            cycles, fin, max_cycles, 0)
        wall = perf_counter() - start
        for name, column in zip(program.scalar_names, scalars):
            state[name] = int(column[0])
        for name, column in zip(program.dyn_names, dyn):
            self._dyn_stall[name] = int(column[0])
        for name, signal, states in zip(program.fsm_names,
                                        program.fsm_state_signals,
                                        program.fsm_states):
            self._fsm_state[name] = states[state[signal]]
        self.cycle = int(cycles[0])
        self.ff_jumps += ff_jumps
        if self.track_state_cycles:
            cells = self.state_cycles  # preserve dict identity: callers
            cells.clear()              # hold and clear() this mapping
            for name, states, counts in zip(program.fsm_names,
                                            program.fsm_states, sc):
                for s, count in zip(states, counts[0]):
                    if count:
                        cells[(name, s)] = int(count)
        if listener is not None:
            batch_events = BatchEvents.from_arrays(
                program.event_layout, events)
            listener.absorb_batch_events(batch_events, 0)
        record_sim_run("batch", self.cycle - start_cycle, wall, ff_jumps)
        return RunResult(self.cycle, bool(fin[0]),
                         dict(self.state_cycles))
