"""Simulation backend selection: interp | compiled | stepjit | batch.

All backends are cycle-exact (the differential fuzz suite and the
golden gate enforce this), so the choice is purely a speed knob:

* ``interp``   — the tree-walking interpreter (:class:`Simulation` on a
  raw module).  Baseline; useful for debugging generated code.
* ``compiled`` — per-expression codegen (:func:`compile_module` +
  :class:`Simulation`).  2–4× over ``interp``.
* ``stepjit``  — the whole-module step compiler
  (:class:`StepSimulation`): one generated function per cycle.  The
  default.
* ``batch``    — the vectorized lockstep kernel
  (:class:`BatchScalarSimulation` here; :class:`BatchSimulation` for
  whole-job-list drivers such as ``record_jobs``): N jobs advance as
  one numpy array program.  Fastest at batch widths ≫ 1; a listener
  that needs per-cycle callbacks (``wants_cycles``) or lacks
  ``absorb_batch_events`` silently falls back to ``stepjit``.

Resolution priority: explicit argument > :func:`set_default_backend` >
the ``REPRO_BACKEND`` environment variable > ``stepjit``.

Because outputs are cycle-exact, cache fingerprints (the recorded
``FeatureMatrix`` key, bundle keys) deliberately do NOT include the
backend — a matrix recorded under one backend is a valid warm hit for
any other.  Tests assert this invariance.
"""

from __future__ import annotations

import os
from typing import Optional
from weakref import WeakKeyDictionary

from .batchsim import BatchScalarSimulation
from .compiled import compile_module
from .module import Module
from .simulator import Simulation
from .stepjit import StepSimulation

BACKENDS = ("interp", "compiled", "stepjit", "batch")
DEFAULT_BACKEND = "stepjit"
BACKEND_ENV = "REPRO_BACKEND"

_default_override: Optional[str] = None

#: module -> compiled clone, so repeated compiled-backend simulations
#: of the same module reuse one compile_module() pass.
_COMPILED: "WeakKeyDictionary[Module, Module]" = WeakKeyDictionary()


def _validate(name: str) -> str:
    if name not in BACKENDS:
        raise ValueError(
            f"unknown simulation backend {name!r}; "
            f"expected one of {', '.join(BACKENDS)}")
    return name


def set_default_backend(name: Optional[str]) -> None:
    """Set (or with ``None``, clear) the process-wide backend override.

    The CLI's ``--backend`` flag lands here; it outranks the
    ``REPRO_BACKEND`` environment variable.
    """
    global _default_override
    _default_override = _validate(name) if name is not None else None


def resolve_backend(explicit: Optional[str] = None) -> str:
    """The backend to use: explicit > override > env > default."""
    if explicit is not None:
        return _validate(explicit)
    if _default_override is not None:
        return _default_override
    env = os.environ.get(BACKEND_ENV)
    if env:
        return _validate(env)
    return DEFAULT_BACKEND


def compiled_clone(module: Module) -> Module:
    """A (cached) per-expression-compiled clone of ``module``."""
    clone = _COMPILED.get(module)
    if clone is None:
        # compile_module returns a new Module; never re-compile one.
        if getattr(module.done_expr, "original", None) is not None:
            clone = module
        else:
            clone = compile_module(module)
        _COMPILED[module] = clone
    return clone


def make_simulation(module: Module, *, backend: Optional[str] = None,
                    **kwargs) -> Simulation:
    """Build a simulation of ``module`` on the resolved backend.

    ``kwargs`` are forwarded to the :class:`Simulation` constructor
    (``listener``, ``fast_forward``, ``elide``, ``track_state_cycles``).
    """
    name = resolve_backend(backend)
    if name == "batch":
        listener = kwargs.get("listener")
        if listener is not None and (
                getattr(listener, "wants_cycles", False)
                or not hasattr(listener, "absorb_batch_events")):
            # Event columns cannot express per-cycle callbacks or
            # arbitrary listener protocols; stepjit is cycle-exact.
            return StepSimulation(module, **kwargs)
        return BatchScalarSimulation(module, **kwargs)
    if name == "stepjit":
        return StepSimulation(module, **kwargs)
    if name == "compiled":
        return Simulation(compiled_clone(module), **kwargs)
    return Simulation(module, **kwargs)
