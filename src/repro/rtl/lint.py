"""Design lint: catch the mistakes accelerator authors actually make.

The framework's guarantees (detection completeness, slice/feature
equivalence, fast-forward coverage) rest on designs using the
canonical idioms.  ``lint_module`` checks a finalized design for the
deviations that silently degrade results:

* ``unreachable-state`` — an FSM state no arc enters;
* ``dead-end-state`` — a non-terminal state with no way out;
* ``unloaded-counter`` — a down counter whose load condition is
  constant false (its waits would hang forever);
* ``wait-not-loaded-on-entry`` — a wait state whose counter's load
  condition does not reference any arc entering the state (the wait
  would reuse a stale value);
* ``unused-wire`` — a user wire nothing reads;
* ``wide-dynamic-share`` — dynamic waits reachable from the main loop
  (prediction error risk; informational);
* ``update-on-wait-state`` — an update gated on a wait state (defeats
  fast-forwarding, so simulation slows by orders of magnitude).

Each finding carries a severity: ``error`` findings break framework
invariants; ``warning`` findings degrade quality or performance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

from .expr import Const
from .module import Module


@dataclass(frozen=True)
class LintFinding:
    """One lint diagnostic."""

    rule: str
    severity: str  # "error" | "warning" | "info"
    subject: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.rule}: {self.subject} — " \
               f"{self.message}"


def lint_module(module: Module) -> List[LintFinding]:
    """Run every lint rule; returns findings (empty = clean)."""
    if not module.finalized:
        raise ValueError(f"module {module.name} must be finalized first")
    findings: List[LintFinding] = []
    findings.extend(_check_fsm_reachability(module))
    findings.extend(_check_counters(module))
    findings.extend(_check_wait_loading(module))
    findings.extend(_check_unused_wires(module))
    findings.extend(_check_updates_on_waits(module))
    findings.extend(_note_dynamic_waits(module))
    return findings


def errors_only(findings: List[LintFinding]) -> List[LintFinding]:
    """Just the invariant-breaking findings."""
    return [f for f in findings if f.severity == "error"]


def _check_fsm_reachability(module: Module) -> List[LintFinding]:
    out: List[LintFinding] = []
    for fsm in module.fsms.values():
        entered: Set[str] = {fsm.initial}
        left: Set[str] = set()
        for t in fsm.transitions:
            entered.add(t.dst)
            left.add(t.src)
        for state in fsm.states:
            if state not in entered:
                out.append(LintFinding(
                    "unreachable-state", "error",
                    f"{fsm.name}.{state}",
                    "no arc enters this state",
                ))
            if state not in left and state in entered:
                # A terminal state is fine if the done expression can
                # hold there; flag everything else.
                if fsm.state_signal in module.done_expr.signals():
                    continue
                out.append(LintFinding(
                    "dead-end-state", "warning",
                    f"{fsm.name}.{state}",
                    "no arc leaves this state and done does not read "
                    "this FSM",
                ))
    return out


def _check_counters(module: Module) -> List[LintFinding]:
    out: List[LintFinding] = []
    for counter in module.counters.values():
        cond = counter.load_cond
        if isinstance(cond, Const) and cond.value == 0:
            out.append(LintFinding(
                "unloaded-counter", "error", counter.name,
                "load condition is constant false",
            ))
    return out


def _check_wait_loading(module: Module) -> List[LintFinding]:
    out: List[LintFinding] = []
    for fsm in module.fsms.values():
        for state, counter_name in fsm.wait_states.items():
            counter = module.counters.get(counter_name)
            if counter is None or counter.load_cond is None:
                continue
            entry_wires = {
                fsm.transition_signal(t)
                for t in fsm.transitions if t.dst == state
            }
            deps = counter.load_cond.signals()
            # Accept loads driven by entry arcs directly or through a
            # wire that reads them.
            reachable = set(deps)
            for name in deps:
                wire = module.wires.get(name)
                if wire is not None:
                    reachable |= wire.expr.signals()
            if entry_wires and not (reachable & entry_wires):
                out.append(LintFinding(
                    "wait-not-loaded-on-entry", "warning",
                    f"{fsm.name}.{state}",
                    f"counter {counter_name} is not loaded by any arc "
                    "entering the wait state",
                ))
    return out


def _check_unused_wires(module: Module) -> List[LintFinding]:
    generated = {
        fsm.transition_signal(t)
        for fsm in module.fsms.values()
        for t in fsm.transitions
    }
    used: Set[str] = set(module.done_expr.signals())
    for wire in module.wires.values():
        used |= wire.expr.signals()
    for counter in module.counters.values():
        for expr in (counter.load_cond, counter.load_value,
                     counter.enable):
            if expr is not None:
                used |= expr.signals()
    for upd in module.updates:
        used |= upd.value.signals()
        if upd.cond is not None:
            used |= upd.cond.signals()
    for fsm in module.fsms.values():
        for t in fsm.transitions:
            if t.cond is not None:
                used |= t.cond.signals()
            for _, value in t.actions:
                used |= value.signals()
        for duration in fsm.dynamic_waits.values():
            used |= duration.signals()
    for block in module.datapath_blocks:
        used |= set(block.inputs)
    out: List[LintFinding] = []
    for name in module.wires:
        if name in generated or name in used:
            continue
        out.append(LintFinding(
            "unused-wire", "warning", name, "nothing reads this wire",
        ))
    return out


def _check_updates_on_waits(module: Module) -> List[LintFinding]:
    wait_states = {
        (fsm.name, state)
        for fsm in module.fsms.values()
        for state in list(fsm.wait_states) + list(fsm.dynamic_waits)
    }
    out: List[LintFinding] = []
    for upd in module.updates:
        if upd.fsm is not None and (upd.fsm, upd.state) in wait_states:
            out.append(LintFinding(
                "update-on-wait-state", "warning",
                f"{upd.reg} @ {upd.fsm}.{upd.state}",
                "per-cycle updates inside waits veto fast-forwarding",
            ))
    return out


def _note_dynamic_waits(module: Module) -> List[LintFinding]:
    out: List[LintFinding] = []
    for fsm in module.fsms.values():
        for state in fsm.dynamic_waits:
            out.append(LintFinding(
                "wide-dynamic-share", "info",
                f"{fsm.name}.{state}",
                "dynamic waits are invisible to features; check the "
                "visibility report if prediction error matters",
            ))
    return out
