"""Whole-module step compiler: a generated-code simulation backend.

Where :mod:`repro.rtl.compiled` compiles each *expression* to its own
lambda (per-tree dispatch stays in the interpreter), this module
compiles the entire two-phase cycle of a :class:`Module` into one
specialized Python function:

* architectural state lives in slot-indexed locals (no dict lookups on
  the hot path; the flat list is only touched on entry/exit);
* combinational wires are computed once per cycle, in topological
  order, as plain locals — per-cycle memoization without ``_LazyEnv``;
* arc selection, counters, update rules and the commit phase are fused
  into straight-line code with the interpreter's exact ordering;
* the fast-forward jump is preserved: ``_DepAnalysis``'s veto tables
  are emitted as boolean checks over per-counter "changing"/"zero-up"
  flags, so the generated kernel skips the same stretches the
  interpreter does and the committed state is identical;
* listener callbacks are compiled in only when a listener is attached,
  so the common (unlistened) kernel pays nothing for instrumentation.

Programs are cached per module (weakly) and per variant (elide set,
state-cycle tracking, listener presence, fast-forward), and are
pickle-safe the same way :class:`CompiledExpr` is: ``__reduce__``
pickles the source module plus the variant options and regenerates the
code on load, so steppers cross process pools and the artifact cache.

The generated stepper is cycle-exact against the interpreter — the
differential fuzz suite and the golden gate (``repro check
--backend stepjit``) both verify it end to end.
"""

from __future__ import annotations

import keyword
import re
from time import perf_counter
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple
from weakref import WeakKeyDictionary

from ..obs import get_observer
from .counter import Counter
from .expr import _CMPOPS, _PYOPS, BinOp, Const, Expr, MemRead, Mux, Sig, UnOp
from .fsm import Fsm
from .module import Module
from .simulator import (
    RunResult,
    Simulation,
    _DepAnalysis,
    record_sim_run,
)

_MEM_PREFIX = "__mem__"
_SIMPLE_ATOM = re.compile(r"(?:[A-Za-z_]\w*|\d+)\Z")


class _Names:
    """Collision-free Python identifiers for generated locals."""

    _RESERVED = frozenset(keyword.kwlist) | {
        "S", "MEMS", "DYN", "SC", "cycle", "max_cycles", "listener",
        "finished", "len", "min", "max", "None", "True", "False",
        "_j", "_r", "_t", "_d", "_i", "_ffj", "_wc", "_oc",
        "_lt", "_lcl", "_lcr", "_step",
    }

    def __init__(self) -> None:
        self._used = set(self._RESERVED)

    def make(self, prefix: str, name: str) -> str:
        base = prefix + re.sub(r"\W", "_", name)
        candidate = base
        serial = 1
        while candidate in self._used:
            serial += 1
            candidate = f"{base}_{serial}"
        self._used.add(candidate)
        return candidate


class _StepCompiler:
    """Emits the specialized ``_step`` function for one module variant."""

    def __init__(self, module: Module, elide: FrozenSet[Tuple[str, str]],
                 track_state_cycles: bool, has_listener: bool,
                 fast_forward: bool):
        if not module.finalized:
            raise ValueError(
                f"module {module.name} must be finalized first")
        self.m = module
        self.elide = elide
        self.track = track_state_cycles
        self.has_listener = has_listener
        self.fast_forward = fast_forward
        self.deps = _DepAnalysis(module)

        names = _Names()
        # Scalar slot order mirrors Simulation.reset() (minus memories).
        self.scalar_names: List[str] = (
            [p.name for p in module.ports.values()]
            + [r.name for r in module.regs.values()]
            + [c.name for c in module.counters.values()]
            + [f.state_signal for f in module.fsms.values()]
            + [b.output for b in module.datapath_blocks]
            + [f.dynbusy_signal for f in module.fsms.values()
               if f.dynamic_waits]
        )
        self.scalar_local = {
            name: names.make("v_", name) for name in self.scalar_names
        }
        self.mem_names = list(module.memories)
        self.mem_local = {
            name: names.make("m_", name) for name in self.mem_names
        }
        self.wire_local = {
            name: names.make("w_", name) for name in module.wire_order
        }
        self.fsms: List[Fsm] = list(module.fsms.values())
        self.dyn_fsms = [f for f in self.fsms if f.dynamic_waits]
        self.down = [c for c in module.counters.values() if c.mode == "down"]
        self.up = [c for c in module.counters.values() if c.mode == "up"]
        self.cn = {c.name: names.make("cn_", c.name)
                   for c in self.down + self.up}
        self.ch = {c.name: names.make("ch_", c.name)
                   for c in self.down + self.up}
        self.zu = {c.name: names.make("zu_", c.name) for c in self.up}
        written = {u.reg for u in module.updates}
        for fsm in self.fsms:
            for t in fsm.transitions:
                for reg, _value in t.actions:
                    written.add(reg)
        self.pending_regs = [r for r in module.regs if r in written]
        self.p_local = {r: names.make("p_", r) for r in self.pending_regs}

        self._lines: List[str] = []
        self._indent = 1

    # -- emission helpers ----------------------------------------------
    def w(self, line: str = "") -> None:
        self._lines.append("    " * self._indent + line if line else "")

    def push(self) -> None:
        self._indent += 1

    def pop(self) -> None:
        self._indent -= 1

    # -- expression rendering ------------------------------------------
    def ref(self, name: str) -> str:
        local = self.scalar_local.get(name)
        if local is not None:
            return local
        local = self.wire_local.get(name)
        if local is not None:
            return local
        if name.startswith(_MEM_PREFIX):
            return self.mem_local[name[len(_MEM_PREFIX):]]
        raise KeyError(f"stepjit: unknown signal {name!r} in {self.m.name}")

    def render(self, expr: Expr) -> str:
        original = getattr(expr, "original", None)
        if original is not None:  # CompiledExpr wrapper: use the tree
            return self.render(original)
        if isinstance(expr, Const):
            return repr(expr.value)
        if isinstance(expr, Sig):
            return self.ref(expr.name)
        if isinstance(expr, MemRead):
            mem = self.mem_local[expr.memory]
            idx = self.render(expr.index)
            if _SIMPLE_ATOM.match(idx):
                return f"({mem}[{idx}] if 0 <= {idx} < len({mem}) else 0)"
            return (
                "(lambda _d, _i: _d[_i] if 0 <= _i < len(_d) else 0)"
                f"({mem}, {idx})"
            )
        if isinstance(expr, Mux):
            return (f"({self.render(expr.a)} if {self.cond(expr.sel)}"
                    f" else {self.render(expr.b)})")
        if isinstance(expr, UnOp):
            a = self.render(expr.a)
            if expr.op == "not":
                return f"(0 if {a} else 1)"
            if expr.op == "bool":
                return f"(1 if {a} else 0)"
            return f"(-({a}))"
        if isinstance(expr, BinOp):
            a = self.render(expr.a)
            b = self.render(expr.b)
            op = expr.op
            if op in _PYOPS:
                return f"({a} {_PYOPS[op]} {b})"
            if op in _CMPOPS:
                return f"(1 if {a} {_CMPOPS[op]} {b} else 0)"
            if op == "div":
                return f"(({a}) // ({b}) if ({b}) else 0)"
            if op == "mod":
                return f"(({a}) % ({b}) if ({b}) else 0)"
            if op == "min":
                return f"min({a}, {b})"
            if op == "max":
                return f"max({a}, {b})"
        raise TypeError(f"cannot compile expression node {expr!r}")

    def cond(self, expr: Optional[Expr]) -> str:
        """Render for a boolean context (integer truthiness)."""
        if expr is None:
            return "1"
        original = getattr(expr, "original", None)
        if original is not None:
            return self.cond(original)
        if isinstance(expr, BinOp) and expr.op in _CMPOPS:
            a = self.render(expr.a)
            b = self.render(expr.b)
            return f"{a} {_CMPOPS[expr.op]} {b}"
        if isinstance(expr, UnOp):
            if expr.op == "not":
                return f"not ({self.cond(expr.a)})"
            if expr.op == "bool":
                return self.cond(expr.a)
        return self.render(expr)

    # -- veto tables ----------------------------------------------------
    def veto_terms(self, pair) -> List[str]:
        """Boolean locals that, when set, veto a fast-forward jump."""
        unstable, zerocmp = pair
        terms = []
        for name in sorted(unstable):
            flag = self.ch.get(name)
            if flag is not None:
                terms.append(flag)
        for name in sorted(zerocmp):
            # Zero-compares are stable except on an up counter leaving 0.
            flag = self.zu.get(name)
            if flag is not None:
                terms.append(flag)
        return terms

    def arc_veto_terms(self, fsm: Fsm, state: str) -> List[str]:
        terms: List[str] = []
        for t in fsm.transitions_from(state):
            for term in self.veto_terms(self.deps.analyze(t.cond)):
                if term not in terms:
                    terms.append(term)
        return terms

    # -- program assembly -----------------------------------------------
    def source(self) -> str:
        self._lines = [
            f"# stepjit kernel for module {self.m.name!r}",
            f"# variant: elide={sorted(self.elide)!r}, "
            f"track={self.track}, listener={self.has_listener}, "
            f"fast_forward={self.fast_forward}",
            "def _step(S, MEMS, DYN, SC, cycle, max_cycles, listener):",
        ]
        self._emit_unpack()
        self.w("finished = 0")
        self.w("_ffj = 0")
        self.w("while cycle < max_cycles:")
        self.push()
        self._emit_wires()
        self._emit_done_check()
        self._emit_arc_selection()
        if self.fast_forward:
            self._emit_fast_forward()
        self._emit_counters()
        self._emit_updates()
        self._emit_arc_commit_prep()
        self._emit_commit()
        self.pop()
        self._emit_writeback()
        self.w("return (cycle, finished, _ffj)")
        return "\n".join(self._lines) + "\n"

    def _emit_unpack(self) -> None:
        for slot, name in enumerate(self.scalar_names):
            self.w(f"{self.scalar_local[name]} = S[{slot}]")
        for slot, name in enumerate(self.mem_names):
            self.w(f"{self.mem_local[name]} = MEMS[{slot}]")
        for slot, fsm in enumerate(self.dyn_fsms):
            self.w(f"d_{self.fsms.index(fsm)} = DYN[{slot}]")
        if self.track:
            for i in range(len(self.fsms)):
                self.w(f"SC_{i} = SC[{i}]")
        if self.has_listener:
            self.w("_lt = listener.on_transition")
            self.w("_lcl = listener.on_counter_load")
            self.w("_lcr = listener.on_counter_reset")
            self.w("_wc = listener.wants_cycles")
            self.w("_oc = listener.on_cycle")

    def _emit_writeback(self) -> None:
        for slot, name in enumerate(self.scalar_names):
            self.w(f"S[{slot}] = {self.scalar_local[name]}")
        for slot, fsm in enumerate(self.dyn_fsms):
            self.w(f"DYN[{slot}] = d_{self.fsms.index(fsm)}")

    def _emit_wires(self) -> None:
        for name in self.m.wire_order:
            wire = self.m.wires[name]
            self.w(f"{self.wire_local[name]} = {self.render(wire.expr)}")

    def _emit_done_check(self) -> None:
        self.w(f"if {self.cond(self.m.done_expr)}:")
        self.push()
        self.w("finished = 1")
        self.w("break")
        self.pop()

    # Phase 1: arc selection against pre-cycle state.
    def _emit_arc_selection(self) -> None:
        for i, fsm in enumerate(self.fsms):
            if not fsm.transitions:
                continue
            self.w(f"t_{i} = -1")
            st = self.scalar_local[fsm.state_signal]
            opened = False
            for state, code in fsm.states.items():
                arcs = fsm.transitions_from(state)
                if not arcs:
                    continue
                head = "if" if not opened else "elif"
                opened = True
                self.w(f"{head} {st} == {code}:")
                self.push()
                gates = 0
                if (fsm.name, state) not in self.elide:
                    counter = fsm.wait_states.get(state)
                    if counter is not None:
                        self.w(f"if {self.scalar_local[counter]} <= 0:")
                        self.push()
                        gates += 1
                    if state in fsm.dynamic_waits:
                        self.w(f"if d_{i} <= 0:")
                        self.push()
                        gates += 1
                chained = False
                for t in arcs:
                    if t.cond is None:
                        if chained:
                            self.w("else:")
                            self.push()
                            self.w(f"t_{i} = {t.index}")
                            self.pop()
                        else:
                            self.w(f"t_{i} = {t.index}")
                        break
                    head2 = "elif" if chained else "if"
                    self.w(f"{head2} {self.cond(t.cond)}:")
                    self.push()
                    self.w(f"t_{i} = {t.index}")
                    self.pop()
                    chained = True
                for _ in range(gates):
                    self.pop()
                self.pop()

    # The fast-forward jump: mirrors Simulation._try_skip exactly.
    def _emit_fast_forward(self) -> None:
        fired_terms = [f"t_{i} < 0" for i, fsm in enumerate(self.fsms)
                       if fsm.transitions]
        self.w(f"if {' and '.join(fired_terms) if fired_terms else '1'}:")
        self.push()
        self.w("_j = 0")
        self.w("while 1:")
        self.push()
        self.w("_r = -1")
        self._emit_skip_counters()
        self._emit_skip_fsm_scan()
        self.w("if _r < 0:")
        self.push()
        self.w("break")
        self.pop()
        self._emit_skip_vetoes()
        self.w("if _r <= 1:")
        self.push()
        self.w("break")
        self.pop()
        self.w("_j = _r")
        self.w("break")
        self.pop()
        self.w("if _j:")
        self.push()
        self._emit_skip_commit()
        self.w("continue")
        self.pop()
        self.pop()

    def _emit_skip_counters(self) -> None:
        for c in self.down:
            v = self.scalar_local[c.name]
            guard = f"{v} > 0"
            if c.enable is not None:
                guard += f" and ({self.cond(c.enable)})"
            self.w(f"{self.ch[c.name]} = 1 if {guard} else 0")
            self.w(f"if {self.ch[c.name]}:")
            self.push()
            eta = v if c.step == 1 else f"-(-{v} // {c.step})"
            self.w(f"_t = {eta}")
            self.w("if _r < 0 or _t < _r:")
            self.push()
            self.w("_r = _t")
            self.pop()
            self.pop()
        for c in self.up:
            v = self.scalar_local[c.name]
            if c.load_cond is not None:
                self.w(f"if {self.cond(c.load_cond)}:")
                self.push()
                self.w("break")  # a reset would fire this cycle
                self.pop()
            if c.enable is None:
                self.w(f"{self.ch[c.name]} = 1")
            else:
                self.w(f"{self.ch[c.name]} = "
                       f"1 if {self.cond(c.enable)} else 0")
            self.w(f"{self.zu[c.name]} = "
                   f"1 if {self.ch[c.name]} and {v} == 0 else 0")
            self.w(f"if {self.ch[c.name]}:")
            self.push()
            self.w(f"_t = ({c.mask} - {v}) // {c.step}")  # wrap bound
            self.w("if _r < 0 or _t < _r:")
            self.push()
            self.w("_r = _t")
            self.pop()
            self.pop()

    def _emit_skip_fsm_scan(self) -> None:
        for i, fsm in enumerate(self.fsms):
            st = self.scalar_local[fsm.state_signal]
            branches: List[Tuple[int, List[str]]] = []
            for state, code in fsm.states.items():
                body: List[str] = []
                elided = (fsm.name, state) in self.elide
                counter = fsm.wait_states.get(state)
                arc_terms = self.arc_veto_terms(fsm, state)
                if counter is not None and not elided:
                    body.append(f"if {self.scalar_local[counter]} > 0:")
                    body.append(f"    if not {self.ch[counter]}:")
                    body.append("        break")  # parked, no ETA
                    if arc_terms:
                        body.append("else:")
                        body.append(f"    if {' or '.join(arc_terms)}:")
                        body.append("        break")
                elif state in fsm.dynamic_waits and not elided:
                    body.append(f"if d_{i} > 0:")
                    body.append(f"    if _r < 0 or d_{i} < _r:")
                    body.append(f"        _r = d_{i}")
                    if arc_terms:
                        body.append("else:")
                        body.append(f"    if {' or '.join(arc_terms)}:")
                        body.append("        break")
                elif arc_terms:
                    body.append(f"if {' or '.join(arc_terms)}:")
                    body.append("    break")
                if body:
                    branches.append((code, body))
            opened = False
            for code, body in branches:
                head = "if" if not opened else "elif"
                opened = True
                self.w(f"{head} {st} == {code}:")
                self.push()
                for line in body:
                    self.w(line)
                self.pop()

    def _emit_skip_vetoes(self) -> None:
        # Unconditional vetoes: counter load/enable deps, update deps,
        # and done-expression deps (order of abort checks is free — all
        # evaluations are pure).
        terms: List[str] = []
        for c in self.down + self.up:
            lu, lz = self.deps.analyze(c.load_cond)
            eu, ez = self.deps.analyze(c.enable)
            for term in self.veto_terms((lu | eu, lz | ez)):
                if term not in terms:
                    terms.append(term)
        for upd in self.m.updates:
            for term in self.veto_terms(self.deps.analyze(upd.cond)):
                if term not in terms:
                    terms.append(term)
        for term in self.veto_terms(self.deps.analyze(self.m.done_expr)):
            if term not in terms:
                terms.append(term)
        if terms:
            self.w(f"if {' or '.join(terms)}:")
            self.push()
            self.w("break")
            self.pop()
        for c in self.down:
            # A load on a non-counting down counter would fire mid-jump.
            self.w(f"if not {self.ch[c.name]} and "
                   f"({self.cond(c.load_cond)}):")
            self.push()
            self.w("break")
            self.pop()
        for upd in self.m.updates:
            # A register write that fires this cycle forbids jumping.
            guard = self.cond(upd.cond)
            if upd.fsm is not None:
                fsm = self.m.fsms[upd.fsm]
                st = self.scalar_local[fsm.state_signal]
                code = fsm.code_of(upd.state)
                guard = (f"{st} == {code} and ({guard})"
                         if upd.cond is not None else f"{st} == {code}")
            self.w(f"if {guard}:")
            self.push()
            self.w("break")
            self.pop()

    def _emit_skip_commit(self) -> None:
        for c in self.down:
            v = self.scalar_local[c.name]
            self.w(f"if {self.ch[c.name]}:")
            self.push()
            delta = "_j" if c.step == 1 else f"_j * {c.step}"
            self.w(f"_t = {v} - {delta}")
            self.w(f"{v} = _t if _t > 0 else 0")
            self.pop()
        for c in self.up:
            v = self.scalar_local[c.name]
            self.w(f"if {self.ch[c.name]}:")
            self.push()
            delta = "_j" if c.step == 1 else f"_j * {c.step}"
            self.w(f"{v} = ({v} + {delta}) & {c.mask}")
            self.pop()
        for i, fsm in enumerate(self.fsms):
            st = self.scalar_local[fsm.state_signal]
            live_dyn = [code for state, code in fsm.states.items()
                        if state in fsm.dynamic_waits
                        and (fsm.name, state) not in self.elide]
            if live_dyn:
                parked = " or ".join(f"{st} == {code}" for code in live_dyn)
                self.w(f"if ({parked}) and d_{i} > 0:")
                self.push()
                self.w(f"d_{i} -= _j")
                self.pop()
            if fsm.dynamic_waits:
                busy = self.scalar_local[fsm.dynbusy_signal]
                self.w(f"{busy} = 1 if d_{i} > 0 else 0")
            if self.track:
                self.w(f"SC_{i}[{st}] += _j")
        self.w("cycle += _j")
        self.w("_ffj += 1")
        self._emit_on_cycle()

    # Phase 2a: counters.
    def _emit_counters(self) -> None:
        for c in self.down:
            v = self.scalar_local[c.name]
            cn = self.cn[c.name]
            self.w(f"{cn} = -1")
            self.w(f"if {self.cond(c.load_cond)}:")
            self.push()
            self.w(f"{cn} = ({self.render(c.load_value)}) & {c.mask}")
            if self.has_listener:
                self.w(f"_lcl({c.name!r}, {cn})")
            self.pop()
            guard = f"{v} > 0"
            if c.enable is not None:
                guard += f" and ({self.cond(c.enable)})"
            self.w(f"elif {guard}:")
            self.push()
            self.w(f"_t = {v} - {c.step}")
            self.w(f"{cn} = _t if _t > 0 else 0")
            self.pop()
        for c in self.up:
            v = self.scalar_local[c.name]
            cn = self.cn[c.name]
            self.w(f"{cn} = -1")
            head = "if"
            if c.load_cond is not None:
                self.w(f"if {self.cond(c.load_cond)}:")
                self.push()
                self.w(f"{cn} = 0")
                if self.has_listener:
                    self.w(f"_lcr({c.name!r}, {v})")
                self.pop()
                head = "elif"
            if c.enable is None:
                if head == "elif":
                    self.w("else:")
                    self.push()
                    self.w(f"{cn} = ({v} + {c.step}) & {c.mask}")
                    self.pop()
                else:
                    self.w(f"{cn} = ({v} + {c.step}) & {c.mask}")
            else:
                self.w(f"{head} {self.cond(c.enable)}:")
                self.push()
                self.w(f"{cn} = ({v} + {c.step}) & {c.mask}")
                self.pop()

    # Phase 2b: update rules (globals first, then state-bound ones).
    def _emit_updates(self) -> None:
        for reg in self.pending_regs:
            self.w(f"{self.p_local[reg]} = None")
        for upd in self.m.updates:
            if upd.fsm is None:
                self._emit_one_update(upd)
        for fsm in self.fsms:
            per_state: Dict[str, List] = {}
            for upd in self.m.updates:
                if upd.fsm == fsm.name:
                    per_state.setdefault(upd.state, []).append(upd)
            if not per_state:
                continue
            st = self.scalar_local[fsm.state_signal]
            opened = False
            for state, code in fsm.states.items():
                upds = per_state.get(state)
                if not upds:
                    continue
                head = "if" if not opened else "elif"
                opened = True
                self.w(f"{head} {st} == {code}:")
                self.push()
                for upd in upds:
                    self._emit_one_update(upd)
                self.pop()

    def _emit_one_update(self, upd) -> None:
        target = self.p_local[upd.reg]
        if upd.cond is None:
            self.w(f"{target} = {self.render(upd.value)}")
        else:
            self.w(f"if {self.cond(upd.cond)}:")
            self.push()
            self.w(f"{target} = {self.render(upd.value)}")
            self.pop()

    # Phase 2c: fired arcs — next state, entry actions, dynamic waits.
    def _emit_arc_commit_prep(self) -> None:
        for i, fsm in enumerate(self.fsms):
            if not fsm.transitions:
                continue
            if fsm.dynamic_waits:
                self.w(f"nd_{i} = -1")
            self.w(f"if t_{i} >= 0:")
            self.push()
            opened = False
            for t in fsm.transitions:
                head = "if" if not opened else "elif"
                opened = True
                self.w(f"{head} t_{i} == {t.index}:")
                self.push()
                self.w(f"ns_{i} = {fsm.code_of(t.dst)}")
                for reg, value in t.actions:
                    self.w(f"{self.p_local[reg]} = {self.render(value)}")
                if t.dst in fsm.dynamic_waits:
                    if (fsm.name, t.dst) in self.elide:
                        self.w(f"nd_{i} = 0")
                    else:
                        duration = fsm.dynamic_waits[t.dst]
                        self.w(f"_t = {self.render(duration)}")
                        self.w(f"nd_{i} = _t if _t > 0 else 0")
                if self.has_listener:
                    self.w(f"_lt({fsm.name!r}, {t.src!r}, {t.dst!r})")
                self.pop()
            self.pop()

    # Phase 3: commit.
    def _emit_commit(self) -> None:
        if self.track:
            for i, fsm in enumerate(self.fsms):
                st = self.scalar_local[fsm.state_signal]
                self.w(f"SC_{i}[{st}] += 1")  # keyed on pre-commit state
        for c in self.down + self.up:
            cn = self.cn[c.name]
            self.w(f"if {cn} >= 0:")
            self.push()
            self.w(f"{self.scalar_local[c.name]} = {cn}")
            self.pop()
        for reg in self.pending_regs:
            p = self.p_local[reg]
            self.w(f"if {p} is not None:")
            self.push()
            mask = self.m.regs[reg].mask
            self.w(f"{self.scalar_local[reg]} = {p} & {mask}")
            self.pop()
        for i, fsm in enumerate(self.fsms):
            st = self.scalar_local[fsm.state_signal]
            if fsm.transitions:
                self.w(f"if t_{i} >= 0:")
                self.push()
                self.w(f"{st} = ns_{i}")
                if fsm.dynamic_waits:
                    self.w(f"if nd_{i} >= 0:")
                    self.push()
                    self.w(f"d_{i} = nd_{i}")
                    self.pop()
                self.pop()
                if fsm.dynamic_waits:
                    self.w(f"elif d_{i} > 0:")
                    self.push()
                    self.w(f"d_{i} -= 1")  # parked in a dynamic wait
                    self.pop()
            elif fsm.dynamic_waits:
                self.w(f"if d_{i} > 0:")
                self.push()
                self.w(f"d_{i} -= 1")
                self.pop()
            if fsm.dynamic_waits:
                busy = self.scalar_local[fsm.dynbusy_signal]
                self.w(f"{busy} = 1 if d_{i} > 0 else 0")
        self.w("cycle += 1")
        self._emit_on_cycle()

    def _emit_on_cycle(self) -> None:
        if not self.has_listener:
            return
        pairs = [f"{name!r}: {self.scalar_local[name]}"
                 for name in self.scalar_names]
        pairs += [f"'{_MEM_PREFIX}{name}': {self.mem_local[name]}"
                  for name in self.mem_names]
        self.w("if _wc:")
        self.push()
        self.w(f"_oc(cycle, {{{', '.join(pairs)}}})")
        self.pop()


class StepProgram:
    """A compiled whole-cycle stepper for one (module, variant) pair.

    Holds the generated source (for inspection/tests) and the compiled
    function, plus the slot layout the :class:`StepSimulation` uses to
    pack and unpack architectural state.  Pickles as (module, options)
    and regenerates its code on load, exactly like ``CompiledExpr``.
    """

    def __init__(self, module: Module,
                 elide: Iterable[Tuple[str, str]] = (),
                 track_state_cycles: bool = True,
                 has_listener: bool = False,
                 fast_forward: bool = True):
        start = perf_counter()
        self.module = module
        self.elide = frozenset(elide)
        self.track_state_cycles = bool(track_state_cycles)
        self.has_listener = bool(has_listener)
        self.fast_forward = bool(fast_forward)
        compiler = _StepCompiler(module, self.elide,
                                 self.track_state_cycles,
                                 self.has_listener, self.fast_forward)
        self.source = compiler.source()
        namespace: Dict[str, object] = {}
        exec(compile(self.source, f"<stepjit:{module.name}>", "exec"),
             namespace)
        self.fn = namespace["_step"]
        self.scalar_names = list(compiler.scalar_names)
        self.mem_keys = [f"{_MEM_PREFIX}{name}"
                         for name in compiler.mem_names]
        self.fsm_names = [f.name for f in compiler.fsms]
        self.fsm_state_signals = [f.state_signal for f in compiler.fsms]
        self.fsm_states = [
            [state for state, _code in sorted(f.states.items(),
                                              key=lambda kv: kv[1])]
            for f in compiler.fsms
        ]
        self.dyn_names = [f.name for f in compiler.dyn_fsms]
        self.codegen_s = perf_counter() - start
        obs = get_observer()
        if obs is not None:
            obs.metrics.inc("sim.stepjit.compiles")
            obs.metrics.inc("sim.stepjit.codegen_s", self.codegen_s)

    def __reduce__(self):
        # The generated function is unpicklable; it is a pure function
        # of (module, options), so regenerate on load — this is what
        # lets steppers ride through pool workers and the artifact
        # cache the way CompiledExpr does.
        return (StepProgram, (self.module, tuple(sorted(self.elide)),
                              self.track_state_cycles, self.has_listener,
                              self.fast_forward))


#: module -> {variant key -> StepProgram}; weak so modules can die.
_PROGRAMS: "WeakKeyDictionary[Module, Dict]" = WeakKeyDictionary()


def compile_stepper(module: Module, *,
                    elide: Iterable[Tuple[str, str]] = (),
                    track_state_cycles: bool = True,
                    has_listener: bool = False,
                    fast_forward: bool = True) -> StepProgram:
    """The cached :class:`StepProgram` for a module variant."""
    variants = _PROGRAMS.get(module)
    if variants is None:
        variants = _PROGRAMS.setdefault(module, {})
    key = (frozenset(elide), bool(track_state_cycles),
           bool(has_listener), bool(fast_forward))
    program = variants.get(key)
    if program is None:
        program = variants[key] = StepProgram(
            module, key[0], key[1], key[2], key[3])
    return program


class StepSimulation(Simulation):
    """Drop-in :class:`Simulation` backed by the generated stepper.

    Construction, ``reset``, ``load`` and all inspection surfaces
    (``state``, ``cycle``, ``state_cycles``, ``_fsm_state``) behave
    exactly like the interpreter's; only ``run`` differs — it packs the
    state dict into flat slots, executes the compiled kernel, and
    unpacks the (cycle-exact) result back.
    """

    def _build_static(self) -> None:
        # The stepper bakes the arc tables and dependence analyses into
        # generated code; skip the interpreter's per-instance tables.
        self._fsms = list(self.module.fsms.values())

    def program(self) -> StepProgram:
        """The compiled stepper for this simulation's configuration."""
        return compile_stepper(
            self.module, elide=self.elide,
            track_state_cycles=self.track_state_cycles,
            has_listener=self.listener is not None,
            fast_forward=self.fast_forward)

    def run(self, max_cycles: int = 200_000_000) -> RunResult:
        """Run until done (or ``max_cycles``) on the compiled kernel."""
        program = self.program()
        state = self.state
        scalars = [state[name] for name in program.scalar_names]
        mems = [state[key] for key in program.mem_keys]
        dyn = [self._dyn_stall[name] for name in program.dyn_names]
        if self.track_state_cycles:
            sc = [
                [self.state_cycles.get((name, s), 0) for s in states]
                for name, states in zip(program.fsm_names,
                                        program.fsm_states)
            ]
        else:
            sc = None
        start_cycle = self.cycle
        start = perf_counter()
        cycle, finished, ff_jumps = program.fn(
            scalars, mems, dyn, sc, self.cycle, max_cycles, self.listener)
        wall = perf_counter() - start
        for name, value in zip(program.scalar_names, scalars):
            state[name] = value
        for name, value in zip(program.dyn_names, dyn):
            self._dyn_stall[name] = value
        for name, signal, states in zip(program.fsm_names,
                                        program.fsm_state_signals,
                                        program.fsm_states):
            self._fsm_state[name] = states[state[signal]]
        self.cycle = cycle
        self.ff_jumps += ff_jumps
        if self.track_state_cycles:
            cells = self.state_cycles  # preserve dict identity: callers
            cells.clear()              # hold and clear() this mapping
            for name, states, counts in zip(program.fsm_names,
                                            program.fsm_states, sc):
                for s, count in zip(states, counts):
                    if count:
                        cells[(name, s)] = count
        record_sim_run("stepjit", cycle - start_cycle, wall, ff_jumps)
        return RunResult(cycle, bool(finished), dict(self.state_cycles))
