"""Job and task bookkeeping (Sec. 2.2 of the paper).

A *task* is a piece of work with an associated deadline (decoding one
frame); a *job* is a dynamic instance of a task.  ``JobRecord`` carries
everything the runtime needs about one job: the ground-truth execution
cycles (from RTL simulation), the recorded feature vector, the
slice-based prediction, and switching-activity data for the energy
model.  Controllers only see the fields their strategy is entitled to
(the oracle reads ``actual_cycles``; the predictive controller reads
``predicted_cycles``; PID sees nothing until the job retires).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..dvfs.energy import JobActivity


@dataclass(frozen=True)
class Task:
    """A deadline-bearing piece of work."""

    name: str
    deadline: float  # seconds per job

    def __post_init__(self) -> None:
        if self.deadline <= 0:
            raise ValueError("deadline must be positive")


@dataclass(frozen=True)
class JobRecord:
    """One job's ground truth plus precomputed predictor outputs."""

    index: int
    actual_cycles: int
    activity: JobActivity
    features: Optional[np.ndarray] = None
    predicted_cycles: Optional[float] = None
    slice_cycles: int = 0
    coarse_param: int = 0

    def __post_init__(self) -> None:
        if self.actual_cycles <= 0:
            raise ValueError("jobs must take at least one cycle")
        if self.slice_cycles < 0:
            raise ValueError("slice cycles cannot be negative")


@dataclass(frozen=True)
class JobOutcome:
    """What happened when one job ran under a controller.

    ``release`` and ``start`` pin the job to the wall clock as the
    episode runner computed it — carry-over from an overrunning
    predecessor makes ``start > release``.  Recording them here (once,
    in ``run_episode``) is what lets ``trace_episode`` render the
    timeline without re-deriving it.
    """

    job: JobRecord
    voltage: float
    frequency: float
    boosted: bool
    t_slice: float
    t_switch: float
    t_exec: float
    energy: float
    missed: bool
    release: float = 0.0
    start: float = 0.0

    @property
    def total_time(self) -> float:
        return self.t_slice + self.t_switch + self.t_exec

    @property
    def finish(self) -> float:
        """Wall-clock completion time (start plus all time spent)."""
        return self.start + self.total_time
