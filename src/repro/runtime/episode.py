"""Episode runner: a controller driving an accelerator over a workload.

Per job (Fig 4 of the paper): run the prediction slice (if the scheme
uses one), switch voltage/frequency if the level changed, execute the
job, check the deadline, and integrate energy.  All times and energies
come from the precomputed :class:`JobRecord` ground truth plus the
energy model — the controller only chooses levels.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from ..dvfs.energy import EnergyModel, JobActivity
from ..obs import get_observer

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from ..dvfs.controllers import Controller
from ..units import DVFS_SWITCH_TIME, deadline_missed
from .jobs import JobOutcome, JobRecord, Task

#: Zero-activity placeholder: running ``job_energy`` with it prices a
#: window where the accelerator is powered but does no work (leakage
#: only, for any energy model that follows the ``job_energy`` protocol).
_IDLE_ACTIVITY = JobActivity(cycles=0)


def switch_window_energy(energy_model: EnergyModel,
                         point: "object", duration: float) -> float:
    """Leakage energy of holding ``point`` over a DVFS switch window.

    The switch costs wall time, and powered silicon leaks for all of
    it — pricing the window as a zero-activity job charges exactly the
    leakage term at the destination point's voltage.  Shared by
    :func:`run_episode` and the invariant checker so their accounting
    can never drift apart.
    """
    if duration <= 0.0:
        return 0.0
    return energy_model.job_energy(_IDLE_ACTIVITY, point, duration)


def strict_checks_enabled() -> bool:
    """Whether ``REPRO_CHECK`` asks for post-episode invariant checks."""
    return os.environ.get("REPRO_CHECK", "").lower() in (
        "1", "true", "strict")


@dataclass
class EpisodeResult:
    """All job outcomes of one controller run, with aggregates."""

    controller: str
    task: Task
    outcomes: List[JobOutcome]

    @property
    def n_jobs(self) -> int:
        return len(self.outcomes)

    @property
    def total_energy(self) -> float:
        return sum(o.energy for o in self.outcomes)

    @property
    def miss_count(self) -> int:
        return sum(1 for o in self.outcomes if o.missed)

    @property
    def miss_rate(self) -> float:
        return self.miss_count / self.n_jobs if self.outcomes else 0.0

    @property
    def boost_count(self) -> int:
        return sum(1 for o in self.outcomes if o.boosted)

    @property
    def switch_count(self) -> int:
        """Jobs that paid a DVFS switch (charged schemes only)."""
        return sum(1 for o in self.outcomes if o.t_switch > 0.0)

    def normalized_energy(self, baseline: "EpisodeResult") -> float:
        """Energy as a fraction of a baseline run (same jobs)."""
        if baseline.n_jobs != self.n_jobs:
            raise ValueError("baseline ran a different job count")
        base = baseline.total_energy
        if base <= 0:
            raise ValueError("baseline energy must be positive")
        return self.total_energy / base


def run_episode(controller: "Controller",
                jobs: Sequence[JobRecord],
                task: Task,
                energy_model: EnergyModel,
                slice_energy_model: Optional[EnergyModel] = None,
                t_switch: float = DVFS_SWITCH_TIME,
                strict: Optional[bool] = None) -> EpisodeResult:
    """Run ``jobs`` under ``controller`` and account time and energy.

    Jobs are released periodically (Fig 1 of the paper): job *i* may
    start at ``i * deadline`` and must finish by ``(i+1) * deadline``.
    A job that overruns its period delays the next job's start, which
    shrinks that job's budget — so one under-prediction forces the
    following job to a high (expensive) level.

    ``slice_energy_model`` prices the prediction slice's execution (at
    nominal voltage); required when the controller runs a slice.

    ``strict=True`` replays the finished episode through the invariant
    checker (:mod:`repro.check`) and raises
    :class:`~repro.check.InvariantError` on any accounting violation;
    ``None`` defers to the ``REPRO_CHECK`` environment variable.
    """
    controller.reset()
    levels = controller.levels
    nominal = levels.nominal
    previous = nominal  # the accelerator idles at nominal before job 0
    outcomes: List[JobOutcome] = []
    now = 0.0
    observer = get_observer()  # None keeps the per-job cost at one test
    switch_count = 0

    for index, job in enumerate(jobs):
        release = index * task.deadline
        start = max(now, release)
        budget = release + task.deadline - start
        plan = controller.plan(job, budget)
        point = plan.point

        t_slice = plan.t_slice
        switch_needed = point != previous and controller.charge_overheads
        t_switch_actual = t_switch if switch_needed else 0.0
        t_exec = job.actual_cycles / point.frequency
        total = t_slice + t_switch_actual + t_exec
        missed = deadline_missed(start + total, release, task.deadline)
        now = start + total
        if switch_needed:
            switch_count += 1

        energy = energy_model.job_energy(job.activity, point, t_exec)
        # The switch window adds wall time, so it must add leakage too —
        # otherwise switching is time-expensive yet energy-free and the
        # scheme comparison under-charges switch-happy controllers.
        energy += switch_window_energy(energy_model, point, t_switch_actual)
        if controller.uses_slice and t_slice > 0.0:
            if slice_energy_model is None:
                raise ValueError(
                    f"controller {controller.name} runs a slice but no "
                    "slice energy model was provided"
                )
            slice_activity = JobActivity(cycles=job.slice_cycles)
            energy += slice_energy_model.job_energy(
                slice_activity, nominal, t_slice)

        outcomes.append(JobOutcome(
            job=job,
            voltage=point.voltage,
            frequency=point.frequency,
            boosted=point.is_boost,
            t_slice=t_slice,
            t_switch=t_switch_actual,
            t_exec=t_exec,
            energy=energy,
            missed=missed,
            release=release,
            start=start,
        ))
        previous = point
        controller.observe(job)

        if observer is not None:
            slack = release + task.deadline - now
            observer.emit(
                "job",
                controller=controller.name, task=task.name,
                index=job.index,
                predicted_cycles=job.predicted_cycles,
                actual_cycles=job.actual_cycles,
                voltage=point.voltage, frequency=point.frequency,
                slack=slack, missed=missed,
                boosted=point.is_boost, switched=switch_needed,
                t_slice=t_slice, t_exec=t_exec, energy=energy,
            )
            observer.metrics.observe("episode.slack_ms", slack * 1e3)

    if observer is not None:
        observer.metrics.inc("episode.jobs", len(outcomes))
        observer.metrics.inc(
            "episode.misses", sum(1 for o in outcomes if o.missed))
        observer.metrics.inc("episode.switches", switch_count)
        observer.emit(
            "episode",
            controller=controller.name, task=task.name,
            n_jobs=len(outcomes),
            energy=sum(o.energy for o in outcomes),
            misses=sum(1 for o in outcomes if o.missed),
            switches=switch_count,
        )

    result = EpisodeResult(controller=controller.name, task=task,
                           outcomes=outcomes)
    if strict is None:
        strict = strict_checks_enabled()
    if strict:
        # Imported lazily: repro.check depends on this module.
        from ..check import InvariantError, check_episode
        violations = check_episode(
            result,
            energy_model=energy_model,
            slice_energy_model=slice_energy_model,
            levels=levels,
            t_switch=t_switch,
            uses_slice=controller.uses_slice,
            charge_overheads=controller.charge_overheads,
        )
        if violations:
            raise InvariantError(violations)
    return result
