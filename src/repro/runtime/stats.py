"""Aggregation helpers for evaluation results (Figs 11-17 style)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from .episode import EpisodeResult


@dataclass(frozen=True)
class SchemeSummary:
    """One (benchmark, scheme) cell of the evaluation figures."""

    benchmark: str
    scheme: str
    normalized_energy_pct: float  # vs. baseline, in percent
    miss_rate_pct: float

    @property
    def energy_savings_pct(self) -> float:
        return 100.0 - self.normalized_energy_pct


def summarize(benchmark: str, result: EpisodeResult,
              baseline: EpisodeResult) -> SchemeSummary:
    """One (benchmark, scheme) cell, normalized to a baseline."""
    return SchemeSummary(
        benchmark=benchmark,
        scheme=result.controller,
        normalized_energy_pct=result.normalized_energy(baseline) * 100.0,
        miss_rate_pct=result.miss_rate * 100.0,
    )


def average_summaries(summaries: Sequence[SchemeSummary],
                      scheme: str) -> SchemeSummary:
    """The figures' 'average' bar: arithmetic mean over benchmarks."""
    rows = [s for s in summaries if s.scheme == scheme]
    if not rows:
        raise ValueError(f"no summaries for scheme {scheme!r}")
    return SchemeSummary(
        benchmark="average",
        scheme=scheme,
        normalized_energy_pct=sum(
            s.normalized_energy_pct for s in rows) / len(rows),
        miss_rate_pct=sum(s.miss_rate_pct for s in rows) / len(rows),
    )


def format_table(summaries: Sequence[SchemeSummary]) -> str:
    """Render summaries as an aligned text table (benchmark x scheme)."""
    benchmarks: List[str] = []
    schemes: List[str] = []
    for s in summaries:
        if s.benchmark not in benchmarks:
            benchmarks.append(s.benchmark)
        if s.scheme not in schemes:
            schemes.append(s.scheme)
    cell: Dict[tuple, SchemeSummary] = {
        (s.benchmark, s.scheme): s for s in summaries
    }
    header = (["benchmark"]
              + [f"{sch}:energy%" for sch in schemes]
              + [f"{sch}:miss%" for sch in schemes])
    rows = [header]
    for bench in benchmarks:
        row = [bench]
        for sch in schemes:
            s = cell.get((bench, sch))
            row.append(f"{s.normalized_energy_pct:.1f}" if s else "-")
        for sch in schemes:
            s = cell.get((bench, sch))
            row.append(f"{s.miss_rate_pct:.2f}" if s else "-")
        rows.append(row)
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    lines = [
        "  ".join(value.rjust(width) for value, width in zip(row, widths))
        for row in rows
    ]
    return "\n".join(lines)
