"""Runtime: jobs, episodes, and result aggregation."""

from .episode import (
    EpisodeResult,
    run_episode,
    strict_checks_enabled,
    switch_window_energy,
)
from .jobs import JobOutcome, JobRecord, Task
from .soc import AcceleratorStream, SocResult, run_soc
from .stats import SchemeSummary, average_summaries, format_table, summarize
from .trace import TracePoint, render_trace, sparkline, trace_episode

__all__ = [
    "AcceleratorStream", "EpisodeResult", "JobOutcome", "JobRecord",
    "SchemeSummary", "SocResult", "Task", "TracePoint",
    "average_summaries", "format_table", "render_trace", "run_episode",
    "run_soc", "sparkline", "strict_checks_enabled", "summarize",
    "switch_window_energy", "trace_episode",
]
