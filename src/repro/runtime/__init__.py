"""Runtime: jobs, episodes, and result aggregation."""

from .episode import EpisodeResult, run_episode
from .jobs import JobOutcome, JobRecord, Task
from .soc import AcceleratorStream, SocResult, run_soc
from .stats import SchemeSummary, average_summaries, format_table, summarize
from .trace import TracePoint, render_trace, sparkline, trace_episode

__all__ = [
    "AcceleratorStream", "EpisodeResult", "JobOutcome", "JobRecord",
    "SchemeSummary", "SocResult", "Task", "TracePoint",
    "average_summaries", "format_table", "render_trace", "run_episode",
    "run_soc", "sparkline", "summarize", "trace_episode",
]
