"""Multi-accelerator SoC view: several task streams at once.

The paper's system setup (Sec. 2.1) has many loosely-coupled
accelerators, each with an individually-controlled DVFS level; related
work [18] manages several of them together.  ``run_soc`` runs one
episode per accelerator stream (levels are independent, exactly as the
paper assumes) and aggregates chip-level quantities: total energy, the
worst per-stream miss rate, and the frame-aligned power profile —
which exposes the *peak power* benefit of DVFS that per-accelerator
views hide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..dvfs.energy import EnergyModel

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from ..dvfs.controllers import Controller
from ..units import DVFS_SWITCH_TIME
from .episode import EpisodeResult, run_episode
from .jobs import JobRecord, Task


@dataclass
class AcceleratorStream:
    """One accelerator's workload and control stack on the SoC."""

    name: str
    controller: "Controller"
    jobs: Sequence[JobRecord]
    task: Task
    energy_model: EnergyModel
    slice_energy_model: Optional[EnergyModel] = None


@dataclass
class SocResult:
    """Chip-level aggregation of per-stream episodes."""

    episodes: Dict[str, EpisodeResult]

    @property
    def total_energy(self) -> float:
        return sum(e.total_energy for e in self.episodes.values())

    @property
    def worst_miss_rate(self) -> float:
        return max((e.miss_rate for e in self.episodes.values()),
                   default=0.0)

    @property
    def total_misses(self) -> int:
        return sum(e.miss_count for e in self.episodes.values())

    def frame_power(self) -> List[float]:
        """Chip power per frame period: the sum over streams of each
        stream's energy in that period divided by its period."""
        frames = max(len(e.outcomes) for e in self.episodes.values())
        power = [0.0] * frames
        for episode in self.episodes.values():
            period = episode.task.deadline
            for i, outcome in enumerate(episode.outcomes):
                if i < frames:
                    power[i] += outcome.energy / period
        return power

    @property
    def peak_power(self) -> float:
        profile = self.frame_power()
        return max(profile) if profile else 0.0

    @property
    def average_power(self) -> float:
        profile = self.frame_power()
        return sum(profile) / len(profile) if profile else 0.0

    def normalized_energy(self, baseline: "SocResult") -> float:
        """Chip energy as a fraction of a baseline run."""
        base = baseline.total_energy
        if base <= 0:
            raise ValueError("baseline energy must be positive")
        return self.total_energy / base


def run_soc(streams: Sequence[AcceleratorStream],
            t_switch: float = DVFS_SWITCH_TIME) -> SocResult:
    """Run every stream; DVFS levels are per-accelerator (Sec. 2.1)."""
    names = [s.name for s in streams]
    if len(set(names)) != len(names):
        raise ValueError("stream names must be unique")
    episodes: Dict[str, EpisodeResult] = {}
    for stream in streams:
        episodes[stream.name] = run_episode(
            stream.controller,
            stream.jobs,
            stream.task,
            stream.energy_model,
            slice_energy_model=stream.slice_energy_model,
            t_switch=t_switch,
        )
    return SocResult(episodes=episodes)
