"""Execution traces: per-job timelines and terminal rendering.

``trace_episode`` exposes the wall-clock timeline of an episode
(release, start, finish, slack) — the view a systems person wants when
a miss needs explaining.  The timeline itself is recorded *once* by
``run_episode`` on each :class:`JobOutcome`; this module only reshapes
it, so the trace can never drift from what the episode actually
accounted.  ``render_trace`` draws it as a table plus voltage/slack
sparklines for terminal inspection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .episode import EpisodeResult

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


@dataclass(frozen=True)
class TracePoint:
    """One job's place on the wall clock."""

    index: int
    release: float
    start: float
    finish: float
    voltage: float
    frequency: float
    energy: float
    missed: bool
    deadline: float = 0.0  # the task period (0.0 for legacy callers)

    @property
    def slack(self) -> float:
        """Time left before the deadline at completion (negative on a
        miss)."""
        return self.release + self.deadline - self.finish

    @property
    def queued(self) -> float:
        """How long the job waited for the accelerator.

        ``start - release``: zero when the accelerator was idle at
        release, and exactly the carry-over delay when the previous
        job overran its period and pushed this job's start.
        """
        return self.start - self.release


def trace_episode(result: EpisodeResult) -> List[TracePoint]:
    """The episode timeline (periodic releases, carry-over).

    Reads the release/start recorded by ``run_episode`` on each
    outcome rather than re-deriving them, so trace and accounting
    cannot disagree.
    """
    deadline = result.task.deadline
    return [
        TracePoint(
            index=i,
            release=outcome.release,
            start=outcome.start,
            finish=outcome.finish,
            voltage=outcome.voltage,
            frequency=outcome.frequency,
            energy=outcome.energy,
            missed=outcome.missed,
            deadline=deadline,
        )
        for i, outcome in enumerate(result.outcomes)
    ]


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render a numeric series as a unicode sparkline."""
    data = list(values)
    if not data:
        return ""
    if len(data) > width:  # downsample by striding
        stride = len(data) / width
        data = [data[int(i * stride)] for i in range(width)]
    lo, hi = min(data), max(data)
    if hi - lo < 1e-15:
        return _SPARK_LEVELS[0] * len(data)
    span = hi - lo
    return "".join(
        _SPARK_LEVELS[int((v - lo) / span * (len(_SPARK_LEVELS) - 1))]
        for v in data
    )


def render_trace(result: EpisodeResult, head: int = 12,
                 width: int = 60) -> str:
    """A terminal-friendly trace: summary sparklines + the first jobs."""
    points = trace_episode(result)
    deadline = result.task.deadline
    lines = [
        f"trace: {result.controller} on {result.task.name} "
        f"({len(points)} jobs, deadline {deadline * 1e3:.1f} ms)",
        f"  V    {sparkline([p.voltage for p in points], width)}",
        f"  slack{sparkline([p.slack / deadline for p in points], width)}",
        f"  {'job':>4s} {'start':>9s} {'finish':>9s} {'V':>6s} "
        f"{'slack_ms':>9s} {'miss':>4s}",
    ]
    for p in points[:head]:
        slack_ms = p.slack * 1e3
        lines.append(
            f"  {p.index:4d} {p.start * 1e3:7.2f}ms {p.finish * 1e3:7.2f}ms "
            f"{p.voltage:6.3f} {slack_ms:9.2f} "
            f"{'MISS' if p.missed else '':>4s}"
        )
    return "\n".join(lines)
