"""Execution traces: per-job timelines and terminal rendering.

``trace_episode`` reconstructs the wall-clock timeline of an episode
(release, start, finish, slack) from its outcomes — the view a systems
person wants when a miss needs explaining.  ``render_trace`` draws it
as a table plus voltage/slack sparklines for terminal inspection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .episode import EpisodeResult

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


@dataclass(frozen=True)
class TracePoint:
    """One job's place on the wall clock."""

    index: int
    release: float
    start: float
    finish: float
    voltage: float
    frequency: float
    energy: float
    missed: bool

    @property
    def slack(self) -> float:
        """Time left before the deadline at completion (negative on a
        miss)."""
        return self.release - self.finish  # deadline == next release

    @property
    def queued(self) -> float:
        """How long the job waited for the accelerator (carry-over)."""
        return self.start - (self.release - 0.0)


def trace_episode(result: EpisodeResult) -> List[TracePoint]:
    """Reconstruct the timeline (periodic releases, carry-over)."""
    deadline = result.task.deadline
    now = 0.0
    points: List[TracePoint] = []
    for i, outcome in enumerate(result.outcomes):
        release = i * deadline
        start = max(now, release)
        finish = start + outcome.total_time
        now = finish
        points.append(TracePoint(
            index=i,
            release=release,
            start=start,
            finish=finish,
            voltage=outcome.voltage,
            frequency=outcome.frequency,
            energy=outcome.energy,
            missed=outcome.missed,
        ))
    return points


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render a numeric series as a unicode sparkline."""
    data = list(values)
    if not data:
        return ""
    if len(data) > width:  # downsample by striding
        stride = len(data) / width
        data = [data[int(i * stride)] for i in range(width)]
    lo, hi = min(data), max(data)
    if hi - lo < 1e-15:
        return _SPARK_LEVELS[0] * len(data)
    span = hi - lo
    return "".join(
        _SPARK_LEVELS[int((v - lo) / span * (len(_SPARK_LEVELS) - 1))]
        for v in data
    )


def render_trace(result: EpisodeResult, head: int = 12,
                 width: int = 60) -> str:
    """A terminal-friendly trace: summary sparklines + the first jobs."""
    points = trace_episode(result)
    deadline = result.task.deadline
    lines = [
        f"trace: {result.controller} on {result.task.name} "
        f"({len(points)} jobs, deadline {deadline * 1e3:.1f} ms)",
        f"  V    {sparkline([p.voltage for p in points], width)}",
        f"  slack{sparkline([(p.release + deadline - p.finish) / deadline for p in points], width)}",
        f"  {'job':>4s} {'start':>9s} {'finish':>9s} {'V':>6s} "
        f"{'slack_ms':>9s} {'miss':>4s}",
    ]
    for p in points[:head]:
        slack_ms = (p.release + deadline - p.finish) * 1e3
        lines.append(
            f"  {p.index:4d} {p.start * 1e3:7.2f}ms {p.finish * 1e3:7.2f}ms "
            f"{p.voltage:6.3f} {slack_ms:9.2f} "
            f"{'MISS' if p.missed else '':>4s}"
        )
    return "\n".join(lines)
