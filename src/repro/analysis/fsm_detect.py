"""Structural FSM identification from a synthesized netlist.

Implements the reproduction of the paper's first analysis step
(Sec. 3.3): "use an algorithm to find FSMs in the design based on
techniques from a previous study [24] on extracting FSMs from a
gate-level netlist.  The algorithm works by analyzing the RTL and
looking for specific structures related to FSMs."

The structure looked for is the classic state-register shape:

* a DFF whose next-value logic is a chain of 2:1 muxes ending in the
  DFF's own output (the hold path);
* every mux data input is a constant (a state code);
* every mux select's combinational cone contains an equality compare
  of the DFF's *own output* against a constant (the source state).

The self-dependence requirement is the discriminator that rejects
ordinary registers (e.g. flags loaded with constants under conditions
gated on *another* FSM's state).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from ..rtl.netlist import Cell, Netlist


@dataclass(frozen=True)
class DetectedTransition:
    """One extracted arc: state codes plus the criteria (select) net."""

    src_code: int
    dst_code: int
    criteria_net: str


@dataclass(frozen=True)
class DetectedFsm:
    """An FSM recovered from netlist structure."""

    state_net: str
    codes: Tuple[int, ...]
    transitions: Tuple[DetectedTransition, ...]

    @property
    def n_states(self) -> int:
        return len(self.codes)


def _const_value(netlist: Netlist, net: str) -> Optional[int]:
    cell = netlist.driver(net)
    if cell is not None and cell.kind == "CONST":
        return cell.param
    return None


def _self_compare_codes(netlist: Netlist, select_net: str,
                        dff_out: str) -> List[int]:
    """Constants compared (EQ) against ``dff_out`` inside a select cone."""
    codes: List[int] = []
    for cell in netlist.comb_cone(select_net):
        if cell.kind != "EQ":
            continue
        a, b = cell.fanin
        if a == dff_out:
            value = _const_value(netlist, b)
        elif b == dff_out:
            value = _const_value(netlist, a)
        else:
            continue
        if value is not None:
            codes.append(value)
    return codes


def detect_fsms(netlist: Netlist) -> List[DetectedFsm]:
    """Find all state registers and extract their transition tables."""
    found: List[DetectedFsm] = []
    for dff in netlist.cells_of_kind("DFF"):
        fsm = _match_state_register(netlist, dff)
        if fsm is not None:
            found.append(fsm)
    return found


def _match_state_register(netlist: Netlist,
                          dff: Cell) -> Optional[DetectedFsm]:
    out = dff.out
    net = dff.fanin[0]
    levels: List[Tuple[str, int]] = []  # (select net, dst code)
    while True:
        cell = netlist.driver(net)
        if cell is None:
            return None
        if cell.kind != "MUX":
            break
        select, data, fallthrough = cell.fanin
        dst = _const_value(netlist, data)
        if dst is None:
            return None  # a non-constant next state: not an FSM register
        levels.append((select, dst))
        net = fallthrough
    if net != out or not levels:
        return None  # chain must terminate in the hold path

    transitions: List[DetectedTransition] = []
    codes: Set[int] = set()
    for select, dst in levels:
        srcs = _self_compare_codes(netlist, select, out)
        if not srcs:
            return None  # select does not depend on own state: not an FSM
        # Exactly one self-compare per criteria in synthesized designs;
        # tolerate several by emitting one arc per source.
        for src in srcs:
            transitions.append(DetectedTransition(src, dst, select))
            codes.add(src)
        codes.add(dst)
    return DetectedFsm(
        state_net=out,
        codes=tuple(sorted(codes)),
        transitions=tuple(transitions),
    )
