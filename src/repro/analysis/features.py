"""Feature definitions (Table 1 of the paper) and the feature matrix.

Four feature kinds exist:

* ``stc``  — state transition count, one per (FSM, src, dst) arc;
* ``ic``   — initialization count, one per counter;
* ``aivs`` — sum of initial values of a down counter (the model learns
  the scaling, so recording the *sum* instead of the average is exactly
  what the paper's hardware does: "it is sufficient to record the sum
  of these values and the prediction model will take care of scaling");
* ``apvs`` — sum of pre-reset values of an up counter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class FeatureSpec:
    """One measurable property extracted during accelerator execution."""

    kind: str  # "stc" | "ic" | "aivs" | "apvs"
    source: str  # FSM name (stc) or counter name
    src_state: str = ""  # stc only
    dst_state: str = ""  # stc only

    def __post_init__(self) -> None:
        if self.kind not in ("stc", "ic", "aivs", "apvs"):
            raise ValueError(f"unknown feature kind {self.kind!r}")
        if self.kind == "stc" and not (self.src_state and self.dst_state):
            raise ValueError("stc features need src and dst states")

    @property
    def name(self) -> str:
        if self.kind == "stc":
            return f"stc:{self.source}:{self.src_state}->{self.dst_state}"
        return f"{self.kind}:{self.source}"

    def __repr__(self) -> str:
        return f"FeatureSpec({self.name})"


class FeatureSet:
    """An ordered collection of feature specs with fast index lookup."""

    def __init__(self, specs: Sequence[FeatureSpec]):
        self.specs: Tuple[FeatureSpec, ...] = tuple(specs)
        names = [s.name for s in self.specs]
        if len(set(names)) != len(names):
            raise ValueError("duplicate feature specs")
        self._index: Dict[str, int] = {n: i for i, n in enumerate(names)}
        # Event dispatch tables used by the recorder.
        self.stc_index: Dict[Tuple[str, str, str], int] = {}
        self.ic_index: Dict[str, int] = {}
        self.aivs_index: Dict[str, int] = {}
        self.apvs_index: Dict[str, int] = {}
        for i, spec in enumerate(self.specs):
            if spec.kind == "stc":
                self.stc_index[(spec.source, spec.src_state,
                                spec.dst_state)] = i
            elif spec.kind == "ic":
                self.ic_index[spec.source] = i
            elif spec.kind == "aivs":
                self.aivs_index[spec.source] = i
            elif spec.kind == "apvs":
                self.apvs_index[spec.source] = i

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def index_of(self, name: str) -> int:
        """Column index of the feature named ``name``."""
        return self._index[name]

    def names(self) -> List[str]:
        """Feature names in column order."""
        return [s.name for s in self.specs]

    def subset(self, indices: Sequence[int]) -> "FeatureSet":
        """A new set containing only the given column indices."""
        return FeatureSet([self.specs[i] for i in indices])

    def __repr__(self) -> str:
        return f"FeatureSet(n={len(self.specs)})"


@dataclass
class FeatureMatrix:
    """Per-job feature values plus observed execution cycles."""

    feature_set: FeatureSet
    x: np.ndarray  # (n_jobs, n_features)
    cycles: np.ndarray  # (n_jobs,)

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=float)
        self.cycles = np.asarray(self.cycles, dtype=float)
        if self.x.ndim != 2:
            raise ValueError("x must be 2-D")
        if self.x.shape[0] != self.cycles.shape[0]:
            raise ValueError("x and cycles disagree on job count")
        if self.x.shape[1] != len(self.feature_set):
            raise ValueError("x and feature_set disagree on feature count")

    @property
    def n_jobs(self) -> int:
        return self.x.shape[0]

    @property
    def n_features(self) -> int:
        return self.x.shape[1]

    def subset(self, indices: Sequence[int]) -> "FeatureMatrix":
        """Restrict to a subset of features (model selection output)."""
        idx = list(indices)
        return FeatureMatrix(
            feature_set=self.feature_set.subset(idx),
            x=self.x[:, idx],
            cycles=self.cycles,
        )
