"""Structural counter identification from a synthesized netlist.

Counters are found the same way FSMs are (Sec. 3.3 of the paper):
pattern matching on the cell structure feeding a DFF.

Down counter shape::

    DFF <- MUX(load_sel, load_value,
               MUX(tick_sel, SUB(self, const_step), self))

where ``tick_sel``'s cone contains a ``self > 0`` compare.

Up counter shape::

    DFF <- MUX(reset_sel, const_0, ADD(self, const_step))
    DFF <- MUX(reset_sel, const_0, MUX(en, ADD(self, const_step), self))

Registers that merely accumulate variable amounts (``acc += x``) do not
match (the step is not constant), mirroring the paper's observation
that only genuine counters carry latency information.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..rtl.netlist import Cell, Netlist


@dataclass(frozen=True)
class DetectedCounter:
    """A counter recovered from netlist structure."""

    net: str
    mode: str  # "down" | "up"
    step: int
    load_cond_net: str   # load (down) or reset (up) select net
    load_value_net: str  # loaded value net (down) / zero const (up)


def _const_value(netlist: Netlist, net: str) -> Optional[int]:
    cell = netlist.driver(net)
    if cell is not None and cell.kind == "CONST":
        return cell.param
    return None


def _is_step(netlist: Netlist, net: str, self_net: str,
             kind: str) -> Optional[int]:
    """If ``net`` is ``self +/- const``, return the constant step."""
    cell = netlist.driver(net)
    if cell is None or cell.kind != kind:
        return None
    a, b = cell.fanin
    if a != self_net:
        return None
    return _const_value(netlist, b)


def _cone_has_gt_zero(netlist: Netlist, select_net: str,
                      self_net: str) -> bool:
    for cell in netlist.comb_cone(select_net):
        if cell.kind == "GT" and cell.fanin[0] == self_net:
            if _const_value(netlist, cell.fanin[1]) == 0:
                return True
    return False


def detect_counters(netlist: Netlist) -> List[DetectedCounter]:
    """Find all counters in the netlist."""
    found: List[DetectedCounter] = []
    for dff in netlist.cells_of_kind("DFF"):
        counter = _match_counter(netlist, dff)
        if counter is not None:
            found.append(counter)
    return found


def _match_counter(netlist: Netlist, dff: Cell) -> Optional[DetectedCounter]:
    out = dff.out
    top = netlist.driver(dff.fanin[0])
    if top is None or top.kind != "MUX":
        return None
    load_sel, load_val, inner_net = top.fanin

    # -- down counter ----------------------------------------------------
    inner = netlist.driver(inner_net)
    if inner is not None and inner.kind == "MUX":
        tick_sel, dec_net, hold = inner.fanin
        step = _is_step(netlist, dec_net, out, "SUB")
        if (step is not None and hold == out
                and _cone_has_gt_zero(netlist, tick_sel, out)):
            return DetectedCounter(
                net=out, mode="down", step=step,
                load_cond_net=load_sel, load_value_net=load_val,
            )
        # -- gated up counter: MUX(reset, 0, MUX(en, ADD, self)) --------
        step = _is_step(netlist, dec_net, out, "ADD")
        if (step is not None and hold == out
                and _const_value(netlist, load_val) == 0):
            return DetectedCounter(
                net=out, mode="up", step=step,
                load_cond_net=load_sel, load_value_net=load_val,
            )
        return None

    # -- free-running up counter: MUX(reset, 0, ADD(self, step)) ---------
    step = _is_step(netlist, inner_net, out, "ADD")
    if step is not None and _const_value(netlist, load_val) == 0:
        return DetectedCounter(
            net=out, mode="up", step=step,
            load_cond_net=load_sel, load_value_net=load_val,
        )
    return None
