"""Human-readable reports of the analysis stage.

``detection_report`` renders what the structural analysis found in a
design — the FSMs with their transition tables, the counters with
their polarity, and the derived feature inventory — the way a designer
would inspect the paper's flow before trusting its instrumentation.
"""

from __future__ import annotations

from typing import List

from ..rtl.module import Module
from ..rtl.netlist import Netlist
from ..rtl import tech
from .counter_detect import detect_counters
from .fsm_detect import detect_fsms
from .instrument import build_feature_set


def detection_report(module: Module, netlist: Netlist) -> str:
    """Render the detection results for one design."""
    fsms = detect_fsms(netlist)
    counters = detect_counters(netlist)
    features = build_feature_set(module, fsms, counters)

    lines: List[str] = []
    out = lines.append
    out(f"design {module.name}")
    out(f"  netlist: {len(netlist)} cells, "
        f"{tech.asic_area(netlist):,.0f} um^2 ASIC")

    fsm_by_net = {f.state_net: f for f in fsms}
    out(f"  FSMs detected: {len(fsms)}")
    for fsm in module.fsms.values():
        det = fsm_by_net.get(fsm.state_signal)
        mark = "ok" if det is not None else "MISSED"
        out(f"    {fsm.name} [{mark}]: {len(fsm.states)} states, "
            f"{len(fsm.transitions)} arcs")
        code_to_state = {c: s for s, c in fsm.states.items()}
        if det is not None:
            for t in det.transitions:
                src = code_to_state.get(t.src_code, f"#{t.src_code}")
                dst = code_to_state.get(t.dst_code, f"#{t.dst_code}")
                tag = " (self)" if t.src_code == t.dst_code else ""
                out(f"      {src} -> {dst}{tag}")

    counter_by_net = {c.net: c for c in counters}
    out(f"  counters detected: {len(counters)}")
    for counter in module.counters.values():
        det = counter_by_net.get(counter.name)
        mark = det.mode if det is not None else "MISSED"
        out(f"    {counter.name}: {mark}, step {counter.step}")

    kinds = {}
    for spec in features:
        kinds[spec.kind] = kinds.get(spec.kind, 0) + 1
    out(f"  candidate features: {len(features)} "
        f"({', '.join(f'{k}={v}' for k, v in sorted(kinds.items()))})")
    return "\n".join(lines)
