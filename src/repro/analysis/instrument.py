"""Instrumentation: turning detections into recordable features.

``build_feature_set`` correlates the *structurally* detected FSMs and
counters with the behavioural module (netlist nets keep their RTL
names, exactly as Yosys-based flows preserve them) and emits one
feature spec per instrumentable quantity.  Detections that do not map
back to a behavioural construct (structural false positives) are
dropped, and real FSMs/counters missed by detection simply yield no
features — both situations degrade prediction rather than break it,
matching the paper's djpeg discussion.

``FeatureRecorder`` is the runtime half: a simulator listener that
accumulates the per-job feature vector.
"""

from __future__ import annotations

import functools
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..rtl.backend import make_simulation, resolve_backend
from ..rtl.module import Module
from ..rtl.netlist import Netlist
from ..rtl.simulator import Listener, Simulation
from .counter_detect import DetectedCounter, detect_counters
from .features import FeatureMatrix, FeatureSet, FeatureSpec
from .fsm_detect import DetectedFsm, detect_fsms


def build_feature_set(
    module: Module,
    detected_fsms: Sequence[DetectedFsm],
    detected_counters: Sequence[DetectedCounter],
) -> FeatureSet:
    """Map detections onto the behavioural module and emit specs."""
    specs: List[FeatureSpec] = []
    fsm_by_state_net = {
        fsm.state_signal: fsm for fsm in module.fsms.values()
    }
    for det in detected_fsms:
        fsm = fsm_by_state_net.get(det.state_net)
        if fsm is None:
            continue  # structural false positive: not a named FSM
        code_to_state = {code: name for name, code in fsm.states.items()}
        seen: set = set()
        for t in det.transitions:
            if t.src_code == t.dst_code:
                continue  # hold artifacts (e.g. dynamic-wait stay arcs)
            src = code_to_state.get(t.src_code)
            dst = code_to_state.get(t.dst_code)
            if src is None or dst is None:
                continue
            key = (fsm.name, src, dst)
            if key in seen:
                continue
            seen.add(key)
            specs.append(FeatureSpec("stc", fsm.name, src, dst))
    for det in detected_counters:
        if det.net not in module.counters:
            continue  # structural false positive
        mode = module.counters[det.net].mode
        if det.mode != mode:
            continue  # mis-detected polarity; do not trust it
        specs.append(FeatureSpec("ic", det.net))
        if mode == "down":
            specs.append(FeatureSpec("aivs", det.net))
        else:
            specs.append(FeatureSpec("apvs", det.net))
    return FeatureSet(specs)


def discover_features(module: Module, netlist: Netlist) -> FeatureSet:
    """Full offline detection step: netlist analysis -> feature set."""
    return build_feature_set(
        module, detect_fsms(netlist), detect_counters(netlist))


class FeatureRecorder(Listener):
    """Simulator listener accumulating one job's feature vector."""

    def __init__(self, feature_set: FeatureSet):
        self.feature_set = feature_set
        self._values = np.zeros(len(feature_set), dtype=float)

    def start_job(self) -> None:
        """Clear the accumulator before a new job."""
        self._values[:] = 0.0

    def on_transition(self, fsm: str, src: str, dst: str) -> None:
        """Count a state transition (STC features)."""
        idx = self.feature_set.stc_index.get((fsm, src, dst))
        if idx is not None:
            self._values[idx] += 1.0

    def on_counter_load(self, counter: str, value: int) -> None:
        """Record a down-counter load (IC and AIV-sum features)."""
        idx = self.feature_set.ic_index.get(counter)
        if idx is not None:
            self._values[idx] += 1.0
        idx = self.feature_set.aivs_index.get(counter)
        if idx is not None:
            self._values[idx] += float(value)

    def on_counter_reset(self, counter: str, value: int) -> None:
        """Record an up-counter reset (IC and APV-sum features)."""
        idx = self.feature_set.ic_index.get(counter)
        if idx is not None:
            self._values[idx] += 1.0
        idx = self.feature_set.apvs_index.get(counter)
        if idx is not None:
            self._values[idx] += float(value)

    def vector(self) -> np.ndarray:
        """The job's feature vector accumulated so far."""
        return self._values.copy()

    def absorb_batch_events(self, events, row: int) -> None:
        """Fold one row of a batch run's event totals into the vector.

        The ``batch`` backend replaces per-event listener callbacks
        with aggregate event columns (:class:`BatchEvents`); absorbing
        a row is numerically identical to having observed its events
        one at a time, because every total is an integer below 2**53.
        """
        fs = self.feature_set
        for key, counts in events.transition_counts.items():
            idx = fs.stc_index.get(key)
            if idx is not None:
                self._values[idx] += float(counts[row])
        for name, counts in events.load_counts.items():
            idx = fs.ic_index.get(name)
            if idx is not None:
                self._values[idx] += float(counts[row])
        for name, sums in events.load_value_sums.items():
            idx = fs.aivs_index.get(name)
            if idx is not None:
                self._values[idx] += float(sums[row])
        for name, counts in events.reset_counts.items():
            idx = fs.ic_index.get(name)
            if idx is not None:
                self._values[idx] += float(counts[row])
        for name, sums in events.reset_value_sums.items():
            idx = fs.apvs_index.get(name)
            if idx is not None:
                self._values[idx] += float(sums[row])


def _summarize_job_inputs(inputs: Dict[str, int],
                          memories: Dict[str, Sequence[int]]) -> str:
    """Compact input digest for error messages on failed jobs."""
    parts = [f"{name}={value}" for name, value in sorted(inputs.items())]
    parts += [f"{name}[{len(words)} words]"
              for name, words in sorted(memories.items())]
    return ", ".join(parts) if parts else "(no inputs)"


def _simulate_job(sim: Simulation, recorder: FeatureRecorder,
                  index: int, inputs: Dict[str, int],
                  memories: Dict[str, Sequence[int]],
                  max_cycles: int, ignore_unknown: bool
                  ) -> Tuple[np.ndarray, int]:
    # One training job on a prepared simulation: the shared body of
    # the serial loop and the pool workers, so both raise identical,
    # debuggable errors and return identical (row, cycles) pairs.
    sim.reset()
    recorder.start_job()
    sim.load(inputs=inputs, memories=memories,
             ignore_unknown=ignore_unknown)
    result = sim.run(max_cycles=max_cycles)
    if not result.finished:
        raise RuntimeError(
            f"job {index} did not finish within {max_cycles} cycles on "
            f"{sim.module.name} "
            f"(inputs: {_summarize_job_inputs(inputs, memories)})"
        )
    return recorder.vector(), result.cycles


def _matrix_from_batch(feature_set: FeatureSet, events,
                       n: int) -> np.ndarray:
    # Whole-chunk feature rows from batch event columns: each keyed
    # total lands in its feature column as one vectorized add.  All
    # totals are integers < 2**53, so the float rows are bit-identical
    # to the serial listener's incremental accumulation.
    x = np.zeros((n, len(feature_set)), dtype=float)
    for key, counts in events.transition_counts.items():
        idx = feature_set.stc_index.get(key)
        if idx is not None:
            x[:, idx] += counts
    for name, counts in events.load_counts.items():
        idx = feature_set.ic_index.get(name)
        if idx is not None:
            x[:, idx] += counts
    for name, sums in events.load_value_sums.items():
        idx = feature_set.aivs_index.get(name)
        if idx is not None:
            x[:, idx] += sums
    for name, counts in events.reset_counts.items():
        idx = feature_set.ic_index.get(name)
        if idx is not None:
            x[:, idx] += counts
    for name, sums in events.reset_value_sums.items():
        idx = feature_set.apvs_index.get(name)
        if idx is not None:
            x[:, idx] += sums
    return x


#: Per-process (module, feature_set, backend) -> (Simulation,
#: FeatureRecorder), so a pool worker builds its instrumented
#: simulation once, not once per job.  Keyed by object identity:
#: stable within one process.
_WORKER_SIMS: Dict[Tuple[int, int, str],
                   Tuple[Simulation, FeatureRecorder]] = {}


def _record_worker(module: Module, feature_set: FeatureSet,
                   max_cycles: int, ignore_unknown: bool, backend: str,
                   indexed_job) -> Tuple[np.ndarray, int]:
    # pmap worker: simulate one (index, (inputs, memories)) item.
    key = (id(module), id(feature_set), backend)
    state = _WORKER_SIMS.get(key)
    if state is None:
        recorder = FeatureRecorder(feature_set)
        sim = make_simulation(module, backend=backend, listener=recorder,
                              track_state_cycles=False)
        _WORKER_SIMS.clear()  # only ever one live design per worker
        _WORKER_SIMS[key] = state = (sim, recorder)
    sim, recorder = state
    index, (inputs, memories) = indexed_job
    return _simulate_job(sim, recorder, index, inputs, memories,
                         max_cycles, ignore_unknown)


#: Per-process (module, feature_set) -> BatchSimulation for the batch
#: backend's chunk workers; same identity-keyed single-entry policy as
#: _WORKER_SIMS.
_WORKER_BATCH: Dict[Tuple[int, int], object] = {}


def _record_batch_chunk(module: Module, feature_set: FeatureSet,
                        max_cycles: int, ignore_unknown: bool,
                        chunk) -> Tuple[np.ndarray, List[int]]:
    # One pre-chunked [(index, (inputs, memories)), ...] slice becomes
    # a single lockstep batch run.  Used by the serial batch path and
    # as the pmap worker; both raise the same per-job error the serial
    # interpreter path would on an unfinished job.
    from ..rtl.batchsim import BatchSimulation

    if not chunk:
        return np.zeros((0, len(feature_set))), []
    key = (id(module), id(feature_set))
    sim = _WORKER_BATCH.get(key)
    if sim is None:
        _WORKER_BATCH.clear()  # only ever one live design per worker
        sim = _WORKER_BATCH[key] = BatchSimulation(module)
    result = sim.run_jobs([job for _index, job in chunk],
                          max_cycles=max_cycles,
                          ignore_unknown=ignore_unknown)
    if not result.finished.all():
        bad = int(np.argmax(np.logical_not(result.finished)))
        index, (inputs, memories) = chunk[bad]
        raise RuntimeError(
            f"job {index} did not finish within {max_cycles} cycles on "
            f"{module.name} "
            f"(inputs: {_summarize_job_inputs(inputs, memories)})"
        )
    x = _matrix_from_batch(feature_set, result.events, len(chunk))
    return x, [int(c) for c in result.cycles]


def record_jobs(
    module: Module,
    feature_set: FeatureSet,
    jobs: Iterable[Tuple[Dict[str, int], Dict[str, Sequence[int]]]],
    max_cycles: int = 200_000_000,
    ignore_unknown_inputs: bool = False,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
) -> FeatureMatrix:
    """Run ``jobs`` (port dict, memory dict pairs) on an instrumented
    simulation and collect features plus execution cycles.

    This is the offline "RTL simulation with a training set" step of
    Figure 6 in the paper.  ``ignore_unknown_inputs`` permits feeding
    full-design jobs into a hardware slice that dropped some inputs.

    Jobs are independent simulations, so ``workers > 1`` fans them out
    over a process pool (``workers=None`` follows the ambient
    ``--jobs``/``REPRO_JOBS`` setting).  Results keep input order and
    are bit-identical to a serial run.

    ``backend`` picks the simulation kernel (``backend=None`` follows
    the ambient ``--backend``/``REPRO_BACKEND`` setting); every backend
    is cycle-exact, so the recorded matrix is backend-invariant.  The
    backend is resolved here, once, so pool workers inherit the parent
    process's choice rather than re-reading their own environment.
    """
    from ..parallel import pmap, resolve_jobs

    resolved_backend = resolve_backend(backend)
    indexed = list(enumerate(jobs))
    n_workers = min(resolve_jobs(workers), max(len(indexed), 1))
    if resolved_backend == "batch":
        # Whole chunks run in lockstep: one worker chunk = one batch.
        # Feature rows are integer aggregates, so the matrix is
        # bit-identical for any chunking (and to serial interp).
        if n_workers > 1:
            size = -(-len(indexed) // n_workers)
            chunks = [indexed[i:i + size]
                      for i in range(0, len(indexed), size)]
            fn = functools.partial(_record_batch_chunk, module,
                                   feature_set, max_cycles,
                                   ignore_unknown_inputs)
            parts = pmap(fn, chunks, jobs=n_workers, chunk_size=1,
                         label="record.pmap")
        else:
            parts = [_record_batch_chunk(module, feature_set,
                                         max_cycles,
                                         ignore_unknown_inputs, indexed)]
        xs = [x for x, _ in parts]
        cycles = [c for _, chunk_cycles in parts for c in chunk_cycles]
        x = (np.vstack(xs) if indexed
             else np.zeros((0, len(feature_set))))
        return FeatureMatrix(feature_set, x,
                             np.asarray(cycles, dtype=float))
    if n_workers > 1:
        fn = functools.partial(_record_worker, module, feature_set,
                               max_cycles, ignore_unknown_inputs,
                               resolved_backend)
        pairs = pmap(fn, indexed, jobs=n_workers, label="record.pmap")
    else:
        recorder = FeatureRecorder(feature_set)
        sim = make_simulation(module, backend=resolved_backend,
                              listener=recorder,
                              track_state_cycles=False)
        pairs = [
            _simulate_job(sim, recorder, index, inputs, memories,
                          max_cycles, ignore_unknown_inputs)
            for index, (inputs, memories) in indexed
        ]
    rows = [row for row, _ in pairs]
    cycles = [c for _, c in pairs]
    x = np.vstack(rows) if rows else np.zeros((0, len(feature_set)))
    return FeatureMatrix(feature_set, x, np.asarray(cycles, dtype=float))
