"""Static analysis: FSM/counter detection, features, instrumentation."""

from .counter_detect import DetectedCounter, detect_counters
from .coverage import VisibilityReport, visibility_report
from .depgraph import probe_nets
from .features import FeatureMatrix, FeatureSet, FeatureSpec
from .fsm_detect import DetectedFsm, DetectedTransition, detect_fsms
from .instrument import (
    FeatureRecorder,
    build_feature_set,
    discover_features,
    record_jobs,
)

__all__ = [
    "DetectedCounter", "DetectedFsm", "DetectedTransition",
    "FeatureMatrix", "FeatureRecorder", "FeatureSet", "FeatureSpec",
    "VisibilityReport", "build_feature_set", "detect_counters",
    "detect_fsms", "discover_features", "probe_nets", "record_jobs",
    "visibility_report",
]
