"""Feature-visibility diagnostics.

Prediction quality is bounded by how much of a job's execution time is
*visible* to the feature system: cycles spent in counter-backed wait
states (their durations are loaded values the model can read) versus
cycles in dynamic waits (opaque serial logic — invisible) versus plain
FSM stepping (counted by STC features).

``visibility_report`` classifies a design's simulated cycles into
those buckets.  A low visible fraction predicts a wide Fig 10 error
box before any training happens — djpeg's restart-marker cycles show
up here as its invisible share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Tuple

from ..rtl.module import Module
from ..rtl.backend import make_simulation


@dataclass(frozen=True)
class VisibilityReport:
    """Cycle attribution for a set of jobs on one design."""

    total_cycles: int
    counter_wait_cycles: int   # waits backed by detectable counters
    dynamic_wait_cycles: int   # opaque serial stalls (invisible)
    step_cycles: int           # plain FSM stepping (STC-countable)

    @property
    def visible_fraction(self) -> float:
        """Share of time the feature system can in principle explain."""
        if self.total_cycles == 0:
            return 0.0
        return (self.counter_wait_cycles + self.step_cycles) \
            / self.total_cycles

    @property
    def invisible_fraction(self) -> float:
        return 1.0 - self.visible_fraction


def visibility_report(module: Module,
                      jobs: Iterable[Tuple[dict, dict]],
                      max_cycles: int = 200_000_000) -> VisibilityReport:
    """Attribute every simulated cycle of ``jobs`` to a bucket.

    Attribution uses the *primary* FSM (the one with the most states —
    the job-control machine); concurrent helper FSMs idle in parallel
    and would double-count cycles.
    """
    main_fsm = max(module.fsms.values(), key=lambda f: len(f.states))
    wait_states = {
        (main_fsm.name, state) for state in main_fsm.wait_states
    }
    dynamic_states = {
        (main_fsm.name, state) for state in main_fsm.dynamic_waits
    }

    sim = make_simulation(module, track_state_cycles=True)
    total = counter_wait = dynamic_wait = 0
    for inputs, memories in jobs:
        sim.reset()
        sim.state_cycles.clear()
        sim.load(inputs=inputs, memories=memories)
        result = sim.run(max_cycles=max_cycles)
        if not result.finished:
            raise RuntimeError("job did not finish")
        total += result.cycles
        for key, cycles in result.state_cycles.items():
            if key in wait_states:
                counter_wait += cycles
            elif key in dynamic_states:
                dynamic_wait += cycles
    return VisibilityReport(
        total_cycles=total,
        counter_wait_cycles=counter_wait,
        dynamic_wait_cycles=dynamic_wait,
        step_cycles=max(total - counter_wait - dynamic_wait, 0),
    )


def visibility_by_benchmark(names: Sequence[str], scale: float = 0.1,
                            n_jobs: int = 5) -> Dict[str, VisibilityReport]:
    """Convenience sweep over benchmark designs."""
    from ..accelerators import get_design
    from ..workloads import workload_for

    out: Dict[str, VisibilityReport] = {}
    for name in names:
        design = get_design(name)
        workload = workload_for(name, scale=scale)
        jobs = [design.encode_job(item).as_pair()
                for item in workload.test[:n_jobs]]
        out[name] = visibility_report(design.build(), jobs)
    return out
