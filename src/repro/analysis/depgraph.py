"""Dependence-graph helpers bridging features and netlist cells.

The slicer needs to know which nets "carry" each feature:

* an ``stc`` feature is probed at its transition-criteria net;
* ``ic``/``aivs`` features need the counter's load condition and load
  value nets (the instrumentation registers hang off those);
* ``apvs`` features need the counter's own DFF output (the pre-reset
  value is the register content) plus the reset condition net.

``probe_nets`` resolves a feature list to those nets on a given
netlist; the slicer then takes the backward fan-in closure.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from ..rtl.module import Module
from ..rtl.netlist import Netlist
from .features import FeatureSpec


def probe_nets(module: Module, netlist: Netlist,
               features: Iterable[FeatureSpec]) -> Set[str]:
    """Nets whose values must be computable to measure ``features``."""
    nets: Set[str] = set()
    counter_nets = _counter_io_nets(netlist)
    for spec in features:
        if spec.kind == "stc":
            fsm = module.fsms.get(spec.source)
            if fsm is None:
                raise KeyError(f"unknown FSM {spec.source!r}")
            sig = fsm.arc_signal(spec.src_state, spec.dst_state)
            nets.add(sig.name)
        elif spec.kind in ("ic", "aivs"):
            load_cond, load_value = counter_nets[spec.source]
            nets.add(load_cond)
            nets.add(load_value)
        elif spec.kind == "apvs":
            load_cond, _ = counter_nets[spec.source]
            nets.add(load_cond)
            nets.add(spec.source)  # the counter DFF output itself
        else:  # pragma: no cover - FeatureSpec validates kinds
            raise ValueError(spec.kind)
    return nets


def _counter_io_nets(netlist: Netlist) -> Dict[str, tuple]:
    """Map counter name -> (load condition net, load value net).

    Reads the canonical load-mux emitted by the synthesizer: the
    outermost mux feeding the counter DFF carries (sel, value, hold).
    """
    table: Dict[str, tuple] = {}
    for dff in netlist.cells_of_kind("DFF"):
        if dff.provenance.construct != "counter":
            continue
        load_mux = netlist.driver(dff.fanin[0])
        if load_mux is None or load_mux.kind != "MUX":
            continue
        table[dff.out] = (load_mux.fanin[0], load_mux.fanin[1])
    return table
