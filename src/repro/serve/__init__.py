"""Online serving runtime: job streams, admission, live prediction.

The paper's predictor is a per-job *online* mechanism; this package
runs it that way.  :mod:`~repro.serve.stream` turns the workload
generators into seeded arrival processes, :mod:`~repro.serve.server`
serves each accelerator stream through a bounded admission queue with
micro-batched slice prediction and graceful fallback, and
:mod:`~repro.serve.loadgen` measures it all open- or closed-loop.
``repro serve`` fronts the package from the CLI; stream-level
invariants live in :func:`repro.check.check_stream`.
"""

from .fleet import (
    DEADLINE,
    ENERGY_AWARE,
    LEAST_LOADED,
    POLICIES,
    ROUND_ROBIN,
    SHED_REASONS,
    FleetConfig,
    FleetDispatcher,
    FleetResult,
    FleetShed,
    RoutingDecision,
    ShardSpec,
    TenantSpec,
    TokenBucket,
    parse_tenants,
    serve_fleet,
    virtual_outcomes,
)
from .loadgen import LoadReport, percentile, run_closed_loop, run_open_loop
from .server import (
    COMPLETED,
    ENGINE_ENV,
    ENGINES,
    FALLBACK,
    SHED,
    TERMINAL_STATES,
    AcceleratorStream,
    RecordPredictor,
    ServeConfig,
    SlicePredictor,
    StreamOutcome,
    StreamResult,
    resolve_engine,
    serve_stream,
    serve_streams,
)
from .vector import EpochEngine, drive_stream_vectorized
from .stream import (
    ADVERSARIAL_MODES,
    DeadlineClass,
    FleetJob,
    StreamJob,
    adversarial_order,
    build_mixed_stream,
    build_stream_jobs,
    burst_arrivals,
    mixed_stream_jobs,
    poisson_arrivals,
    split_by_deadline,
    stream_from_records,
    trace_replay,
    vfr_arrivals,
)

__all__ = [
    "ADVERSARIAL_MODES",
    "COMPLETED", "DEADLINE", "ENERGY_AWARE", "ENGINES", "ENGINE_ENV",
    "FALLBACK",
    "LEAST_LOADED", "POLICIES", "ROUND_ROBIN", "SHED",
    "SHED_REASONS", "TERMINAL_STATES",
    "AcceleratorStream", "DeadlineClass", "EpochEngine", "FleetConfig",
    "FleetDispatcher", "FleetJob",
    "FleetResult", "FleetShed", "LoadReport", "RecordPredictor",
    "RoutingDecision", "ServeConfig", "ShardSpec", "SlicePredictor",
    "StreamJob", "StreamOutcome", "StreamResult", "TenantSpec",
    "TokenBucket", "adversarial_order", "build_mixed_stream",
    "build_stream_jobs",
    "burst_arrivals", "drive_stream_vectorized", "mixed_stream_jobs",
    "parse_tenants",
    "percentile", "poisson_arrivals", "resolve_engine",
    "run_closed_loop",
    "run_open_loop", "serve_fleet", "serve_stream", "serve_streams",
    "split_by_deadline",
    "stream_from_records", "trace_replay", "vfr_arrivals",
    "virtual_outcomes",
]
