"""Load generation and latency reporting for the serving runtime.

Two classic load shapes:

* **open loop** — arrivals follow a fixed-rate process regardless of
  how the server keeps up (clients do not wait for each other); this
  is the shape that exposes queueing collapse and shedding;
* **closed loop** — a fixed number of concurrent "clients" each submit
  their next job the instant the previous one finishes (on the
  virtual clock), so offered load self-adjusts to service capacity.

Both produce a :class:`LoadReport`: offered/achieved rates, exact
decision-latency percentiles (p50/p99/max over the recorded per-job
wall-clock decisions), and fallback/shed/miss rates — the fields
``BENCH_serve.json`` publishes.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from ..runtime.jobs import JobRecord
from .server import AcceleratorStream, StreamResult, serve_stream
from .stream import StreamJob, poisson_arrivals, stream_from_records


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Exact nearest-rank percentile of an ascending sample.

    The inverted-CDF definition (``numpy.percentile(...,
    method="inverted_cdf")``): the smallest sample value ``v`` with
    ``CDF(v) >= q/100``, i.e. 1-based rank ``max(1, ceil(q/100 * n))``.
    Always an element of the sample — never interpolated — so p99 of a
    latency run is a latency that actually happened.  An empty sample
    reports 0.0 (numpy raises; a report over zero executed jobs should
    render, not crash).
    """
    if not sorted_values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile must be in [0, 100]")
    n = len(sorted_values)
    rank = max(1, math.ceil(q / 100.0 * n))
    return sorted_values[min(rank, n) - 1]


@dataclass(frozen=True)
class LoadReport:
    """One load-generation run, reduced to its headline numbers."""

    stream: str
    scheme: str
    mode: str                   # "open" | "closed"
    n_offered: int
    n_completed: int
    n_fallback: int
    n_shed: int
    n_missed: int
    offered_rate: float         # jobs/s offered (virtual clock)
    achieved_rate: float        # executed jobs/s (virtual clock)
    wall_rate: float            # executed jobs/s (wall clock)
    p50_decision_ms: float
    p99_decision_ms: float
    max_decision_ms: float
    fallback_rate: float
    shed_rate: float
    miss_rate: float
    wall_s: float

    def to_dict(self) -> Dict:
        """JSON-ready field dict; ``LoadReport(**d)`` round-trips."""
        return dict(self.__dict__)

    @classmethod
    def from_result(cls, result: StreamResult, mode: str,
                    offered_rate: Optional[float] = None) -> "LoadReport":
        executed = result.executed
        latencies = result.decision_latencies()
        makespan = result.makespan
        arrivals_span = (max(o.arrival for o in result.outcomes)
                         if result.outcomes else 0.0)
        if offered_rate is None:
            offered_rate = (result.n_offered / arrivals_span
                            if arrivals_span > 0 else 0.0)
        return cls(
            stream=result.stream, scheme=result.scheme, mode=mode,
            n_offered=result.n_offered,
            n_completed=result.n_completed,
            n_fallback=result.n_fallback,
            n_shed=result.n_shed,
            n_missed=result.miss_count,
            offered_rate=offered_rate,
            achieved_rate=(len(executed) / makespan
                           if makespan > 0 else 0.0),
            wall_rate=(len(executed) / result.wall_s
                       if result.wall_s > 0 else 0.0),
            p50_decision_ms=percentile(latencies, 50.0) * 1e3,
            p99_decision_ms=percentile(latencies, 99.0) * 1e3,
            max_decision_ms=(latencies[-1] * 1e3 if latencies else 0.0),
            fallback_rate=result.fallback_rate,
            shed_rate=result.shed_rate,
            miss_rate=(result.miss_count / len(executed)
                       if executed else 0.0),
            wall_s=result.wall_s,
        )

    def describe(self) -> str:
        """One human line per run, for CLI footers."""
        return (f"{self.stream}/{self.scheme} [{self.mode}]: "
                f"{self.n_offered} offered at "
                f"{self.offered_rate:.0f}/s, "
                f"{self.n_completed} completed, "
                f"{self.n_fallback} fallback, {self.n_shed} shed; "
                f"decision p50/p99 {self.p50_decision_ms:.3f}/"
                f"{self.p99_decision_ms:.3f} ms; "
                f"{self.miss_rate * 100:.1f}% missed")


def run_open_loop(stream: AcceleratorStream,
                  records: Sequence[JobRecord],
                  rate: float,
                  duration: Optional[float] = None,
                  n_jobs: Optional[int] = None,
                  seed: int = 0,
                  realtime: bool = False) -> LoadReport:
    """Offer a Poisson stream at ``rate`` jobs/s and report."""
    arrivals = poisson_arrivals(rate, duration=duration, n_jobs=n_jobs,
                                seed=seed)
    jobs = stream_from_records(records, arrivals)
    result = serve_stream(stream, jobs, realtime=realtime)
    return LoadReport.from_result(result, mode="open",
                                  offered_rate=rate)


def run_closed_loop(stream: AcceleratorStream,
                    records: Sequence[JobRecord],
                    n_jobs: int,
                    concurrency: int = 1) -> LoadReport:
    """Closed-loop generation: ``concurrency`` self-pacing clients.

    Each client submits its next job the instant its previous one
    finishes on the virtual clock, so arrivals adapt to service
    capacity — offered rate converges to throughput and nothing
    sheds unless ``concurrency`` exceeds the queue depth.  Runs on
    the virtual clock only (a wall-paced closed loop would just
    measure host speed).
    """
    if n_jobs < 1:
        raise ValueError("n_jobs must be >= 1")
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    # Client k's next submission instant, as a min-heap of
    # (ready_time, client).  FIFO service keeps finishes monotone, so
    # popping the earliest-ready client yields sorted arrivals.
    ready = [(0.0, k) for k in range(concurrency)]
    heapq.heapify(ready)
    submitted = 0
    while submitted < n_jobs:
        arrival, client = heapq.heappop(ready)
        record = replace(records[submitted % len(records)],
                         index=submitted)
        sjob = StreamJob(index=submitted, record=record,
                         arrival=arrival)
        stream.offer(sjob)
        stream.drain()  # closed loop: the client waits for its finish
        outcome = stream.outcomes[-1]
        finish = outcome.finish if outcome.executed else arrival
        heapq.heappush(ready, (max(finish, arrival), client))
        submitted += 1
    result = stream.result()
    return LoadReport.from_result(result, mode="closed")
