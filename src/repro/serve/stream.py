"""Job sources for the online serving runtime.

The offline flow evaluates controllers over a *batch* of
:class:`~repro.runtime.jobs.JobRecord` objects released on rigid
period boundaries.  A serving runtime instead sees jobs *arrive*: the
stream layer pins each record to an arrival instant drawn from a
seeded arrival process — Poisson (open-loop steady traffic), bursty
(on/off phases at the same average rate), a drifting variable frame
rate, or the replay of a recorded trace — over the existing workload
generators, so every stream is reproducible from ``(benchmark, scale,
rate, seed)`` alone.  Orthogonal scenario knobs reorder job *sizes*
adversarially (:func:`adversarial_order`) and split one record pool
into mixed-deadline service classes (:func:`split_by_deadline`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
)

import numpy as np

from ..runtime.jobs import JobRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..accelerators.base import JobInput
    from ..experiments.runner import BenchmarkBundle


@dataclass(frozen=True)
class StreamJob:
    """One job of a stream: a record plus its arrival instant.

    ``job_input`` carries the raw encoded inputs when the stream will
    predict online (the slice simulation needs them); record-replay
    streams leave it ``None`` and reuse the precomputed prediction.
    """

    index: int
    record: JobRecord
    arrival: float
    job_input: Optional["JobInput"] = None

    def __post_init__(self) -> None:
        if self.arrival < 0.0:
            raise ValueError("arrival time cannot be negative")


def poisson_arrivals(rate: float, duration: Optional[float] = None,
                     n_jobs: Optional[int] = None,
                     seed: int = 0) -> List[float]:
    """Arrival instants of a Poisson process at ``rate`` jobs/s.

    Bounded by ``duration`` seconds or by ``n_jobs`` arrivals
    (exactly one must be given).  Deterministic in ``seed``.
    """
    if rate <= 0.0:
        raise ValueError("rate must be positive")
    if (duration is None) == (n_jobs is None):
        raise ValueError("give exactly one of duration= or n_jobs=")
    rng = np.random.default_rng(seed)
    times: List[float] = []
    now = 0.0
    while True:
        now += float(rng.exponential(1.0 / rate))
        if duration is not None and now >= duration:
            return times
        times.append(now)
        if n_jobs is not None and len(times) >= n_jobs:
            return times


def burst_arrivals(rate: float, duration: float, seed: int = 0,
                   period: float = 1.0, duty: float = 0.3) -> List[float]:
    """On/off bursty arrivals averaging ``rate`` jobs/s.

    Each ``period`` starts with an *on* phase lasting ``duty`` of the
    period during which arrivals are Poisson at ``rate / duty``; the
    rest of the period is silent.  The long-run average rate is
    ``rate``, but the instantaneous rate during a burst is
    ``1 / duty`` times higher — the admission-queue stress case.
    """
    if not 0.0 < duty <= 1.0:
        raise ValueError("duty must be in (0, 1]")
    if period <= 0.0:
        raise ValueError("period must be positive")
    # Generate a plain Poisson process on the compressed "busy clock"
    # (total on-time), then expand each instant back onto the wall
    # clock: busy time u falls in period u // on_per_period, at offset
    # u % on_per_period from that period's start.
    on_per_period = period * duty
    busy = poisson_arrivals(rate / duty, duration=duration * duty,
                            seed=seed)
    times = []
    for u in busy:
        k = int(u // on_per_period)
        wall = k * period + (u - k * on_per_period)
        if wall >= duration:
            break
        times.append(wall)
    return times


def vfr_arrivals(rate: float, n_jobs: int, seed: int = 0,
                 jitter: float = 0.25, floor: float = 0.25,
                 ceil: float = 4.0) -> List[float]:
    """Variable-frame-rate arrivals: a frame clock whose rate drifts.

    Models a camera or decoder whose frame rate wanders: each frame's
    instantaneous rate follows a seeded geometric random walk
    (log-normal steps of scale ``jitter``) clamped to
    ``[rate * floor, rate * ceil]``, and the next arrival lands one
    instantaneous period after the previous one.  Unlike Poisson
    traffic the gaps are strongly correlated — sustained fast phases
    build real backlog, sustained slow phases drain it — which is the
    frame-deadline stress case Poisson smoothing never produces.
    Deterministic in ``seed``.
    """
    if rate <= 0.0:
        raise ValueError("rate must be positive")
    if n_jobs < 1:
        raise ValueError("n_jobs must be >= 1")
    if jitter < 0.0:
        raise ValueError("jitter cannot be negative")
    if not 0.0 < floor <= 1.0 <= ceil:
        raise ValueError("need 0 < floor <= 1 <= ceil")
    rng = np.random.default_rng(seed)
    times: List[float] = []
    now = 0.0
    f = rate
    for _ in range(n_jobs):
        f = float(np.clip(f * np.exp(rng.normal(0.0, jitter)),
                          rate * floor, rate * ceil))
        now += 1.0 / f
        times.append(now)
    return times


#: Orderings :func:`adversarial_order` knows how to produce.
ADVERSARIAL_MODES = ("front_loaded", "alternating", "ramp")


def adversarial_order(records: Sequence[JobRecord],
                      mode: str = "front_loaded",
                      seed: int = 0) -> List[JobRecord]:
    """Reorder records so job *sizes* arrive adversarially.

    The arrival process fixes *when* jobs come; this knob fixes *which
    size* comes when — the controller-hostile distributions a uniform
    record cycle never exercises:

    * ``front_loaded`` — largest jobs first: the backlog a burst
      builds is made of the most expensive work;
    * ``alternating`` — largest/smallest interleaved: every job is a
      worst case for history- and PID-style predictors and maximizes
      DVFS level changes;
    * ``ramp`` — ascending sizes: lulls feedback controllers into low
      levels, then (on record cycling) cliffs back to the smallest.

    Ties are broken by a seeded shuffle so equal-size records do not
    depend on input order.  The result is a permutation: same records,
    indices untouched (re-indexing happens in
    :func:`stream_from_records`).
    """
    if mode not in ADVERSARIAL_MODES:
        raise ValueError(
            f"unknown adversarial mode {mode!r}; "
            f"expected one of {ADVERSARIAL_MODES}")
    if not records:
        raise ValueError("cannot reorder zero records")
    rng = np.random.default_rng(seed)
    shuffled = list(records)
    perm = rng.permutation(len(shuffled))
    shuffled = [shuffled[int(i)] for i in perm]
    ascending = sorted(shuffled, key=lambda r: r.actual_cycles)
    if mode == "ramp":
        return ascending
    if mode == "front_loaded":
        return ascending[::-1]
    # alternating: big, small, next-big, next-small, ...
    out: List[JobRecord] = []
    lo, hi = 0, len(ascending) - 1
    while lo <= hi:
        out.append(ascending[hi])
        hi -= 1
        if lo <= hi:
            out.append(ascending[lo])
            lo += 1
    return out


@dataclass(frozen=True)
class DeadlineClass:
    """One service class of a mixed-deadline workload.

    ``deadline`` is the per-job latency bound of every job routed to
    this class; ``weight`` biases the seeded assignment (relative to
    the other classes' weights).
    """

    name: str
    deadline: float
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.deadline <= 0.0:
            raise ValueError("deadline must be positive")
        if self.weight <= 0.0:
            raise ValueError("weight must be positive")


def split_by_deadline(records: Sequence[JobRecord],
                      classes: Sequence[DeadlineClass],
                      seed: int = 0) -> Dict[str, List[JobRecord]]:
    """Partition records across deadline classes, seeded and total.

    Each record is assigned to exactly one class by a seeded
    ``weight``-biased draw; every class is guaranteed at least one
    record (the largest class donates when a draw leaves one empty),
    so each class can directly feed one
    :class:`~repro.serve.server.AcceleratorStream` whose
    :class:`~repro.serve.server.ServeConfig` carries that class's
    deadline — the per-stream checker then audits every class under
    its own bound.  Returns ``{class name: records}`` preserving
    relative record order within each class.
    """
    if not classes:
        raise ValueError("need at least one deadline class")
    names = [c.name for c in classes]
    if len(set(names)) != len(names):
        raise ValueError("deadline class names must be unique")
    if len(records) < len(classes):
        raise ValueError(
            f"{len(records)} record(s) cannot cover "
            f"{len(classes)} deadline classes")
    rng = np.random.default_rng(seed)
    weights = np.array([c.weight for c in classes], dtype=float)
    probs = weights / weights.sum()
    out: Dict[str, List[JobRecord]] = {name: [] for name in names}
    for record in records:
        name = names[int(rng.choice(len(names), p=probs))]
        out[name].append(record)
    for name in names:  # non-empty guarantee
        if not out[name]:
            donor = max(names, key=lambda n: len(out[n]))
            out[name].append(out[donor].pop())
    return out


def trace_replay(times: Sequence[float], speed: float = 1.0) -> List[float]:
    """Replay a recorded arrival trace, optionally time-compressed.

    ``speed > 1`` compresses the trace (arrivals come faster); the
    result is sorted and validated so it can feed a stream directly.
    """
    if speed <= 0.0:
        raise ValueError("speed must be positive")
    replayed = sorted(float(t) / speed for t in times)
    if replayed and replayed[0] < 0.0:
        raise ValueError("trace contains negative arrival times")
    return replayed


def stream_from_records(records: Sequence[JobRecord],
                        arrivals: Sequence[float],
                        inputs: Optional[Sequence["JobInput"]] = None
                        ) -> List[StreamJob]:
    """Pin arrival times to records, cycling records as needed.

    The stream is re-indexed 0..n-1 (records keep their payload but
    take the stream position as ``index``) so stream invariants can
    key on a dense, unique index space.
    """
    if not records:
        raise ValueError("cannot build a stream from zero records")
    if inputs is not None and len(inputs) != len(records):
        raise ValueError("inputs must pair 1:1 with records")
    jobs: List[StreamJob] = []
    for i, arrival in enumerate(sorted(arrivals)):
        k = i % len(records)
        record = replace(records[k], index=i)
        jobs.append(StreamJob(
            index=i, record=record, arrival=float(arrival),
            job_input=inputs[k] if inputs is not None else None,
        ))
    return jobs


@dataclass(frozen=True)
class FleetJob:
    """One job of a *mixed* fleet stream: a tagged :class:`StreamJob`.

    The fleet dispatcher routes on the tags — ``benchmark`` names the
    accelerator type the job needs (only instances of that type are
    candidates) and ``tenant`` names the paying client the per-tenant
    rate limits and conservation identities key on.  The wrapped
    ``job`` carries the fleet-wide dense index, so one index space
    spans dispatcher sheds and every shard's outcomes.
    """

    benchmark: str
    tenant: str
    job: StreamJob

    @property
    def index(self) -> int:
        return self.job.index

    @property
    def arrival(self) -> float:
        return self.job.arrival


def mixed_stream_jobs(records_by_benchmark: Mapping[str, Sequence[JobRecord]],
                      arrivals: Sequence[float],
                      seed: int = 0,
                      weights: Optional[Mapping[str, float]] = None,
                      tenants: Sequence[str] = ("default",),
                      inputs_by_benchmark: Optional[
                          Mapping[str, Sequence["JobInput"]]] = None
                      ) -> List[FleetJob]:
    """One interleaved job stream over several benchmarks and tenants.

    Each arrival instant draws a benchmark (optionally ``weights``-
    biased, uniform otherwise) and a tenant (uniform) from a seeded
    generator, then cycles that benchmark's records — so the whole
    mixed stream is reproducible from ``(records, arrivals, seed)``
    alone.  Jobs are re-indexed 0..n-1 *fleet-wide* in arrival order;
    per-benchmark record cycling is independent of the interleaving.
    """
    if not records_by_benchmark:
        raise ValueError("need at least one benchmark to mix")
    if not tenants:
        raise ValueError("need at least one tenant")
    names = list(records_by_benchmark)
    for name in names:
        if not records_by_benchmark[name]:
            raise ValueError(f"benchmark {name!r} has zero records")
        if (inputs_by_benchmark is not None
                and len(inputs_by_benchmark.get(name, ()))
                != len(records_by_benchmark[name])):
            raise ValueError(
                f"inputs for {name!r} must pair 1:1 with its records")
    if weights is not None:
        raw = [float(weights.get(name, 0.0)) for name in names]
        if any(w < 0.0 for w in raw) or sum(raw) <= 0.0:
            raise ValueError("weights must be non-negative and sum > 0")
        probs = [w / sum(raw) for w in raw]
    else:
        probs = [1.0 / len(names)] * len(names)

    rng = np.random.default_rng(seed)
    cursor = {name: 0 for name in names}
    jobs: List[FleetJob] = []
    for i, arrival in enumerate(sorted(arrivals)):
        name = names[int(rng.choice(len(names), p=probs))]
        tenant = str(tenants[int(rng.integers(len(tenants)))])
        records = records_by_benchmark[name]
        k = cursor[name] % len(records)
        cursor[name] += 1
        record = replace(records[k], index=i)
        job_input = None
        if inputs_by_benchmark is not None:
            job_input = inputs_by_benchmark[name][k]
        jobs.append(FleetJob(
            benchmark=name, tenant=tenant,
            job=StreamJob(index=i, record=record,
                          arrival=float(arrival), job_input=job_input),
        ))
    return jobs


def build_mixed_stream(bundles: Mapping[str, "BenchmarkBundle"],
                       arrivals: Sequence[float],
                       seed: int = 0,
                       weights: Optional[Mapping[str, float]] = None,
                       tenants: Sequence[str] = ("default",),
                       with_inputs: bool = False) -> List[FleetJob]:
    """A mixed fleet stream over several benchmark bundles.

    The bundle analogue of :func:`build_stream_jobs`: cycles each
    bundle's precomputed test records under a seeded benchmark/tenant
    interleaving; ``with_inputs=True`` attaches encoded job inputs so
    shards can run :class:`~repro.serve.server.SlicePredictor` live.
    """
    records = {name: bundle.test_records
               for name, bundle in bundles.items()}
    inputs = None
    if with_inputs:
        inputs = {}
        for name, bundle in bundles.items():
            encoded = [bundle.design.encode_job(item)
                       for item in bundle.workload.test]
            inputs[name] = encoded[:len(bundle.test_records)]
    return mixed_stream_jobs(records, arrivals, seed=seed,
                             weights=weights, tenants=tenants,
                             inputs_by_benchmark=inputs)


def build_stream_jobs(bundle: "BenchmarkBundle",
                      arrivals: Sequence[float],
                      with_inputs: bool = False) -> List[StreamJob]:
    """A stream over a benchmark bundle's test workload.

    Cycles the bundle's precomputed test records across the arrival
    instants; ``with_inputs=True`` also attaches the encoded job
    inputs so a :class:`~repro.serve.server.SlicePredictor` can run
    the prediction slice online.
    """
    inputs = None
    if with_inputs:
        inputs = [bundle.design.encode_job(item)
                  for item in bundle.workload.test]
        inputs = inputs[:len(bundle.test_records)]
    return stream_from_records(bundle.test_records, arrivals, inputs)
