"""Fleet dispatcher: one mixed stream over a pool of accelerators.

The single-stream runtime (:mod:`repro.serve.server`) is one
controller state machine over one accelerator.  A production fleet is
a *dispatcher tier* above that: one mixed arrival stream (every
benchmark interleaved, tenant-tagged) routed across a pool of
:class:`~repro.serve.server.AcceleratorStream` instances, with the
admission decisions a fleet needs — per-tenant rate limits, a global
depth bound, deadline-infeasibility shedding — made *before* a job
ever reaches an instance queue.

The dispatcher routes on its own **ledger**: a projected virtual
clock per instance, advanced by service-time *estimates* derived from
each job's predicted cycles through the same level-selection model the
controllers use (`select_level`, the paper's Sec. 3.6).  Routing is
therefore a pure function of the arrival sequence and the predictions
— independent of shard execution — so the per-instance sub-streams
execute in parallel worker processes via :func:`repro.parallel.pmap`
and a ``workers=4`` run is bit-identical to the serial reference.
Ilager et al.'s data-driven scaling is the motivation for routing on
predicted cycles rather than queue length alone; Lumos frames the
pool itself (heterogeneous accelerators under shared budgets).

Conservation is checked fleet-wide by
:func:`repro.check.check_fleet`: every offered job ends in exactly
one of dispatcher shed / shard completed / shard fallback / shard
shed, fleet indices partition exactly, and the same identity holds
per tenant.
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..dvfs.controllers import Controller
from ..dvfs.dvfs_model import select_level, select_level_batch
from ..dvfs.energy import EnergyModel, JobActivity
from ..obs import get_observer, span
from ..parallel import pmap, resolve_jobs
from ..runtime.episode import strict_checks_enabled
from .server import (
    ENGINE_ENV,
    ENGINES,
    AcceleratorStream,
    ServeConfig,
    StreamResult,
    _check_result,
    _emit_stream_summary,
)
from .stream import FleetJob

#: The pluggable routing policies, in documentation order.
ROUND_ROBIN = "round_robin"
LEAST_LOADED = "least_loaded"
ENERGY_AWARE = "energy_aware"
DEADLINE = "deadline"
POLICIES = (ROUND_ROBIN, LEAST_LOADED, ENERGY_AWARE, DEADLINE)

#: Dispatcher-side shed reasons.  Shard-side sheds (instance queue
#: overflow) are accounted by the shard's own stream, not here.
SHED_ADMISSION = "admission"
SHED_RATE_LIMIT = "rate_limit"
SHED_DEADLINE = "deadline"
SHED_REASONS = (SHED_ADMISSION, SHED_RATE_LIMIT, SHED_DEADLINE)


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's rate-limit contract.

    ``rate <= 0`` means unlimited (no token bucket); otherwise the
    tenant may sustain ``rate`` jobs/s with bursts of up to ``burst``
    jobs, enforced on the *virtual* arrival clock so limits are
    deterministic in the arrival sequence.
    """

    name: str
    rate: float = 0.0
    burst: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name cannot be empty")
        if self.rate > 0.0 and self.burst < 1.0:
            raise ValueError("burst must be >= 1 for a rate-limited "
                             "tenant")

    @classmethod
    def parse(cls, text: str) -> "TenantSpec":
        """Parse ``name[:rate=R][:burst=B]`` (CLI ``--tenants`` atom)."""
        parts = text.strip().split(":")
        if not parts or not parts[0]:
            raise ValueError(f"bad tenant spec {text!r}")
        name = parts[0]
        rate = 0.0
        burst = 1.0
        for part in parts[1:]:
            key, sep, value = part.partition("=")
            if not sep:
                raise ValueError(f"bad tenant spec field {part!r} "
                                 f"in {text!r}")
            if key == "rate":
                rate = float(value)
            elif key == "burst":
                burst = float(value)
            else:
                raise ValueError(f"unknown tenant spec key {key!r} "
                                 f"in {text!r}")
        return cls(name=name, rate=rate, burst=burst)


def parse_tenants(spec: str) -> List[TenantSpec]:
    """Parse a comma-separated ``--tenants`` value into specs."""
    tenants = [TenantSpec.parse(atom)
               for atom in spec.split(",") if atom.strip()]
    if not tenants:
        raise ValueError("empty tenant spec")
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate tenant names in {spec!r}")
    return tenants


class TokenBucket:
    """A token bucket on the virtual clock (deterministic limits)."""

    def __init__(self, rate: float, burst: float):
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.t = 0.0

    def allow(self, t: float) -> bool:
        """Refill to instant ``t`` and try to take one token."""
        if self.rate <= 0.0:
            return True
        if t > self.t:
            self.tokens = min(self.burst,
                              self.tokens + (t - self.t) * self.rate)
            self.t = t
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass(frozen=True)
class FleetConfig:
    """Dispatcher-level policy knobs (per-instance knobs stay in each
    shard's :class:`~repro.serve.server.ServeConfig`)."""

    policy: str = LEAST_LOADED
    #: Global admission bound: total projected backlog across the pool
    #: beyond which arrivals shed at the dispatcher.
    global_depth: int = 512
    #: Elastic scaling against per-benchmark mean-backlog watermarks.
    elastic: bool = False
    scale_up_backlog: float = 8.0
    scale_down_backlog: float = 1.0
    min_active: int = 1
    strict: Optional[bool] = None  # None = follow REPRO_CHECK
    engine: Optional[str] = None   # None = follow REPRO_SERVE_ENGINE

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; pick one of "
                f"{', '.join(POLICIES)}")
        if self.global_depth < 1:
            raise ValueError("global_depth must be >= 1")
        if self.min_active < 1:
            raise ValueError("min_active must be >= 1")
        if self.scale_down_backlog >= self.scale_up_backlog:
            raise ValueError("scale_down_backlog must sit below "
                             "scale_up_backlog")
        if self.engine is not None and self.engine not in ENGINES:
            raise ValueError(
                f"engine must be one of {ENGINES}, got {self.engine!r}")


def _fleet_engine(config: FleetConfig) -> str:
    """The dispatcher's effective decision-plane engine."""
    engine = config.engine
    if engine is None:
        engine = os.environ.get(ENGINE_ENV, "auto") or "auto"
    if engine not in ENGINES:
        raise ValueError(
            f"{ENGINE_ENV} must be one of {ENGINES}, got {engine!r}")
    return engine


def usable_cores() -> int:
    """CPU cores actually schedulable by this process."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux hosts
        return os.cpu_count() or 1


@dataclass
class ShardSpec:
    """Everything needed to build one pool instance's stream.

    The spec — not the stream — crosses the process boundary, so every
    field must be picklable and each spec must own its *own*
    controller instance (a shared controller would leak reactive state
    across shards on the serial path).  ``predictor`` follows the same
    rule: :class:`~repro.serve.server.RecordPredictor` is trivially
    picklable; a live :class:`~repro.serve.server.SlicePredictor` is
    not and belongs to single-process serving.
    """

    name: str
    benchmark: str
    controller: Controller
    energy_model: EnergyModel
    slice_energy_model: Optional[EnergyModel] = None
    predictor: object = None
    config: ServeConfig = field(default_factory=ServeConfig)

    def make_stream(self) -> AcceleratorStream:
        """Build this instance's stream (fresh admission state)."""
        return AcceleratorStream(
            self.name, self.controller, self.energy_model,
            slice_energy_model=self.slice_energy_model,
            predictor=self.predictor, config=self.config)


@dataclass(frozen=True)
class FleetShed:
    """One job shed at the dispatcher (never reached an instance)."""

    index: int
    benchmark: str
    tenant: str
    arrival: float
    reason: str


@dataclass(frozen=True)
class RoutingDecision:
    """One dispatcher decision, for audits and property tests.

    ``candidates``/``backlogs`` snapshot the eligible instances and
    their projected backlogs at decision time; ``chosen`` is the index
    into the *pool* (None when the job shed, with ``reason`` set).
    """

    index: int
    benchmark: str
    tenant: str
    arrival: float
    candidates: Tuple[int, ...]
    backlogs: Tuple[int, ...]
    chosen: Optional[int]
    reason: Optional[str] = None


@dataclass
class FleetResult:
    """Everything the fleet did: dispatcher decisions plus shard runs."""

    policy: str
    specs: List[ShardSpec]
    shards: List[StreamResult]          # aligned with ``specs``
    sheds: List[FleetShed]              # dispatcher-side only
    assignments: Dict[int, int]         # fleet index -> pool index
    tenants: Dict[int, str]             # fleet index -> tenant name
    benchmarks: Dict[int, str]          # fleet index -> benchmark
    n_offered: int
    wall_s: float = 0.0

    @property
    def n_dispatcher_shed(self) -> int:
        return len(self.sheds)

    @property
    def n_completed(self) -> int:
        return sum(r.n_completed for r in self.shards)

    @property
    def n_fallback(self) -> int:
        return sum(r.n_fallback for r in self.shards)

    @property
    def n_shed(self) -> int:
        """All sheds: dispatcher-side plus instance-queue overflow."""
        return len(self.sheds) + sum(r.n_shed for r in self.shards)

    @property
    def total_energy(self) -> float:
        return sum(r.total_energy for r in self.shards)

    def tenant_summary(self) -> Dict[str, Dict[str, int]]:
        """Per-tenant terminal-state counts (the conservation ledger).

        Each tenant's ``offered`` equals its ``completed + fallback +
        shed`` — the identity :func:`repro.check.check_fleet` proves.
        """
        summary: Dict[str, Dict[str, int]] = {}

        def row(tenant: str) -> Dict[str, int]:
            return summary.setdefault(tenant, {
                "offered": 0, "completed": 0, "fallback": 0, "shed": 0})

        for shed in self.sheds:
            entry = row(shed.tenant)
            entry["offered"] += 1
            entry["shed"] += 1
        for result in self.shards:
            for outcome in result.outcomes:
                entry = row(self.tenants.get(outcome.index, "?"))
                entry["offered"] += 1
                entry[outcome.status] += 1
        return summary

    def describe(self) -> str:
        """One human line, for CLI footers."""
        shard_shed = sum(r.n_shed for r in self.shards)
        return (f"fleet[{self.policy}] x{len(self.specs)}: "
                f"{self.n_offered} offered, "
                f"{self.n_completed} completed, "
                f"{self.n_fallback} fallback, "
                f"{len(self.sheds)} shed@dispatcher, "
                f"{shard_shed} shed@instance; "
                f"{len(self.tenant_summary())} tenants")


@dataclass(frozen=True)
class _Estimate:
    """Dispatcher-side service projection for one (job, instance)."""

    service_s: float
    energy: float
    feasible: bool


class _Ledger:
    """One instance's projected virtual clock at the dispatcher.

    Mirrors the instance's admission accounting — a deque of projected
    finishes with an incremental in-flight counter — but advances on
    *estimates*, so the dispatcher never has to wait for execution.
    """

    __slots__ = ("clock", "_finishes", "_in_flight", "active")

    def __init__(self, active: bool = True):
        self.clock = 0.0
        self._finishes: deque = deque()
        self._in_flight = 0
        self.active = active

    def backlog(self, arrival: float) -> int:
        while self._finishes and self._finishes[0] <= arrival:
            self._finishes.popleft()
            self._in_flight -= 1
        return self._in_flight

    def commit(self, arrival: float, service_s: float) -> float:
        start = max(self.clock, arrival)
        finish = start + service_s
        self.clock = finish
        self._finishes.append(finish)
        self._in_flight += 1
        return finish


class FleetDispatcher:
    """Route a mixed stream across the pool via a pluggable policy.

    Admission runs in contract order — tenant rate limit, global
    depth, then the policy (which for ``deadline`` can itself shed) —
    and every decision lands in :attr:`routing_log`.  Instances are
    eligible for a job only when they serve its benchmark (the pool is
    heterogeneous) and are currently active (elastic scaling).
    """

    def __init__(self, specs: Sequence[ShardSpec],
                 config: FleetConfig = FleetConfig(),
                 tenants: Sequence[TenantSpec] = (TenantSpec("default"),)):
        if not specs:
            raise ValueError("a fleet needs at least one instance")
        self.specs = list(specs)
        self.config = config
        self.tenants = {t.name: t for t in tenants}
        if len(self.tenants) != len(tenants):
            raise ValueError("duplicate tenant names")
        self._buckets = {t.name: TokenBucket(t.rate, t.burst)
                         for t in tenants}
        #: Pool indices per benchmark, in spec order: the elastic
        #: activation order and the round-robin rotation order.
        self._by_benchmark: Dict[str, List[int]] = {}
        for i, spec in enumerate(self.specs):
            self._by_benchmark.setdefault(spec.benchmark, []).append(i)
        self._ledgers = [
            _Ledger(active=self._initially_active(i))
            for i in range(len(self.specs))]
        self._rr: Dict[str, int] = {b: 0 for b in self._by_benchmark}
        self.routing_log: List[RoutingDecision] = []
        self.sheds: List[FleetShed] = []
        self.assignments: Dict[int, int] = {}
        self.routed: List[List[FleetJob]] = [[] for _ in self.specs]
        self.n_offered = 0

    def _initially_active(self, pool_index: int) -> bool:
        if not self.config.elastic:
            return True
        peers = self._by_benchmark[self.specs[pool_index].benchmark]
        return peers.index(pool_index) < self.config.min_active

    # -- elastic scaling ----------------------------------------------

    def n_active(self, benchmark: Optional[str] = None) -> int:
        """Active instance count (optionally one benchmark's)."""
        indices = (self._by_benchmark.get(benchmark, [])
                   if benchmark is not None
                   else range(len(self.specs)))
        return sum(1 for i in indices if self._ledgers[i].active)

    def _rescale(self, benchmark: str, arrival: float) -> None:
        """Move one watermark step for ``benchmark``'s sub-pool."""
        peers = self._by_benchmark[benchmark]
        active = [i for i in peers if self._ledgers[i].active]
        backlogs = [self._ledgers[i].backlog(arrival) for i in active]
        mean = sum(backlogs) / len(active) if active else 0.0
        observer = get_observer()
        if (mean > self.config.scale_up_backlog
                and len(active) < len(peers)):
            nxt = next(i for i in peers if not self._ledgers[i].active)
            self._ledgers[nxt].active = True
            if observer is not None:
                observer.metrics.inc("serve.fleet.scale_up")
        elif (mean < self.config.scale_down_backlog
                and len(active) > self.config.min_active):
            # Retire from the back, and only an idle instance — an
            # empty ledger means nothing routed there needs moving, so
            # conservation is untouched.
            for i in reversed(active):
                if self._ledgers[i].backlog(arrival) == 0:
                    self._ledgers[i].active = False
                    if observer is not None:
                        observer.metrics.inc("serve.fleet.scale_down")
                    break
        if observer is not None:
            observer.metrics.set_gauge("serve.fleet.active",
                                       self.n_active())

    # -- routing -------------------------------------------------------

    def _estimate(self, pool_index: int, job: FleetJob) -> _Estimate:
        """Project one job's service on one instance.

        The projection reruns the controllers' own level-selection
        model on the job's *predicted* cycles (margin/boost/overheads
        read off the instance's controller), so the ledger sees the
        service time the instance is about to plan — without touching
        controller state.  A job with no prediction projects a full
        deadline at the fastest point: the conservative bound.
        """
        spec = self.specs[pool_index]
        ledger = self._ledgers[pool_index]
        controller = spec.controller
        levels = controller.levels
        record = job.job.record
        deadline = spec.config.deadline
        start = max(ledger.clock, job.arrival)
        budget = job.arrival + deadline - start
        predicted = record.predicted_cycles
        if predicted is None:
            point = levels.fastest()
            exec_s = deadline
            feasible = budget >= deadline
        else:
            t_slice = 0.0
            if controller.uses_slice and controller.charge_overheads:
                t_slice = record.slice_cycles / levels.nominal.frequency
            t_switch = (spec.config.t_switch
                        if controller.charge_overheads else 0.0)
            decision = select_level(
                levels, float(predicted), budget,
                margin_fraction=getattr(controller, "margin", 0.0),
                t_slice=t_slice, t_switch=t_switch,
                allow_boost=getattr(controller, "boost", False),
            )
            point = decision.point
            exec_s = t_slice + t_switch + float(predicted) / point.frequency
            feasible = decision.feasible
        energy = spec.energy_model.job_energy(
            JobActivity(cycles=float(predicted if predicted is not None
                                     else 0.0)),
            point, exec_s)
        return _Estimate(service_s=exec_s, energy=energy,
                         feasible=feasible)

    def _pick(self, candidates: List[int],
              job: FleetJob) -> Tuple[Optional[int], Optional[str]]:
        """Apply the routing policy; ``(None, reason)`` means shed."""
        policy = self.config.policy
        if policy == ROUND_ROBIN:
            turn = self._rr[job.benchmark]
            self._rr[job.benchmark] = turn + 1
            return candidates[turn % len(candidates)], None
        if policy == LEAST_LOADED:
            return min(candidates,
                       key=lambda i: (self._ledgers[i].backlog(
                           job.arrival), i)), None
        if policy == ENERGY_AWARE:
            return min(candidates,
                       key=lambda i: (self._estimate(i, job).energy,
                                      self._ledgers[i].backlog(
                                          job.arrival), i)), None
        # DEADLINE: only instances projected to finish in time are
        # eligible; none feasible -> shed here rather than burn an
        # instance on a job already lost.
        best = None
        best_finish = None
        for i in candidates:
            estimate = self._estimate(i, job)
            if not estimate.feasible:
                continue
            finish = (max(self._ledgers[i].clock, job.arrival)
                      + estimate.service_s)
            if best_finish is None or finish < best_finish:
                best, best_finish = i, finish
        if best is None:
            return None, SHED_DEADLINE
        return best, None

    def _shed(self, job: FleetJob, reason: str,
              candidates: Tuple[int, ...] = (),
              backlogs: Tuple[int, ...] = ()) -> None:
        self.sheds.append(FleetShed(
            index=job.index, benchmark=job.benchmark,
            tenant=job.tenant, arrival=job.arrival, reason=reason))
        self.routing_log.append(RoutingDecision(
            index=job.index, benchmark=job.benchmark,
            tenant=job.tenant, arrival=job.arrival,
            candidates=candidates, backlogs=backlogs,
            chosen=None, reason=reason))
        observer = get_observer()
        if observer is not None:
            observer.metrics.inc(f"serve.fleet.shed.{reason}")
            observer.timeseries.observe("serve.fleet.shed",
                                        job.arrival, 1.0)

    def route(self, job: FleetJob) -> Optional[int]:
        """Route (or shed) one arriving job; returns the pool index."""
        self.n_offered += 1
        if job.tenant not in self._buckets:
            raise ValueError(
                f"job {job.index} names unknown tenant {job.tenant!r}")
        if job.benchmark not in self._by_benchmark:
            raise ValueError(
                f"job {job.index} needs benchmark {job.benchmark!r} "
                "but no pool instance serves it")
        observer = get_observer()
        if observer is not None:
            observer.metrics.inc("serve.fleet.offered")
        if not self._buckets[job.tenant].allow(job.arrival):
            self._shed(job, SHED_RATE_LIMIT)
            return None
        if self.config.elastic:
            self._rescale(job.benchmark, job.arrival)
        total_backlog = sum(ledger.backlog(job.arrival)
                            for ledger in self._ledgers)
        if observer is not None:
            observer.timeseries.observe("serve.fleet.backlog",
                                        job.arrival, total_backlog)
        if total_backlog >= self.config.global_depth:
            self._shed(job, SHED_ADMISSION)
            return None
        candidates = [i for i in self._by_benchmark[job.benchmark]
                      if self._ledgers[i].active]
        backlogs = tuple(self._ledgers[i].backlog(job.arrival)
                         for i in candidates)
        chosen, reason = self._pick(candidates, job)
        if chosen is None:
            self._shed(job, reason, tuple(candidates), backlogs)
            return None
        estimate = self._estimate(chosen, job)
        self._ledgers[chosen].commit(job.arrival, estimate.service_s)
        self.assignments[job.index] = chosen
        self.routed[chosen].append(job)
        self.routing_log.append(RoutingDecision(
            index=job.index, benchmark=job.benchmark,
            tenant=job.tenant, arrival=job.arrival,
            candidates=tuple(candidates), backlogs=backlogs,
            chosen=chosen))
        if observer is not None:
            observer.metrics.inc("serve.fleet.routed")
            observer.timeseries.observe("serve.fleet.shed",
                                        job.arrival, 0.0)
        return chosen

    def dispatch(self, jobs: Sequence[FleetJob]) -> List[List[FleetJob]]:
        """Route a whole (arrival-sorted) stream; returns per-instance
        sub-streams aligned with ``specs``.

        Under the ``auto``/``vector`` engines the dispatcher first
        tries one vectorized **routing epoch** (:meth:`_route_epoch`)
        over the whole stream; whatever prefix it can prove
        independent is committed in bulk and the scalar
        :meth:`route` loop finishes the rest from the reconstructed
        ledger state — bit-identical either way.
        """
        arrivals = [job.arrival for job in jobs]
        if arrivals != sorted(arrivals):
            raise ValueError("fleet jobs must be sorted by arrival")
        start = 0
        if _fleet_engine(self.config) != "scalar":
            start = self._route_epoch(jobs)
        for job in jobs[start:]:
            self.route(job)
        return self.routed

    # -- vectorized routing epoch -------------------------------------

    def _epoch_eligible(self, jobs: Sequence[FleetJob]) -> bool:
        """Can the whole decision plane be replayed as one epoch?

        Round-robin routing is a pure function of the arrival order —
        no decision reads a backlog — so the only remaining coupling
        is each ledger's own clock, which the epoch speculates idle
        and then verifies.  Every other policy, elastic scaling, any
        rate-limited tenant, or a pool big enough to trip the global
        depth even when idle-verified (one in-flight job per
        instance), keeps the scalar path.  A job naming an unknown
        tenant or benchmark also declines, so the scalar loop raises
        its diagnostic at exactly the right job.
        """
        if self.config.policy != ROUND_ROBIN or self.config.elastic:
            return False
        if len(self.specs) >= self.config.global_depth:
            return False
        if any(t.rate > 0.0 for t in self.tenants.values()):
            return False
        if self.n_offered or len(jobs) < 2:
            return False
        for job in jobs:
            if (job.tenant not in self._buckets
                    or job.benchmark not in self._by_benchmark):
                return False
        return True

    def _estimate_batch(self, pool_index: int,
                        sub_jobs: List[FleetJob],
                        arr: np.ndarray) -> np.ndarray:
        """Batched :meth:`_estimate` for one instance under the
        idle-ledger speculation (``start == arrival``), replicating
        the scalar arithmetic operation by operation."""
        spec = self.specs[pool_index]
        controller = spec.controller
        levels = controller.levels
        deadline = spec.config.deadline
        budgets = (arr + deadline) - arr
        predicted = [job.job.record.predicted_cycles
                     for job in sub_jobs]
        service = np.empty(len(sub_jobs))
        have = np.array([p is not None for p in predicted])
        if not have.all():
            # No prediction: a full deadline at the fastest point —
            # the scalar path's conservative bound.
            service[~have] = deadline
        if have.any():
            hp = np.flatnonzero(have)
            cycles = np.array([float(predicted[k]) for k in hp])
            if controller.uses_slice and controller.charge_overheads:
                t_slice = np.array(
                    [sub_jobs[k].job.record.slice_cycles for k in hp],
                    dtype=float) / levels.nominal.frequency
            else:
                t_slice = np.zeros(hp.size)
            t_switch = (spec.config.t_switch
                        if controller.charge_overheads else 0.0)
            decision = select_level_batch(
                levels, cycles, budgets[hp],
                margin_fraction=getattr(controller, "margin", 0.0),
                t_slice=t_slice, t_switch=t_switch,
                allow_boost=getattr(controller, "boost", False),
            )
            arrays = levels.arrays()
            freqs = arrays.frequencies
            if arrays.boost_frequency is not None:
                freqs = np.append(freqs, arrays.boost_frequency)
            service[hp] = ((t_slice + t_switch)
                           + cycles / freqs[decision.level_index])
        return service

    def _route_epoch(self, jobs: Sequence[FleetJob]) -> int:
        """Decide a whole arrival stream as one vectorized epoch.

        Speculates every ledger idle at every arrival it receives
        (``start == arrival``), derives the round-robin assignment in
        closed form, estimates per instance with
        :func:`~repro.dvfs.select_level_batch`, then verifies the
        speculation per instance: the committed prefix ends at the
        first job whose predecessor on the same instance finishes
        after it arrives.  Returns how many jobs were committed (0 =
        ineligible); the caller's scalar loop handles the rest from
        the reconstructed state.
        """
        if not self._epoch_eligible(jobs):
            return 0
        n = len(jobs)
        arrivals = np.array([job.arrival for job in jobs], dtype=float)
        positions: Dict[str, List[int]] = {}
        for g, job in enumerate(jobs):
            positions.setdefault(job.benchmark, []).append(g)
        chosen = np.empty(n, dtype=np.int64)
        for benchmark, pos in positions.items():
            peers = np.array(self._by_benchmark[benchmark],
                             dtype=np.int64)
            chosen[np.array(pos, dtype=np.int64)] = \
                peers[np.arange(len(pos)) % peers.size]
        # Per-instance service estimates and chain verification: the
        # prefix holds while every instance's previous job finishes at
        # or before its next one arrives.
        per_instance: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        v = n
        for c in range(len(self.specs)):
            gpos = np.flatnonzero(chosen == c)
            if gpos.size == 0:
                continue
            service = self._estimate_batch(
                c, [jobs[g] for g in gpos], arrivals[gpos])
            finishes = arrivals[gpos] + service
            per_instance[c] = (gpos, finishes)
            if gpos.size > 1:
                bad = np.flatnonzero(
                    finishes[:-1] > arrivals[gpos][1:])
                if bad.size:
                    v = min(v, int(gpos[bad[0] + 1]))
        if v < 1:
            return 0
        # Backlog telemetry: with idle-verified chains, an instance
        # contributes at most its last committed finish — busy at a
        # later global arrival only while that finish lies beyond it.
        gidx = np.arange(v)
        arr_v = arrivals[:v]
        busy_total = np.zeros(v, dtype=np.int64)
        inst_busy: Dict[int, np.ndarray] = {}
        zeros_busy = np.zeros(v, dtype=bool)
        for c, (gpos, finishes) in per_instance.items():
            gp = gpos[gpos < v]
            if gp.size == 0:
                continue
            fc = finishes[:gp.size]
            j = np.searchsorted(gp, gidx, side="left") - 1
            busy = (j >= 0) & (fc[np.clip(j, 0, fc.size - 1)] > arr_v)
            inst_busy[c] = busy
            busy_total += busy
            ledger = self._ledgers[c]
            ledger.clock = float(fc[-1])
            ledger._finishes = deque(fc.tolist())
            ledger._in_flight = int(gp.size)
        for benchmark, pos in positions.items():
            self._rr[benchmark] = int(np.searchsorted(pos, v))
        peer_tuples = {b: tuple(p)
                       for b, p in self._by_benchmark.items()}
        chosen_l = chosen[:v].tolist()
        for g in range(v):
            job = jobs[g]
            peers = peer_tuples[job.benchmark]
            self.assignments[job.index] = chosen_l[g]
            self.routed[chosen_l[g]].append(job)
            self.routing_log.append(RoutingDecision(
                index=job.index, benchmark=job.benchmark,
                tenant=job.tenant, arrival=job.arrival,
                candidates=peers,
                backlogs=tuple(
                    int(inst_busy.get(c, zeros_busy)[g])
                    for c in peers),
                chosen=chosen_l[g]))
        self.n_offered = v
        observer = get_observer()
        if observer is not None:
            observer.metrics.inc("serve.fleet.offered", v)
            observer.metrics.inc("serve.fleet.routed", v)
            observer.metrics.inc("serve.fleet.epochs")
            observer.metrics.inc("serve.fleet.epoch_jobs", v)
            series = observer.timeseries
            arr_l = arr_v.tolist()
            busy_l = busy_total.tolist()
            for g in range(v):
                series.observe("serve.fleet.backlog", arr_l[g],
                               busy_l[g])
                series.observe("serve.fleet.shed", arr_l[g], 0.0)
        return v


def virtual_outcomes(result: StreamResult) -> List:
    """A shard's outcomes with measured wall-clock fields zeroed.

    Everything on the virtual clock — timeline, energy, levels,
    misses, terminal states — is deterministic, so a ``workers=4`` run
    must reproduce the serial reference *bit-identically* on these.
    ``decision_s`` alone is genuinely measured (host wall time) and is
    excluded, and the record's ``features`` vector (a numpy array,
    which poisons dataclass ``==``) is dropped; this is the canonical
    form the equivalence tests and the throughput benchmark compare.
    """
    from dataclasses import replace as _replace
    return [_replace(o, decision_s=0.0,
                     job=_replace(o.job, features=None))
            for o in result.outcomes]


def _run_shard(task: Tuple[ShardSpec, List[FleetJob]]) -> StreamResult:
    """Worker body: serve one instance's routed sub-stream.

    Must stay a module-level function (pmap pickles it).  SLO
    judgement stays off inside shards — windows are only complete
    fleet-wide, so :func:`serve_fleet` finalizes once at the end.
    """
    spec, jobs = task
    stream = spec.make_stream()
    stream.slo_live = False
    t0 = time.perf_counter()
    for job in jobs:
        stream.offer(job.job)
    stream.drain()
    result = stream.result(wall_s=time.perf_counter() - t0)
    _emit_stream_summary(result)
    _check_result(stream, result)
    return result


def serve_fleet(specs: Sequence[ShardSpec],
                jobs: Sequence[FleetJob],
                config: FleetConfig = FleetConfig(),
                tenants: Sequence[TenantSpec] = (TenantSpec("default"),),
                workers: Optional[int] = None) -> FleetResult:
    """Serve one mixed stream across the pool.

    Routing runs first (dispatcher-side, deterministic); the
    per-instance sub-streams then execute across ``workers`` processes
    via :func:`~repro.parallel.pmap` — one task per instance, metric
    and time-series snapshots shipped back per chunk — or serially
    in-process when ``workers`` resolves to 1, with bit-identical
    outcomes either way.  Strict mode (``config.strict`` or
    ``REPRO_CHECK``) replays the result through
    :func:`repro.check.check_fleet` and raises
    :class:`~repro.check.InvariantError` on any violation.
    """
    dispatcher = FleetDispatcher(specs, config=config, tenants=tenants)
    observer = get_observer()
    # Process fan-out only pays for itself when the host can actually
    # run the shards side by side; below two cores per shard the fork
    # + ship-back overhead makes `workers=N` *slower* than serial, so
    # degrade to the in-process path (bit-identical results).
    if (resolve_jobs(workers) > 1
            and usable_cores() < 2 * len(specs)):
        workers = 1
        if observer is not None:
            observer.metrics.inc("serve.fleet.serial_degrade")
    t0 = time.perf_counter()
    with span("serve.fleet", shards=len(specs), policy=config.policy,
              jobs=len(jobs)):
        routed = dispatcher.dispatch(jobs)
        tasks = list(zip(dispatcher.specs, routed))
        shard_results = pmap(_run_shard, tasks, jobs=workers,
                             label="serve.fleet")
    observer = get_observer()
    if observer is not None and observer.slo is not None:
        observer.slo.finalize(observer.timeseries)
    result = FleetResult(
        policy=config.policy,
        specs=dispatcher.specs,
        shards=shard_results,
        sheds=dispatcher.sheds,
        assignments=dispatcher.assignments,
        tenants={job.index: job.tenant for job in jobs},
        benchmarks={job.index: job.benchmark for job in jobs},
        n_offered=dispatcher.n_offered,
        wall_s=time.perf_counter() - t0,
    )
    strict = config.strict
    if strict is None:
        strict = strict_checks_enabled()
    if strict:
        from ..check import InvariantError, check_fleet
        violations = check_fleet(result)
        if violations:
            raise InvariantError(violations)
    return result
