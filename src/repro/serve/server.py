"""The online serving runtime: one controller state machine per stream.

This is the paper's mechanism run the way it is framed (Sec. 2/Fig 4):
jobs *arrive*, the prediction slice runs *before* each job, and the
DVFS controller picks a level in real time.  Each
:class:`AcceleratorStream` is a bounded-admission, FIFO, single-server
queue over one accelerator:

* **admission** — a job arriving while the stream's *virtual backlog*
  (admitted jobs not yet finished on the simulated clock) has reached
  ``queue_depth`` is **shed**: counted, never executed;
* **micro-batching** — when the server frees up it takes up to
  ``batch_max`` queued jobs at once and runs their slice predictions
  together, amortizing per-decision overhead;
* **graceful degradation** — if a prediction fails or overruns its
  wall-clock ``prediction_budget``, the job **falls back** to
  max-frequency (nominal) execution with no slice charge: the event
  is counted, the stream keeps serving.

Execution accounting mirrors :func:`~repro.runtime.episode.run_episode`
exactly — the same energy decomposition, deadline epsilon, and switch
charging rules — but on a stream timeline where ``release`` is the
arrival instant rather than a rigid period boundary.  Two clocks are
maintained deliberately: the *virtual clock* (simulated accelerator
time, used for all time/energy accounting and backpressure) and the
*wall clock* (decision latency, realtime pacing).  ``realtime=False``
drives the virtual clock as fast as the host allows; ``realtime=True``
paces arrivals against the wall clock through asyncio, which is what
``repro serve`` and the throughput benchmark measure.
"""

from __future__ import annotations

import asyncio
import os
import time
from collections import deque
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from ..dvfs.controllers import Controller
from ..dvfs.energy import EnergyModel, JobActivity
from ..model.linear import predict_cycles_batch
from ..obs import get_observer, span
from ..runtime.episode import strict_checks_enabled, switch_window_energy
from ..runtime.jobs import JobRecord
from ..units import DVFS_SWITCH_TIME, FRAME_DEADLINE_60FPS, deadline_missed
from .stream import StreamJob

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..flow.pipeline import GeneratedPredictor

#: Terminal states of an admitted-or-shed job.  Every offered job ends
#: in exactly one of these — the conservation law ``check_stream``
#: enforces.
COMPLETED = "completed"
FALLBACK = "fallback"
SHED = "shed"
TERMINAL_STATES = (COMPLETED, FALLBACK, SHED)

#: Decision-plane engines.  ``auto`` (the default) runs the
#: epoch-coalescing vectorized engine (:mod:`repro.serve.vector`)
#: wherever its eligibility proof holds and the scalar state machine
#: everywhere else; ``scalar`` forces the per-job path; ``vector``
#: insists on the vectorized driver (which still defers to scalar
#: job-by-job whenever state coupling binds).  Selected per stream by
#: ``ServeConfig.engine`` or globally by ``REPRO_SERVE_ENGINE``.
ENGINES = ("auto", "scalar", "vector")
ENGINE_ENV = "REPRO_SERVE_ENGINE"


@dataclass(frozen=True)
class ServeConfig:
    """Per-stream serving policy knobs."""

    deadline: float = FRAME_DEADLINE_60FPS
    t_switch: float = DVFS_SWITCH_TIME
    queue_depth: int = 64          # admission bound (virtual backlog)
    batch_max: int = 8             # micro-batch size cap
    prediction_budget: Optional[float] = None  # wall seconds / decision
    strict: Optional[bool] = None  # None = follow REPRO_CHECK
    engine: Optional[str] = None   # None = follow REPRO_SERVE_ENGINE

    def __post_init__(self) -> None:
        if self.deadline <= 0.0:
            raise ValueError("deadline must be positive")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        if self.engine is not None and self.engine not in ENGINES:
            raise ValueError(
                f"engine must be one of {ENGINES}, got {self.engine!r}")


def resolve_engine(config: ServeConfig) -> str:
    """The stream's effective decision-plane engine.

    ``ServeConfig.engine`` wins; otherwise the ``REPRO_SERVE_ENGINE``
    environment variable; otherwise ``auto``.
    """
    engine = config.engine
    if engine is None:
        engine = os.environ.get(ENGINE_ENV, "auto") or "auto"
    if engine not in ENGINES:
        raise ValueError(
            f"{ENGINE_ENV} must be one of {ENGINES}, got {engine!r}")
    return engine


class RecordPredictor:
    """Replay the precomputed slice prediction carried by the record.

    The offline flow already ran the slice for every test record;
    replaying it keeps soak tests deterministic and costs nanoseconds.
    """

    name = "record"

    def predict(self, sjob: StreamJob) -> Tuple[float, int]:
        """Replay the record's offline prediction and slice cycles."""
        record = sjob.record
        if record.predicted_cycles is None:
            raise ValueError(
                f"job {record.index} carries no precomputed prediction")
        return float(record.predicted_cycles), record.slice_cycles


class SlicePredictor:
    """Run the hardware prediction slice online, per job.

    Unlike :meth:`GeneratedPredictor.run_slice` (which builds a fresh
    simulation per call for one-shot use), the serving predictor keeps
    one simulation and one feature recorder alive for the stream's
    lifetime and resets them per job — the steady-state hot path.
    """

    name = "slice"

    def __init__(self, package: "GeneratedPredictor",
                 max_cycles: int = 50_000_000):
        from ..analysis.instrument import FeatureRecorder
        from ..rtl.backend import make_simulation, resolve_backend

        self._package = package
        self._recorder = FeatureRecorder(package.feature_set)
        self._sim = make_simulation(package.hw_slice.module,
                                    listener=self._recorder,
                                    track_state_cycles=False)
        self._max_cycles = max_cycles
        #: Under the ``batch`` backend a serving micro-batch is
        #: predicted in one lockstep array step (``predict_batch``);
        #: other backends keep the per-job path.
        self.batch_capable = resolve_backend() == "batch"
        self._batch_sim = None

    def predict(self, sjob: StreamJob) -> Tuple[float, int]:
        """Run the hardware slice on the job's input, live."""
        if sjob.job_input is None:
            raise ValueError(
                f"job {sjob.index} has no encoded input; build the "
                "stream with with_inputs=True to predict online")
        self._sim.reset()
        self._recorder.start_job()
        self._sim.load(*sjob.job_input.as_pair(), ignore_unknown=True)
        result = self._sim.run(max_cycles=self._max_cycles)
        if not result.finished:
            raise RuntimeError(
                f"slice of {self._package.design_name} did not finish "
                f"within {self._max_cycles} cycles")
        predicted = self._package.predictor.predict_one(
            self._recorder.vector())
        return max(predicted, 0.0), result.cycles

    def predict_batch(self, sjobs: Sequence[StreamJob]
                      ) -> List[Optional[Tuple[float, int]]]:
        """Predict a whole micro-batch in one lockstep array step.

        One entry per job, aligned with ``sjobs``: ``(predicted,
        slice_cycles)`` on success, ``None`` where that job cannot be
        predicted (no encoded input, or its slice run did not finish)
        — per-job fallback semantics identical to calling
        :meth:`predict` once per job.  Only meaningful when
        ``batch_capable`` (the ``batch`` backend is active).
        """
        from ..analysis.instrument import _matrix_from_batch
        from ..rtl.batchsim import BatchSimulation

        if self._batch_sim is None:
            self._batch_sim = BatchSimulation(
                self._package.hw_slice.module)
        out: List[Optional[Tuple[float, int]]] = [None] * len(sjobs)
        jobs = []
        rows = []
        for i, sjob in enumerate(sjobs):
            if sjob.job_input is None:
                continue
            jobs.append(sjob.job_input.as_pair())
            rows.append(i)
        if not jobs:
            return out
        result = self._batch_sim.run_jobs(
            jobs, max_cycles=self._max_cycles, ignore_unknown=True)
        x = _matrix_from_batch(self._package.feature_set,
                               result.events, len(jobs))
        # One einsum over the whole feature matrix; the kernel is
        # row-stable, so every job's prediction is independent of how
        # many neighbours share its batch — which is what lets the
        # scalar and vectorized engines (different batch shapes, same
        # kernel) stay bit-identical.
        predicted = predict_cycles_batch(self._package.predictor, x)
        for j, i in enumerate(rows):
            if not result.finished[j]:
                continue
            out[i] = (max(float(predicted[j]), 0.0),
                      int(result.cycles[j]))
        return out


@dataclass(frozen=True)
class StreamOutcome:
    """Terminal record of one offered job.

    Shed jobs never touch the accelerator: their time and energy
    fields are all zero and ``frequency`` is 0 (no operating point was
    ever selected).  Executed jobs carry the *effective* record — for
    online prediction, ``job.predicted_cycles``/``job.slice_cycles``
    are what the slice produced at serve time — so the invariant
    checker can re-derive every identity from the outcome alone.
    """

    index: int
    status: str
    job: JobRecord
    arrival: float
    release: float = 0.0
    start: float = 0.0
    t_slice: float = 0.0
    t_switch: float = 0.0
    t_exec: float = 0.0
    energy: float = 0.0
    missed: bool = False
    voltage: float = 0.0
    frequency: float = 0.0
    boosted: bool = False
    decision_s: float = 0.0
    batch_size: int = 0

    @property
    def total_time(self) -> float:
        return self.t_slice + self.t_switch + self.t_exec

    @property
    def finish(self) -> float:
        return self.start + self.total_time

    @property
    def executed(self) -> bool:
        return self.status != SHED


@dataclass
class StreamResult:
    """Everything one stream did, in arrival order."""

    stream: str
    scheme: str
    deadline: float
    outcomes: List[StreamOutcome]
    n_offered: int
    wall_s: float = 0.0

    @property
    def executed(self) -> List[StreamOutcome]:
        return [o for o in self.outcomes if o.executed]

    @property
    def n_admitted(self) -> int:
        return sum(1 for o in self.outcomes if o.executed)

    @property
    def n_completed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == COMPLETED)

    @property
    def n_fallback(self) -> int:
        return sum(1 for o in self.outcomes if o.status == FALLBACK)

    @property
    def n_shed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == SHED)

    @property
    def fallback_rate(self) -> float:
        admitted = self.n_admitted
        return self.n_fallback / admitted if admitted else 0.0

    @property
    def shed_rate(self) -> float:
        return self.n_shed / self.n_offered if self.n_offered else 0.0

    @property
    def miss_count(self) -> int:
        return sum(1 for o in self.outcomes if o.missed)

    @property
    def total_energy(self) -> float:
        return sum(o.energy for o in self.outcomes)

    @property
    def makespan(self) -> float:
        """Virtual time from first arrival to last finish."""
        executed = self.executed
        if not executed:
            return 0.0
        return max(o.finish for o in executed)

    def decision_latencies(self) -> List[float]:
        """Wall-clock decision latencies of executed jobs, sorted."""
        return sorted(o.decision_s for o in self.executed)


class AcceleratorStream:
    """One accelerator's controller state machine over a job stream.

    The stream owns the virtual clock (``now``), the last operating
    point (for switch charging), the admission window, and the
    controller.  ``offer`` is the synchronous virtual-time entry
    point; :func:`serve_streams` drives it either flat-out (virtual
    mode) or paced by asyncio (realtime mode).
    """

    def __init__(self, name: str, controller: Controller,
                 energy_model: EnergyModel,
                 slice_energy_model: Optional[EnergyModel] = None,
                 predictor=None,
                 config: ServeConfig = ServeConfig()):
        self.name = name
        self.controller = controller
        self.levels = controller.levels
        self.energy_model = energy_model
        self.slice_energy_model = slice_energy_model
        self.predictor = predictor
        self.config = config
        self._queue: deque = deque()     # admitted, not yet executed
        self._finishes: deque = deque()  # virtual finishes of executed
        #: Incremental in-flight counter: executed jobs whose virtual
        #: finish has not yet been passed by an arrival.  Maintained at
        #: execute/expiry so admission never rescans outcomes — at
        #: fleet scale a per-arrival rescan of the outcome list is
        #: O(n²) over the stream.
        self._in_flight = 0
        self.outcomes: List[StreamOutcome] = []
        self.n_offered = 0
        #: Committed decision epochs as ``(first_index, n_jobs)``
        #: pairs — written only by the vectorized engine, audited by
        #: :func:`repro.check.check_epochs` in strict mode.
        self.epoch_log: List[Tuple[int, int]] = []
        self.now = 0.0
        self._previous = self.levels.nominal
        #: Evaluate the ambient SLO tracker after every batch.  Left
        #: True for a lone stream; :func:`serve_streams` clears it
        #: when several streams share the global windowed series, in
        #: which case only the end-of-run finalize judges windows
        #: (judging mid-run would see a window before every stream
        #: had written into it).
        self.slo_live = True
        self.controller.reset()

    # -- admission -----------------------------------------------------

    def backlog(self, arrival: float) -> int:
        """Virtual backlog at ``arrival``: queued + still-executing.

        An executed job contributes while its *virtual* finish lies
        beyond the arrival instant; anything admitted but not yet
        executed always contributes.  This is what a real admission
        controller would read off its queue — computed here from the
        simulated clock so virtual and realtime modes shed
        identically under the same arrival sequence.

        Amortized O(1): the in-flight count is carried incrementally
        (incremented per execute, decremented as finishes expire), and
        each finish instant is enqueued and expired exactly once over
        the stream's lifetime.
        """
        while self._finishes and self._finishes[0] <= arrival:
            self._finishes.popleft()
            self._in_flight -= 1
        return len(self._queue) + self._in_flight

    def _shed(self, sjob: StreamJob) -> None:
        self.outcomes.append(StreamOutcome(
            index=sjob.index, status=SHED, job=sjob.record,
            arrival=sjob.arrival, release=sjob.arrival))
        observer = get_observer()
        if observer is not None:
            observer.metrics.inc("serve.shed")
            observer.emit(
                "sjob", stream=self.name, index=sjob.index,
                status=SHED, arrival=sjob.arrival)

    def admit(self, sjob: StreamJob) -> bool:
        """Admit or shed one arriving job (no execution yet)."""
        self.n_offered += 1
        shed = self.backlog(sjob.arrival) >= self.config.queue_depth
        observer = get_observer()
        if observer is not None:
            observer.metrics.inc("serve.offered")
            # Shed indicator per *offered* job at its arrival instant:
            # the window mean is the shed rate of that window.
            observer.timeseries.observe("serve.shed", sjob.arrival,
                                        1.0 if shed else 0.0)
        if shed:
            self._shed(sjob)
            return False
        self._queue.append(sjob)
        return True

    # -- execution -----------------------------------------------------

    def _predict(self, sjob: StreamJob) -> Tuple[Optional[JobRecord], float]:
        """Run the prediction path; ``None`` record means fall back."""
        t0 = time.perf_counter()
        if not self.controller.uses_slice:
            return sjob.record, time.perf_counter() - t0
        if self.predictor is None:
            return None, time.perf_counter() - t0
        try:
            predicted, slice_cycles = self.predictor.predict(sjob)
        except (ValueError, RuntimeError):
            return None, time.perf_counter() - t0
        record = replace(sjob.record, predicted_cycles=predicted,
                         slice_cycles=slice_cycles)
        decision_s = time.perf_counter() - t0
        budget = self.config.prediction_budget
        if budget is not None and decision_s > budget:
            return None, decision_s
        return record, decision_s

    def _predict_all(self, batch: List[StreamJob]
                     ) -> List[Tuple[Optional[JobRecord], float]]:
        """The batch's prediction pass, one ``_predict``-shaped entry
        per job.

        A batch-capable predictor (``SlicePredictor`` under the
        ``batch`` backend) predicts the whole micro-batch in one
        lockstep array step; the measured wall time is amortized
        across the jobs as each entry's ``decision_s`` and judged
        against the per-job prediction budget.  Any other predictor —
        and any batch-level failure — degrades to the per-job path,
        with its per-job fallback semantics.
        """
        if (not self.controller.uses_slice or self.predictor is None
                or not getattr(self.predictor, "batch_capable", False)):
            return [self._predict(sjob) for sjob in batch]
        t0 = time.perf_counter()
        try:
            results = self.predictor.predict_batch(batch)
        except (ValueError, RuntimeError):
            return [self._predict(sjob) for sjob in batch]
        decision_s = (time.perf_counter() - t0) / max(len(batch), 1)
        budget = self.config.prediction_budget
        over_budget = budget is not None and decision_s > budget
        planned: List[Tuple[Optional[JobRecord], float]] = []
        for sjob, entry in zip(batch, results):
            if entry is None or over_budget:
                planned.append((None, decision_s))
                continue
            predicted, slice_cycles = entry
            planned.append((replace(sjob.record,
                                    predicted_cycles=predicted,
                                    slice_cycles=slice_cycles),
                            decision_s))
        return planned

    def _execute(self, sjob: StreamJob, record: Optional[JobRecord],
                 decision_s: float, batch_size: int) -> StreamOutcome:
        """Advance the virtual clock through one admitted job."""
        controller = self.controller
        release = sjob.arrival
        start = max(self.now, release)
        budget = release + self.config.deadline - start
        fallback = record is None
        if fallback:
            # Abandon the prediction path entirely: dispatch at the
            # fastest non-boost point, charge no slice time or energy.
            record = sjob.record
            point = self.levels.fastest()
            t_slice = 0.0
        else:
            plan = controller.plan(record, budget)
            point = plan.point
            t_slice = plan.t_slice

        switch_needed = (point != self._previous
                         and controller.charge_overheads)
        t_switch = self.config.t_switch if switch_needed else 0.0
        t_exec = record.actual_cycles / point.frequency
        finish = start + t_slice + t_switch + t_exec
        missed = deadline_missed(finish, release, self.config.deadline)

        energy = self.energy_model.job_energy(record.activity, point,
                                              t_exec)
        energy += switch_window_energy(self.energy_model, point, t_switch)
        if not fallback and controller.uses_slice and t_slice > 0.0:
            if self.slice_energy_model is None:
                raise ValueError(
                    f"stream {self.name} runs a slice but has no "
                    "slice energy model")
            energy += self.slice_energy_model.job_energy(
                JobActivity(cycles=record.slice_cycles),
                self.levels.nominal, t_slice)

        self.now = finish
        self._previous = point
        self._finishes.append(finish)
        self._in_flight += 1
        controller.observe(record)

        outcome = StreamOutcome(
            index=sjob.index,
            status=FALLBACK if fallback else COMPLETED,
            job=record, arrival=sjob.arrival,
            release=release, start=start,
            t_slice=t_slice, t_switch=t_switch, t_exec=t_exec,
            energy=energy, missed=missed,
            voltage=point.voltage, frequency=point.frequency,
            boosted=point.is_boost,
            decision_s=decision_s, batch_size=batch_size,
        )
        self.outcomes.append(outcome)
        observer = get_observer()
        if observer is not None:
            observer.metrics.inc("serve.fallback" if fallback
                                 else "serve.completed")
            observer.metrics.observe("serve.decision_ms",
                                     decision_s * 1e3)
            observer.metrics.observe("serve.batch_size", batch_size)
            # Windowed signals keyed on the virtual finish instant:
            # 0/1 indicators make each window's mean a rate, so the
            # SLO tracker and the report dashboard read rates and
            # energy-per-job straight off the windows.
            ts = observer.timeseries
            ts.observe("serve.miss", finish, 1.0 if missed else 0.0)
            ts.observe("serve.fallback", finish,
                       1.0 if fallback else 0.0)
            ts.observe("serve.energy_per_job", finish, energy)
            ts.observe("serve.decision_ms", finish, decision_s * 1e3)
            observer.emit(
                "sjob", stream=self.name, index=sjob.index,
                status=outcome.status, arrival=sjob.arrival,
                release=release, start=start, t_slice=t_slice,
                t_switch=t_switch, t_exec=t_exec, energy=energy,
                missed=missed, decision_ms=decision_s * 1e3,
                batch_size=batch_size)
        return outcome

    def run_batch(self) -> List[StreamOutcome]:
        """Pop and execute one micro-batch from the admission queue.

        Predictions for the whole batch run first (the amortized
        slice pass), then each job advances the virtual clock in FIFO
        order.  Returns the executed outcomes (empty = queue empty).
        """
        batch: List[StreamJob] = []
        while self._queue and len(batch) < self.config.batch_max:
            batch.append(self._queue.popleft())
        if not batch:
            return []
        planned = self._predict_all(batch)
        executed = [
            self._execute(sjob, record, decision_s, len(batch))
            for sjob, (record, decision_s) in zip(batch, planned)
        ]
        observer = get_observer()
        if (observer is not None and observer.slo is not None
                and self.slo_live):
            # Judge only windows strictly before the clock: the
            # current window may still receive samples.
            observer.slo.evaluate(observer.timeseries, upto_t=self.now)
        return executed

    def offer(self, sjob: StreamJob) -> None:
        """Virtual-time entry point: drain due work, then admit.

        Before an arrival at ``a`` is admitted, every queued job that
        would have *started* by ``a`` on the virtual clock has
        already been executed — so the queue holds exactly the jobs a
        wall-clock server would still have waiting, and micro-batches
        form naturally under overload (``now`` ahead of arrivals).
        """
        while self._queue and max(self.now, self._queue[0].arrival) \
                <= sjob.arrival:
            self.run_batch()
        self.admit(sjob)

    def drain(self) -> None:
        """Execute everything still queued (end of stream)."""
        while self._queue:
            self.run_batch()

    # -- results -------------------------------------------------------

    def result(self, wall_s: float = 0.0) -> StreamResult:
        """Freeze the stream's accounting into a ``StreamResult``."""
        outcomes = sorted(self.outcomes, key=lambda o: o.index)
        return StreamResult(
            stream=self.name, scheme=self.controller.name,
            deadline=self.config.deadline, outcomes=outcomes,
            n_offered=self.n_offered, wall_s=wall_s,
        )


def _check_result(stream: AcceleratorStream,
                  result: StreamResult) -> None:
    """Strict-mode hook: replay the stream through the checker."""
    strict = stream.config.strict
    if strict is None:
        strict = strict_checks_enabled()
    if not strict:
        return
    # Imported lazily: repro.check imports this module's dataclasses.
    from ..check import InvariantError, check_epochs, check_stream
    violations = check_stream(
        result,
        energy_model=stream.energy_model,
        slice_energy_model=stream.slice_energy_model,
        levels=stream.levels,
        t_switch=stream.config.t_switch,
        uses_slice=stream.controller.uses_slice,
        charge_overheads=stream.controller.charge_overheads,
    )
    if stream.epoch_log:
        violations = list(violations) + list(
            check_epochs(result, stream.epoch_log))
    if violations:
        raise InvariantError(violations)


def _emit_stream_summary(result: StreamResult) -> None:
    observer = get_observer()
    if observer is None:
        return
    observer.emit(
        "stream",
        stream=result.stream, scheme=result.scheme,
        n_offered=result.n_offered, n_completed=result.n_completed,
        n_fallback=result.n_fallback, n_shed=result.n_shed,
        misses=result.miss_count, energy=result.total_energy,
        makespan=result.makespan, wall_s=result.wall_s,
    )


def _serve_virtual(stream: AcceleratorStream,
                   jobs: Sequence[StreamJob]) -> StreamResult:
    """Drive one stream on the virtual clock, as fast as possible.

    Under the ``auto``/``vector`` engines the epoch-coalescing driver
    takes over — it vectorizes decision epochs where they decouple and
    replays the exact scalar ``offer``/``drain`` machine everywhere
    else.  Realtime mode always runs scalar: epochs would require
    arrivals that have not happened yet on the wall clock.

    Deliberately synchronous: virtual serving never awaits, and
    ``asyncio.run`` is far from free here — installing its SIGINT
    handler reprs the pending main task, which stringifies the whole
    queued job list (numpy feature arrays included) twice per run.
    """
    t0 = time.perf_counter()
    if resolve_engine(stream.config) != "scalar":
        from .vector import drive_stream_vectorized
        drive_stream_vectorized(stream, jobs)
    else:
        for sjob in jobs:
            stream.offer(sjob)
        stream.drain()
    return stream.result(wall_s=time.perf_counter() - t0)


async def _serve_realtime(stream: AcceleratorStream,
                          jobs: Sequence[StreamJob]) -> StreamResult:
    """Pace one stream against the wall clock through asyncio.

    A submitter task sleeps until each arrival and admits it; the
    worker task pops micro-batches as they queue up.  Virtual-time
    accounting is identical to :func:`_serve_virtual`; what realtime
    mode adds is genuine wall-clock decision latency under load —
    the quantity the throughput benchmark gates on.
    """
    t0 = time.perf_counter()
    wake = asyncio.Event()
    done = False

    async def submitter() -> None:
        nonlocal done
        for sjob in jobs:
            delay = sjob.arrival - (time.perf_counter() - t0)
            if delay > 0:
                await asyncio.sleep(delay)
            stream.admit(sjob)
            wake.set()
        done = True
        wake.set()

    async def worker() -> None:
        while True:
            if not stream.run_batch():
                if done:
                    return
                wake.clear()
                await wake.wait()
            else:
                # Yield so the submitter keeps pace under load.
                await asyncio.sleep(0)

    await asyncio.gather(submitter(), worker())
    stream.drain()
    return stream.result(wall_s=time.perf_counter() - t0)


async def _serve_all(streams: Sequence[Tuple[AcceleratorStream,
                                             Sequence[StreamJob]]]
                     ) -> List[StreamResult]:
    tasks = [_serve_realtime(stream, jobs) for stream, jobs in streams]
    return list(await asyncio.gather(*tasks))


def serve_streams(streams: Sequence[Tuple[AcceleratorStream,
                                          Sequence[StreamJob]]],
                  realtime: bool = False) -> List[StreamResult]:
    """Serve several independent streams concurrently.

    Each ``(stream, jobs)`` pair runs to completion (jobs must be
    sorted by arrival); results come back in input order.  Strict
    mode (per-stream ``ServeConfig.strict`` or ``REPRO_CHECK``)
    replays every finished stream through
    :func:`repro.check.check_stream` and raises
    :class:`~repro.check.InvariantError` on any violation.
    """
    for _, jobs in streams:
        arrivals = [sjob.arrival for sjob in jobs]
        if arrivals != sorted(arrivals):
            raise ValueError("stream jobs must be sorted by arrival")
    observer = get_observer()
    if len(streams) > 1:
        # Several streams write into the same global windowed series;
        # a window is only complete once every stream has passed it,
        # so defer all SLO judgement to the end-of-run finalize.
        for stream, _ in streams:
            stream.slo_live = False
    with span("serve", streams=len(streams),
              mode="realtime" if realtime else "virtual"):
        if realtime:
            results = asyncio.run(_serve_all(streams))
        else:
            results = [_serve_virtual(stream, jobs)
                       for stream, jobs in streams]
    for (stream, _), result in zip(streams, results):
        _emit_stream_summary(result)
        _check_result(stream, result)
    if observer is not None and observer.slo is not None:
        observer.slo.finalize(observer.timeseries)
    return results


def serve_stream(stream: AcceleratorStream,
                 jobs: Sequence[StreamJob],
                 realtime: bool = False) -> StreamResult:
    """Serve a single stream (convenience wrapper)."""
    return serve_streams([(stream, jobs)], realtime=realtime)[0]
