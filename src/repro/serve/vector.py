"""The vectorized serving decision plane: epoch-coalesced execution.

The scalar engine (:mod:`repro.serve.server`) walks the stream one
arrival at a time — admission check, prediction, ``select_level``,
energy decomposition, all as interpreted Python per job.  This module
replays *exactly the same state machine* as array programs over
**decision epochs**: maximal runs of consecutive arrivals whose
decisions are provably independent of each other's outcomes.

An epoch forms only in the uncoupled regime: the queue is empty, the
virtual clock has not overtaken the next arrival, and the stream's
controller is :attr:`~repro.dvfs.Controller.vectorizable` (its plan is
a pure function of the job and budget, and it learns nothing from
retired jobs).  In that regime the scalar engine provably executes
every job with ``start == arrival`` and micro-batches of exactly one,
and nothing can shed — so the engine *speculates* the whole window
under that assumption, decides every job with
:func:`~repro.dvfs.select_level_batch` and the batched energy
decomposition, then **verifies** the speculation with one vectorized
comparison: the committed prefix is the longest run where each job's
projected finish stays at or before its successor's arrival.  The
first violation ends the epoch; the stream falls back to the scalar
path until the coupling clears (the arrival after a long job sees
``now > arrival`` and takes the ordinary ``offer`` route).

Every committed outcome is **bit-identical** to the scalar engine's
(:func:`repro.serve.virtual_outcomes` canonical form): the kernels
replicate the scalar evaluation order operation by operation, energy
per-level constants are computed by the scalar model code and
gathered by level index, and the linear-predictor kernel is einsum
(row-stable, so a job's prediction does not depend on its epoch's
size).  Only ``decision_s`` differs by design — it is genuinely
measured wall time, amortized per epoch (see docs/serving.md).

The engine declines (``run_epoch`` returns 0, the driver uses the
scalar path) whenever state coupling binds:

* a reactive controller (pid / history / governor) — every decision
  feeds the next;
* a non-empty queue or ``now`` past the next arrival — micro-batches
  and queueing delays couple starts to earlier finishes;
* ``prediction_budget`` set — a wall-clock cutoff is inherently
  per-measurement and cannot be replayed batch-equivalently;
* a slice-charging controller with no slice energy model, or a level
  table with duplicate points — the scalar diagnostics must surface.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..dvfs.energy import EnergyModel, JobActivity
from ..obs import get_observer
from ..runtime.episode import switch_window_energy
from ..runtime.jobs import JobRecord
from ..units import TIME_EPS_REL
from .server import COMPLETED, FALLBACK, AcceleratorStream, \
    RecordPredictor, StreamOutcome
from .stream import StreamJob

#: Adaptive epoch window bounds: start small so a coupled stream pays
#: almost nothing for failed speculation, grow while epochs commit
#: fully.
MIN_EPOCH = 32
MAX_EPOCH = 1024


def _generic_energy(model) -> bool:
    """True when ``model`` uses the stock :class:`EnergyModel`
    decomposition, so its per-level constants can be precomputed and
    gathered.  Anything overriding ``job_energy``/``leakage_power``
    (e.g. test doubles) keeps the per-job scalar calls."""
    return (isinstance(model, EnergyModel)
            and type(model).job_energy is EnergyModel.job_energy
            and type(model).leakage_power is EnergyModel.leakage_power)


class _EnergyKit:
    """Bit-exact batched ``job_energy`` for one model over one table.

    The per-level voltage ratios and leakage powers are produced by
    the *scalar* model methods (``vr ** 3.0`` and friends are not
    replayed in numpy, where ``pow`` may round differently) and only
    gathered by level index; the per-activity 1 V dynamic energy is
    the scalar ``_dynamic_energy_1v`` memoized by activity identity —
    cycled streams share a handful of activity objects across
    thousands of jobs.
    """

    def __init__(self, model: EnergyModel, points: Sequence) -> None:
        self.model = model
        self.vr = np.array(
            [p.voltage / model.v_nominal for p in points], dtype=float)
        self.leak = np.array(
            [model.leakage_power(p) for p in points], dtype=float)
        self._dyn: dict = {}
        self._by_value: dict = {}

    def dyn1v(self, activity: JobActivity) -> float:
        hit = self._dyn.get(id(activity))
        if hit is not None and hit[0] is activity:
            return hit[1]
        # An activity is fully determined by (cycles, block_cycles), so
        # a value key is exact even across distinct objects per job —
        # item order is kept because it fixes the summation order.
        key = (activity.cycles, tuple(activity.block_cycles.items()))
        value = self._by_value.get(key)
        if value is None:
            value = self.model._dynamic_energy_1v(activity)
            self._by_value[key] = value
        self._dyn[id(activity)] = (activity, value)
        return value


class _SliceEnergyKit:
    """Batched slice-charge term: always at the nominal point, keyed
    by the slice's cycle count."""

    def __init__(self, model: EnergyModel, nominal) -> None:
        self.model = model
        self.nominal = nominal
        self.vr = nominal.voltage / model.v_nominal
        self.leak = model.leakage_power(nominal)
        self._dyn: dict = {}

    def dyn1v(self, slice_cycles: int) -> float:
        value = self._dyn.get(slice_cycles)
        if value is None:
            value = self.model._dynamic_energy_1v(
                JobActivity(cycles=slice_cycles))
            self._dyn[slice_cycles] = value
        return value


class EpochEngine:
    """Vectorized epoch executor bound to one
    :class:`~repro.serve.server.AcceleratorStream`."""

    def __init__(self, stream: AcceleratorStream) -> None:
        self.stream = stream
        self.levels = stream.levels
        self.config = stream.config
        self.controller = stream.controller
        arrays = self.levels.arrays()
        self._points = list(self.levels.points)
        if self.levels.boost is not None:
            self._points.append(self.levels.boost)
        self._freq = np.array([p.frequency for p in self._points])
        self._volt = np.array([p.voltage for p in self._points])
        self._boost = np.array([p.is_boost for p in self._points])
        self.eligible = (
            self.controller.vectorizable
            and arrays.unique
            and self.config.prediction_budget is None
            and not (self.controller.uses_slice
                     and stream.slice_energy_model is None))
        self._energy_kit = (
            _EnergyKit(stream.energy_model, self._points)
            if _generic_energy(stream.energy_model) else None)
        self._slice_kit = (
            _SliceEnergyKit(stream.slice_energy_model,
                            self.levels.nominal)
            if (stream.slice_energy_model is not None
                and _generic_energy(stream.slice_energy_model))
            else None)
        self.window = 64

    # -- prediction ----------------------------------------------------

    def _predict_epoch(self, window: Sequence[StreamJob]
                       ) -> Optional[Tuple[List[JobRecord], np.ndarray]]:
        """The epoch's prediction pass, mirroring the scalar
        ``_predict``/``_predict_all`` semantics entry by entry.

        Returns ``(effective records, fallback mask)`` or ``None``
        when the scalar path must replay the epoch (a batch-level
        predictor failure keeps its scalar per-job fallback
        diagnostics).
        """
        controller = self.controller
        predictor = self.stream.predictor
        n = len(window)
        if not controller.uses_slice:
            return [sj.record for sj in window], np.zeros(n, dtype=bool)
        if predictor is None:
            return [sj.record for sj in window], np.ones(n, dtype=bool)
        fallback = np.zeros(n, dtype=bool)
        if getattr(predictor, "batch_capable", False):
            try:
                results = predictor.predict_batch(window)
            except (ValueError, RuntimeError):
                return None
            records: List[JobRecord] = []
            for k, (sjob, entry) in enumerate(zip(window, results)):
                if entry is None:
                    fallback[k] = True
                    records.append(sjob.record)
                    continue
                predicted, slice_cycles = entry
                records.append(replace(sjob.record,
                                       predicted_cycles=predicted,
                                       slice_cycles=slice_cycles))
            return records, fallback
        if isinstance(predictor, RecordPredictor):
            # The scalar path replays the record's own values through
            # ``replace`` — value-identical to the original record, so
            # the original is reused as the effective record.
            for k, sjob in enumerate(window):
                if sjob.record.predicted_cycles is None:
                    fallback[k] = True
            return [sj.record for sj in window], fallback
        # Unknown predictor: the scalar per-job protocol, verbatim.
        records = []
        for k, sjob in enumerate(window):
            try:
                predicted, slice_cycles = predictor.predict(sjob)
            except (ValueError, RuntimeError):
                fallback[k] = True
                records.append(sjob.record)
                continue
            records.append(replace(sjob.record,
                                   predicted_cycles=predicted,
                                   slice_cycles=slice_cycles))
        return records, fallback

    # -- energy --------------------------------------------------------

    def _energies(self, records: List[JobRecord], idx: np.ndarray,
                  t_slice: np.ndarray, t_switch: np.ndarray,
                  t_exec: np.ndarray,
                  fallback: np.ndarray) -> np.ndarray:
        """Per-job energy, bit-identical to the scalar decomposition."""
        stream = self.stream
        uses_slice = self.controller.uses_slice
        chargeable = (~fallback) & uses_slice & (t_slice > 0.0)
        kit = self._energy_kit
        if kit is not None:
            dyn = np.array([kit.dyn1v(r.activity) for r in records])
            vr = kit.vr[idx]
            energy = (dyn * vr) * vr + kit.leak[idx] * t_exec
            energy = energy + kit.leak[idx] * t_switch
        else:
            energy = np.empty(len(records))
            for k, record in enumerate(records):
                point = self._points[idx[k]]
                e = stream.energy_model.job_energy(
                    record.activity, point, float(t_exec[k]))
                e += switch_window_energy(stream.energy_model, point,
                                          float(t_switch[k]))
                energy[k] = e
        if chargeable.any():
            skit = self._slice_kit
            if skit is not None:
                dyn_s = np.array([skit.dyn1v(r.slice_cycles)
                                  for r in records])
                slice_e = ((dyn_s * skit.vr) * skit.vr
                           + skit.leak * t_slice)
                energy = np.where(chargeable, energy + slice_e, energy)
            else:
                nominal = self.levels.nominal
                for k in np.flatnonzero(chargeable):
                    energy[k] = energy[k] + \
                        stream.slice_energy_model.job_energy(
                            JobActivity(cycles=records[k].slice_cycles),
                            nominal, float(t_slice[k]))
        return energy

    # -- the epoch -----------------------------------------------------

    def run_epoch(self, jobs: Sequence[StreamJob], start: int) -> int:
        """Speculate, decide, verify and commit one epoch.

        Returns how many jobs were committed (0 = the epoch declined
        and the caller must take the scalar path for ``jobs[start]``).
        Preconditions (checked by the driver): the queue is empty and
        ``stream.now <= jobs[start].arrival``.
        """
        window = jobs[start:start + self.window]
        n = len(window)
        if n < 2:
            return 0
        t0 = time.perf_counter()
        predicted = self._predict_epoch(window)
        if predicted is None:
            return 0
        records, fallback = predicted
        arr = np.array([sj.arrival for sj in window], dtype=float)
        # The scalar budget is (release + deadline) - start with
        # start == release in this regime — elementwise, not constant.
        budgets = (arr + self.config.deadline) - arr
        nominal_idx = self.levels.index_of(self.levels.nominal)
        idx = np.full(n, nominal_idx, dtype=np.int64)
        t_slice = np.zeros(n)
        live = ~fallback
        if live.any():
            live_pos = np.flatnonzero(live)
            plan = self.controller.plan_batch(
                [records[k] for k in live_pos], budgets[live])
            if plan is None:
                return 0
            idx[live] = plan.level_index
            t_slice[live] = plan.t_slice
        # Switch charging: one lag of the level chain, seeded with the
        # stream's current point.
        try:
            prev_first = self.levels.index_of(self.stream._previous)
        except KeyError:
            return 0
        prev = np.empty(n, dtype=np.int64)
        prev[0] = prev_first
        prev[1:] = idx[:-1]
        if self.controller.charge_overheads:
            t_switch = np.where(idx != prev, self.config.t_switch, 0.0)
        else:
            t_switch = np.zeros(n)
        actual = np.array([r.actual_cycles for r in records],
                          dtype=float)
        t_exec = actual / self._freq[idx]
        finish = ((arr + t_slice) + t_switch) + t_exec
        # Verify the speculation: the prefix holds while each finish
        # stays at or before the next arrival (start == arrival).
        chain = finish[:-1] <= arr[1:]
        m = n if bool(chain.all()) else int(np.argmax(~chain)) + 1
        deadline = self.config.deadline
        missed = (finish - (arr + deadline)) > TIME_EPS_REL * deadline
        energy = self._energies(records[:m], idx[:m], t_slice[:m],
                                t_switch[:m], t_exec[:m], fallback[:m])
        decision_s = (time.perf_counter() - t0) / m
        self._commit(window, records, m, arr, idx, t_slice, t_switch,
                     t_exec, finish, missed, energy, fallback,
                     decision_s)
        # Adapt the window: grow while speculation holds, shrink to
        # the committed scale when it breaks.
        if m == n:
            self.window = min(self.window * 2, MAX_EPOCH)
        else:
            self.window = max(MIN_EPOCH, 1 << int(m).bit_length())
        return m

    def _commit(self, window, records, m, arr, idx, t_slice, t_switch,
                t_exec, finish, missed, energy, fallback,
                decision_s: float) -> None:
        stream = self.stream
        cols = [a[:m].tolist() for a in
                (t_slice, t_switch, t_exec, finish, missed, energy,
                 self._volt[idx[:m]], self._freq[idx[:m]],
                 self._boost[idx[:m]])]
        ts_l, tsw_l, te_l, fin_l, miss_l, en_l, vo_l, fr_l, bo_l = cols
        fb_l = fallback[:m].tolist()
        append = stream.outcomes.append
        new = StreamOutcome.__new__
        for k in range(m):
            sjob = window[k]
            # Frozen-dataclass __init__ pays object.__setattr__ per
            # field; populating __dict__ directly builds the identical
            # (never-again-mutated) outcome at a fraction of the cost.
            outcome = new(StreamOutcome)
            outcome.__dict__.update(
                index=sjob.index,
                status=FALLBACK if fb_l[k] else COMPLETED,
                job=records[k], arrival=sjob.arrival,
                release=sjob.arrival, start=sjob.arrival,
                t_slice=ts_l[k], t_switch=tsw_l[k], t_exec=te_l[k],
                energy=en_l[k], missed=miss_l[k],
                voltage=vo_l[k], frequency=fr_l[k], boosted=bo_l[k],
                decision_s=decision_s, batch_size=1,
            )
            append(outcome)
        stream.n_offered += m
        stream.now = fin_l[-1]
        stream._previous = self._points[int(idx[m - 1])]
        # Within the epoch every non-final finish is at or before the
        # next arrival, so only the last one can still be in flight
        # for any later backlog query.
        stream._finishes.append(fin_l[-1])
        stream._in_flight += 1
        stream.epoch_log.append((window[0].index, m))
        observer = get_observer()
        if observer is not None:
            self._emit(observer, window, m, fin_l, miss_l, en_l,
                       ts_l, tsw_l, te_l, fallback, decision_s)

    def _emit(self, observer, window, m, fin_l, miss_l, en_l, ts_l,
              tsw_l, te_l, fallback, decision_s: float) -> None:
        """Replay the scalar path's per-job telemetry for the epoch.

        Counter and time-series *values* match the scalar engine
        exactly (windowed series aggregate by virtual time); only the
        emission order differs — the scalar path interleaves the next
        admission before the previous execution.
        """
        metrics = observer.metrics
        series = observer.timeseries
        n_fallback = int(sum(1 for k in range(m) if fallback[k]))
        metrics.inc("serve.offered", m)
        metrics.inc("serve.epochs")
        metrics.inc("serve.epoch_jobs", m)
        if n_fallback:
            metrics.inc("serve.fallback", n_fallback)
        if m - n_fallback:
            metrics.inc("serve.completed", m - n_fallback)
        slo_live = (observer.slo is not None and self.stream.slo_live)
        for k in range(m):
            sjob = window[k]
            status = FALLBACK if fallback[k] else COMPLETED
            series.observe("serve.shed", sjob.arrival, 0.0)
            metrics.observe("serve.decision_ms", decision_s * 1e3)
            metrics.observe("serve.batch_size", 1)
            series.observe("serve.miss", fin_l[k],
                           1.0 if miss_l[k] else 0.0)
            series.observe("serve.fallback", fin_l[k],
                           1.0 if fallback[k] else 0.0)
            series.observe("serve.energy_per_job", fin_l[k], en_l[k])
            series.observe("serve.decision_ms", fin_l[k],
                           decision_s * 1e3)
            observer.emit(
                "sjob", stream=self.stream.name, index=sjob.index,
                status=status, arrival=sjob.arrival,
                release=sjob.arrival, start=sjob.arrival,
                t_slice=ts_l[k], t_switch=tsw_l[k], t_exec=te_l[k],
                energy=en_l[k], missed=miss_l[k],
                decision_ms=decision_s * 1e3, batch_size=1)
            if slo_live:
                observer.slo.evaluate(series, upto_t=fin_l[k])


def drive_stream_vectorized(stream: AcceleratorStream,
                            jobs: Sequence[StreamJob]) -> None:
    """Drive one arrival-sorted stream, epoch-coalescing where the
    decisions decouple and deferring to the scalar state machine
    everywhere else.  Equivalent to ``offer`` per job plus ``drain``.
    """
    engine = EpochEngine(stream)
    n = len(jobs)
    i = 0
    while i < n:
        sjob = jobs[i]
        while stream._queue and max(stream.now,
                                    stream._queue[0].arrival) \
                <= sjob.arrival:
            stream.run_batch()
        if (engine.eligible and not stream._queue
                and stream.now <= sjob.arrival):
            committed = engine.run_epoch(jobs, i)
            if committed:
                i += committed
                continue
        stream.admit(sjob)
        i += 1
    stream.drain()
