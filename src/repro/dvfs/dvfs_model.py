"""The paper's DVFS model (Sec. 3.6).

Execution time decomposes as ``T = T_memory + C / f``; for the studied
accelerators memory time is negligible (compute-intensive designs with
DMA-managed scratchpads), so ``T0 = C / f0`` and the target frequency
for a job with predicted nominal-frequency time ``T0`` is::

    f = ceil_level( f0 * (T0 + T_margin) / (T_budget - T_slice - T_dvfs) )

where ``ceil_level`` rounds up to the next discrete operating point,
``T_slice`` is the time to run the prediction slice and ``T_dvfs`` the
voltage/frequency switching time.
"""

from __future__ import annotations

from dataclasses import dataclass

from .levels import LevelTable, OperatingPoint


@dataclass(frozen=True)
class DvfsDecision:
    """Outcome of level selection for one job."""

    point: OperatingPoint
    feasible: bool  # False when even the fastest level cannot make it
    f_required: float


def required_frequency(predicted_cycles: float, f_nominal: float,
                       budget: float, margin_fraction: float = 0.0,
                       t_slice: float = 0.0,
                       t_switch: float = 0.0) -> float:
    """The minimum frequency meeting the deadline, before rounding.

    ``predicted_cycles`` is the predicted execution cycle count C (so
    ``T0 = C / f0`` cancels f0: f = C * (1 + margin) / T_avail).
    """
    if predicted_cycles < 0:
        predicted_cycles = 0.0
    available = budget - t_slice - t_switch
    if available <= 0:
        return float("inf")
    cycles_with_margin = predicted_cycles * (1.0 + margin_fraction)
    return cycles_with_margin / available


def select_level(levels: LevelTable, predicted_cycles: float,
                 budget: float, margin_fraction: float = 0.0,
                 t_slice: float = 0.0, t_switch: float = 0.0,
                 allow_boost: bool = False) -> DvfsDecision:
    """Pick the lowest operating point meeting the deadline.

    Falls back to the fastest allowed point (boost if enabled) when no
    level is fast enough — running flat-out minimizes the damage.
    """
    f_req = required_frequency(
        predicted_cycles, levels.nominal.frequency, budget,
        margin_fraction=margin_fraction, t_slice=t_slice,
        t_switch=t_switch,
    )
    point = levels.lowest_meeting(f_req, allow_boost=allow_boost)
    if point is None:
        return DvfsDecision(
            point=levels.fastest(allow_boost=allow_boost),
            feasible=False,
            f_required=f_req,
        )
    return DvfsDecision(point=point, feasible=True, f_required=f_req)
