"""The paper's DVFS model (Sec. 3.6).

Execution time decomposes as ``T = T_memory + C / f``; for the studied
accelerators memory time is negligible (compute-intensive designs with
DMA-managed scratchpads), so ``T0 = C / f0`` and the target frequency
for a job with predicted nominal-frequency time ``T0`` is::

    f = ceil_level( f0 * (T0 + T_margin) / (T_budget - T_slice - T_dvfs) )

where ``ceil_level`` rounds up to the next discrete operating point,
``T_slice`` is the time to run the prediction slice and ``T_dvfs`` the
voltage/frequency switching time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .levels import LevelTable, OperatingPoint


@dataclass(frozen=True)
class DvfsDecision:
    """Outcome of level selection for one job."""

    point: OperatingPoint
    feasible: bool  # False when even the fastest level cannot make it
    f_required: float


def required_frequency(predicted_cycles: float, f_nominal: float,
                       budget: float, margin_fraction: float = 0.0,
                       t_slice: float = 0.0,
                       t_switch: float = 0.0) -> float:
    """The minimum frequency meeting the deadline, before rounding.

    ``predicted_cycles`` is the predicted execution cycle count C (so
    ``T0 = C / f0`` cancels f0: f = C * (1 + margin) / T_avail).
    """
    if predicted_cycles < 0:
        predicted_cycles = 0.0
    available = budget - t_slice - t_switch
    if available <= 0:
        return float("inf")
    cycles_with_margin = predicted_cycles * (1.0 + margin_fraction)
    return cycles_with_margin / available


def select_level(levels: LevelTable, predicted_cycles: float,
                 budget: float, margin_fraction: float = 0.0,
                 t_slice: float = 0.0, t_switch: float = 0.0,
                 allow_boost: bool = False) -> DvfsDecision:
    """Pick the lowest operating point meeting the deadline.

    Falls back to the fastest allowed point (boost if enabled) when no
    level is fast enough — running flat-out minimizes the damage.
    """
    f_req = required_frequency(
        predicted_cycles, levels.nominal.frequency, budget,
        margin_fraction=margin_fraction, t_slice=t_slice,
        t_switch=t_switch,
    )
    point = levels.lowest_meeting(f_req, allow_boost=allow_boost)
    if point is None:
        return DvfsDecision(
            point=levels.fastest(allow_boost=allow_boost),
            feasible=False,
            f_required=f_req,
        )
    return DvfsDecision(point=point, feasible=True, f_required=f_req)


@dataclass(frozen=True)
class BatchDecision:
    """Level selection for a whole job array (one entry per job).

    ``level_index`` addresses the table's ascending-frequency points;
    the value ``levels.arrays().boost_index`` means the boost point.
    Infeasible jobs carry the flat-out fallback index (boost when
    allowed, nominal otherwise) with ``feasible=False`` — exactly the
    scalar :func:`select_level` contract, element by element.
    """

    level_index: np.ndarray   # int64, boost = arrays().boost_index
    feasible: np.ndarray      # bool
    f_required: np.ndarray    # float64 (inf where no time is left)

    def __len__(self) -> int:
        return len(self.level_index)

    def decision_at(self, levels: LevelTable, i: int) -> DvfsDecision:
        """Rehydrate one entry as the scalar ``DvfsDecision`` form."""
        return DvfsDecision(
            point=levels.point_at(int(self.level_index[i])),
            feasible=bool(self.feasible[i]),
            f_required=float(self.f_required[i]),
        )


def required_frequency_batch(predicted_cycles: np.ndarray,
                             budget: np.ndarray,
                             margin_fraction: float = 0.0,
                             t_slice=0.0,
                             t_switch=0.0) -> np.ndarray:
    """Vectorized :func:`required_frequency` — bit-identical per entry.

    Every arithmetic step replicates the scalar evaluation order
    (``(budget - t_slice) - t_switch``; ``cycles * (1 + margin)`` then
    the divide), so each element equals the scalar result to the last
    ULP.  ``t_slice``/``t_switch`` may be scalars or arrays.
    """
    cycles = np.asarray(predicted_cycles, dtype=float)
    cycles = np.where(cycles < 0, 0.0, cycles)
    available = (np.asarray(budget, dtype=float) - t_slice) - t_switch
    # Divide only where time remains; everything else is inf, as in
    # the scalar early return.
    safe = np.where(available > 0, available, 1.0)
    return np.where(available > 0,
                    (cycles * (1.0 + margin_fraction)) / safe,
                    np.inf)


def select_level_batch(levels: LevelTable,
                       predicted_cycles: np.ndarray,
                       budget: np.ndarray,
                       margin_fraction: float = 0.0,
                       t_slice=0.0,
                       t_switch=0.0,
                       allow_boost: bool = False) -> BatchDecision:
    """Vectorized :func:`select_level` over whole job arrays.

    The frequency breakpoints come from the table's cached
    :class:`~repro.dvfs.levels.LevelArrays`; ``np.searchsorted(...,
    side='left')`` finds the first point with ``frequency >=
    f_required`` — the same point the scalar linear scan returns,
    including ties (first equal wins in both).  NaN requirements sort
    past every breakpoint and land on the infeasible fallback, again
    matching the scalar comparison chain.
    """
    arrays = levels.arrays()
    f_req = required_frequency_batch(
        predicted_cycles, budget, margin_fraction=margin_fraction,
        t_slice=t_slice, t_switch=t_switch)
    idx = np.searchsorted(arrays.frequencies, f_req, side="left")
    feasible = idx < arrays.n_levels
    if allow_boost and arrays.boost_frequency is not None:
        boosted = ~feasible & (arrays.boost_frequency >= f_req)
        feasible = feasible | boosted
    # Infeasible jobs run flat out: boost when enabled, else nominal.
    fallback = levels.index_of(levels.fastest(allow_boost=allow_boost))
    idx = np.where(feasible, np.minimum(idx, arrays.boost_index),
                   fallback)
    return BatchDecision(level_index=idx.astype(np.int64),
                         feasible=feasible, f_required=f_req)
