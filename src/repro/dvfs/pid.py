"""PID-based execution-time predictor (the paper's reactive baseline).

A discrete PID controller treats the job-to-job execution time series
as a process variable and its own prediction as the setpoint tracker:
after each job the prediction error feeds proportional, integral and
derivative terms that adjust the next prediction (Sec. 2.4, Fig 3).
Anti-windup clamps the integral so one outlier job cannot poison the
controller for many frames.

``tune_pid`` reproduces "we tuned the PID controller's parameters to
achieve the best prediction accuracy" with a grid search over gains on
the training series.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple


@dataclass(frozen=True)
class PidGains:
    """Controller gains."""

    kp: float
    ki: float
    kd: float


DEFAULT_GAINS = PidGains(kp=0.6, ki=0.05, kd=0.1)


class PidPredictor:
    """Predicts the next job's execution time from past observations."""

    def __init__(self, gains: PidGains = DEFAULT_GAINS,
                 initial_prediction: Optional[float] = None,
                 integral_limit: float = 4.0):
        self.gains = gains
        self._prediction = initial_prediction
        self._integral = 0.0
        self._prev_error = 0.0
        self._integral_limit = integral_limit
        self._reference = initial_prediction or 0.0

    def predict(self) -> Optional[float]:
        """Current prediction; None until the first observation when no
        initial prediction was given."""
        return self._prediction

    def observe(self, actual: float) -> None:
        """Feed the actual execution time of the job just finished."""
        if self._prediction is None:
            self._prediction = actual
            self._reference = max(actual, 1e-12)
            return
        error = actual - self._prediction
        self._integral += error
        limit = self._integral_limit * self._reference
        self._integral = max(-limit, min(limit, self._integral))
        derivative = error - self._prev_error
        g = self.gains
        self._prediction = max(
            self._prediction
            + g.kp * error + g.ki * self._integral + g.kd * derivative,
            0.0,
        )
        self._prev_error = error


def replay_errors(series: Sequence[float], gains: PidGains) -> float:
    """Mean squared prediction error of a PID replay over ``series``."""
    pid = PidPredictor(gains)
    total = 0.0
    count = 0
    for actual in series:
        predicted = pid.predict()
        if predicted is not None:
            err = predicted - actual
            total += err * err
            count += 1
        pid.observe(actual)
    return total / count if count else float("inf")


DEFAULT_GRID: Tuple[Tuple[float, ...], Tuple[float, ...], Tuple[float, ...]] = (
    (0.2, 0.4, 0.6, 0.8, 1.0),   # kp
    (0.0, 0.02, 0.05, 0.1),      # ki
    (0.0, 0.1, 0.2, 0.4),        # kd
)


def tune_pid(series: Sequence[float],
             grid: Tuple[Tuple[float, ...], Tuple[float, ...],
                         Tuple[float, ...]] = DEFAULT_GRID) -> PidGains:
    """Grid-search gains minimizing replay MSE on a training series."""
    if len(series) < 3:
        return DEFAULT_GAINS
    best_gains = DEFAULT_GAINS
    best_error = float("inf")
    for kp, ki, kd in itertools.product(*grid):
        gains = PidGains(kp, ki, kd)
        error = replay_errors(series, gains)
        if error < best_error:
            best_error = error
            best_gains = gains
    return best_gains
