"""Discrete DVFS operating points (Sec. 4.2 of the paper).

ASIC accelerators use six equally-spaced voltage levels from 1.0 V down
to 0.625 V; FPGA accelerators use seven levels from 1.0 V to 0.7 V.
The optional boost level sits at 1.08 V and is only used by the boosted
predictive controller (Fig 14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from .vf_model import VoltageFrequencyModel

ASIC_VOLTAGES: tuple = (1.0, 0.925, 0.85, 0.775, 0.7, 0.625)
FPGA_VOLTAGES: tuple = (1.0, 0.95, 0.9, 0.85, 0.8, 0.75, 0.7)
BOOST_VOLTAGE = 1.08


@dataclass(frozen=True)
class OperatingPoint:
    """One (voltage, frequency) pair the accelerator can run at."""

    voltage: float
    frequency: float
    is_boost: bool = False

    def __post_init__(self) -> None:
        if self.voltage <= 0 or self.frequency <= 0:
            raise ValueError("voltage and frequency must be positive")


class LevelTable:
    """The discrete operating points of one accelerator.

    Points are kept sorted by ascending frequency.  ``nominal`` is the
    fastest non-boost point (the paper's baseline level).
    """

    def __init__(self, points: Sequence[OperatingPoint]):
        normal = sorted((p for p in points if not p.is_boost),
                        key=lambda p: p.frequency)
        boosts = sorted((p for p in points if p.is_boost),
                        key=lambda p: p.frequency)
        if not normal:
            raise ValueError("need at least one non-boost level")
        self.points: List[OperatingPoint] = normal
        self.boost: Optional[OperatingPoint] = boosts[-1] if boosts else None

    @property
    def nominal(self) -> OperatingPoint:
        return self.points[-1]

    @property
    def slowest(self) -> OperatingPoint:
        return self.points[0]

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def lowest_meeting(self, f_required: float,
                       allow_boost: bool = False
                       ) -> Optional[OperatingPoint]:
        """The slowest point with frequency >= ``f_required``.

        Returns None when even the fastest allowed point falls short
        (the caller decides whether to run flat-out anyway).
        """
        for point in self.points:
            if point.frequency >= f_required:
                return point
        if allow_boost and self.boost is not None:
            if self.boost.frequency >= f_required:
                return self.boost
        return None

    def fastest(self, allow_boost: bool = False) -> OperatingPoint:
        """The fastest allowed point (boost when enabled and present)."""
        if allow_boost and self.boost is not None:
            return self.boost
        return self.nominal


def build_level_table(vf: VoltageFrequencyModel,
                      voltages: Sequence[float],
                      include_boost: bool = True,
                      boost_voltage: float = BOOST_VOLTAGE) -> LevelTable:
    """Build a level table by characterizing each voltage."""
    points = [
        OperatingPoint(voltage=v, frequency=vf.frequency_at(v))
        for v in voltages
    ]
    if include_boost:
        points.append(OperatingPoint(
            voltage=boost_voltage,
            frequency=vf.frequency_at(boost_voltage),
            is_boost=True,
        ))
    return LevelTable(points)
