"""Discrete DVFS operating points (Sec. 4.2 of the paper).

ASIC accelerators use six equally-spaced voltage levels from 1.0 V down
to 0.625 V; FPGA accelerators use seven levels from 1.0 V to 0.7 V.
The optional boost level sits at 1.08 V and is only used by the boosted
predictive controller (Fig 14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .vf_model import VoltageFrequencyModel

ASIC_VOLTAGES: tuple = (1.0, 0.925, 0.85, 0.775, 0.7, 0.625)
FPGA_VOLTAGES: tuple = (1.0, 0.95, 0.9, 0.85, 0.8, 0.75, 0.7)
BOOST_VOLTAGE = 1.08


@dataclass(frozen=True)
class OperatingPoint:
    """One (voltage, frequency) pair the accelerator can run at."""

    voltage: float
    frequency: float
    is_boost: bool = False

    def __post_init__(self) -> None:
        if self.voltage <= 0 or self.frequency <= 0:
            raise ValueError("voltage and frequency must be positive")


@dataclass(frozen=True)
class LevelArrays:
    """A :class:`LevelTable` flattened into numpy breakpoint arrays.

    Built once per table (cached by :meth:`LevelTable.arrays`) so the
    batched decision kernel (:func:`repro.dvfs.select_level_batch`) can
    run ``np.searchsorted`` over the frequency breakpoints instead of
    the scalar linear scan.  ``frequencies``/``voltages`` cover the
    non-boost points in ascending-frequency order; index ``n_levels``
    is the sentinel for the boost point (when present).
    """

    frequencies: np.ndarray          # ascending, one per non-boost point
    voltages: np.ndarray             # aligned with ``frequencies``
    boost_frequency: Optional[float]
    boost_voltage: Optional[float]
    #: Points are addressable by index only when no two share a
    #: (voltage, frequency, is_boost) value — true for every real
    #: characterized table; a degenerate table keeps the scalar path.
    unique: bool

    @property
    def n_levels(self) -> int:
        return len(self.frequencies)

    @property
    def boost_index(self) -> int:
        """The sentinel index the kernel uses for the boost point."""
        return self.n_levels


class LevelTable:
    """The discrete operating points of one accelerator.

    Points are kept sorted by ascending frequency.  ``nominal`` is the
    fastest non-boost point (the paper's baseline level).
    """

    def __init__(self, points: Sequence[OperatingPoint]):
        normal = sorted((p for p in points if not p.is_boost),
                        key=lambda p: p.frequency)
        boosts = sorted((p for p in points if p.is_boost),
                        key=lambda p: p.frequency)
        if not normal:
            raise ValueError("need at least one non-boost level")
        self.points: List[OperatingPoint] = normal
        self.boost: Optional[OperatingPoint] = boosts[-1] if boosts else None
        self._arrays: Optional[LevelArrays] = None
        self._index: Optional[Dict[OperatingPoint, int]] = None

    def arrays(self) -> LevelArrays:
        """The table's cached numpy breakpoint form (built lazily)."""
        if self._arrays is None:
            all_points = list(self.points)
            if self.boost is not None:
                all_points.append(self.boost)
            self._arrays = LevelArrays(
                frequencies=np.array(
                    [p.frequency for p in self.points], dtype=float),
                voltages=np.array(
                    [p.voltage for p in self.points], dtype=float),
                boost_frequency=(self.boost.frequency
                                 if self.boost is not None else None),
                boost_voltage=(self.boost.voltage
                               if self.boost is not None else None),
                unique=len(set(all_points)) == len(all_points),
            )
        return self._arrays

    def point_at(self, index: int) -> OperatingPoint:
        """The operating point behind a kernel index (boost sentinel
        included) — the *same object* the scalar path returns."""
        if index == len(self.points):
            if self.boost is None:
                raise IndexError("table has no boost point")
            return self.boost
        return self.points[index]

    def index_of(self, point: OperatingPoint) -> int:
        """Kernel index of ``point`` (boost maps to the sentinel)."""
        if self._index is None:
            self._index = {p: i for i, p in enumerate(self.points)}
            if self.boost is not None:
                self._index[self.boost] = len(self.points)
        return self._index[point]

    @property
    def nominal(self) -> OperatingPoint:
        return self.points[-1]

    @property
    def slowest(self) -> OperatingPoint:
        return self.points[0]

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def lowest_meeting(self, f_required: float,
                       allow_boost: bool = False
                       ) -> Optional[OperatingPoint]:
        """The slowest point with frequency >= ``f_required``.

        Returns None when even the fastest allowed point falls short
        (the caller decides whether to run flat-out anyway).
        """
        for point in self.points:
            if point.frequency >= f_required:
                return point
        if allow_boost and self.boost is not None:
            if self.boost.frequency >= f_required:
                return self.boost
        return None

    def fastest(self, allow_boost: bool = False) -> OperatingPoint:
        """The fastest allowed point (boost when enabled and present)."""
        if allow_boost and self.boost is not None:
            return self.boost
        return self.nominal


def build_level_table(vf: VoltageFrequencyModel,
                      voltages: Sequence[float],
                      include_boost: bool = True,
                      boost_voltage: float = BOOST_VOLTAGE) -> LevelTable:
    """Build a level table by characterizing each voltage."""
    points = [
        OperatingPoint(voltage=v, frequency=vf.frequency_at(v))
        for v in voltages
    ]
    if include_boost:
        points.append(OperatingPoint(
            voltage=boost_voltage,
            frequency=vf.frequency_at(boost_voltage),
            is_boost=True,
        ))
    return LevelTable(points)
