"""DVFS machinery: V-f models, levels, energy, controllers."""

from .controllers import (
    BatchPlan,
    ConstantFrequencyController,
    Controller,
    HistoryController,
    IntervalGovernorController,
    OracleController,
    PidController,
    Plan,
    PredictiveController,
    TableBasedController,
)
from .dvfs_model import (
    BatchDecision,
    DvfsDecision,
    required_frequency,
    required_frequency_batch,
    select_level,
    select_level_batch,
)
from .energy import (
    AsicEnergyModel,
    EnergyModel,
    FpgaEnergyModel,
    JobActivity,
    activity_from_run,
)
from .levels import (
    ASIC_VOLTAGES,
    BOOST_VOLTAGE,
    FPGA_VOLTAGES,
    LevelArrays,
    LevelTable,
    OperatingPoint,
    build_level_table,
)
from .pid import PidGains, PidPredictor, replay_errors, tune_pid
from .vf_model import (
    AlphaPowerDevice,
    AsicVfModel,
    Fo4Chain,
    FpgaVfModel,
    VoltageFrequencyModel,
)

__all__ = [
    "ASIC_VOLTAGES", "AlphaPowerDevice", "AsicEnergyModel", "AsicVfModel",
    "BOOST_VOLTAGE", "BatchDecision", "BatchPlan",
    "ConstantFrequencyController", "Controller",
    "DvfsDecision", "EnergyModel", "FPGA_VOLTAGES", "Fo4Chain",
    "IntervalGovernorController",
    "FpgaEnergyModel", "FpgaVfModel", "HistoryController", "JobActivity",
    "LevelArrays", "LevelTable", "OperatingPoint", "OracleController",
    "PidController",
    "PidGains", "PidPredictor", "Plan", "PredictiveController",
    "TableBasedController", "VoltageFrequencyModel", "activity_from_run",
    "build_level_table", "replay_errors", "required_frequency",
    "required_frequency_batch", "select_level", "select_level_batch",
    "tune_pid",
]
