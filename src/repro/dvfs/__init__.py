"""DVFS machinery: V-f models, levels, energy, controllers."""

from .controllers import (
    ConstantFrequencyController,
    Controller,
    HistoryController,
    IntervalGovernorController,
    OracleController,
    PidController,
    Plan,
    PredictiveController,
    TableBasedController,
)
from .dvfs_model import DvfsDecision, required_frequency, select_level
from .energy import (
    AsicEnergyModel,
    EnergyModel,
    FpgaEnergyModel,
    JobActivity,
    activity_from_run,
)
from .levels import (
    ASIC_VOLTAGES,
    BOOST_VOLTAGE,
    FPGA_VOLTAGES,
    LevelTable,
    OperatingPoint,
    build_level_table,
)
from .pid import PidGains, PidPredictor, replay_errors, tune_pid
from .vf_model import (
    AlphaPowerDevice,
    AsicVfModel,
    Fo4Chain,
    FpgaVfModel,
    VoltageFrequencyModel,
)

__all__ = [
    "ASIC_VOLTAGES", "AlphaPowerDevice", "AsicEnergyModel", "AsicVfModel",
    "BOOST_VOLTAGE", "ConstantFrequencyController", "Controller",
    "DvfsDecision", "EnergyModel", "FPGA_VOLTAGES", "Fo4Chain",
    "IntervalGovernorController",
    "FpgaEnergyModel", "FpgaVfModel", "HistoryController", "JobActivity",
    "LevelTable", "OperatingPoint", "OracleController", "PidController",
    "PidGains", "PidPredictor", "Plan", "PredictiveController",
    "TableBasedController", "VoltageFrequencyModel", "activity_from_run",
    "build_level_table", "replay_errors", "required_frequency",
    "select_level", "tune_pid",
]
