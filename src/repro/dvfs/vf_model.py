"""Voltage-frequency characterization.

ASIC: the paper characterizes each accelerator with SPICE on "a chain
of FO4 loaded inverters such that the total delay of the chain matches
the cycle time of the accelerator at nominal voltage", then sweeps the
supply (Sec. 4.1).  We reproduce the methodology with an alpha-power-law
MOSFET drain-current model driving the same FO4 chain: stage delay is
``k * C * V / I_dsat(V)`` with ``I_dsat ∝ (V - Vt)^alpha``.  Absolute
delays are calibrated to the accelerator's nominal cycle time, exactly
like the paper; only the *ratio* of delays across voltages feeds the
DVFS model, which is what the alpha-power law predicts well.

FPGA: the relationship comes from published Kintex-7 characterizations
[30], which show a near-linear frequency roll-off from 1.0 V down to
0.7 V; we embed that published curve as an interpolation table.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class AlphaPowerDevice:
    """Alpha-power-law transistor model (Sakurai-Newton).

    ``vt`` is the threshold voltage, ``alpha`` the velocity-saturation
    index (~1.3 for 65 nm-class devices).
    """

    vt: float = 0.42
    alpha: float = 1.5

    def drive_current(self, vdd: float) -> float:
        """Saturation current, arbitrary units."""
        if vdd <= self.vt:
            raise ValueError(
                f"supply {vdd} V is at or below threshold {self.vt} V"
            )
        return (vdd - self.vt) ** self.alpha


@dataclass(frozen=True)
class Fo4Chain:
    """A chain of FO4-loaded inverters calibrated to a cycle time.

    ``n_stages`` and the device are fixed; ``calibrate`` returns a
    chain whose total delay at ``v_nominal`` equals ``cycle_time``.
    """

    device: AlphaPowerDevice
    n_stages: int
    stage_cap: float  # effective FO4 load, calibrated

    @classmethod
    def calibrate(cls, cycle_time: float, v_nominal: float = 1.0,
                  n_stages: int = 12,
                  device: AlphaPowerDevice = AlphaPowerDevice()
                  ) -> "Fo4Chain":
        """Size the load so the chain matches ``cycle_time`` at nominal."""
        if cycle_time <= 0:
            raise ValueError("cycle time must be positive")
        raw = n_stages * v_nominal / device.drive_current(v_nominal)
        return cls(device=device, n_stages=n_stages,
                   stage_cap=cycle_time / raw)

    def delay(self, vdd: float) -> float:
        """Total chain delay at supply ``vdd`` (seconds)."""
        stage = self.stage_cap * vdd / self.device.drive_current(vdd)
        return self.n_stages * stage


class VoltageFrequencyModel:
    """Maps supply voltage to achievable clock frequency."""

    def frequency_at(self, vdd: float) -> float:
        """Achievable clock frequency at supply ``vdd``."""
        raise NotImplementedError

    def scale_at(self, vdd: float) -> float:
        """Frequency relative to nominal."""
        raise NotImplementedError


@dataclass(frozen=True)
class AsicVfModel(VoltageFrequencyModel):
    """ASIC V-f curve from the calibrated FO4 chain."""

    chain: Fo4Chain
    f_nominal: float
    v_nominal: float = 1.0

    @classmethod
    def characterize(cls, f_nominal: float,
                     v_nominal: float = 1.0,
                     device: AlphaPowerDevice = AlphaPowerDevice()
                     ) -> "AsicVfModel":
        """The paper's flow: build a chain matching the nominal cycle
        time, then use its delay-vs-voltage curve."""
        if f_nominal <= 0:
            raise ValueError("nominal frequency must be positive")
        chain = Fo4Chain.calibrate(1.0 / f_nominal, v_nominal,
                                   device=device)
        return cls(chain=chain, f_nominal=f_nominal, v_nominal=v_nominal)

    def frequency_at(self, vdd: float) -> float:
        """Clock frequency from the calibrated FO4 chain."""
        return 1.0 / self.chain.delay(vdd)

    def scale_at(self, vdd: float) -> float:
        return self.frequency_at(vdd) / self.f_nominal


#: Published Kintex-7 style (voltage, relative frequency) curve [30].
FPGA_VF_TABLE: Tuple[Tuple[float, float], ...] = (
    (0.70, 0.52),
    (0.75, 0.62),
    (0.80, 0.71),
    (0.85, 0.79),
    (0.90, 0.87),
    (0.95, 0.94),
    (1.00, 1.00),
)


@dataclass(frozen=True)
class FpgaVfModel(VoltageFrequencyModel):
    """FPGA V-f curve interpolated from the published characterization."""

    f_nominal: float
    table: Tuple[Tuple[float, float], ...] = FPGA_VF_TABLE

    def scale_at(self, vdd: float) -> float:
        voltages = [v for v, _ in self.table]
        scales = [s for _, s in self.table]
        if vdd < voltages[0] or vdd > voltages[-1] + 0.15:
            raise ValueError(
                f"{vdd} V outside characterized range "
                f"[{voltages[0]}, {voltages[-1]}]"
            )
        if vdd >= voltages[-1]:
            # Mild extrapolation for boost levels just above nominal.
            slope = ((scales[-1] - scales[-2])
                     / (voltages[-1] - voltages[-2]))
            return scales[-1] + slope * (vdd - voltages[-1])
        i = bisect.bisect_right(voltages, vdd) - 1
        v0, v1 = voltages[i], voltages[i + 1]
        s0, s1 = scales[i], scales[i + 1]
        return s0 + (s1 - s0) * (vdd - v0) / (v1 - v0)

    def frequency_at(self, vdd: float) -> float:
        """Clock frequency from the published curve."""
        return self.f_nominal * self.scale_at(vdd)
