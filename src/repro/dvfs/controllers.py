"""DVFS controllers: the paper's evaluated schemes plus extras.

Each controller picks an operating point per job.  The schemes match
Sec. 4.2:

* :class:`ConstantFrequencyController` — the ``baseline``: nominal V/f.
* :class:`TableBasedController` — Exynos-MFC-style lookup keyed on a
  coarse parameter (Sec. 2.4), set to the training worst case.
* :class:`PidController` — reactive control with tuned gains and a 10%
  margin.
* :class:`HistoryController` — moving-average reactive control [10,18].
* :class:`PredictiveController` — the paper's scheme: slice-based
  prediction, 5% margin, slice/switch overheads deducted from the
  budget; optional boost level (Fig 14) and an overhead-free variant
  (Fig 13).
* :class:`OracleController` — perfect prediction, no overheads.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from ..runtime.jobs import JobRecord
from .dvfs_model import select_level, select_level_batch
from .levels import LevelTable, OperatingPoint
from .pid import PidGains, PidPredictor, tune_pid


@dataclass(frozen=True)
class Plan:
    """A controller's decision for one job."""

    point: OperatingPoint
    t_slice: float = 0.0
    feasible: bool = True


@dataclass(frozen=True)
class BatchPlan:
    """A controller's decisions for a whole job array.

    One entry per job: ``level_index`` addresses the controller's
    level table (boost = ``levels.arrays().boost_index``), and every
    element is bit-identical to what :meth:`Controller.plan` would
    have returned for that job alone.
    """

    level_index: np.ndarray   # int64
    t_slice: np.ndarray       # float64
    feasible: np.ndarray      # bool


class Controller:
    """Base class; subclasses implement :meth:`plan`."""

    #: Whether the scheme runs the prediction slice before each job.
    uses_slice: bool = False
    #: Whether slice/switch overheads are charged by the episode runner
    #: (False for idealized variants like the oracle).
    charge_overheads: bool = True
    #: True when :meth:`plan` is a pure function of (job, budget) and
    #: :meth:`observe` is a no-op — the contract the vectorized serving
    #: engine relies on to decide whole epochs with :meth:`plan_batch`.
    #: Reactive schemes (pid, history, governor) must leave this False.
    vectorizable: bool = False

    def __init__(self, name: str, levels: LevelTable, t_switch: float):
        self.name = name
        self.levels = levels
        self.t_switch = t_switch

    def plan(self, job: JobRecord, budget: float) -> Plan:
        """Pick an operating point for ``job`` given ``budget`` seconds."""
        raise NotImplementedError

    def plan_batch(self, jobs: Sequence[JobRecord],
                   budgets: np.ndarray) -> Optional[BatchPlan]:
        """Plan a whole job array at once; ``None`` = not supported.

        Only meaningful when :attr:`vectorizable`; the default keeps
        reactive schemes on the scalar path.
        """
        return None

    def observe(self, job: JobRecord) -> None:
        """Called after a job retires (reactive schemes learn here)."""

    def reset(self) -> None:
        """Clear cross-job state before a new run."""

    def _switch_allowance(self) -> float:
        """Budget deduction for a possible level change.

        Controllers deduct the switching time unconditionally — they
        cannot know in advance whether the chosen level will differ
        from the current one, so they must assume it will.
        """
        return self.t_switch if self.charge_overheads else 0.0


class ConstantFrequencyController(Controller):
    """Always run at nominal voltage and frequency (the baseline)."""

    vectorizable = True

    def __init__(self, levels: LevelTable, t_switch: float = 0.0):
        super().__init__("baseline", levels, t_switch)

    def plan(self, job: JobRecord, budget: float) -> Plan:
        """Always the nominal operating point."""
        return Plan(point=self.levels.nominal)

    def plan_batch(self, jobs: Sequence[JobRecord],
                   budgets: np.ndarray) -> Optional[BatchPlan]:
        """Every job at nominal — a constant-filled plan."""
        n = len(jobs)
        nominal = self.levels.index_of(self.levels.nominal)
        return BatchPlan(
            level_index=np.full(n, nominal, dtype=np.int64),
            t_slice=np.zeros(n), feasible=np.ones(n, dtype=bool))


class TableBasedController(Controller):
    """Coarse-grained lookup table set to per-class worst cases.

    ``table`` maps the coarse parameter (e.g. resolution class) to the
    worst-case cycle count observed in training for that class.
    Unknown classes fall back to nominal.
    """

    vectorizable = True

    def __init__(self, levels: LevelTable, t_switch: float,
                 table: Dict[int, float]):
        super().__init__("table", levels, t_switch)
        self.table = dict(table)

    @classmethod
    def from_training(cls, levels: LevelTable, t_switch: float,
                      jobs: Iterable[JobRecord]) -> "TableBasedController":
        """Build the per-class worst-case table from training jobs."""
        table: Dict[int, float] = {}
        for job in jobs:
            key = job.coarse_param
            table[key] = max(table.get(key, 0.0), float(job.actual_cycles))
        if not table:
            raise ValueError(
                "cannot build a table controller from an empty training "
                "set — every class would silently fall back to nominal"
            )
        return cls(levels, t_switch, table)

    def plan(self, job: JobRecord, budget: float) -> Plan:
        """Level for the class's training worst case."""
        worst = self.table.get(job.coarse_param)
        if worst is None:
            return Plan(point=self.levels.nominal)
        decision = select_level(
            self.levels, worst, budget,
            t_switch=self._switch_allowance(),
        )
        return Plan(point=decision.point, feasible=decision.feasible)

    def plan_batch(self, jobs: Sequence[JobRecord],
                   budgets: np.ndarray) -> Optional[BatchPlan]:
        """Batched lookup: known classes through the decision kernel,
        unknown classes pinned to nominal (the scalar fallback)."""
        worst = [self.table.get(job.coarse_param) for job in jobs]
        known = np.array([w is not None for w in worst], dtype=bool)
        cycles = np.array([w if w is not None else 0.0 for w in worst],
                          dtype=float)
        decision = select_level_batch(
            self.levels, cycles, budgets,
            t_switch=self._switch_allowance())
        nominal = self.levels.index_of(self.levels.nominal)
        return BatchPlan(
            level_index=np.where(known, decision.level_index, nominal),
            t_slice=np.zeros(len(jobs)),
            feasible=np.where(known, decision.feasible, True))


class PidController(Controller):
    """Reactive PID prediction with a safety margin (10% in the paper)."""

    def __init__(self, levels: LevelTable, t_switch: float,
                 gains: Optional[PidGains] = None,
                 margin: float = 0.10):
        super().__init__("pid", levels, t_switch)
        self.gains = gains or PidGains(0.6, 0.05, 0.1)
        self.margin = margin
        self._pid = PidPredictor(self.gains)

    @classmethod
    def tuned(cls, levels: LevelTable, t_switch: float,
              training_cycles: Sequence[float],
              margin: float = 0.10) -> "PidController":
        """Tune gains on the training execution-time series."""
        return cls(levels, t_switch, gains=tune_pid(training_cycles),
                   margin=margin)

    def reset(self) -> None:
        """Restart the PID predictor."""
        self._pid = PidPredictor(self.gains)

    def plan(self, job: JobRecord, budget: float) -> Plan:
        """Level from the PID's next-job prediction (10% margin)."""
        predicted = self._pid.predict()
        if predicted is None:
            return Plan(point=self.levels.nominal)  # conservative first job
        decision = select_level(
            self.levels, predicted, budget,
            margin_fraction=self.margin,
            t_switch=self._switch_allowance(),
        )
        return Plan(point=decision.point, feasible=decision.feasible)

    def observe(self, job: JobRecord) -> None:
        """Feed the retired job's cycle count to the PID."""
        self._pid.observe(float(job.actual_cycles))


class HistoryController(Controller):
    """Moving-average reactive control (frame-based DVFS, [10])."""

    def __init__(self, levels: LevelTable, t_switch: float,
                 window: int = 4, margin: float = 0.10):
        super().__init__("history", levels, t_switch)
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.margin = margin
        self._past: deque = deque(maxlen=window)

    def reset(self) -> None:
        """Forget past observations."""
        self._past.clear()

    def plan(self, job: JobRecord, budget: float) -> Plan:
        """Level from the moving-average prediction."""
        if not self._past:
            return Plan(point=self.levels.nominal)
        predicted = sum(self._past) / len(self._past)
        decision = select_level(
            self.levels, predicted, budget,
            margin_fraction=self.margin,
            t_switch=self._switch_allowance(),
        )
        return Plan(point=decision.point, feasible=decision.feasible)

    def observe(self, job: JobRecord) -> None:
        """Append the retired job's cycle count to the window."""
        self._past.append(float(job.actual_cycles))


class PredictiveController(Controller):
    """The paper's slice-based predictive scheme (5% margin).

    ``boost=True`` enables the 1.08 V boost level when the remaining
    budget is too short even for nominal frequency (Fig 14).
    ``charge_overheads=False`` models the idealized "prediction w/o
    overhead" variant of Fig 13.
    """

    uses_slice = True
    vectorizable = True

    def __init__(self, levels: LevelTable, t_switch: float,
                 margin: float = 0.05, boost: bool = False,
                 charge_overheads: bool = True):
        # Compose the name from both flags — ``boost`` and
        # ``charge_overheads`` are independent, so the four combinations
        # must yield four distinct names or variants collide in
        # SchemeSummary tables.
        name = "prediction"
        if boost:
            name += "_boost"
        if not charge_overheads:
            name += "_no_overhead"
        super().__init__(name, levels, t_switch)
        self.margin = margin
        self.boost = boost
        self.charge_overheads = charge_overheads
        if not charge_overheads:
            self.uses_slice = False

    def plan(self, job: JobRecord, budget: float) -> Plan:
        """Level from the slice's prediction, margins and overheads deducted."""
        if job.predicted_cycles is None:
            raise ValueError(
                f"job {job.index} carries no prediction; run the slice "
                "pipeline first"
            )
        f_nominal = self.levels.nominal.frequency
        t_slice = (job.slice_cycles / f_nominal
                   if self.charge_overheads else 0.0)
        decision = select_level(
            self.levels, job.predicted_cycles, budget,
            margin_fraction=self.margin,
            t_slice=t_slice,
            t_switch=self._switch_allowance(),
            allow_boost=self.boost,
        )
        return Plan(point=decision.point, t_slice=t_slice,
                    feasible=decision.feasible)

    def plan_batch(self, jobs: Sequence[JobRecord],
                   budgets: np.ndarray) -> Optional[BatchPlan]:
        """Batched slice-prediction planning.

        Declines (returns None) when any job is missing its
        prediction, so the scalar path raises the same diagnostic the
        per-job :meth:`plan` would.
        """
        predicted = [job.predicted_cycles for job in jobs]
        if any(p is None for p in predicted):
            return None
        cycles = np.array(predicted, dtype=float)
        if self.charge_overheads:
            f_nominal = self.levels.nominal.frequency
            t_slice = np.array(
                [job.slice_cycles for job in jobs],
                dtype=float) / f_nominal
        else:
            t_slice = np.zeros(len(jobs))
        decision = select_level_batch(
            self.levels, cycles, budgets,
            margin_fraction=self.margin,
            t_slice=t_slice,
            t_switch=self._switch_allowance(),
            allow_boost=self.boost)
        return BatchPlan(level_index=decision.level_index,
                         t_slice=t_slice, feasible=decision.feasible)


class IntervalGovernorController(Controller):
    """A devfreq ``simple_ondemand``-style interval governor.

    The paper's Sec. 5.1: "Linux implements interval-based governors in
    its devfreq framework ... these governors have the same issues when
    dealing with workloads that show large variability."  The governor
    measures the utilization of the previous interval (here: the
    previous job's busy fraction of its period at the level it ran at)
    and retargets frequency proportionally:

    * utilization above ``up_threshold`` -> jump to the frequency that
      would bring utilization back to the threshold (usually up);
    * utilization below ``up_threshold - down_differential`` -> scale
      down the same way;
    * otherwise hold the level.

    It never looks at the upcoming job, so it inherits the reactive
    schemes' lag — plus interval quantization.
    """

    def __init__(self, levels: LevelTable, t_switch: float,
                 up_threshold: float = 0.90,
                 down_differential: float = 0.15):
        super().__init__("governor", levels, t_switch)
        if not 0 < up_threshold <= 1:
            raise ValueError("up_threshold must be in (0, 1]")
        if not 0 <= down_differential < up_threshold:
            raise ValueError("down_differential must be below the "
                             "up threshold")
        self.up_threshold = up_threshold
        self.down_differential = down_differential
        self._current = levels.nominal
        self._last_utilization: Optional[float] = None
        self._period = 0.0

    def reset(self) -> None:
        """Return to nominal with no utilization history."""
        self._current = self.levels.nominal
        self._last_utilization = None
        self._period = 0.0

    def plan(self, job: JobRecord, budget: float) -> Plan:
        """Retarget frequency from the previous interval's utilization."""
        self._period = budget
        util = self._last_utilization
        if util is not None:
            if (util > self.up_threshold
                    or util < self.up_threshold - self.down_differential):
                target = self._current.frequency * util / self.up_threshold
                point = self.levels.lowest_meeting(target)
                self._current = point or self.levels.nominal
        return Plan(point=self._current)

    def observe(self, job: JobRecord) -> None:
        """Measure the retired job's utilization of its period."""
        busy = job.actual_cycles / self._current.frequency
        period = self._period if self._period > 0 else busy
        self._last_utilization = min(busy / period, 4.0)


class OracleController(Controller):
    """Perfect per-job level selection with zero overheads (Fig 13)."""

    charge_overheads = False
    vectorizable = True

    def __init__(self, levels: LevelTable):
        super().__init__("oracle", levels, t_switch=0.0)

    def plan(self, job: JobRecord, budget: float) -> Plan:
        """Level from the job's true cycle count (perfect prediction)."""
        decision = select_level(self.levels, float(job.actual_cycles),
                                budget)
        return Plan(point=decision.point, feasible=decision.feasible)

    def plan_batch(self, jobs: Sequence[JobRecord],
                   budgets: np.ndarray) -> Optional[BatchPlan]:
        """Batched oracle: true cycle counts through the kernel."""
        cycles = np.array([job.actual_cycles for job in jobs],
                          dtype=float)
        decision = select_level_batch(self.levels, cycles, budgets)
        return BatchPlan(level_index=decision.level_index,
                         t_slice=np.zeros(len(jobs)),
                         feasible=decision.feasible)
