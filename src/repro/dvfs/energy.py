"""Energy models for ASIC and FPGA accelerators.

The paper obtains power from post-place-and-route gate-level
simulations at 1 V, then scales across DVFS levels with the
voltage-frequency model (Sec. 4.1).  We do the same at cell
granularity:

* dynamic energy — every cell contributes a per-active-cycle switching
  energy at 1 V (``repro.rtl.tech``).  Control logic toggles every
  execution cycle; each datapath block toggles only during its declared
  active FSM states.  At voltage V the energy scales with (V/V0)^2.
* leakage — proportional to area (ASIC) or resources (FPGA) and scaled
  with (V/V0)^3 (drain-induced barrier lowering makes leakage fall
  super-linearly with voltage); integrated over the job's wall time.

So running a job slower at lower voltage trades quadratic dynamic
savings against linearly longer leakage integration — the trade-off
DVFS navigates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from ..rtl.module import Module
from ..rtl.netlist import Netlist
from ..rtl.simulator import RunResult
from ..rtl import tech
from .levels import OperatingPoint

#: Leakage voltage-scaling exponent.
LEAKAGE_EXPONENT = 3.0


@dataclass(frozen=True)
class JobActivity:
    """Per-job switching activity: total cycles plus per-datapath-block
    active cycles."""

    cycles: int
    block_cycles: Mapping[str, int] = field(default_factory=dict)


def activity_from_run(module: Module, result: RunResult) -> JobActivity:
    """Derive datapath activity from a simulation's state-cycle counts."""
    blocks: Dict[str, int] = {}
    for block in module.datapath_blocks:
        active = 0
        for fsm_name, state in block.active_states:
            active += result.state_cycles.get((fsm_name, state), 0)
        blocks[block.name] = active
    return JobActivity(cycles=result.cycles, block_cycles=blocks)


class EnergyModel:
    """Common interface: energy of one job at one operating point."""

    v_nominal: float = 1.0

    def job_energy(self, activity: JobActivity, point: OperatingPoint,
                   duration: float) -> float:
        """Energy in joules for a job with ``activity`` running at
        ``point`` over wall time ``duration`` seconds."""
        vr = point.voltage / self.v_nominal
        dynamic = self._dynamic_energy_1v(activity) * vr * vr
        return dynamic + self.leakage_power(point) * duration

    def leakage_power(self, point: OperatingPoint) -> float:
        """Leakage power in watts while held at ``point``.

        Used on its own for windows where the accelerator is powered
        but does no work — notably the DVFS switch window, which costs
        wall time and therefore leaks."""
        vr = point.voltage / self.v_nominal
        return self._leakage_power_1v() * (vr ** LEAKAGE_EXPONENT)

    def _dynamic_energy_1v(self, activity: JobActivity) -> float:
        raise NotImplementedError

    def _leakage_power_1v(self) -> float:
        raise NotImplementedError


class AsicEnergyModel(EnergyModel):
    """Cell-level ASIC energy model derived from a netlist."""

    def __init__(self, base_energy_per_cycle: float,
                 block_energy_per_cycle: Mapping[str, float],
                 leakage_power: float):
        self.base_energy_per_cycle = base_energy_per_cycle
        self.block_energy_per_cycle = dict(block_energy_per_cycle)
        self.leakage_power_1v = leakage_power

    @classmethod
    def from_netlist(cls, netlist: Netlist) -> "AsicEnergyModel":
        base = 0.0
        blocks: Dict[str, float] = {}
        for cell in netlist:
            energy = tech.asic_switch_energy_per_cycle(cell)
            if cell.provenance.construct == "datapath":
                name = cell.provenance.name
                blocks[name] = blocks.get(name, 0.0) + energy
            else:
                base += energy
        leak = tech.asic_leakage_power(tech.asic_area(netlist))
        return cls(base, blocks, leak)

    def _dynamic_energy_1v(self, activity: JobActivity) -> float:
        energy = self.base_energy_per_cycle * activity.cycles
        for name, cycles in activity.block_cycles.items():
            energy += self.block_energy_per_cycle.get(name, 0.0) * cycles
        return energy

    def _leakage_power_1v(self) -> float:
        return self.leakage_power_1v


class FpgaEnergyModel(EnergyModel):
    """Resource-level FPGA energy model derived from a netlist."""

    def __init__(self, base_energy_per_cycle: float,
                 block_energy_per_cycle: Mapping[str, float],
                 static_power: float):
        self.base_energy_per_cycle = base_energy_per_cycle
        self.block_energy_per_cycle = dict(block_energy_per_cycle)
        self.static_power = static_power

    @classmethod
    def from_netlist(cls, netlist: Netlist) -> "FpgaEnergyModel":
        base = tech.FpgaResources()
        blocks_res: Dict[str, tech.FpgaResources] = {}
        for cell in netlist:
            res = tech.fpga_cell_resources(cell)
            if cell.provenance.construct == "datapath":
                name = cell.provenance.name
                blocks_res[name] = blocks_res.get(
                    name, tech.FpgaResources()) + res
            else:
                base = base + res
        blocks = {
            name: tech.fpga_switch_energy_per_cycle(res)
            for name, res in blocks_res.items()
        }
        total = base
        for res in blocks_res.values():
            total = total + res
        return cls(
            base_energy_per_cycle=tech.fpga_switch_energy_per_cycle(base),
            block_energy_per_cycle=blocks,
            static_power=tech.fpga_leakage_power(total),
        )

    def _dynamic_energy_1v(self, activity: JobActivity) -> float:
        energy = self.base_energy_per_cycle * activity.cycles
        for name, cycles in activity.block_cycles.items():
            energy += self.block_energy_per_cycle.get(name, 0.0) * cycles
        return energy

    def _leakage_power_1v(self) -> float:
        return self.static_power
