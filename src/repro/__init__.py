"""repro — predictive DVFS for hardware accelerators.

A self-contained reproduction of Chen, Rucker and Suh, *Execution Time
Prediction for Energy-Efficient Hardware Accelerators* (MICRO 2015),
including every substrate the paper depends on: a behavioural RTL IR
with a cycle-accurate simulator, structural FSM/counter detection,
hardware slicing with wait-state elision, the asymmetric-Lasso
execution-time model, voltage-frequency and energy models, the seven
benchmark accelerators with synthetic workloads, and the DVFS runtime
with every evaluated controller.

Quick start::

    from repro import get_design, workload_for, generate_predictor

    design = get_design("h264")
    workload = workload_for("h264", scale=0.2)
    package = generate_predictor(design, workload.train)
    predicted, slice_cycles = package.run_slice(
        design.encode_job(workload.test[0]))

See ``examples/`` for runnable scenarios and ``repro.experiments`` for
the paper's tables and figures.
"""

from .accelerators import AcceleratorDesign, JobInput, all_designs, get_design
from .analysis import FeatureMatrix, FeatureSet, FeatureSpec, discover_features
from .dvfs import (
    ConstantFrequencyController,
    LevelTable,
    OperatingPoint,
    OracleController,
    PidController,
    PredictiveController,
    build_level_table,
)
from .flow import (
    FlowConfig,
    GeneratedPredictor,
    build_job_records,
    generate_predictor,
)
from .model import LinearPredictor, TrainingConfig, fit_predictor
from .rtl import Fsm, Module, Simulation, synthesize
from .runtime import Task, run_episode
from .slicing import HardwareSlice, build_slice
from .units import FRAME_DEADLINE_60FPS
from .workloads import ALL_BENCHMARKS, workload_for

__version__ = "1.0.0"

__all__ = [
    "ALL_BENCHMARKS", "AcceleratorDesign", "ConstantFrequencyController",
    "FRAME_DEADLINE_60FPS", "FeatureMatrix", "FeatureSet", "FeatureSpec",
    "FlowConfig", "Fsm", "GeneratedPredictor", "HardwareSlice", "JobInput",
    "LevelTable", "LinearPredictor", "Module", "OperatingPoint",
    "OracleController", "PidController", "PredictiveController",
    "Simulation", "Task", "TrainingConfig", "all_designs",
    "build_job_records", "build_level_table", "build_slice",
    "discover_features", "fit_predictor", "generate_predictor",
    "get_design", "run_episode", "synthesize", "workload_for",
]
