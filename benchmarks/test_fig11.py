"""Fig 11: baseline vs PID vs prediction — energy and misses (ASIC).

The paper's headline: 36.7% average energy savings with 0.4% misses;
the PID controller misses 10.5% of deadlines.
"""

from repro.experiments import fig11_schemes


def test_fig11(benchmark, prewarmed, save_result):
    summaries = benchmark.pedantic(fig11_schemes.run, rounds=1,
                                   iterations=1)
    save_result("fig11", fig11_schemes.to_text(summaries))
    head = fig11_schemes.headline(summaries)
    # Shape checks against the paper's numbers.
    assert 25 < head["prediction_energy_savings_pct"] < 55  # paper 36.7
    assert head["prediction_miss_pct"] < 2.0                # paper 0.4
    assert 4 < head["pid_miss_pct"] < 25                    # paper 10.5
    assert head["pid_miss_pct"] > 5 * max(
        head["prediction_miss_pct"], 0.4)
    # The baseline rows are exact by construction.
    for s in summaries:
        if s.scheme == "baseline":
            assert s.miss_rate_pct == 0.0
