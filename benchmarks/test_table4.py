"""Table 4: ASIC implementation results (area, frequency, exec time)."""

from repro.experiments import table4


def test_table4(benchmark, prewarmed, save_result):
    rows = benchmark.pedantic(table4.run, rounds=1, iterations=1)
    text = table4.to_text(rows)
    save_result("table4", text)
    for row in rows:
        paper = table4.PAPER_TABLE4[row.benchmark]
        # Areas within ~2x of the paper's place-and-route results.
        assert paper[0] / 2 <= row.area_um2 <= paper[0] * 2, row.benchmark
        assert row.freq_mhz == paper[1]
        # Large input-dependent execution-time variation, under the
        # 16.7ms deadline, like the paper's Table 4.
        assert row.max_ms < 16.7
        assert row.max_ms > 2 * row.min_ms
