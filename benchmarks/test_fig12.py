"""Fig 12: ASIC slice overheads (area, energy, time)."""

from repro.experiments import fig12_overheads


def test_fig12(benchmark, prewarmed, save_result):
    rows = benchmark.pedantic(fig12_overheads.run, rounds=1, iterations=1)
    save_result("fig12", fig12_overheads.to_text(rows, tech="asic"))
    avg = rows[-1]
    assert avg.benchmark == "average"
    # Paper: 5.1% area, 1.5% energy, 3.5% of the time budget.  Our
    # control-dominated small designs push the area average up, but all
    # three overheads stay small.
    assert avg.area_pct < 25
    assert avg.energy_pct < 4
    assert avg.time_pct < 6
    by_name = {r.benchmark: r for r in rows}
    # The case-study claim: the h264 slice is a few percent of the chip.
    assert by_name["h264"].area_pct < 10
