"""Fig 15: deadline sensitivity, 0.6x to 1.6x of 16.7 ms."""

from repro.experiments import fig15_deadlines


def test_fig15(benchmark, prewarmed, save_result):
    points = benchmark.pedantic(fig15_deadlines.run, rounds=1,
                                iterations=1)
    save_result("fig15", fig15_deadlines.to_text(points))
    pred = fig15_deadlines.series(points, "prediction")
    base = fig15_deadlines.series(points, "baseline")
    energies = [e for _, e, _ in pred]
    # Longer deadlines -> monotone energy reduction for prediction.
    assert all(a >= b for a, b in zip(energies, energies[1:]))
    # At 0.6x even the baseline misses (jobs longer than the deadline);
    # at 1.2x+ prediction meets everything.
    assert base[0][2] > 0
    for factor, _, miss in pred:
        if factor >= 1.2:
            assert miss == 0.0
    # Baseline energy stays at 100% throughout.
    assert all(abs(e - 100.0) < 1e-9 for _, e, _ in base)
