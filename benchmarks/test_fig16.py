"""Fig 16: FPGA (Kintex-7) energy and misses."""

from repro.experiments import fig16_fpga


def test_fig16(benchmark, prewarmed, save_result):
    summaries = benchmark.pedantic(fig16_fpga.run, rounds=1, iterations=1)
    save_result("fig16", fig16_fpga.to_text(summaries))
    head = fig16_fpga.headline(summaries)
    # Paper: 35.9% savings, 0.4% misses — comparable to ASIC.
    assert 25 < head["prediction_energy_savings_pct"] < 55
    assert head["prediction_miss_pct"] < 2.0
