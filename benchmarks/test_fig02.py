"""Fig 2: per-frame execution time of h264 over three clips."""

from repro.experiments import fig02_variation


def test_fig02(benchmark, prewarmed, save_result):
    result = benchmark.pedantic(fig02_variation.run, rounds=1,
                                iterations=1)
    save_result("fig02", fig02_variation.to_text(result))
    # Three clips at the same resolution, visibly different time bands,
    # with within-clip variation (the premise of fine-grained DVFS).
    assert set(result.clips) == {"coastguard", "foreman", "news"}
    avg = {c: sum(v) / len(v) for c, v in result.series_ms.items()}
    assert avg["coastguard"] > avg["foreman"] > avg["news"]
    for clip in result.clips:
        assert result.spread(clip) > 0.3  # ms
