"""Figs 18/19: RTL-level vs HLS-level slicing for md and stencil."""

from repro.experiments import fig18_hls


def test_fig18_19(benchmark, prewarmed, save_result):
    results = benchmark.pedantic(fig18_hls.run, rounds=1, iterations=1)
    save_result("fig18_19", fig18_hls.to_text(results))
    by_label = {r.label: r for r in results}
    # Fig 18: accuracy comparable, misses disappear with HLS slicing.
    for name in ("md", "stencil"):
        rtl = by_label[f"{name}-rtl"]
        hls = by_label[f"{name}-hls"]
        assert abs(rtl.error_box.median) < 2.0
        assert abs(hls.error_box.median) < 2.0
        assert hls.miss_rate_pct == 0.0
    # md's RTL slice is slow enough to starve near-deadline jobs.
    assert by_label["md-rtl"].miss_rate_pct > 0.0
    # Fig 19: the HLS slice executes much faster.
    assert by_label["md-hls"].time_pct < by_label["md-rtl"].time_pct / 5
