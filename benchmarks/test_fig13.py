"""Fig 13: overhead-free prediction vs the oracle."""

from repro.experiments import fig13_oracle


def test_fig13(benchmark, prewarmed, save_result):
    summaries = benchmark.pedantic(fig13_oracle.run, rounds=1,
                                   iterations=1)
    save_result("fig13", fig13_oracle.to_text(summaries))
    head = fig13_oracle.headline(summaries)
    # Removing overheads helps a little (paper: 3.1%), and the result
    # sits within a few percent of the oracle (paper: 0.7%).
    assert 0 <= head["overhead_cost_pct"] < 6
    assert 0 <= head["gap_to_oracle_pct"] < 4
    # Without overheads, misses vanish (paper: 0%).
    assert head["no_overhead_miss_pct"] == 0.0
    assert head["oracle_miss_pct"] == 0.0
