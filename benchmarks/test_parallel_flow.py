"""Serial-vs-parallel benches for the record stage of the offline flow.

Each design's training simulation runs once serially and once over a
4-worker pool.  Bit-exactness is asserted unconditionally — parallel
results must be indistinguishable from serial ones on any machine.
The >= 2x speedup acceptance check only runs on hosts with at least
four CPUs; on smaller machines (e.g. single-core CI runners) pool
overhead dominates and wall-clock comparisons are meaningless.
"""

import os
import time

import numpy as np
import pytest

from repro.accelerators import get_design
from repro.analysis import discover_features, record_jobs
from repro.rtl import compile_module, synthesize
from repro.workloads import workload_for

#: Designs the parallel-speedup acceptance criterion is measured on.
SPEEDUP_DESIGNS = ("cjpeg", "aes")

#: Hard speedup assertions need real parallelism to be observable.
ENOUGH_CPUS = (os.cpu_count() or 1) >= 4


def _record_setup(name, scale):
    design = get_design(name)
    module = design.build()
    feature_set = discover_features(module, synthesize(module))
    jobs = [design.encode_job(item).as_pair()
            for item in workload_for(name, scale=scale).train]
    return compile_module(module), feature_set, jobs


@pytest.mark.parametrize("name", SPEEDUP_DESIGNS)
def test_record_serial(benchmark, name):
    """Baseline: the record stage with workers=1."""
    module, feature_set, jobs = _record_setup(name, 0.25)
    matrix = benchmark.pedantic(
        lambda: record_jobs(module, feature_set, jobs, workers=1),
        rounds=1, iterations=1)
    assert matrix.n_jobs == len(jobs)


@pytest.mark.parametrize("name", SPEEDUP_DESIGNS)
def test_record_parallel_jobs4(benchmark, name):
    """The record stage over a 4-worker pool: exact and (on multi-core
    hosts) at least 2x faster than serial."""
    module, feature_set, jobs = _record_setup(name, 0.25)

    t0 = time.perf_counter()
    serial = record_jobs(module, feature_set, jobs, workers=1)
    serial_s = time.perf_counter() - t0

    parallel = benchmark.pedantic(
        lambda: record_jobs(module, feature_set, jobs, workers=4),
        rounds=1, iterations=1)

    assert np.array_equal(serial.x, parallel.x)
    assert np.array_equal(serial.cycles, parallel.cycles)
    if ENOUGH_CPUS:
        speedup = serial_s / benchmark.stats["mean"]
        assert speedup >= 2.0, (
            f"{name}: jobs=4 speedup {speedup:.2f}x < 2x "
            f"(serial {serial_s:.2f}s)")
