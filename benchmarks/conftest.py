"""Benchmark harness configuration.

Each ``test_*`` file regenerates one table or figure of the paper.
Expensive per-benchmark artefacts (trained predictors, simulated test
records) are prepared once per session by the ``prewarmed`` fixture, so
pytest-benchmark timings measure the experiment's analysis/replay step.

Every benchmark writes its regenerated rows to
``benchmarks/results/<name>.txt`` so a run leaves a complete
paper-vs-reproduction record behind (EXPERIMENTS.md points here).

Workload scale follows ``REPRO_SCALE`` (default 1.0 — a laptop-sized
rendition of Table 3; raise it for tighter statistics).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import default_scale, prewarm_bundles
from repro.workloads import ALL_BENCHMARKS

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def prewarmed():
    """Build every benchmark bundle once, up front.

    ``prewarm_bundles`` honours the ambient ``REPRO_JOBS`` setting, so
    exporting it fans the bundle builds out across processes.
    """
    scale = default_scale()
    prewarm_bundles(ALL_BENCHMARKS, scale)
    return scale


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _save
