"""Fig 17: FPGA slice overheads (resources, energy, time)."""

from repro.experiments import fig12_overheads


def run_fpga():
    return fig12_overheads.run(tech="fpga")


def test_fig17(benchmark, prewarmed, save_result):
    rows = benchmark.pedantic(run_fpga, rounds=1, iterations=1)
    save_result("fig17", fig12_overheads.to_text(rows, tech="fpga"))
    avg = rows[-1]
    # Paper: 9.4% resources, 2% energy, 3.5% budget; stencil's relative
    # resource overhead is the outlier (control-only LUT usage).
    assert avg.area_pct < 40
    assert avg.energy_pct < 4
    assert avg.time_pct < 6
    by_name = {r.benchmark: r for r in rows}
    assert by_name["stencil"].area_pct > by_name["h264"].area_pct
