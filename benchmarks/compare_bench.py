"""Perf-regression guard: diff fresh BENCH_*.json against baselines.

Compares the throughput-like keys of freshly written benchmark
records (``BENCH_sim.json``, ``BENCH_serve.json``) against the
committed baselines (``git show <rev>:<file>``) and fails when any
key regressed by more than the threshold.  Latency and wall-time keys
are deliberately ignored — only higher-is-better figures gate.

Usage::

    python benchmarks/compare_bench.py [files ...]
        [--baseline-rev HEAD] [--threshold 0.30]

Exit codes: 0 = no regression (or skipped), 1 = regression found.
Skips outright on hosts with fewer than four CPUs — wall-clock
throughput there is too noisy to gate on — and for files with no
committed baseline yet.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
from typing import Dict, Iterator, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

DEFAULT_FILES = ("BENCH_sim.json", "BENCH_serve.json")
DEFAULT_THRESHOLD = 0.30
MIN_CPUS = 4

# Higher-is-better figures; everything else (wall_s, *_ms, counts,
# configuration echoes) is informational and never gates.
THROUGHPUT_SUFFIXES = (
    "jobs_per_s",
    "jobs_per_sec",
    "cycles_per_sec",
    "speedup",
)


def is_throughput_key(key: str) -> bool:
    return key.endswith(THROUGHPUT_SUFFIXES) or "_vs_" in key


def throughput_keys(node, prefix: str = ""
                    ) -> Iterator[Tuple[str, float]]:
    """Yield ``(dotted.path, value)`` for every gating key."""
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else key
            if isinstance(value, (dict, list)):
                yield from throughput_keys(value, path)
            elif (isinstance(value, (int, float))
                  and not isinstance(value, bool)
                  and is_throughput_key(key)):
                yield path, float(value)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from throughput_keys(value, f"{prefix}[{i}]")


def baseline_record(rev: str, name: str) -> Dict | None:
    proc = subprocess.run(
        ["git", "show", f"{rev}:{name}"],
        cwd=REPO_ROOT, capture_output=True, text=True)
    if proc.returncode != 0:
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None


def compare_file(name: str, rev: str, threshold: float) -> list:
    fresh_path = REPO_ROOT / name
    if not fresh_path.exists():
        print(f"compare_bench: {name}: no fresh record, skipping")
        return []
    baseline = baseline_record(rev, name)
    if baseline is None:
        print(f"compare_bench: {name}: no baseline at {rev}, skipping")
        return []
    fresh = dict(throughput_keys(json.loads(fresh_path.read_text())))
    regressions = []
    for path, base_value in throughput_keys(baseline):
        if base_value <= 0.0:
            continue
        fresh_value = fresh.get(path)
        if fresh_value is None:
            # Removed/renamed keys are a review concern, not a perf one.
            continue
        drop = 1.0 - fresh_value / base_value
        marker = " <-- REGRESSION" if drop > threshold else ""
        print(f"  {name}:{path}: {base_value:,.1f} -> "
              f"{fresh_value:,.1f} ({-drop:+.1%}){marker}")
        if drop > threshold:
            regressions.append((name, path, base_value, fresh_value))
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*", default=None,
                        help="bench records to diff (repo-relative)")
    parser.add_argument("--baseline-rev", default="HEAD")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="maximum tolerated fractional drop")
    args = parser.parse_args(argv)

    cpus = os.cpu_count() or 1
    if cpus < MIN_CPUS:
        print(f"compare_bench: skipped ({cpus} CPUs < {MIN_CPUS}; "
              "throughput gating needs a steady host)")
        return 0

    files = args.files or list(DEFAULT_FILES)
    regressions = []
    for name in files:
        regressions += compare_file(name, args.baseline_rev,
                                    args.threshold)
    if regressions:
        print(f"compare_bench: {len(regressions)} regression(s) "
              f"beyond {args.threshold:.0%}:")
        for name, path, base, new in regressions:
            print(f"  {name}:{path}: {base:,.1f} -> {new:,.1f}")
        return 1
    print("compare_bench: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
